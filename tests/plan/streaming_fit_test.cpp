// Streaming fitters vs their batch counterparts on identical data — the
// equivalence the plan subsystem's correctness rests on: exponential is
// EXACT (shared sufficient statistics), Weibull matches to grid-refinement
// accuracy, hyperexponential's first fit is bit-identical to batch EM and
// warm refits must not degrade the likelihood. Censored observations are
// exercised against the censoring-aware batch fitters throughout.
#include "harvest/plan/streaming_fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/fit/censored.hpp"
#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::plan {
namespace {

std::vector<double> weibull_sample(double shape, double scale, std::size_t n,
                                   std::uint64_t seed) {
  dist::Weibull law(shape, scale);
  numerics::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(law.sample(rng));
  return xs;
}

// ---------------------------------------------------------------- exponential

TEST(StreamingExponentialFit, MatchesBatchExactly) {
  const std::vector<double> xs = {12.0, 90.5, 3.25, 600.0, 41.0};
  StreamingExponentialFit f;
  for (const double x : xs) f.observe(x);
  EXPECT_EQ(f.observations(), xs.size());
  EXPECT_EQ(f.events(), xs.size());
  const dist::Exponential batch = fit::fit_exponential_mle(xs);
  EXPECT_DOUBLE_EQ(f.fit().rate(), batch.rate());
}

TEST(StreamingExponentialFit, CensoredMatchesBatchExactly) {
  const std::vector<double> xs = {50.0, 120.0, 120.0, 8.0, 120.0, 77.0};
  const std::vector<bool> observed = {true, false, false, true, false, true};
  StreamingExponentialFit f;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (observed[i]) {
      f.observe(xs[i]);
    } else {
      f.observe_censored(xs[i]);
    }
  }
  EXPECT_EQ(f.events(), 3u);
  EXPECT_EQ(f.censored(), 3u);
  const dist::Exponential batch =
      fit::fit_exponential_censored({xs, observed});
  EXPECT_DOUBLE_EQ(f.fit().rate(), batch.rate());
}

TEST(StreamingExponentialFit, ThrowsWithoutEvents) {
  StreamingExponentialFit f;
  EXPECT_THROW(f.fit(), std::invalid_argument);
  f.observe_censored(100.0);  // censoring alone cannot identify the rate
  EXPECT_THROW(f.fit(), std::invalid_argument);
  f.observe(5.0);
  EXPECT_NO_THROW(f.fit());
}

// -------------------------------------------------------------------- weibull

TEST(StreamingWeibullFit, MatchesBatchAcrossShapes) {
  for (const double shape : {0.35, 0.7, 1.0, 2.4}) {
    const auto xs = weibull_sample(shape, 1800.0, 400, 42);
    StreamingWeibullFit f;
    for (const double x : xs) f.observe(x);
    const dist::Weibull streaming = f.fit();
    const dist::Weibull batch = fit::fit_weibull_mle(xs);
    EXPECT_NEAR(streaming.shape() / batch.shape(), 1.0, 1e-4)
        << "shape " << shape;
    EXPECT_NEAR(streaming.scale() / batch.scale(), 1.0, 1e-4)
        << "shape " << shape;
  }
}

TEST(StreamingWeibullFit, CensoredMatchesBatch) {
  auto xs = weibull_sample(0.6, 900.0, 300, 7);
  const double horizon = 1200.0;  // right-censor the tail, like a window
  const fit::CensoredSample sample = fit::CensoredSample::censor_at(
      xs, horizon);
  StreamingWeibullFit f;
  for (std::size_t i = 0; i < sample.values.size(); ++i) {
    if (sample.observed[i]) {
      f.observe(sample.values[i]);
    } else {
      f.observe_censored(sample.values[i]);
    }
  }
  ASSERT_LT(sample.event_count(), sample.size());  // censoring engaged
  const dist::Weibull streaming = f.fit();
  const dist::Weibull batch = fit::fit_weibull_censored(sample);
  EXPECT_NEAR(streaming.shape() / batch.shape(), 1.0, 1e-4);
  EXPECT_NEAR(streaming.scale() / batch.scale(), 1.0, 1e-4);
}

// The whole point of the streaming form: refitting after each arrival must
// agree with a from-scratch batch fit of the prefix, at every prefix.
TEST(StreamingWeibullFit, IncrementalPrefixesMatchBatch) {
  const auto xs = weibull_sample(0.52, 2400.0, 64, 11);
  StreamingWeibullFit f;
  std::vector<double> prefix;
  for (const double x : xs) {
    f.observe(x);
    prefix.push_back(x);
    if (prefix.size() < 8) continue;  // tiny fits are noisy for both alike
    const dist::Weibull streaming = f.fit();
    const dist::Weibull batch = fit::fit_weibull_mle(prefix);
    ASSERT_NEAR(streaming.shape() / batch.shape(), 1.0, 1e-4)
        << "prefix " << prefix.size();
    ASSERT_NEAR(streaming.scale() / batch.scale(), 1.0, 1e-4)
        << "prefix " << prefix.size();
  }
}

TEST(StreamingWeibullFit, DegenerateInputsThrow) {
  StreamingWeibullFit f;
  EXPECT_THROW(f.fit(), std::invalid_argument);  // no data
  f.observe(100.0);
  EXPECT_THROW(f.fit(), std::invalid_argument);  // one event
  f.observe(100.0);
  // Two events but identical values: the shape MLE diverges.
  EXPECT_THROW(f.fit(), std::invalid_argument);
  f.observe(250.0);
  EXPECT_NO_THROW(f.fit());
}

TEST(StreamingWeibullFit, CensoredOnlyObservationsCannotFit) {
  StreamingWeibullFit f;
  f.observe_censored(10.0);
  f.observe_censored(20.0);
  f.observe_censored(30.0);
  EXPECT_THROW(f.fit(), std::invalid_argument);
}

// ------------------------------------------------------------------- hyperexp

TEST(StreamingHyperexpFit, FirstFitIsBatchEm) {
  const dist::Hyperexponential truth({0.6, 0.4}, {1.0 / 60.0, 1.0 / 1500.0});
  numerics::Rng rng(3);
  std::vector<double> xs;
  StreamingHyperexpFit f;
  for (std::size_t i = 0; i < 500; ++i) {
    const double x = truth.sample(rng);
    xs.push_back(x);
    f.observe(x);
  }
  const dist::Hyperexponential streaming = f.fit();
  const fit::EmResult batch = fit::fit_hyperexp_em(xs, 2);
  // Cold path and batch EM share init and options: bit-identical.
  ASSERT_EQ(streaming.weights().size(), batch.model.weights().size());
  for (std::size_t k = 0; k < streaming.weights().size(); ++k) {
    EXPECT_DOUBLE_EQ(streaming.weights()[k], batch.model.weights()[k]);
    EXPECT_DOUBLE_EQ(streaming.rates()[k], batch.model.rates()[k]);
  }
  EXPECT_EQ(f.last_iterations(), batch.iterations);
  EXPECT_DOUBLE_EQ(f.last_log_likelihood(), batch.log_likelihood);
  EXPECT_EQ(f.refits(), 1u);
}

TEST(StreamingHyperexpFit, WarmRefitDoesNotDegradeLikelihood) {
  const dist::Hyperexponential truth({0.3, 0.7}, {1.0 / 200.0, 1.0 / 500.0});
  numerics::Rng rng(17);
  std::vector<double> xs;
  StreamingHyperexpFit f;
  for (std::size_t i = 0; i < 400; ++i) {
    const double x = truth.sample(rng);
    xs.push_back(x);
    f.observe(x);
  }
  (void)f.fit();
  for (std::size_t i = 0; i < 50; ++i) {
    const double x = truth.sample(rng);
    xs.push_back(x);
    f.observe(x);
  }
  (void)f.fit();  // warm
  const double warm_ll = f.last_log_likelihood();
  // A cold fit of the same grown stream may not beat the warm fit by a
  // meaningful margin (warm is allowed to be better).
  const fit::EmResult cold = fit::fit_hyperexp_em(xs, 2);
  EXPECT_GE(warm_ll, cold.log_likelihood - 1e-3 * std::fabs(cold.log_likelihood));
  EXPECT_EQ(f.refits(), 2u);
}

TEST(StreamingHyperexpFit, ResetWarmStateReproducesColdFit) {
  const dist::Hyperexponential truth({0.5, 0.5}, {1.0 / 80.0, 1.0 / 2000.0});
  numerics::Rng rng(23);
  StreamingHyperexpFit f;
  std::vector<double> xs;
  for (std::size_t i = 0; i < 300; ++i) {
    const double x = truth.sample(rng);
    xs.push_back(x);
    f.observe(x);
  }
  (void)f.fit();
  f.reset_warm_state();
  const dist::Hyperexponential again = f.fit();
  const fit::EmResult batch = fit::fit_hyperexp_em(xs, 2);
  for (std::size_t k = 0; k < again.weights().size(); ++k) {
    EXPECT_DOUBLE_EQ(again.weights()[k], batch.model.weights()[k]);
    EXPECT_DOUBLE_EQ(again.rates()[k], batch.model.rates()[k]);
  }
}

TEST(StreamingHyperexpFit, ThrowsWithTooFewObservations) {
  StreamingHyperexpFit f;
  EXPECT_THROW(f.fit(), std::invalid_argument);
  f.observe(10.0);
  EXPECT_THROW(f.fit(), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::plan
