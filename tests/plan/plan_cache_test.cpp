// PlanCache: bucket sharing (same quantization bucket -> same shared
// plan), key separation by family and costs, LRU eviction accounting, and
// the ε-closeness property — evaluating the cached bucket-representative
// schedule under the TRUE fitted model must cost within ε of re-optimizing
// exactly, across the quantization grid and within-bucket offsets.
#include "harvest/plan/plan_cache.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/core/markov_model.hpp"
#include "harvest/core/optimizer.hpp"
#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/metrics.hpp"

namespace harvest::plan {
namespace {

const core::IntervalCosts kCosts{600.0, 600.0, -1.0};

TEST(PlanCache, SameBucketSharesOnePlan) {
  PlanCache cache;
  const dist::Weibull a(0.700, 1800.0);
  const dist::Weibull b(0.701, 1803.0);  // well inside a's bucket
  const auto first = cache.lookup_or_compute(a, kCosts);
  EXPECT_FALSE(first.hit);
  const auto second = cache.lookup_or_compute(b, kCosts);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.plan.get(), second.plan.get());  // literally shared
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(PlanCache, PlanCarriesScheduleHorizon) {
  PlanCacheOptions opts;
  opts.horizon = 5;
  PlanCache cache(opts);
  const auto got = cache.lookup_or_compute(dist::Weibull(0.6, 1200.0), kCosts);
  ASSERT_TRUE(got.plan != nullptr);
  EXPECT_EQ(got.plan->family, "weibull");
  ASSERT_EQ(got.plan->entries.size(), 5u);
  for (const auto& e : got.plan->entries) {
    EXPECT_GT(e.work_s, 0.0);
    EXPECT_GE(e.age_s, 0.0);
    EXPECT_GT(e.efficiency, 0.0);
  }
  // Ages are nondecreasing: entry i starts after i completed intervals.
  for (std::size_t i = 1; i < got.plan->entries.size(); ++i) {
    EXPECT_GE(got.plan->entries[i].age_s, got.plan->entries[i - 1].age_s);
  }
}

TEST(PlanCache, DifferentCostsNeverShare) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  const auto a = cache.lookup_or_compute(w, kCosts);
  core::IntervalCosts other = kCosts;
  other.checkpoint = 300.0;
  const auto b = cache.lookup_or_compute(w, other);
  EXPECT_FALSE(b.hit);
  EXPECT_NE(a.plan.get(), b.plan.get());
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCache, FamiliesAreKeyedApart) {
  PlanCache cache;
  // An exponential and a shape-1 Weibull are the same distribution, but
  // the key is (family, params): no accidental sharing across families.
  const dist::Exponential e(1.0 / 1000.0);
  const dist::Weibull w(1.0, 1000.0);
  (void)cache.lookup_or_compute(e, kCosts);
  const auto second = cache.lookup_or_compute(w, kCosts);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCache, UnsupportedFamilyThrows) {
  PlanCache cache;
  const dist::Lognormal ln(5.0, 1.2);
  EXPECT_THROW(cache.lookup_or_compute(ln, kCosts), std::invalid_argument);
}

TEST(PlanCache, RepresentativeStaysWithinHalfStep) {
  PlanCacheOptions opts;
  opts.log_step = 0.025;
  PlanCache cache(opts);
  const dist::Weibull w(0.5432, 1987.6);
  const auto rep = cache.representative(w);
  const auto* wrep = dynamic_cast<const dist::Weibull*>(rep.get());
  ASSERT_NE(wrep, nullptr);
  // |ln rep − ln fitted| <= log_step/2 per parameter.
  EXPECT_LE(std::fabs(std::log(wrep->shape() / w.shape())),
            opts.log_step / 2 + 1e-12);
  EXPECT_LE(std::fabs(std::log(wrep->scale() / w.scale())),
            opts.log_step / 2 + 1e-12);
}

TEST(PlanCache, HyperexpRepresentativeWeightsRenormalized) {
  PlanCache cache;
  const dist::Hyperexponential h({0.37, 0.63}, {1.0 / 90.0, 1.0 / 2400.0});
  const auto rep = cache.representative(h);
  const auto* hrep = dynamic_cast<const dist::Hyperexponential*>(rep.get());
  ASSERT_NE(hrep, nullptr);
  double sum = 0.0;
  for (const double w : hrep->weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Quantized weights stay near the fitted ones.
  EXPECT_NEAR(hrep->weights()[0], 0.37, cache.options().weight_step);
  const auto got = cache.lookup_or_compute(h, kCosts);
  EXPECT_EQ(got.plan->family, "hyperexp2");
}

TEST(PlanCache, LruEvictsOldestBucket) {
  PlanCacheOptions opts;
  opts.shards = 1;  // deterministic: every key lands in the one shard
  opts.capacity_per_shard = 2;
  PlanCache cache(opts);
  const dist::Weibull a(0.4, 600.0);
  const dist::Weibull b(0.7, 1800.0);
  const dist::Weibull c(1.2, 5000.0);
  (void)cache.lookup_or_compute(a, kCosts);
  (void)cache.lookup_or_compute(b, kCosts);
  (void)cache.lookup_or_compute(c, kCosts);  // evicts a (LRU)
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_FALSE(cache.lookup_or_compute(a, kCosts).hit);  // a is gone
  EXPECT_TRUE(cache.lookup_or_compute(c, kCosts).hit);   // c survived
}

TEST(PlanCache, TouchRefreshesLruOrder) {
  PlanCacheOptions opts;
  opts.shards = 1;
  opts.capacity_per_shard = 2;
  PlanCache cache(opts);
  const dist::Weibull a(0.4, 600.0);
  const dist::Weibull b(0.7, 1800.0);
  const dist::Weibull c(1.2, 5000.0);
  (void)cache.lookup_or_compute(a, kCosts);
  (void)cache.lookup_or_compute(b, kCosts);
  (void)cache.lookup_or_compute(a, kCosts);  // touch a: b is now LRU
  (void)cache.lookup_or_compute(c, kCosts);  // evicts b
  EXPECT_TRUE(cache.lookup_or_compute(a, kCosts).hit);
  EXPECT_FALSE(cache.lookup_or_compute(b, kCosts).hit);
}

TEST(PlanCache, ClearDropsPlansButKeepsCounters) {
  PlanCache cache;
  (void)cache.lookup_or_compute(dist::Weibull(0.6, 900.0), kCosts);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);  // history survives a clear
  EXPECT_FALSE(cache.lookup_or_compute(dist::Weibull(0.6, 900.0), kCosts).hit);
}

TEST(PlanCache, RegistryCountersMirrorStats) {
  obs::MetricsRegistry registry;
  PlanCache cache({}, &registry);
  const dist::Weibull w(0.7, 1800.0);
  (void)cache.lookup_or_compute(w, kCosts);
  (void)cache.lookup_or_compute(w, kCosts);
  const auto snap = registry.snapshot();
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "plan.cache.hits") hits = c.value;
    if (c.name == "plan.cache.misses") misses = c.value;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(PlanCache, RejectsBadOptions) {
  PlanCacheOptions opts;
  opts.shards = 0;
  EXPECT_THROW(PlanCache{opts}, std::invalid_argument);
  opts = {};
  opts.log_step = 0.0;
  EXPECT_THROW(PlanCache{opts}, std::invalid_argument);
  opts = {};
  opts.horizon = 0;
  EXPECT_THROW(PlanCache{opts}, std::invalid_argument);
}

// ε-closeness property: across a grid of fitted Weibulls and deliberate
// within-bucket offsets, serving the cached (bucket-representative) first
// interval under the TRUE fitted model costs within ε of re-optimizing for
// that model exactly. ε = 1% at the default 0.025 step; the bench measures
// the typical inflation at ~1e-5.
TEST(PlanCacheProperty, CachedPlansWithinEpsilonAcrossGrid) {
  PlanCache cache;
  const double step = cache.options().log_step;
  for (const double shape : {0.4, 0.6, 0.9, 1.5}) {
    for (const double scale : {400.0, 1800.0, 8000.0}) {
      // Offsets inside the bucket of (shape, scale): ±40% of a step.
      for (const double off : {-0.4, 0.0, 0.4}) {
        const dist::Weibull fitted(shape * std::exp(off * step),
                                   scale * std::exp(-off * step));
        const auto fitted_ptr = std::make_shared<dist::Weibull>(fitted);
        const auto got = cache.lookup_or_compute(fitted, kCosts);
        ASSERT_TRUE(got.plan != nullptr);
        core::MarkovModel model(fitted_ptr, kCosts);
        core::CheckpointOptimizer optimizer(model);
        const auto& e0 = got.plan->entries[0];
        const auto exact = optimizer.optimize(e0.age_s);
        const double served = model.overhead_ratio(e0.work_s, e0.age_s);
        const double best = exact.gamma / exact.work_time;
        EXPECT_LE(served / best - 1.0, 0.01)
            << "shape " << shape << " scale " << scale << " off " << off;
      }
    }
  }
}

}  // namespace
}  // namespace harvest::plan
