// Prediction-aware planning: predictor-keyed PlanCache buckets (separation
// from reactive keys, sharing within a quantization bucket, the period
// stretch applied to every entry), representative-predictor clamping, and
// the PlannerService overload that serves stretched plans without
// disturbing a machine's cached reactive plan.
#include <cmath>
#include <optional>
#include <stdexcept>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/plan/plan_cache.hpp"
#include "harvest/plan/service.hpp"
#include "harvest/predict/proactive_policy.hpp"

namespace harvest::plan {
namespace {

const core::IntervalCosts kCosts{600.0, 600.0, -1.0};
const predict::PredictorConfig kPred{0.8, 0.7, 1800.0};

TEST(PlanCachePredict, PredictorKeyNeverCollidesWithReactiveKey) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  const auto reactive = cache.lookup_or_compute(w, kCosts);
  const auto predicted = cache.lookup_or_compute(w, kCosts, kPred);
  EXPECT_FALSE(predicted.hit);
  EXPECT_NE(reactive.plan.get(), predicted.plan.get());
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_FALSE(reactive.plan->predictor_enabled);
  EXPECT_TRUE(predicted.plan->predictor_enabled);
  // nullopt routes to the plain overload's bucket.
  const auto again = cache.lookup_or_compute(w, kCosts, std::nullopt);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.plan.get(), reactive.plan.get());
}

TEST(PlanCachePredict, SamePredictorBucketSharesOnePlan) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  const auto first = cache.lookup_or_compute(w, kCosts, kPred);
  predict::PredictorConfig nudged = kPred;
  nudged.precision += 1e-4;  // well inside one weight_step (0.02)
  nudged.recall -= 1e-4;
  nudged.window_s *= 1.001;  // well inside one log_step (2.5 %)
  const auto second = cache.lookup_or_compute(w, kCosts, nudged);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.plan.get(), second.plan.get());
}

TEST(PlanCachePredict, DistinctPredictorsKeyApart) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  (void)cache.lookup_or_compute(w, kCosts, kPred);
  predict::PredictorConfig other = kPred;
  other.recall = 0.3;  // many weight steps away
  const auto second = cache.lookup_or_compute(w, kCosts, other);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCachePredict, EntriesCarryThePeriodStretch) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  const auto reactive = cache.lookup_or_compute(w, kCosts);
  const auto predicted = cache.lookup_or_compute(w, kCosts, kPred);
  const auto rep = cache.representative_predictor(kPred);
  const double factor =
      predict::prediction_period_factor(rep, kCosts.checkpoint);
  EXPECT_GT(factor, 1.0);
  EXPECT_DOUBLE_EQ(predicted.plan->period_factor, factor);
  ASSERT_EQ(predicted.plan->entries.size(), reactive.plan->entries.size());
  for (std::size_t i = 0; i < predicted.plan->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(predicted.plan->entries[i].work_s,
                     reactive.plan->entries[i].work_s * factor);
  }
  // The plan echoes the bucket-representative predictor it was blended
  // with, so a client can see exactly which scenario it is holding.
  EXPECT_DOUBLE_EQ(predicted.plan->predictor.precision, rep.precision);
  EXPECT_DOUBLE_EQ(predicted.plan->predictor.recall, rep.recall);
  EXPECT_DOUBLE_EQ(predicted.plan->predictor.window_s, rep.window_s);
}

TEST(PlanCachePredict, ZeroRecallPredictorStretchesNothing) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  predict::PredictorConfig silent = kPred;
  silent.recall = 0.0;
  const auto reactive = cache.lookup_or_compute(w, kCosts);
  const auto predicted = cache.lookup_or_compute(w, kCosts, silent);
  // Still its own bucket (scenario key), but the factor is exactly 1.
  EXPECT_NE(reactive.plan.get(), predicted.plan.get());
  EXPECT_EQ(predicted.plan->period_factor, 1.0);
  for (std::size_t i = 0; i < predicted.plan->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(predicted.plan->entries[i].work_s,
                     reactive.plan->entries[i].work_s);
  }
}

TEST(PlanCachePredict, RepresentativePredictorClampsToValidDomain) {
  PlanCache cache;
  const double ws = cache.options().weight_step;
  // A precision below half a weight step must not round to zero.
  predict::PredictorConfig tiny = kPred;
  tiny.precision = ws / 10.0;
  const auto rep = cache.representative_predictor(tiny);
  EXPECT_GE(rep.precision, ws);
  EXPECT_NO_THROW(rep.validate());
  // Recall 0 stays exactly 0 (the identity-factor bucket).
  predict::PredictorConfig silent = kPred;
  silent.recall = 0.0;
  EXPECT_EQ(cache.representative_predictor(silent).recall, 0.0);
  // Fractions never exceed 1 after rounding up.
  predict::PredictorConfig full = kPred;
  full.precision = 0.999;
  full.recall = 0.999;
  const auto high = cache.representative_predictor(full);
  EXPECT_LE(high.precision, 1.0);
  EXPECT_LE(high.recall, 1.0);
}

TEST(PlanCachePredict, InvalidPredictorThrowsBeforeTouchingTheCache) {
  PlanCache cache;
  const dist::Weibull w(0.7, 1800.0);
  predict::PredictorConfig bad = kPred;
  bad.window_s = -5.0;
  EXPECT_THROW(cache.lookup_or_compute(w, kCosts, bad),
               std::invalid_argument);
  EXPECT_EQ(cache.stats().size, 0u);
}

PlannerServiceOptions service_opts() {
  PlannerServiceOptions opts;
  opts.family = core::ModelFamily::kWeibull;
  opts.costs = kCosts;
  opts.refit_every = 1;
  return opts;
}

/// A service with one machine ("m1") holding enough reports to fit.
struct Seeded {
  PlannerService svc{service_opts()};
  Seeded() {
    for (int i = 0; i < 40; ++i) {
      svc.report("m1", 1200.0 + 40.0 * (i % 11));
    }
  }
};

TEST(ServicePredict, PredictorOverloadServesStretchedPlan) {
  Seeded seeded;
  auto& svc = seeded.svc;
  const auto reactive = svc.get_plan("m1");
  ASSERT_EQ(reactive.status, PlanStatus::kOk);
  const auto predicted = svc.get_plan("m1", kPred);
  ASSERT_EQ(predicted.status, PlanStatus::kOk);
  ASSERT_NE(predicted.plan, nullptr);
  EXPECT_TRUE(predicted.plan->predictor_enabled);
  EXPECT_GT(predicted.plan->period_factor, 1.0);
  ASSERT_EQ(predicted.plan->entries.size(), reactive.plan->entries.size());
  for (std::size_t i = 0; i < predicted.plan->entries.size(); ++i) {
    EXPECT_GT(predicted.plan->entries[i].work_s,
              reactive.plan->entries[i].work_s);
  }
}

TEST(ServicePredict, PredictorQueriesDoNotPolluteTheReactivePlan) {
  Seeded seeded;
  auto& svc = seeded.svc;
  const auto before = svc.get_plan("m1");
  ASSERT_EQ(before.status, PlanStatus::kOk);
  (void)svc.get_plan("m1", kPred);
  const auto after = svc.get_plan("m1");
  ASSERT_EQ(after.status, PlanStatus::kOk);
  // The machine's cached reactive plan pointer survived the predictor
  // query — no stretched intervals leak into plain serving.
  EXPECT_EQ(before.plan.get(), after.plan.get());
  EXPECT_FALSE(after.plan->predictor_enabled);
}

TEST(ServicePredict, NulloptBehavesLikePlainOverload) {
  Seeded seeded;
  auto& svc = seeded.svc;
  const auto plain = svc.get_plan("m1");
  const auto nul = svc.get_plan("m1", std::nullopt);
  ASSERT_EQ(plain.status, PlanStatus::kOk);
  ASSERT_EQ(nul.status, PlanStatus::kOk);
  EXPECT_EQ(plain.plan.get(), nul.plan.get());
}

TEST(ServicePredict, RepeatedPredictorQueriesHitTheCache) {
  Seeded seeded;
  auto& svc = seeded.svc;
  (void)svc.get_plan("m1", kPred);
  const auto second = svc.get_plan("m1", kPred);
  ASSERT_EQ(second.status, PlanStatus::kOk);
  EXPECT_TRUE(second.cache_hit);
}

TEST(ServicePredict, UnknownMachineAndInvalidPredictor) {
  Seeded seeded;
  auto& svc = seeded.svc;
  EXPECT_EQ(svc.get_plan("ghost", kPred).status,
            PlanStatus::kUnknownMachine);
  predict::PredictorConfig bad = kPred;
  bad.recall = 2.0;
  EXPECT_THROW((void)svc.get_plan("m1", bad), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::plan
