// PlannerService: status mapping (unknown machine / insufficient data /
// ok), lazy refit cadence, cross-machine plan sharing through the cache,
// per-family construction, metrics wiring, and a concurrency smoke over
// the sharded machine map.
#include "harvest/plan/service.hpp"

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"

namespace harvest::plan {
namespace {

PlannerServiceOptions weibull_options() {
  PlannerServiceOptions opts;
  opts.family = core::ModelFamily::kWeibull;
  opts.costs = core::IntervalCosts{600.0, 600.0, -1.0};
  opts.refit_every = 4;
  return opts;
}

void feed(PlannerService& s, const std::string& id, std::size_t n,
          std::uint64_t seed) {
  dist::Weibull law(0.7, 1800.0);
  numerics::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) s.report(id, law.sample(rng));
}

TEST(PlannerService, UnknownMachine) {
  PlannerService s(weibull_options());
  const auto got = s.get_plan("never-seen");
  EXPECT_EQ(got.status, PlanStatus::kUnknownMachine);
  EXPECT_EQ(got.plan, nullptr);
  EXPECT_EQ(to_string(got.status), "unknown_machine");
}

TEST(PlannerService, InsufficientDataUntilFittable) {
  PlannerService s(weibull_options());
  s.report("m1", 100.0);  // one event cannot fit a Weibull
  const auto got = s.get_plan("m1");
  EXPECT_EQ(got.status, PlanStatus::kInsufficientData);
  EXPECT_EQ(got.plan, nullptr);
  EXPECT_EQ(got.observations, 1u);
}

TEST(PlannerService, ServesPlanOnceFittable) {
  PlannerService s(weibull_options());
  feed(s, "m1", 25, 5);
  const auto got = s.get_plan("m1");
  ASSERT_EQ(got.status, PlanStatus::kOk);
  ASSERT_NE(got.plan, nullptr);
  EXPECT_TRUE(got.refitted);  // first get_plan fits
  EXPECT_EQ(got.observations, 25u);
  EXPECT_FALSE(got.fitted_description.empty());
  EXPECT_EQ(got.plan->entries.size(), s.options().cache.horizon);
}

TEST(PlannerService, RefitsLazilyOnCadence) {
  PlannerService s(weibull_options());  // refit_every = 4
  feed(s, "m1", 25, 5);
  ASSERT_TRUE(s.get_plan("m1").refitted);
  // No new data: plan is served stale, no refit.
  EXPECT_FALSE(s.get_plan("m1").refitted);
  // Fewer than refit_every new observations: still no refit.
  feed(s, "m1", 3, 6);
  EXPECT_FALSE(s.get_plan("m1").refitted);
  // Cadence reached: the next get_plan re-solves.
  feed(s, "m1", 1, 7);
  EXPECT_TRUE(s.get_plan("m1").refitted);
  EXPECT_EQ(s.stats().refits, 2u);
}

TEST(PlannerService, MachinesInOneBucketShareAPlan) {
  PlannerService s(weibull_options());
  // Identical report streams make the bucket sharing deterministic: both
  // machines fit the same model, so the second is served the FIRST
  // machine's plan straight from the cache.
  feed(s, "m1", 400, 5);
  feed(s, "m2", 400, 5);
  const auto a = s.get_plan("m1");
  const auto b = s.get_plan("m2");
  ASSERT_EQ(a.status, PlanStatus::kOk);
  ASSERT_EQ(b.status, PlanStatus::kOk);
  EXPECT_EQ(a.plan.get(), b.plan.get());
  EXPECT_TRUE(b.cache_hit);
}

TEST(PlannerService, ExponentialFamilyWorks) {
  PlannerServiceOptions opts = weibull_options();
  opts.family = core::ModelFamily::kExponential;
  PlannerService s(opts);
  s.report("m1", 120.0);
  s.report("m1", 3000.0, /*censored=*/true);  // censoring is first-class
  const auto got = s.get_plan("m1");
  ASSERT_EQ(got.status, PlanStatus::kOk);
  EXPECT_EQ(got.plan->family, "exponential");
}

TEST(PlannerService, HyperexpFamilyWorks) {
  PlannerServiceOptions opts = weibull_options();
  opts.family = core::ModelFamily::kHyperexp2;
  PlannerService s(opts);
  feed(s, "m1", 64, 5);
  const auto got = s.get_plan("m1");
  ASSERT_EQ(got.status, PlanStatus::kOk);
  EXPECT_EQ(got.plan->family, "hyperexp2");
}

TEST(PlannerService, UnsupportedFamilyThrows) {
  PlannerServiceOptions opts = weibull_options();
  opts.family = core::ModelFamily::kLognormal;
  EXPECT_THROW(PlannerService{opts}, std::invalid_argument);
  opts.family = core::ModelFamily::kAutoAic;
  EXPECT_THROW(PlannerService{opts}, std::invalid_argument);
}

TEST(PlannerService, StatsAndMetricsCount) {
  obs::MetricsRegistry registry;
  PlannerService s(weibull_options(), &registry);
  feed(s, "m1", 10, 5);
  feed(s, "m2", 10, 6);
  (void)s.get_plan("m1");
  const auto stats = s.stats();
  EXPECT_EQ(stats.reports, 20u);
  EXPECT_EQ(stats.machines, 2u);
  EXPECT_EQ(stats.refits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  const auto snap = registry.snapshot();
  std::uint64_t reports = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "plan.reports") reports = c.value;
  }
  EXPECT_EQ(reports, 20u);
}

TEST(PlannerService, IdleTtlRequiresSweepCadence) {
  PlannerServiceOptions opts = weibull_options();
  opts.idle_ttl_reports = 8;
  opts.evict_sweep_every = 0;
  EXPECT_THROW(PlannerService{opts}, std::invalid_argument);
}

TEST(PlannerService, IdleTtlEvictsStaleFitterState) {
  PlannerServiceOptions opts = weibull_options();
  opts.machine_shards = 1;       // one shard: every sweep scans everything
  opts.idle_ttl_reports = 4;     // stale after 4 reports without one
  opts.evict_sweep_every = 1;    // sweep on every report
  obs::MetricsRegistry registry;
  PlannerService s(opts, &registry);
  feed(s, "stale", 5, 1);   // report seq 1..5
  feed(s, "live", 10, 2);   // seq 6..15: at seq 10, 10 - 5 > 4 → evicted
  EXPECT_EQ(s.get_plan("stale").status, PlanStatus::kUnknownMachine);
  EXPECT_EQ(s.get_plan("live").status, PlanStatus::kOk);
  const auto stats = s.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.machines, 1u);
  EXPECT_EQ(registry.counter("plan.evicted").value(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("plan.machines").value(), 1.0);
  // Reporting again recreates the machine from scratch (fresh fitter).
  feed(s, "stale", 1, 3);
  const auto again = s.get_plan("stale");
  EXPECT_NE(again.status, PlanStatus::kUnknownMachine);
  EXPECT_EQ(again.observations, 1u);
  EXPECT_EQ(s.stats().machines, 2u);
}

TEST(PlannerService, IdleTtlDisabledKeepsStateForever) {
  PlannerServiceOptions opts = weibull_options();
  opts.machine_shards = 1;  // idle_ttl_reports stays 0 (default: never)
  PlannerService s(opts);
  feed(s, "old", 5, 1);
  feed(s, "busy", 5000, 2);
  EXPECT_EQ(s.get_plan("old").observations, 5u);
  EXPECT_EQ(s.stats().evictions, 0u);
}

// Shard-map smoke: concurrent reporters and plan readers on overlapping
// machines must neither crash nor lose reports.
TEST(PlannerService, ConcurrentReportAndGetPlan) {
  PlannerService s(weibull_options());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&s, t] {
      dist::Weibull law(0.7, 1800.0);
      numerics::Rng rng(1000 + static_cast<std::uint64_t>(t));
      const std::string id = "m" + std::to_string(t % 4);  // overlap
      for (int i = 0; i < kPerThread; ++i) {
        s.report(id, law.sample(rng));
        if (i % 16 == 0) (void)s.get_plan(id);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = s.stats();
  EXPECT_EQ(stats.reports,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.machines, 4u);
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(s.get_plan("m" + std::to_string(m)).status, PlanStatus::kOk);
  }
}

}  // namespace
}  // namespace harvest::plan
