// server::CliOptions: the shared --server-*/--fleet-* flag surface. Checks
// both `--flag value` and `--flag=value` forms, in-place argv stripping
// (unrelated flags survive in order), value validation errors, any(), and
// that server_config()/fleet_config() apply exactly the set fields.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/server/cli_options.hpp"

namespace harvest::server {
namespace {

/// Owns mutable copies of the argument strings so parse() can compact the
/// argv array in place, exactly as main() would hand it over.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    argc = static_cast<int>(ptrs.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;

  char** data() { return ptrs.data(); }
  std::vector<std::string> remaining() const {
    return {ptrs.begin(), ptrs.begin() + argc};
  }
};

TEST(CliOptions, ParsesEveryFlagSpaceForm) {
  Argv av({"prog", "--server-policy", "urgency", "--server-slots", "3",
           "--server-capacity", "24", "--server-stagger", "7.5",
           "--server-urgency-horizon", "450", "--server-queue-limit", "32",
           "--server-recovery-reserve", "4", "--fleet-shards", "4",
           "--fleet-routing", "hash", "--engine", "megapool",
           "--megapool-threads", "8", "--megapool-shards", "16"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  EXPECT_EQ(av.argc, 1);  // everything recognised and stripped
  EXPECT_TRUE(opts.any());
  EXPECT_EQ(opts.engine, "megapool");
  EXPECT_EQ(opts.megapool_threads, 8u);
  EXPECT_EQ(opts.megapool_shards, 16u);
  EXPECT_EQ(opts.policy, SchedulerPolicy::kUrgency);
  EXPECT_EQ(opts.slots, 3u);
  EXPECT_EQ(opts.capacity_mbps, 24.0);
  EXPECT_EQ(opts.stagger_window_s, 7.5);
  EXPECT_EQ(opts.urgency_horizon_s, 450.0);
  EXPECT_EQ(opts.queue_limit, 32u);
  EXPECT_EQ(opts.recovery_reserve, 4u);
  EXPECT_EQ(opts.fleet_shards, 4u);
  EXPECT_EQ(opts.fleet_routing, RoutingPolicy::kHash);
}

TEST(CliOptions, ParsesEqualsFormAndLeavesOtherFlagsInOrder) {
  Argv av({"prog", "pool", "--machines", "64",
           "--server-queue-limit=8", "--json", "--fleet-shards=2",
           "--fleet-routing=least_loaded"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  EXPECT_EQ(opts.queue_limit, 8u);
  EXPECT_EQ(opts.fleet_shards, 2u);
  EXPECT_EQ(opts.fleet_routing, RoutingPolicy::kLeastLoaded);
  // The caller's own flags come back compacted, order preserved.
  EXPECT_EQ(av.remaining(),
            (std::vector<std::string>{"prog", "pool", "--machines", "64",
                                      "--json"}));
}

TEST(CliOptions, NoFlagsMeansNoneSetAndUntouchedArgv) {
  Argv av({"prog", "pool", "--machines", "64"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  EXPECT_FALSE(opts.any());
  EXPECT_EQ(av.argc, 4);
  EXPECT_FALSE(opts.policy.has_value());
  EXPECT_FALSE(opts.fleet_shards.has_value());
}

TEST(CliOptions, AnyTriggersOnEachFlagAlone) {
  for (const auto& flag :
       {"--server-policy=fifo", "--server-slots=2", "--server-capacity=8",
        "--server-stagger=1", "--server-urgency-horizon=60",
        "--server-queue-limit=4", "--server-recovery-reserve=1",
        "--fleet-shards=2", "--fleet-routing=static"}) {
    Argv av({"prog", flag});
    EXPECT_TRUE(CliOptions::parse(av.argc, av.data()).any()) << flag;
  }
}

TEST(CliOptions, RejectsMalformedValues) {
  const std::vector<std::vector<std::string>> bad = {
      {"prog", "--server-policy", "lifo"},
      {"prog", "--server-slots", "many"},
      {"prog", "--server-slots", "3x"},
      {"prog", "--server-capacity", "0"},
      {"prog", "--server-capacity", "-5"},
      {"prog", "--server-stagger", "-1"},
      {"prog", "--server-urgency-horizon", "nan?"},
      {"prog", "--server-queue-limit"},  // missing value
      {"prog", "--fleet-shards", "0"},
      {"prog", "--fleet-shards", "1025"},  // > kMaxFleetShards
      {"prog", "--fleet-routing", "round_robin"},
      {"prog", "--engine", "warp"},
      {"prog", "--megapool-threads", "many"},
      {"prog", "--megapool-shards", "4x"},
  };
  for (const auto& args : bad) {
    Argv av(args);
    EXPECT_THROW((void)CliOptions::parse(av.argc, av.data()),
                 std::invalid_argument)
        << args.back();
  }
}

TEST(CliOptions, ServerConfigAppliesOnlySetFields) {
  Argv av({"prog", "--server-slots=5", "--server-recovery-reserve=2"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  ServerConfig base;
  base.capacity_mbps = 99.0;
  base.policy = SchedulerPolicy::kUrgency;
  const auto sc = opts.server_config(base);
  EXPECT_EQ(sc.slots, 5u);
  EXPECT_EQ(sc.recovery_queue_reserve, 2u);
  // Untouched fields keep the base values.
  EXPECT_DOUBLE_EQ(sc.capacity_mbps, 99.0);
  EXPECT_EQ(sc.policy, SchedulerPolicy::kUrgency);
}

TEST(CliOptions, FleetConfigCombinesServerAndFleetKnobs) {
  Argv av({"prog", "--fleet-shards=4", "--fleet-routing=least_loaded",
           "--server-capacity=20"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  const auto fc = opts.fleet_config();
  EXPECT_EQ(fc.shards, 4u);
  EXPECT_EQ(fc.routing, RoutingPolicy::kLeastLoaded);
  EXPECT_DOUBLE_EQ(fc.server.capacity_mbps, 20.0);
  // Defaults when the fleet flags are absent: one static shard.
  Argv plain({"prog", "--server-slots=2"});
  const auto fc1 =
      CliOptions::parse(plain.argc, plain.data()).fleet_config();
  EXPECT_EQ(fc1.shards, 1u);
  EXPECT_EQ(fc1.routing, RoutingPolicy::kStatic);
}

TEST(CliOptions, WarningsSurfaceSilentAdjustments) {
  // fair ignores the slot bound: validate() warns, warnings() forwards it.
  Argv av({"prog", "--server-policy=fair", "--server-slots=3"});
  const auto warnings = CliOptions::parse(av.argc, av.data()).warnings();
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings.front().find("fair"), std::string::npos);

  Argv clean({"prog", "--server-slots=3"});
  EXPECT_TRUE(CliOptions::parse(clean.argc, clean.data()).warnings().empty());
}

TEST(CliOptions, HelpTextMentionsEveryFlag) {
  const auto help = CliOptions::help_text();
  for (const auto& flag :
       {"--server-policy", "--server-slots", "--server-capacity",
        "--server-stagger", "--server-urgency-horizon",
        "--server-queue-limit", "--server-recovery-reserve",
        "--fleet-shards", "--fleet-routing", "--engine",
        "--megapool-threads", "--megapool-shards"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

TEST(CliOptions, EngineFlagsDoNotEnableContendedMode) {
  // Choosing an engine is orthogonal to the scenario: no --server-*/
  // --fleet-* flag means any() stays false and no fleet is implied.
  Argv av({"prog", "--engine=megapool", "--megapool-threads=4"});
  const auto opts = CliOptions::parse(av.argc, av.data());
  EXPECT_FALSE(opts.any());
  EXPECT_EQ(opts.engine, "megapool");
  EXPECT_EQ(opts.megapool_threads, 4u);
  EXPECT_FALSE(opts.megapool_shards.has_value());
}

}  // namespace
}  // namespace harvest::server
