// TransferScheduler policies: pick order, tie breaks, and the string round
// trip the CLI flags use.
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/server/transfer_scheduler.hpp"

namespace harvest::server {
namespace {

WaitingTransfer wt(std::uint64_t id, double arrival,
                   double predicted = std::numeric_limits<double>::infinity()) {
  WaitingTransfer w;
  w.id = id;
  w.arrival_s = arrival;
  w.eligible_s = arrival;
  w.predicted_remaining_s = predicted;
  return w;
}

TEST(TransferScheduler, FifoPicksEarliestArrival) {
  const auto fifo = make_scheduler(SchedulerPolicy::kFifo);
  const std::vector<WaitingTransfer> waiting = {
      wt(3, 20.0), wt(1, 5.0), wt(2, 10.0)};
  EXPECT_EQ(fifo->pick_next(waiting, 25.0), 1u);
  EXPECT_FALSE(fifo->unbounded_service());
  EXPECT_EQ(fifo->policy(), SchedulerPolicy::kFifo);
}

TEST(TransferScheduler, FifoBreaksArrivalTiesById) {
  const auto fifo = make_scheduler(SchedulerPolicy::kFifo);
  const std::vector<WaitingTransfer> waiting = {
      wt(9, 5.0), wt(4, 5.0), wt(7, 5.0)};
  EXPECT_EQ(fifo->pick_next(waiting, 5.0), 1u);  // id 4
}

TEST(TransferScheduler, UrgencyPicksEarliestImminentDeath) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency);
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 0.0, 900.0), wt(2, 1.0, 30.0), wt(3, 2.0, 4000.0)};
  // id 2's machine is predicted to die in 30 s, inside the default
  // imminence horizon: it jumps the queue.
  EXPECT_EQ(urgency->pick_next(waiting, 2.0), 1u);
  EXPECT_FALSE(urgency->unbounded_service());
}

TEST(TransferScheduler, UrgencyOrdersTheUrgentClassByAbsoluteDeadline) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency, 600.0);
  // Both were predicted to die within the horizon when they arrived. The
  // tie breaks on the absolute deadline (arrival + predicted remaining):
  // the transfer waiting since t=0 dies at t=500, before the fresh arrival
  // at t=600 whose machine is predicted to die in 200 s (t=800) — dying
  // "soon" relative to a later arrival is still dying later on the clock.
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 600.0, 200.0), wt(2, 0.0, 500.0)};
  EXPECT_EQ(urgency->pick_next(waiting, 600.0), 1u);  // deadline 500 < 800
}

TEST(TransferScheduler, UrgencyServesNonImminentTransfersFifo) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency);
  // Every predicted death is comfortably beyond the horizon: no one jumps,
  // arrival order rules — even though id 2's machine dies (much) sooner.
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 0.0, 9000.0), wt(2, 1.0, 3000.0)};
  EXPECT_EQ(urgency->pick_next(waiting, 2.0), 0u);

  // A zero horizon is exactly FIFO.
  const auto fifo_like = make_scheduler(SchedulerPolicy::kUrgency, 0.0);
  const std::vector<WaitingTransfer> burst = {
      wt(1, 5.0, 100.0), wt(2, 0.0, 9000.0)};
  EXPECT_EQ(fifo_like->pick_next(burst, 5.0), 1u);

  // An infinite horizon is pure earliest-deadline-first.
  const auto edf = make_scheduler(
      SchedulerPolicy::kUrgency, std::numeric_limits<double>::infinity());
  EXPECT_EQ(edf->pick_next(waiting, 2.0), 1u);  // deadline 3001 < 9000
}

TEST(TransferScheduler, UrgencyFallsBackToArrivalOrderWithoutPredictions) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency);
  // All +inf (no model information): nothing is imminent, pure FIFO.
  const std::vector<WaitingTransfer> waiting = {
      wt(5, 0.0), wt(2, 1.0), wt(8, 2.0)};
  EXPECT_EQ(urgency->pick_next(waiting, 2.0), 0u);  // id 5, earliest arrival
}

WaitingTransfer recovery(std::uint64_t id, double arrival) {
  auto w = wt(id, arrival);
  w.kind = TransferKind::kRecovery;
  return w;
}

TEST(TransferScheduler, RecoveryOutranksCheckpointsUnderFifo) {
  const auto fifo = make_scheduler(SchedulerPolicy::kFifo);
  // The recovery arrived last but is served first; among recoveries the
  // order stays FIFO.
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 0.0), wt(2, 1.0), recovery(3, 5.0), recovery(4, 3.0)};
  EXPECT_EQ(fifo->pick_next(waiting, 5.0), 3u);  // id 4: earliest recovery
}

TEST(TransferScheduler, RecoveryOutranksEvenImminentCheckpoints) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency);
  // The checkpoint's machine dies in 10 s — well inside the horizon — but
  // a waiting recovery still goes first: the urgency jump reorders only
  // the checkpoint class.
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 0.0, /*predicted=*/10.0), recovery(2, 4.0)};
  EXPECT_EQ(urgency->pick_next(waiting, 4.0), 1u);
}

TEST(TransferScheduler, UrgencyStillReordersAmongCheckpointsOnly) {
  const auto urgency = make_scheduler(SchedulerPolicy::kUrgency);
  // No recovery waiting: the imminent checkpoint jumps as usual.
  const std::vector<WaitingTransfer> waiting = {
      wt(1, 0.0, 9000.0), wt(2, 1.0, 30.0)};
  EXPECT_EQ(urgency->pick_next(waiting, 1.0), 1u);
}

TEST(TransferScheduler, RecoveryTiesBreakOnId) {
  const auto fifo = make_scheduler(SchedulerPolicy::kFifo);
  const std::vector<WaitingTransfer> waiting = {
      recovery(8, 2.0), recovery(3, 2.0)};
  EXPECT_EQ(fifo->pick_next(waiting, 2.0), 1u);  // id 3
}

TEST(TransferScheduler, RejectsBadUrgencyHorizon) {
  EXPECT_THROW((void)make_scheduler(SchedulerPolicy::kUrgency, -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)make_scheduler(
                   SchedulerPolicy::kUrgency,
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(TransferScheduler, FairIsUnbounded) {
  const auto fair = make_scheduler(SchedulerPolicy::kFair);
  EXPECT_TRUE(fair->unbounded_service());
  EXPECT_EQ(fair->policy(), SchedulerPolicy::kFair);
}

TEST(TransferScheduler, PolicyStringRoundTrip) {
  for (const auto policy : {SchedulerPolicy::kFifo, SchedulerPolicy::kFair,
                            SchedulerPolicy::kUrgency}) {
    EXPECT_EQ(policy_from_string(to_string(policy)), policy);
  }
  EXPECT_THROW((void)policy_from_string("lifo"), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::server
