// AdmissionController decision table and ExponentialBackoff growth/cap.
#include <stdexcept>

#include <gtest/gtest.h>

#include "harvest/server/admission.hpp"

namespace harvest::server {
namespace {

TEST(AdmissionController, AdmitsWhileSlotsFree) {
  const AdmissionController admission(2, 4);
  EXPECT_EQ(admission.decide(0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.decide(1, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.decide(1, 3), AdmissionDecision::kAdmit);
}

TEST(AdmissionController, QueuesWhenSlotsBusy) {
  const AdmissionController admission(2, 4);
  EXPECT_EQ(admission.decide(2, 0), AdmissionDecision::kQueue);
  EXPECT_EQ(admission.decide(2, 3), AdmissionDecision::kQueue);
}

TEST(AdmissionController, RejectsWhenQueueFull) {
  const AdmissionController admission(2, 4);
  EXPECT_EQ(admission.decide(2, 4), AdmissionDecision::kReject);
  EXPECT_EQ(admission.decide(3, 9), AdmissionDecision::kReject);
}

TEST(AdmissionController, ZeroQueueLimitRejectsAnyWait) {
  const AdmissionController admission(1, 0);
  EXPECT_EQ(admission.decide(0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.decide(1, 0), AdmissionDecision::kReject);
}

TEST(AdmissionController, ZeroSlotsMeansUnboundedService) {
  const AdmissionController admission(0, 0);
  EXPECT_EQ(admission.decide(0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.decide(1000, 0), AdmissionDecision::kAdmit);
}

TEST(AdmissionController, RecoveryReserveHoldsQueueTailForRecoveries) {
  // 4-slot queue with the last 2 reserved: checkpoints reject once only
  // the reserved slots remain, recoveries can fill the whole queue.
  const AdmissionController admission(1, 4, /*recovery_reserve=*/2);
  EXPECT_EQ(admission.decide(1, 1, TransferKind::kCheckpoint),
            AdmissionDecision::kQueue);
  EXPECT_EQ(admission.decide(1, 2, TransferKind::kCheckpoint),
            AdmissionDecision::kReject);
  EXPECT_EQ(admission.decide(1, 2, TransferKind::kRecovery),
            AdmissionDecision::kQueue);
  EXPECT_EQ(admission.decide(1, 3, TransferKind::kRecovery),
            AdmissionDecision::kQueue);
  EXPECT_EQ(admission.decide(1, 4, TransferKind::kRecovery),
            AdmissionDecision::kReject);
}

TEST(AdmissionController, ZeroReserveTreatsClassesIdentically) {
  const AdmissionController admission(1, 2);
  for (const auto kind :
       {TransferKind::kCheckpoint, TransferKind::kRecovery}) {
    EXPECT_EQ(admission.decide(1, 1, kind), AdmissionDecision::kQueue);
    EXPECT_EQ(admission.decide(1, 2, kind), AdmissionDecision::kReject);
  }
}

TEST(AdmissionController, FreeSlotAdmitsRegardlessOfClassOrReserve) {
  const AdmissionController admission(2, 1, /*recovery_reserve=*/1);
  EXPECT_EQ(admission.decide(1, 0, TransferKind::kCheckpoint),
            AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.decide(1, 0, TransferKind::kRecovery),
            AdmissionDecision::kAdmit);
}

TEST(TransferKind, StringNames) {
  EXPECT_EQ(to_string(TransferKind::kCheckpoint), "checkpoint");
  EXPECT_EQ(to_string(TransferKind::kRecovery), "recovery");
}

TEST(ExponentialBackoff, DoublesUntilCap) {
  const ExponentialBackoff backoff(30.0, 1920.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(0), 30.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(1), 60.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(2), 120.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(5), 960.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(6), 1920.0);
  // Truncated: the cap holds forever after, including absurd attempt
  // numbers that would overflow 2^attempt.
  EXPECT_DOUBLE_EQ(backoff.delay_s(7), 1920.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(100), 1920.0);
  EXPECT_DOUBLE_EQ(backoff.delay_s(4000000000u), 1920.0);
}

TEST(ExponentialBackoff, ValidatesParameters) {
  EXPECT_THROW(ExponentialBackoff(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ExponentialBackoff(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ExponentialBackoff(10.0, 5.0), std::invalid_argument);
  EXPECT_NO_THROW(ExponentialBackoff(10.0, 10.0));
}

}  // namespace
}  // namespace harvest::server
