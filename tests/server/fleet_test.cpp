// ServerFleet: routing determinism per policy, fleet-global id round trip,
// 1-shard bit-identity with a raw CheckpointServer, recovery-outranks-
// checkpoint through the fleet facade, stats aggregation / imbalance, the
// materialize() seed derivation, and FleetConfig::validate errors.
#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/server/fleet.hpp"

namespace harvest::server {
namespace {

FleetConfig fleet_config(std::size_t shards, RoutingPolicy routing) {
  FleetConfig fc;
  fc.shards = shards;
  fc.routing = routing;
  fc.server.capacity_mbps = 10.0;
  fc.server.slots = 1;
  fc.server.queue_limit = 16;
  return fc;
}

ServerTransferRequest req(std::uint64_t job_id, double mb,
                          std::size_t machine_index = 0,
                          TransferKind kind = TransferKind::kCheckpoint) {
  ServerTransferRequest r;
  r.job_id = job_id;
  r.megabytes = mb;
  r.machine_index = machine_index;
  r.kind = kind;
  return r;
}

/// Drain the fleet until it goes idle, collecting every completion.
std::vector<ServerCompletion> drain_all(ServerFleet& fleet) {
  std::vector<ServerCompletion> all;
  while (const auto next = fleet.next_event_s()) {
    for (auto& done : fleet.advance_to(*next)) all.push_back(done);
  }
  return all;
}

TEST(ServerFleet, StaticRoutingShardsOnMachineIndex) {
  const ServerFleet fleet(fleet_config(4, RoutingPolicy::kStatic), 1);
  for (std::size_t machine = 0; machine < 12; ++machine) {
    EXPECT_EQ(fleet.route(req(99, 100.0, machine)), machine % 4);
  }
}

TEST(ServerFleet, HashRoutingIsJobAffineAndSpreads) {
  const ServerFleet fleet(fleet_config(4, RoutingPolicy::kHash), 1);
  std::set<std::size_t> used;
  for (std::uint64_t job = 0; job < 64; ++job) {
    const auto shard = fleet.route(req(job, 100.0, /*machine_index=*/0));
    ASSERT_LT(shard, 4u);
    // Job-affine: the machine index is irrelevant to the hash.
    EXPECT_EQ(fleet.route(req(job, 100.0, /*machine_index=*/3)), shard);
    used.insert(shard);
  }
  // 64 consecutive job ids through splitmix64 hit every one of 4 shards.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ServerFleet, LeastLoadedRoutesAwayFromBusyShards) {
  ServerFleet fleet(fleet_config(3, RoutingPolicy::kLeastLoaded), 1);
  // Empty fleet: tie on 0 pending MB breaks to the lowest index.
  EXPECT_EQ(fleet.route(req(1, 100.0)), 0u);
  (void)fleet.submit(req(1, 500.0), 0.0);  // shard 0 now owns 500 MB
  EXPECT_EQ(fleet.route(req(2, 100.0)), 1u);
  (void)fleet.submit(req(2, 300.0), 0.0);  // shard 1 owns 300 MB
  EXPECT_EQ(fleet.route(req(3, 100.0)), 2u);
  (void)fleet.submit(req(3, 800.0), 0.0);  // shard 2 owns 800 MB
  // Now 500 / 300 / 800: shard 1 is lightest.
  EXPECT_EQ(fleet.route(req(4, 100.0)), 1u);
}

TEST(ServerFleet, FleetIdsCarryTheShardAndRoundTripThroughRemove) {
  ServerFleet fleet(fleet_config(4, RoutingPolicy::kStatic), 1);
  const auto a = fleet.submit(req(1, 100.0, /*machine_index=*/2), 0.0);
  const auto b = fleet.submit(req(2, 100.0, /*machine_index=*/7), 0.0);
  ASSERT_EQ(a.status, SubmitStatus::kStarted);
  ASSERT_EQ(b.status, SubmitStatus::kStarted);
  EXPECT_EQ(ServerFleet::shard_of(a.id), 2u);
  EXPECT_EQ(ServerFleet::shard_of(b.id), 3u);

  // remove() dispatches to the owning shard: half the bytes moved by t=5
  // (100 MB at 10 MB/s, alone on shard 2's pipe).
  const auto removal = fleet.remove(a.id, 5.0);
  EXPECT_TRUE(removal.found);
  EXPECT_TRUE(removal.was_active);
  EXPECT_DOUBLE_EQ(removal.moved_mb, 50.0);
  // An id tagged with a shard the fleet doesn't have is politely not found.
  const auto bogus = fleet.remove(
      TransferId{9} << (64 - kFleetShardBits), 5.0);
  EXPECT_FALSE(bogus.found);

  const auto done = drain_all(fleet);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, b.id);
  EXPECT_EQ(done[0].kind, TransferKind::kCheckpoint);
}

TEST(ServerFleet, OneShardFleetMatchesRawServerEventByEvent) {
  // Same submissions, same seed, stagger on so the RNG stream matters.
  FleetConfig fc = fleet_config(1, RoutingPolicy::kStatic);
  fc.server.stagger_window_s = 5.0;
  const std::uint64_t seed = 0xabcdef12u;

  CheckpointServer raw(fc.materialize(0, seed, nullptr));
  ServerFleet fleet(fc, seed);

  const std::vector<ServerTransferRequest> load = {
      req(1, 200.0), req(2, 150.0), req(3, 400.0),
      req(4, 50.0, 0, TransferKind::kRecovery), req(5, 250.0)};
  double t = 0.0;
  for (const auto& r : load) {
    const auto from_raw = raw.submit(r, t);
    const auto from_fleet = fleet.submit(r, t);
    EXPECT_EQ(from_raw.status, from_fleet.status);
    EXPECT_EQ(from_raw.id, from_fleet.id);  // shard 0 ids are untagged
    t += 0.25;
  }
  std::vector<ServerCompletion> raw_done;
  while (const auto next = raw.next_event_s()) {
    for (auto& done : raw.advance_to(*next)) raw_done.push_back(done);
  }
  const auto fleet_done = drain_all(fleet);
  ASSERT_EQ(raw_done.size(), fleet_done.size());
  for (std::size_t i = 0; i < raw_done.size(); ++i) {
    EXPECT_EQ(raw_done[i].id, fleet_done[i].id);
    EXPECT_EQ(raw_done[i].job_id, fleet_done[i].job_id);
    EXPECT_EQ(raw_done[i].kind, fleet_done[i].kind);
    EXPECT_DOUBLE_EQ(raw_done[i].start_s, fleet_done[i].start_s);
    EXPECT_DOUBLE_EQ(raw_done[i].finish_s, fleet_done[i].finish_s);
    EXPECT_DOUBLE_EQ(raw_done[i].megabytes, fleet_done[i].megabytes);
  }
  EXPECT_DOUBLE_EQ(raw.stats().moved_mb, fleet.stats().total.moved_mb);
  EXPECT_EQ(raw.stats().submitted, fleet.stats().total.submitted);
}

TEST(ServerFleet, RecoveryOutranksWaitingCheckpoints) {
  // One slot per shard; everything lands on shard 0 (machine_index 0).
  ServerFleet fleet(fleet_config(2, RoutingPolicy::kStatic), 1);
  ASSERT_EQ(fleet.submit(req(1, 100.0), 0.0).status, SubmitStatus::kStarted);
  ASSERT_EQ(fleet.submit(req(2, 100.0), 1.0).status, SubmitStatus::kQueued);
  ASSERT_EQ(
      fleet.submit(req(3, 100.0, 0, TransferKind::kRecovery), 2.0).status,
      SubmitStatus::kQueued);
  const auto done = drain_all(fleet);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].job_id, 1u);
  EXPECT_EQ(done[1].job_id, 3u);  // recovery jumps the earlier checkpoint
  EXPECT_EQ(done[2].job_id, 2u);
}

TEST(ServerFleet, CompletionsMergeInFinishOrderAcrossShards) {
  ServerFleet fleet(fleet_config(2, RoutingPolicy::kStatic), 1);
  // Shard 1 finishes first (t=10), shard 0 later (t=30).
  (void)fleet.submit(req(1, 300.0, /*machine_index=*/0), 0.0);
  (void)fleet.submit(req(2, 100.0, /*machine_index=*/1), 0.0);
  const auto done = fleet.advance_to(100.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].job_id, 2u);
  EXPECT_DOUBLE_EQ(done[0].finish_s, 10.0);
  EXPECT_EQ(done[1].job_id, 1u);
  EXPECT_DOUBLE_EQ(done[1].finish_s, 30.0);
}

TEST(ServerFleet, StatsAggregateAndImbalanceReflectsSkew) {
  ServerFleet fleet(fleet_config(4, RoutingPolicy::kStatic), 1);
  // All traffic on machine 1 → shard 1 only.
  (void)fleet.submit(req(1, 100.0, /*machine_index=*/1), 0.0);
  (void)fleet.submit(req(2, 100.0, /*machine_index=*/1), 0.0);
  (void)drain_all(fleet);
  const auto stats = fleet.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.total.submitted, 2u);
  EXPECT_EQ(stats.total.completed, 2u);
  EXPECT_DOUBLE_EQ(stats.total.moved_mb, 200.0);
  EXPECT_DOUBLE_EQ(stats.shards[1].moved_mb, 200.0);
  EXPECT_DOUBLE_EQ(stats.shards[0].moved_mb, 0.0);
  // Everything on one shard of four: imbalance = peak / mean = 200/50.
  EXPECT_DOUBLE_EQ(stats.imbalance_ratio(), 4.0);
}

TEST(ServerFleet, ImbalanceIsOneWhenBalancedOrIdle) {
  ServerFleet fleet(fleet_config(2, RoutingPolicy::kStatic), 1);
  EXPECT_DOUBLE_EQ(fleet.stats().imbalance_ratio(), 1.0);  // no traffic
  (void)fleet.submit(req(1, 100.0, /*machine_index=*/0), 0.0);
  (void)fleet.submit(req(2, 100.0, /*machine_index=*/1), 0.0);
  (void)drain_all(fleet);
  EXPECT_DOUBLE_EQ(fleet.stats().imbalance_ratio(), 1.0);  // 100 MB each
}

TEST(FleetConfig, MaterializeIsTheOnlySeedDerivation) {
  FleetConfig fc = fleet_config(4, RoutingPolicy::kStatic);
  fc.server.seed = 0xdeadbeefu;  // template runtime state must be ignored
  obs::EventTracer tracer(8);

  const auto shard0 = fc.materialize(0, 42, &tracer);
  EXPECT_EQ(shard0.seed, 42u);  // verbatim: 1-shard ≡ standalone server
  EXPECT_EQ(shard0.tracer, &tracer);
  EXPECT_DOUBLE_EQ(shard0.capacity_mbps, fc.server.capacity_mbps);
  EXPECT_EQ(shard0.slots, fc.server.slots);

  std::set<std::uint64_t> seeds{shard0.seed};
  for (std::size_t k = 1; k < 4; ++k) {
    const auto sc = fc.materialize(k, 42, &tracer);
    EXPECT_NE(sc.seed, 42u);
    seeds.insert(sc.seed);
    EXPECT_EQ(sc.tracer, &tracer);
  }
  EXPECT_EQ(seeds.size(), 4u);  // pairwise distinct streams
  // Deterministic: same (shard, seed) → same derived config.
  EXPECT_EQ(fc.materialize(3, 42, nullptr).seed,
            fc.materialize(3, 42, nullptr).seed);
}

TEST(FleetConfig, ValidateRejectsBadShardCounts) {
  auto fc = fleet_config(0, RoutingPolicy::kStatic);
  EXPECT_THROW((void)fc.validate(), std::invalid_argument);
  fc.shards = kMaxFleetShards + 1;
  EXPECT_THROW((void)fc.validate(), std::invalid_argument);
  fc.shards = kMaxFleetShards;
  EXPECT_NO_THROW((void)fc.validate());
}

TEST(FleetConfig, ValidateWarnsOnSingleShardLeastLoaded) {
  const auto fc = fleet_config(1, RoutingPolicy::kLeastLoaded);
  const auto v = fc.validate();
  ASSERT_FALSE(v.warnings.empty());
  EXPECT_NE(v.warnings.back().find("least_loaded"), std::string::npos);
  EXPECT_TRUE(fleet_config(2, RoutingPolicy::kLeastLoaded)
                  .validate()
                  .warnings.empty());
}

TEST(ServerFleet, RoutingStringRoundTrip) {
  for (const auto routing :
       {RoutingPolicy::kStatic, RoutingPolicy::kHash,
        RoutingPolicy::kLeastLoaded}) {
    EXPECT_EQ(routing_from_string(to_string(routing)), routing);
  }
  EXPECT_EQ(routing_from_string("least-loaded"), RoutingPolicy::kLeastLoaded);
  EXPECT_THROW((void)routing_from_string("round_robin"),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::server
