// End-to-end wait attribution through the real server: the span store's
// breakdown of each transfer's wait into stagger / admission-queue /
// scheduler-queue must match hand-computed values for FIFO scenarios, mark
// the pass-over boundary when policy (not capacity) makes a transfer wait,
// truncate removed transfers, and hold the exact-partition invariant
// across a policy x stagger x traffic-class sweep and a sharded fleet.
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/obs/span.hpp"
#include "harvest/server/checkpoint_server.hpp"
#include "harvest/server/fleet.hpp"

namespace harvest::server {
namespace {

ServerConfig spanned_config(obs::SpanStore* spans) {
  ServerConfig cfg;
  cfg.capacity_mbps = 10.0;
  cfg.slots = 1;
  cfg.queue_limit = 16;
  cfg.policy = SchedulerPolicy::kFifo;
  cfg.spans = spans;
  return cfg;
}

void drain_all(CheckpointServer& server) {
  while (const auto next = server.next_event_s()) {
    (void)server.advance_to(*next);
  }
}

void drain_all(ServerFleet& fleet) {
  while (const auto next = fleet.next_event_s()) {
    (void)fleet.advance_to(*next);
  }
}

/// The report's breakdown entry for `job_id` (top_k default holds all of
/// these small workloads).
std::optional<obs::SlowTransfer> entry_for(const obs::SpanStore& store,
                                           std::uint64_t job_id) {
  for (const auto& s : store.report().slowest) {
    if (s.job_id == job_id) return s;
  }
  return std::nullopt;
}

TEST(SpanAttribution, FifoSplitsCapacityWaitFromPolicyWait) {
  obs::SpanStore store;
  CheckpointServer server(spanned_config(&store));
  (void)server.submit({1, 500.0}, 0.0);  // serves [0, 50) alone
  (void)server.submit({2, 100.0}, 0.0);  // queued; picked first at t = 50
  (void)server.submit({3, 100.0}, 0.0);  // passed over at t = 50
  drain_all(server);

  const auto t1 = entry_for(store, 1);
  ASSERT_TRUE(t1.has_value());
  EXPECT_DOUBLE_EQ(t1->w.wait_s, 0.0);
  EXPECT_DOUBLE_EQ(t1->w.service_s, 50.0);
  EXPECT_DOUBLE_EQ(t1->w.dilation_s, 0.0);  // slots=1: always solo

  // T2 was never passed over: its whole 50 s wait is lack of capacity.
  const auto t2 = entry_for(store, 2);
  ASSERT_TRUE(t2.has_value());
  EXPECT_DOUBLE_EQ(t2->w.admission_queue_s, 50.0);
  EXPECT_DOUBLE_EQ(t2->w.scheduler_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(t2->w.wait_s, 50.0);

  // T3 lost the t = 50 decision to T2: from that instant its wait is the
  // policy's choice, not capacity.
  const auto t3 = entry_for(store, 3);
  ASSERT_TRUE(t3.has_value());
  EXPECT_DOUBLE_EQ(t3->w.admission_queue_s, 50.0);
  EXPECT_DOUBLE_EQ(t3->w.scheduler_queue_s, 10.0);
  EXPECT_DOUBLE_EQ(t3->w.wait_s, 60.0);

  EXPECT_DOUBLE_EQ(store.max_partition_error_s(), 0.0);
  EXPECT_TRUE(store.verify().ok());
}

TEST(SpanAttribution, StaggerDeferralIsItsOwnPhase) {
  obs::SpanStore store;
  ServerConfig cfg = spanned_config(&store);
  cfg.slots = 4;  // no queueing: any wait must be the staggerer's
  cfg.stagger_window_s = 30.0;
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0}, 0.0);
  const auto second = server.submit({2, 100.0}, 1.0);
  EXPECT_EQ(second.status, SubmitStatus::kDeferred);
  drain_all(server);

  const auto t2 = entry_for(store, 2);
  ASSERT_TRUE(t2.has_value());
  EXPECT_GT(t2->w.stagger_s, 0.0);
  EXPECT_DOUBLE_EQ(t2->w.admission_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(t2->w.scheduler_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(t2->w.wait_s, t2->w.stagger_s);
  EXPECT_DOUBLE_EQ(store.max_partition_error_s(), 0.0);
}

TEST(SpanAttribution, RecoveryClassJumpMarksThePassedOverCheckpoint) {
  obs::SpanStore store;
  CheckpointServer server(spanned_config(&store));
  (void)server.submit({1, 500.0}, 0.0);  // serves [0, 50)
  (void)server.submit({2, 100.0}, 0.0);  // checkpoint, FIFO-first in queue
  ServerTransferRequest recovery;
  recovery.job_id = 3;
  recovery.megabytes = 100.0;
  recovery.kind = TransferKind::kRecovery;
  (void)server.submit(recovery, 1.0);
  drain_all(server);

  // The recovery outranks the earlier checkpoint at t = 50, so the
  // checkpoint's extra 10 s wait is attributed to the scheduler, not to
  // capacity.
  const auto ckpt = entry_for(store, 2);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_DOUBLE_EQ(ckpt->w.admission_queue_s, 50.0);
  EXPECT_DOUBLE_EQ(ckpt->w.scheduler_queue_s, 10.0);
  const auto rec = entry_for(store, 3);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->w.wait_s, 49.0);
  EXPECT_DOUBLE_EQ(rec->w.scheduler_queue_s, 0.0);
  const auto r = store.report();
  EXPECT_EQ(r.by_kind[1].transfers, 1u);
  EXPECT_EQ(r.by_kind[0].transfers, 2u);
  EXPECT_DOUBLE_EQ(store.max_partition_error_s(), 0.0);
}

TEST(SpanAttribution, RemovedTransfersTruncateTheirChains) {
  obs::SpanStore store;
  CheckpointServer server(spanned_config(&store));
  const auto a = server.submit({1, 500.0}, 0.0);
  (void)server.submit({2, 100.0}, 0.0);
  const auto c = server.submit({3, 100.0}, 0.0);
  // T3 evicted while still waiting: its whole 5 s is queue wait, no
  // service phase.
  (void)server.advance_to(5.0);
  ASSERT_TRUE(server.remove(c.id, 5.0).found);
  // T1 evicted mid-service at t = 10 with 100 MB on the wire.
  const auto removal = server.remove(a.id, 10.0);
  ASSERT_TRUE(removal.was_active);
  EXPECT_DOUBLE_EQ(removal.moved_mb, 100.0);
  drain_all(server);

  const auto waiting = entry_for(store, 3);
  ASSERT_TRUE(waiting.has_value());
  EXPECT_FALSE(waiting->completed);
  EXPECT_DOUBLE_EQ(waiting->w.wait_s, 5.0);
  EXPECT_DOUBLE_EQ(waiting->w.service_s, 0.0);
  const auto active = entry_for(store, 1);
  ASSERT_TRUE(active.has_value());
  EXPECT_FALSE(active->completed);
  EXPECT_DOUBLE_EQ(active->w.service_s, 10.0);
  EXPECT_DOUBLE_EQ(active->w.solo_s, 10.0);  // 100 MB moved / 10 MB/s
  // T2 inherits the freed slot at t = 10 and completes.
  const auto survivor = entry_for(store, 2);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_TRUE(survivor->completed);
  EXPECT_DOUBLE_EQ(survivor->w.wait_s, 10.0);
  const auto r = store.report();
  EXPECT_EQ(r.total.transfers, 3u);
  EXPECT_EQ(r.total.interrupted, 2u);
  EXPECT_EQ(r.total.completed, 1u);
  EXPECT_DOUBLE_EQ(store.max_partition_error_s(), 0.0);
  EXPECT_TRUE(store.verify().ok());
}

TEST(SpanAttribution, RejectionRecordsAZeroLengthSpan) {
  obs::SpanStore store;
  ServerConfig cfg = spanned_config(&store);
  cfg.queue_limit = 0;
  CheckpointServer server(cfg);
  (void)server.submit({1, 500.0}, 0.0);
  const auto bounced = server.submit({2, 100.0}, 1.0);
  EXPECT_EQ(bounced.status, SubmitStatus::kRejected);
  drain_all(server);
  EXPECT_EQ(store.report().total.rejected, 1u);
  bool saw_rejected = false;
  for (const auto& s : store.spans()) {
    if (s.phase == obs::SpanPhase::kRejected) {
      saw_rejected = true;
      EXPECT_EQ(s.job_id, 2u);
      EXPECT_DOUBLE_EQ(s.duration_s(), 0.0);
    }
  }
  EXPECT_TRUE(saw_rejected);
}

// Property sweep: whatever the policy, staggering, traffic mix, and
// mid-flight evictions do, every attributed transfer's phases partition
// its wait to 1e-9 and the span tree stays well-formed.
TEST(SpanAttribution, PartitionHoldsAcrossPolicyStaggerClassSweep) {
  const SchedulerPolicy policies[] = {SchedulerPolicy::kFifo,
                                      SchedulerPolicy::kFair,
                                      SchedulerPolicy::kUrgency};
  for (const auto policy : policies) {
    for (const double window : {0.0, 45.0}) {
      obs::SpanStore store;
      ServerConfig cfg = spanned_config(&store);
      cfg.policy = policy;
      cfg.slots = 2;
      cfg.queue_limit = 8;  // small enough that the sweep also rejects
      cfg.stagger_window_s = window;
      CheckpointServer server(cfg);
      std::vector<TransferId> ids;
      std::uint64_t rejected = 0;
      for (std::uint64_t i = 0; i < 40; ++i) {
        ServerTransferRequest req;
        req.job_id = i;
        req.megabytes = 50.0 + 37.0 * static_cast<double>(i % 5);
        req.kind =
            i % 3 == 0 ? TransferKind::kRecovery : TransferKind::kCheckpoint;
        req.predicted_remaining_s =
            i % 4 == 0 ? 60.0 : std::numeric_limits<double>::infinity();
        // Four near-simultaneous submissions per wave to provoke storms.
        const auto out =
            server.submit(req, static_cast<double>(i / 4) * 10.0);
        if (out.status == SubmitStatus::kRejected) {
          ++rejected;
        } else {
          ids.push_back(out.id);
        }
      }
      // Evict a scattering of transfers wherever they are by now.
      for (std::size_t i = 0; i < ids.size(); i += 5) {
        (void)server.remove(ids[i], 120.0);
      }
      drain_all(server);

      const auto r = store.report();
      EXPECT_LE(r.max_partition_error_s, 1e-9)
          << to_string(policy) << " window=" << window;
      EXPECT_TRUE(store.verify().ok());
      EXPECT_EQ(r.total.transfers + r.total.rejected, 40u);
      EXPECT_EQ(r.total.rejected, rejected);
      EXPECT_EQ(r.total.transfers,
                r.total.completed + r.total.interrupted);
      // The span ledger and the server ledger agree on bytes moved.
      EXPECT_NEAR(r.total.moved_mb, server.stats().moved_mb, 1e-9);
      if (window > 0.0) EXPECT_GT(r.total.stagger_s, 0.0);
    }
  }
}

TEST(SpanAttribution, FleetStampsShardsIntoOneStore) {
  obs::SpanStore store;
  FleetConfig fc;
  fc.shards = 4;
  fc.routing = RoutingPolicy::kStatic;
  fc.server.capacity_mbps = 10.0;
  fc.server.slots = 1;
  ServerFleet fleet(fc, /*seed=*/0x5eed, nullptr, &store);
  for (std::uint64_t i = 0; i < 16; ++i) {
    ServerTransferRequest req;
    req.job_id = i;
    req.megabytes = 120.0;
    req.machine_index = static_cast<std::size_t>(i);  // round-robin shards
    (void)fleet.submit(req, static_cast<double>(i));
  }
  drain_all(fleet);
  const auto r = store.report();
  EXPECT_EQ(r.total.transfers, 16u);
  ASSERT_EQ(r.by_shard.size(), 4u);
  std::uint64_t sum = 0;
  for (const auto& shard : r.by_shard) {
    EXPECT_EQ(shard.transfers, 4u);  // static routing: i % 4
    sum += shard.transfers;
  }
  EXPECT_EQ(sum, r.total.transfers);
  EXPECT_LE(r.max_partition_error_s, 1e-9);
  EXPECT_TRUE(store.verify().ok());
}

}  // namespace
}  // namespace harvest::server
