// CheckpointServer discrete-event behavior: service rates, FIFO/urgency
// ordering through a contended slot pool, the fair policy's equivalence
// with net::SharedLink::resolve, admission rejection, interruption
// pro-rating, stagger, byte conservation, and tracer output.
#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/net/shared_link.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/server/checkpoint_server.hpp"

namespace harvest::server {
namespace {

ServerConfig basic_config() {
  ServerConfig cfg;
  cfg.capacity_mbps = 10.0;
  cfg.slots = 2;
  cfg.queue_limit = 16;
  cfg.policy = SchedulerPolicy::kFifo;
  return cfg;
}

/// Drain the server until it goes idle, collecting every completion.
std::vector<ServerCompletion> drain_all(CheckpointServer& server) {
  std::vector<ServerCompletion> all;
  while (const auto next = server.next_event_s()) {
    for (auto& done : server.advance_to(*next)) all.push_back(done);
  }
  return all;
}

TEST(CheckpointServer, SoloTransferRunsAtFullCapacity) {
  CheckpointServer server(basic_config());
  const auto outcome = server.submit({/*job_id=*/7, /*megabytes=*/500.0}, 0.0);
  EXPECT_EQ(outcome.status, SubmitStatus::kStarted);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job_id, 7u);
  EXPECT_DOUBLE_EQ(done[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(done[0].finish_s, 50.0);  // 500 MB / 10 MB/s
  EXPECT_DOUBLE_EQ(done[0].wait_s(), 0.0);
}

TEST(CheckpointServer, ConcurrentTransfersShareThePipe) {
  CheckpointServer server(basic_config());
  (void)server.submit({1, 100.0}, 0.0);
  (void)server.submit({2, 100.0}, 0.0);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 2u);
  // Both in service at 5 MB/s each: both finish at t = 20, not 10.
  EXPECT_DOUBLE_EQ(done[0].finish_s, 20.0);
  EXPECT_DOUBLE_EQ(done[1].finish_s, 20.0);
}

TEST(CheckpointServer, FifoQueueReleasesInArrivalOrder) {
  auto cfg = basic_config();
  cfg.slots = 1;
  CheckpointServer server(cfg);
  EXPECT_EQ(server.submit({1, 100.0}, 0.0).status, SubmitStatus::kStarted);
  EXPECT_EQ(server.submit({2, 100.0}, 1.0).status, SubmitStatus::kQueued);
  EXPECT_EQ(server.submit({3, 100.0}, 2.0).status, SubmitStatus::kQueued);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].job_id, 1u);
  EXPECT_EQ(done[1].job_id, 2u);
  EXPECT_EQ(done[2].job_id, 3u);
  // One at a time at 10 MB/s: finishes at 10, 20, 30.
  EXPECT_DOUBLE_EQ(done[0].finish_s, 10.0);
  EXPECT_DOUBLE_EQ(done[1].finish_s, 20.0);
  EXPECT_DOUBLE_EQ(done[2].finish_s, 30.0);
  // Waits: job2 queued 1→10, job3 queued 2→20.
  EXPECT_DOUBLE_EQ(done[1].wait_s(), 9.0);
  EXPECT_DOUBLE_EQ(done[2].wait_s(), 18.0);
}

TEST(CheckpointServer, UrgencyJumpsTheQueue) {
  auto cfg = basic_config();
  cfg.slots = 1;
  cfg.policy = SchedulerPolicy::kUrgency;
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0, /*predicted_remaining_s=*/1e6}, 0.0);
  ServerTransferRequest patient{2, 100.0, 5000.0};
  ServerTransferRequest dying{3, 100.0, 60.0};
  (void)server.submit(patient, 1.0);
  (void)server.submit(dying, 2.0);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 3u);
  // Job 3's machine is predicted to die first: it is served before job 2
  // even though it arrived later.
  EXPECT_EQ(done[0].job_id, 1u);
  EXPECT_EQ(done[1].job_id, 3u);
  EXPECT_EQ(done[2].job_id, 2u);
}

TEST(CheckpointServer, FairPolicyMatchesSharedLinkResolve) {
  // The fair policy is processor sharing with the same semantics as
  // net::SharedLink::resolve; pushing the same open-loop arrivals through
  // both must give identical finish times.
  const std::vector<net::TransferRequest> requests = {
      {0.0, 40.0}, {1.0, 60.0}, {2.0, 20.0}, {3.0, 80.0}, {100.0, 50.0}};
  const net::SharedLink link(4.0);
  const auto offline = link.resolve(requests);

  auto cfg = basic_config();
  cfg.capacity_mbps = 4.0;
  cfg.policy = SchedulerPolicy::kFair;
  CheckpointServer server(cfg);
  std::map<std::uint64_t, double> finish_by_job;
  std::size_t next_submit = 0;
  while (next_submit < requests.size() || server.next_event_s()) {
    const double arrival = next_submit < requests.size()
                               ? requests[next_submit].arrival_s
                               : std::numeric_limits<double>::infinity();
    const auto next_event = server.next_event_s();
    if (next_event.has_value() && *next_event <= arrival) {
      for (const auto& done : server.advance_to(*next_event)) {
        finish_by_job[done.job_id] = done.finish_s;
      }
      continue;
    }
    (void)server.submit(
        {next_submit, requests[next_submit].megabytes}, arrival);
    ++next_submit;
  }
  ASSERT_EQ(finish_by_job.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_NEAR(finish_by_job.at(i), offline[i].finish_s, 1e-9) << "i=" << i;
  }
}

TEST(CheckpointServer, RejectsWhenQueueFull) {
  auto cfg = basic_config();
  cfg.slots = 1;
  cfg.queue_limit = 1;
  CheckpointServer server(cfg);
  EXPECT_EQ(server.submit({1, 100.0}, 0.0).status, SubmitStatus::kStarted);
  EXPECT_EQ(server.submit({2, 100.0}, 0.0).status, SubmitStatus::kQueued);
  EXPECT_EQ(server.submit({3, 100.0}, 0.0).status, SubmitStatus::kRejected);
  EXPECT_EQ(server.stats().rejected, 1u);
  // The rejected transfer never shows up in the completions.
  const auto done = drain_all(server);
  EXPECT_EQ(done.size(), 2u);
}

TEST(CheckpointServer, RemoveProRatesBytesOnTheWire) {
  CheckpointServer server(basic_config());
  const auto outcome = server.submit({1, 100.0}, 0.0);
  // Interrupt halfway: 5 s at 10 MB/s = 50 MB on the wire.
  const auto removal = server.remove(outcome.id, 5.0);
  EXPECT_TRUE(removal.found);
  EXPECT_TRUE(removal.was_active);
  EXPECT_NEAR(removal.moved_mb, 50.0, 1e-9);
  EXPECT_EQ(server.stats().interrupted, 1u);
  EXPECT_NEAR(server.stats().moved_mb, 50.0, 1e-9);
  EXPECT_TRUE(drain_all(server).empty());
}

TEST(CheckpointServer, RemoveWaitingTransferMovesNothing) {
  auto cfg = basic_config();
  cfg.slots = 1;
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0}, 0.0);
  const auto queued = server.submit({2, 100.0}, 0.0);
  const auto removal = server.remove(queued.id, 3.0);
  EXPECT_TRUE(removal.found);
  EXPECT_FALSE(removal.was_active);
  EXPECT_DOUBLE_EQ(removal.moved_mb, 0.0);
  const auto removal2 = server.remove(9999, 4.0);
  EXPECT_FALSE(removal2.found);
}

TEST(CheckpointServer, RemovalFreesTheSlotForTheQueue) {
  auto cfg = basic_config();
  cfg.slots = 1;
  CheckpointServer server(cfg);
  const auto first = server.submit({1, 1000.0}, 0.0);
  (void)server.submit({2, 100.0}, 0.0);
  (void)server.remove(first.id, 10.0);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job_id, 2u);
  // Started at the removal instant, 10 s of service.
  EXPECT_DOUBLE_EQ(done[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(done[0].finish_s, 20.0);
}

TEST(CheckpointServer, StaggerDefersBurstsDeterministically) {
  auto cfg = basic_config();
  cfg.slots = 8;
  cfg.stagger_window_s = 30.0;
  cfg.seed = 77;
  auto run = [&cfg] {
    CheckpointServer server(cfg);
    (void)server.submit({0, 10.0}, 0.0);
    std::vector<SubmitStatus> statuses;
    for (std::uint64_t j = 1; j < 5; ++j) {
      statuses.push_back(server.submit({j, 10.0}, 0.1 * (double)j).status);
    }
    auto done = drain_all(server);
    return std::make_pair(statuses, done);
  };
  const auto [statuses_a, done_a] = run();
  const auto [statuses_b, done_b] = run();
  // The burst after the first submission gets deferred by the staggerer.
  for (const auto s : statuses_a) EXPECT_EQ(s, SubmitStatus::kDeferred);
  ASSERT_EQ(done_a.size(), done_b.size());
  for (std::size_t i = 0; i < done_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(done_a[i].finish_s, done_b[i].finish_s) << "i=" << i;
    EXPECT_EQ(done_a[i].job_id, done_b[i].job_id) << "i=" << i;
  }
  // Deferred transfers still start only after their jitter elapses.
  for (const auto& d : done_a) {
    if (d.job_id == 0) continue;
    EXPECT_GT(d.start_s, d.arrival_s);
  }
}

TEST(CheckpointServer, StatsConserveBytes) {
  auto cfg = basic_config();
  cfg.slots = 2;
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0}, 0.0);
  (void)server.submit({2, 200.0}, 0.0);
  const auto doomed = server.submit({3, 400.0}, 0.0);
  const auto removal = server.remove(doomed.id, 12.0);
  const auto done = drain_all(server);
  double completed_mb = 0.0;
  for (const auto& d : done) completed_mb += d.megabytes;
  EXPECT_NEAR(server.stats().moved_mb, completed_mb + removal.moved_mb, 1e-9);
  EXPECT_EQ(server.stats().completed, done.size());
  EXPECT_EQ(server.stats().submitted, 3u);
}

TEST(CheckpointServer, TracerEventBytesSumToMovedMb) {
  obs::EventTracer tracer(0);  // unbounded
  auto cfg = basic_config();
  cfg.slots = 1;
  cfg.tracer = &tracer;
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0}, 0.0);
  const auto second = server.submit({2, 300.0}, 0.0);
  // Advance exactly to job 1's completion: job 2 then enters service.
  ASSERT_EQ(server.advance_to(10.0).size(), 1u);
  (void)server.remove(second.id, 25.0);  // 15 s into job 2: 150 MB moved
  double traced_mb = 0.0;
  for (const auto& e : tracer.events()) {
    if (e.name == "server.transfer" || e.name == "server.transfer.interrupted") {
      traced_mb += e.value;
      EXPECT_EQ(e.tid, kServerTraceTrack);
      EXPECT_EQ(e.category, "server");
    }
  }
  EXPECT_NEAR(traced_mb, server.stats().moved_mb, 1e-9);
  EXPECT_NEAR(traced_mb, 250.0, 1e-9);
}

TEST(CheckpointServer, ZeroSizeTransferCompletesImmediately) {
  CheckpointServer server(basic_config());
  (void)server.submit({1, 0.0}, 5.0);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].finish_s, 5.0);
  EXPECT_DOUBLE_EQ(done[0].service_s(), 0.0);
}

ServerTransferRequest classed(std::uint64_t job_id, double mb,
                              TransferKind kind) {
  ServerTransferRequest r;
  r.job_id = job_id;
  r.megabytes = mb;
  r.kind = kind;
  return r;
}

TEST(CheckpointServer, PerClassStatsSplitTheLedger) {
  auto cfg = basic_config();
  cfg.slots = 1;
  CheckpointServer server(cfg);
  (void)server.submit(classed(1, 100.0, TransferKind::kCheckpoint), 0.0);
  (void)server.submit(classed(2, 100.0, TransferKind::kCheckpoint), 0.0);
  (void)server.submit(classed(3, 100.0, TransferKind::kRecovery), 0.0);
  (void)drain_all(server);
  const auto& stats = server.stats();
  EXPECT_EQ(stats.of(TransferKind::kCheckpoint).submitted, 2u);
  EXPECT_EQ(stats.of(TransferKind::kRecovery).submitted, 1u);
  EXPECT_EQ(stats.of(TransferKind::kCheckpoint).started, 2u);
  EXPECT_EQ(stats.of(TransferKind::kRecovery).started, 1u);
  // The class slices partition the totals.
  EXPECT_EQ(stats.of(TransferKind::kCheckpoint).submitted +
                stats.of(TransferKind::kRecovery).submitted,
            stats.submitted);
  EXPECT_NEAR(stats.of(TransferKind::kCheckpoint).total_wait_s +
                  stats.of(TransferKind::kRecovery).total_wait_s,
              stats.total_wait_s, 1e-9);
  // Job 1 serves 0→10; the recovery jumps job 2: waits 10 vs 20.
  EXPECT_DOUBLE_EQ(stats.of(TransferKind::kRecovery).mean_wait_s(), 10.0);
  EXPECT_DOUBLE_EQ(stats.of(TransferKind::kCheckpoint).mean_wait_s(), 10.0);
}

TEST(CheckpointServer, RecoveryReserveRejectsCheckpointsFirst) {
  auto cfg = basic_config();
  cfg.slots = 1;
  cfg.queue_limit = 2;
  cfg.recovery_queue_reserve = 1;
  CheckpointServer server(cfg);
  (void)server.submit(classed(1, 100.0, TransferKind::kCheckpoint), 0.0);
  EXPECT_EQ(server.submit(classed(2, 100.0, TransferKind::kCheckpoint), 0.0)
                .status,
            SubmitStatus::kQueued);
  // One queue slot left, and it is reserved: checkpoint bounces, recovery
  // still gets in.
  EXPECT_EQ(server.submit(classed(3, 100.0, TransferKind::kCheckpoint), 0.0)
                .status,
            SubmitStatus::kRejected);
  EXPECT_EQ(server.submit(classed(4, 100.0, TransferKind::kRecovery), 0.0)
                .status,
            SubmitStatus::kQueued);
  EXPECT_EQ(server.stats().of(TransferKind::kCheckpoint).rejected, 1u);
  EXPECT_EQ(server.stats().of(TransferKind::kRecovery).rejected, 0u);
}

TEST(CheckpointServer, CompletionsCarryTheTrafficClass) {
  CheckpointServer server(basic_config());
  (void)server.submit(classed(1, 50.0, TransferKind::kRecovery), 0.0);
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].kind, TransferKind::kRecovery);
}

TEST(ServerConfigValidate, FairPolicyIgnoresSlots) {
  auto cfg = basic_config();
  cfg.policy = SchedulerPolicy::kFair;
  cfg.slots = 3;
  const auto v = validate(cfg);
  EXPECT_EQ(v.effective.slots, 0u);
  ASSERT_EQ(v.warnings.size(), 1u);
  EXPECT_NE(v.warnings[0].find("fair"), std::string::npos);
  // The constructor enforces the effective config: the fair server runs
  // processor-sharing even though the template said slots=3.
  CheckpointServer server(cfg);
  (void)server.submit({1, 100.0}, 0.0);
  (void)server.submit({2, 100.0}, 0.0);
  (void)server.submit({3, 100.0}, 0.0);
  (void)server.submit({4, 100.0}, 0.0);
  EXPECT_EQ(server.active_count(), 4u);  // nobody waits for a slot
}

TEST(ServerConfigValidate, ClampsReserveAndFlagsStrayHorizon) {
  auto cfg = basic_config();
  cfg.queue_limit = 4;
  cfg.recovery_queue_reserve = 10;
  const auto v = validate(cfg);
  EXPECT_EQ(v.effective.recovery_queue_reserve, 4u);
  ASSERT_FALSE(v.warnings.empty());

  auto cfg2 = basic_config();  // fifo
  cfg2.urgency_horizon_s = 42.0;
  const auto v2 = validate(cfg2);
  ASSERT_EQ(v2.warnings.size(), 1u);
  EXPECT_NE(v2.warnings[0].find("urgency_horizon_s"), std::string::npos);

  EXPECT_TRUE(validate(basic_config()).warnings.empty());
}

TEST(ServerStats, AggregationAddsCountersAndMaxesPeaks) {
  ServerStats a;
  a.submitted = 10;
  a.completed = 8;
  a.moved_mb = 100.0;
  a.total_wait_s = 40.0;
  a.started = 10;
  a.peak_queue_depth = 3;
  a.peak_active = 2;
  a.of(TransferKind::kRecovery).submitted = 4;
  ServerStats b;
  b.submitted = 5;
  b.completed = 5;
  b.moved_mb = 50.0;
  b.total_wait_s = 10.0;
  b.started = 5;
  b.peak_queue_depth = 1;
  b.peak_active = 4;
  b.of(TransferKind::kRecovery).submitted = 1;
  a += b;
  EXPECT_EQ(a.submitted, 15u);
  EXPECT_EQ(a.completed, 13u);
  EXPECT_DOUBLE_EQ(a.moved_mb, 150.0);
  EXPECT_DOUBLE_EQ(a.total_wait_s, 50.0);
  EXPECT_EQ(a.peak_queue_depth, 3u);  // max, not sum
  EXPECT_EQ(a.peak_active, 4u);
  EXPECT_EQ(a.of(TransferKind::kRecovery).submitted, 5u);
}

TEST(CheckpointServer, RejectsBadInput) {
  CheckpointServer server(basic_config());
  EXPECT_THROW((void)server.submit({1, -5.0}, 0.0), std::invalid_argument);
  (void)server.submit({1, 10.0}, 10.0);
  EXPECT_THROW((void)server.submit({2, 10.0}, 5.0), std::invalid_argument);
  auto cfg = basic_config();
  cfg.capacity_mbps = 0.0;
  EXPECT_THROW(CheckpointServer{cfg}, std::invalid_argument);
  auto cfg2 = basic_config();
  cfg2.slots = 0;  // only legal for the fair policy
  EXPECT_THROW(CheckpointServer{cfg2}, std::invalid_argument);
  cfg2.policy = SchedulerPolicy::kFair;
  EXPECT_NO_THROW(CheckpointServer{cfg2});
}

TEST(CheckpointServer, SubUlpResidualCompletesInsteadOfSpinning) {
  // Regression: at a large clock, remaining bytes whose wire time is below
  // one ulp of the clock used to spin drain_to forever — the completion
  // instant `clock + remaining/share` rounded back onto the clock, so
  // integrate_to advanced nothing and the transfer never crossed the byte
  // tolerance. Long-horizon pool runs (sim time past ~2^18 s) hit this
  // through ordinary rounding residue; the finish test now absorbs
  // anything below the clock's resolution.
  CheckpointServer server(basic_config());
  const double t0 = 400000.0;  // ulp(t0) ~ 5.8e-11 s; solo share = 10 MB/s
  // Wire time 2e-11 s: below half an ulp, so t0 + wire == t0 exactly.
  const auto outcome = server.submit({/*job_id=*/1, /*megabytes=*/2e-10}, t0);
  EXPECT_EQ(outcome.status, SubmitStatus::kStarted);
  const auto next = server.next_event_s();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, t0);  // the finish instant is not representable past t0
  const auto done = drain_all(server);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job_id, 1u);
  EXPECT_EQ(done[0].finish_s, t0);
}

}  // namespace
}  // namespace harvest::server
