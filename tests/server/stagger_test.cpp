// Storm staggerer: isolated requests pass through untouched, bursts are
// jittered inside the window, and everything is deterministic per seed.
#include <gtest/gtest.h>

#include "harvest/server/stagger.hpp"

namespace harvest::server {
namespace {

TEST(StormStaggerer, FirstAndIsolatedRequestsAreNotDeferred) {
  StormStaggerer staggerer(10.0, 42);
  EXPECT_DOUBLE_EQ(staggerer.defer_s(0.0), 0.0);
  // Next arrival well past the window: no storm, no defer.
  EXPECT_DOUBLE_EQ(staggerer.defer_s(100.0), 0.0);
  EXPECT_DOUBLE_EQ(staggerer.defer_s(250.0), 0.0);
  EXPECT_EQ(staggerer.staggered_count(), 0u);
}

TEST(StormStaggerer, BurstArrivalsGetJitterInsideWindow) {
  StormStaggerer staggerer(10.0, 42);
  (void)staggerer.defer_s(100.0);
  // Three more requests within the window of their predecessor: all jittered.
  for (int i = 1; i <= 3; ++i) {
    const double defer = staggerer.defer_s(100.0 + 0.1 * i);
    EXPECT_GT(defer, 0.0) << "i=" << i;
    EXPECT_LE(defer, 10.0) << "i=" << i;
  }
  EXPECT_EQ(staggerer.staggered_count(), 3u);
}

TEST(StormStaggerer, DeterministicPerSeed) {
  StormStaggerer a(30.0, 7);
  StormStaggerer b(30.0, 7);
  StormStaggerer c(30.0, 8);
  bool any_difference = false;
  for (int i = 0; i < 20; ++i) {
    const double t = static_cast<double>(i);
    const double da = a.defer_s(t);
    const double db = b.defer_s(t);
    const double dc = c.defer_s(t);
    EXPECT_DOUBLE_EQ(da, db) << "i=" << i;
    any_difference |= da != dc;
  }
  EXPECT_TRUE(any_difference) << "different seeds should jitter differently";
}

TEST(StormStaggerer, ZeroWindowDisables) {
  StormStaggerer staggerer(0.0, 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(staggerer.defer_s(0.001 * i), 0.0);
  }
  EXPECT_EQ(staggerer.staggered_count(), 0u);
}

}  // namespace
}  // namespace harvest::server
