#include "harvest/fit/mle_gamma.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/gamma.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/numerics/special_functions.hpp"

namespace harvest::fit {
namespace {

std::vector<double> gamma_sample(double shape, double scale, std::size_t n,
                                 std::uint64_t seed) {
  const dist::GammaDist g(shape, scale);
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.sample(rng);
  return xs;
}

TEST(GammaMle, RecoversHeavyShape) {
  const auto xs = gamma_sample(0.6, 2000.0, 30000, 1);
  const auto g = fit_gamma_mle(xs);
  EXPECT_NEAR(g.shape() / 0.6, 1.0, 0.03);
  EXPECT_NEAR(g.scale() / 2000.0, 1.0, 0.04);
}

TEST(GammaMle, RecoversLightShape) {
  const auto xs = gamma_sample(4.0, 50.0, 30000, 2);
  const auto g = fit_gamma_mle(xs);
  EXPECT_NEAR(g.shape() / 4.0, 1.0, 0.03);
  EXPECT_NEAR(g.scale() / 50.0, 1.0, 0.04);
}

TEST(GammaMle, SatisfiesScoreEquation) {
  const auto xs = gamma_sample(1.3, 700.0, 3000, 3);
  const auto g = fit_gamma_mle(xs);
  double mean = 0.0;
  double mean_log = 0.0;
  for (double x : xs) {
    mean += x;
    mean_log += std::log(x);
  }
  mean /= static_cast<double>(xs.size());
  mean_log /= static_cast<double>(xs.size());
  // ln k − ψ(k) = ln(mean) − mean(ln x)
  EXPECT_NEAR(std::log(g.shape()) - numerics::digamma(g.shape()),
              std::log(mean) - mean_log, 1e-9);
  // Scale ties to the mean exactly.
  EXPECT_NEAR(g.shape() * g.scale(), mean, 1e-9);
}

TEST(GammaMle, MaximizesLikelihoodLocally) {
  const auto xs = gamma_sample(0.8, 1000.0, 800, 4);
  const auto g = fit_gamma_mle(xs);
  const double best = g.log_likelihood(xs);
  EXPECT_LT(dist::GammaDist(g.shape() * 1.1, g.scale()).log_likelihood(xs),
            best);
  EXPECT_LT(dist::GammaDist(g.shape() * 0.9, g.scale()).log_likelihood(xs),
            best);
  EXPECT_LT(dist::GammaDist(g.shape(), g.scale() * 1.1).log_likelihood(xs),
            best);
}

TEST(GammaMle, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_gamma_mle(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_gamma_mle(std::vector<double>{5.0, 5.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_gamma_mle(std::vector<double>{-2.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fit
