#include "harvest/fit/em_hyperexp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

std::vector<double> bimodal_sample(std::size_t n, std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.6) ? rng.exponential(1.0 / 300.0)
                              : rng.exponential(1.0 / 28800.0);
  }
  return xs;
}

TEST(EmHyperexp, LogLikelihoodIsMonotone) {
  const auto xs = bimodal_sample(2000, 11);
  const auto r = fit_hyperexp_em(xs, 2);
  ASSERT_GE(r.loglik_trace.size(), 2u);
  for (std::size_t i = 1; i < r.loglik_trace.size(); ++i) {
    EXPECT_GE(r.loglik_trace[i], r.loglik_trace[i - 1] - 1e-7)
        << "iteration " << i;
  }
}

TEST(EmHyperexp, RecoversBimodalStructure) {
  const auto xs = bimodal_sample(20000, 12);
  const auto r = fit_hyperexp_em(xs, 2);
  EXPECT_TRUE(r.converged);
  auto rates = r.model.rates();
  auto weights = r.model.weights();
  // Order phases fast-to-slow.
  if (rates[0] < rates[1]) {
    std::swap(rates[0], rates[1]);
    std::swap(weights[0], weights[1]);
  }
  EXPECT_NEAR(1.0 / rates[0] / 300.0, 1.0, 0.15);
  EXPECT_NEAR(1.0 / rates[1] / 28800.0, 1.0, 0.15);
  EXPECT_NEAR(weights[0], 0.6, 0.05);
}

TEST(EmHyperexp, MeanIsPreservedApproximately) {
  const auto xs = bimodal_sample(10000, 13);
  double sample_mean = 0.0;
  for (double x : xs) sample_mean += x;
  sample_mean /= static_cast<double>(xs.size());
  const auto r = fit_hyperexp_em(xs, 2);
  EXPECT_NEAR(r.model.mean() / sample_mean, 1.0, 0.02);
}

TEST(EmHyperexp, SinglePhaseMatchesExponentialMle) {
  const auto xs = bimodal_sample(5000, 14);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  const auto r = fit_hyperexp_em(xs, 1);
  EXPECT_NEAR(1.0 / r.model.rates()[0] / mean, 1.0, 1e-6);
}

TEST(EmHyperexp, BeatsExponentialOnBimodalData) {
  const auto xs = bimodal_sample(5000, 15);
  const auto h2 = fit_hyperexp_em(xs, 2);
  const auto h1 = fit_hyperexp_em(xs, 1);
  EXPECT_GT(h2.log_likelihood, h1.log_likelihood + 100.0);
}

TEST(EmHyperexp, ThreePhasesAtLeastAsGoodAsTwo) {
  const auto xs = bimodal_sample(3000, 16);
  const auto h2 = fit_hyperexp_em(xs, 2);
  const auto h3 = fit_hyperexp_em(xs, 3);
  EXPECT_GE(h3.log_likelihood, h2.log_likelihood - 1.0);
}

TEST(EmHyperexp, Fits25ObservationsLikeThePaper) {
  const auto xs = bimodal_sample(25, 17);
  const auto r2 = fit_hyperexp_em(xs, 2);
  const auto r3 = fit_hyperexp_em(xs, 3);
  EXPECT_EQ(r2.model.phases(), 2u);
  EXPECT_EQ(r3.model.phases(), 3u);
  EXPECT_TRUE(std::isfinite(r2.log_likelihood));
  EXPECT_TRUE(std::isfinite(r3.log_likelihood));
}

TEST(EmHyperexp, HandlesZerosViaFloor) {
  std::vector<double> xs = bimodal_sample(100, 18);
  xs[0] = 0.0;
  xs[50] = 0.0;
  const auto r = fit_hyperexp_em(xs, 2);
  EXPECT_TRUE(std::isfinite(r.log_likelihood));
}

TEST(EmHyperexp, RejectsBadInputs) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_hyperexp_em(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)fit_hyperexp_em(xs, 4), std::invalid_argument);
  EXPECT_THROW((void)fit_hyperexp_em(std::vector<double>{-1.0, 1.0}, 1),
               std::invalid_argument);
}

TEST(EmHyperexp, RestartsNeverWorsenLikelihood) {
  const auto xs = bimodal_sample(400, 21);
  EmOptions single;
  single.restarts = 1;
  EmOptions multi;
  multi.restarts = 6;
  const auto a = fit_hyperexp_em(xs, 3, single);
  const auto b = fit_hyperexp_em(xs, 3, multi);
  EXPECT_GE(b.log_likelihood, a.log_likelihood - 1e-9);
}

TEST(EmHyperexp, RestartsAreDeterministicGivenSeed) {
  const auto xs = bimodal_sample(300, 22);
  EmOptions opts;
  opts.restarts = 4;
  const auto a = fit_hyperexp_em(xs, 2, opts);
  const auto b = fit_hyperexp_em(xs, 2, opts);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.model.rates(), b.model.rates());
}

TEST(EmHyperexp, RejectsZeroRestarts) {
  const auto xs = bimodal_sample(50, 23);
  EmOptions opts;
  opts.restarts = 0;
  EXPECT_THROW((void)fit_hyperexp_em(xs, 2, opts), std::invalid_argument);
}

TEST(EmHyperexp, RespectsIterationCap) {
  EmOptions opts;
  opts.max_iterations = 3;
  const auto xs = bimodal_sample(500, 19);
  const auto r = fit_hyperexp_em(xs, 2, opts);
  EXPECT_LE(r.iterations, 3);
}

}  // namespace
}  // namespace harvest::fit
