#include "harvest/fit/weibull_plot.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

std::vector<double> weibull_sample(double shape, double scale, std::size_t n,
                                   std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.weibull(shape, scale);
  return xs;
}

TEST(WeibullPlot, RecoversParametersWithHighRSquared) {
  const auto xs = weibull_sample(0.43, 3409.0, 5000, 1);
  const auto fit = fit_weibull_plot(xs);
  EXPECT_NEAR(fit.model.shape() / 0.43, 1.0, 0.05);
  EXPECT_NEAR(fit.model.scale() / 3409.0, 1.0, 0.10);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(WeibullPlot, AgreesWithMleOnCleanData) {
  const auto xs = weibull_sample(0.7, 1200.0, 2000, 2);
  const auto plot = fit_weibull_plot(xs);
  const auto mle = fit_weibull_mle(xs);
  EXPECT_NEAR(plot.model.shape() / mle.shape(), 1.0, 0.08);
  EXPECT_NEAR(plot.model.scale() / mle.scale(), 1.0, 0.08);
}

TEST(WeibullPlot, LowRSquaredOnNonWeibullData) {
  // Strongly bimodal data is NOT Weibull; R² should drop visibly below the
  // clean-Weibull level.
  numerics::Rng rng(3);
  std::vector<double> xs(3000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.5) ? rng.uniform(9.0, 11.0)
                              : rng.uniform(9000.0, 11000.0);
  }
  const auto bimodal = fit_weibull_plot(xs);
  const auto clean =
      fit_weibull_plot(weibull_sample(0.5, 1000.0, 3000, 4));
  EXPECT_LT(bimodal.r_squared, clean.r_squared - 0.05);
}

TEST(WeibullPlot, WorksAtPaperTrainingSize) {
  const auto xs = weibull_sample(0.43, 3409.0, 25, 5);
  const auto fit = fit_weibull_plot(xs);
  EXPECT_GT(fit.model.shape(), 0.15);
  EXPECT_LT(fit.model.shape(), 1.2);
}

TEST(WeibullPlot, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_weibull_plot(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_weibull_plot(std::vector<double>{3.0, 3.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_weibull_plot(std::vector<double>{-1.0, 1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fit
