#include "harvest/fit/model_select.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

std::vector<double> weibull_sample(std::size_t n, std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  return xs;
}

TEST(ModelSelect, FitsPaperMenu) {
  const auto xs = weibull_sample(500, 1);
  const auto fits = fit_all(xs);
  ASSERT_EQ(fits.size(), 4u);
  EXPECT_NE(find_family(fits, "exponential"), nullptr);
  EXPECT_NE(find_family(fits, "weibull"), nullptr);
  EXPECT_NE(find_family(fits, "hyperexp2"), nullptr);
  EXPECT_NE(find_family(fits, "hyperexp3"), nullptr);
}

TEST(ModelSelect, WeibullWinsOnWeibullData) {
  const auto xs = weibull_sample(3000, 2);
  const auto fits = fit_all(xs);
  EXPECT_EQ(best_by_aic(fits).family, "weibull");
  EXPECT_EQ(best_by_bic(fits).family, "weibull");
}

TEST(ModelSelect, ExponentialIsWorstOnHeavyTailedData) {
  const auto xs = weibull_sample(3000, 3);
  const auto fits = fit_all(xs);
  const auto* exp_fit = find_family(fits, "exponential");
  ASSERT_NE(exp_fit, nullptr);
  for (const auto& f : fits) {
    if (f.family == "exponential") continue;
    EXPECT_GT(exp_fit->aic, f.aic) << f.family;
    EXPECT_GT(exp_fit->ks_statistic, f.ks_statistic) << f.family;
  }
}

TEST(ModelSelect, AicOrdersByPenalizedLikelihood) {
  const auto xs = weibull_sample(200, 4);
  const auto fits = fit_all(xs);
  for (const auto& f : fits) {
    const double k = f.family == "exponential"  ? 1.0
                     : f.family == "weibull"    ? 2.0
                     : f.family == "hyperexp2" ? 3.0
                                                : 5.0;
    EXPECT_NEAR(f.aic, 2.0 * k - 2.0 * f.log_likelihood, 1e-9) << f.family;
  }
}

TEST(ModelSelect, CustomMenu) {
  const auto xs = weibull_sample(100, 5);
  ModelMenu menu;
  menu.exponential = false;
  menu.weibull = true;
  menu.hyperexp_phases = {};
  const auto fits = fit_all(xs, menu);
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].family, "weibull");
}

TEST(ModelSelect, DegenerateSampleSkipsUnfittableFamilies) {
  // All-identical values: Weibull MLE diverges, exponential still fits.
  const std::vector<double> xs = {100.0, 100.0, 100.0, 100.0};
  const auto fits = fit_all(xs);
  EXPECT_NE(find_family(fits, "exponential"), nullptr);
  EXPECT_EQ(find_family(fits, "weibull"), nullptr);
}

TEST(ModelSelect, EmptyFitsThrowOnSelection) {
  const std::vector<FittedModel> none;
  EXPECT_THROW((void)best_by_aic(none), std::invalid_argument);
  EXPECT_THROW((void)best_by_bic(none), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fit
