#include "harvest/fit/censored.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

TEST(CensoredSample, CensorAtSplitsCorrectly) {
  const std::vector<double> xs = {10.0, 200.0, 50.0, 300.0};
  const auto s = CensoredSample::censor_at(xs, 100.0);
  EXPECT_EQ(s.values, (std::vector<double>{10.0, 100.0, 50.0, 100.0}));
  EXPECT_EQ(s.observed, (std::vector<bool>{true, false, true, false}));
  EXPECT_EQ(s.event_count(), 2u);
}

TEST(CensoredSample, FullyObservedWrapper) {
  const std::vector<double> xs = {1.0, 2.0};
  const auto s = CensoredSample::fully_observed(xs);
  EXPECT_EQ(s.event_count(), 2u);
}

TEST(CensoredSample, ValidationRejectsBadInputs) {
  CensoredSample s;
  s.values = {1.0, 2.0};
  s.observed = {true};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.observed = {true, true};
  s.values[0] = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(CensoredExponential, MatchesTotalTimeOnTest) {
  CensoredSample s;
  s.values = {100.0, 50.0, 200.0, 150.0};
  s.observed = {true, false, true, false};
  const auto e = fit_exponential_censored(s);
  EXPECT_DOUBLE_EQ(e.rate(), 2.0 / 500.0);
}

TEST(CensoredExponential, UncensoredReducesToPlainMle) {
  numerics::Rng rng(1);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.exponential(0.002);
  const auto censored =
      fit_exponential_censored(CensoredSample::fully_observed(xs));
  const auto plain = fit_exponential_mle(xs);
  EXPECT_DOUBLE_EQ(censored.rate(), plain.rate());
}

TEST(CensoredExponential, CorrectsRightCensoringBias) {
  // True rate 1/1000; censor at 800. The naive fit (treating censored
  // values as deaths) overestimates the rate; the censored fit does not.
  numerics::Rng rng(2);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.001);
  const auto s = CensoredSample::censor_at(xs, 800.0);
  const auto naive = fit_exponential_mle(s.values);
  const auto corrected = fit_exponential_censored(s);
  EXPECT_GT(naive.rate() / 0.001, 1.3);  // badly biased
  EXPECT_NEAR(corrected.rate() / 0.001, 1.0, 0.03);
}

TEST(CensoredExponential, RejectsAllCensored) {
  CensoredSample s;
  s.values = {1.0, 2.0};
  s.observed = {false, false};
  EXPECT_THROW((void)fit_exponential_censored(s), std::invalid_argument);
}

TEST(CensoredWeibull, UncensoredMatchesPlainMle) {
  numerics::Rng rng(3);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.weibull(0.6, 1500.0);
  const auto censored =
      fit_weibull_censored(CensoredSample::fully_observed(xs));
  const auto plain = fit_weibull_mle(xs);
  EXPECT_NEAR(censored.shape(), plain.shape(), 1e-6);
  EXPECT_NEAR(censored.scale() / plain.scale(), 1.0, 1e-6);
}

TEST(CensoredWeibull, CorrectsRightCensoringBias) {
  // The paper's §5.3 concern made quantitative: a 2-day experimental window
  // right-censors an 18-month model's tail.
  numerics::Rng rng(4);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  const auto s = CensoredSample::censor_at(xs, 3000.0);
  const auto naive = fit_weibull_mle(s.values);
  const auto corrected = fit_weibull_censored(s);
  // Naive scale collapses toward the censor horizon; corrected recovers.
  EXPECT_LT(naive.scale() / 3409.0, 0.75);
  EXPECT_NEAR(corrected.scale() / 3409.0, 1.0, 0.15);
  EXPECT_NEAR(corrected.shape() / 0.43, 1.0, 0.05);
}

TEST(CensoredWeibull, CensoredFitHasHigherCensoredLikelihood) {
  numerics::Rng rng(5);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.weibull(0.5, 2000.0);
  const auto s = CensoredSample::censor_at(xs, 1500.0);
  const auto naive = fit_weibull_mle(s.values);
  const auto corrected = fit_weibull_censored(s);
  EXPECT_GT(censored_log_likelihood(corrected, s),
            censored_log_likelihood(naive, s));
}

TEST(CensoredWeibull, RejectsTooFewEvents) {
  CensoredSample s;
  s.values = {10.0, 20.0, 30.0};
  s.observed = {true, false, false};
  EXPECT_THROW((void)fit_weibull_censored(s), std::invalid_argument);
  s.observed = {true, true, false};
  s.values = {10.0, 10.0, 30.0};
  EXPECT_THROW((void)fit_weibull_censored(s), std::invalid_argument);
}

TEST(CensoredLogLikelihood, SplitsDensityAndSurvival) {
  const dist::Exponential e(0.01);
  CensoredSample s;
  s.values = {100.0, 200.0};
  s.observed = {true, false};
  const double expected = e.log_pdf(100.0) + std::log(e.survival(200.0));
  EXPECT_NEAR(censored_log_likelihood(e, s), expected, 1e-12);
}

}  // namespace
}  // namespace harvest::fit
