#include "harvest/fit/mle_exponential.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

TEST(ExponentialMle, RateIsReciprocalOfSampleMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};  // mean 2.5
  const auto e = fit_exponential_mle(xs);
  EXPECT_DOUBLE_EQ(e.rate(), 0.4);
  EXPECT_DOUBLE_EQ(e.mean(), 2.5);
}

TEST(ExponentialMle, RecoversTrueRateFromLargeSample) {
  numerics::Rng rng(5);
  const double lambda = 1.0 / 3600.0;
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(lambda);
  const auto e = fit_exponential_mle(xs);
  EXPECT_NEAR(e.rate() / lambda, 1.0, 0.03);
}

TEST(ExponentialMle, SmallSampleStillFits) {
  // The paper fits from just 25 observations.
  numerics::Rng rng(6);
  std::vector<double> xs(25);
  for (auto& x : xs) x = rng.exponential(0.001);
  const auto e = fit_exponential_mle(xs);
  EXPECT_NEAR(e.rate() / 0.001, 1.0, 0.6);
}

TEST(ExponentialMle, ToleratesZeros) {
  const std::vector<double> xs = {0.0, 2.0, 4.0};
  const auto e = fit_exponential_mle(xs);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
}

TEST(ExponentialMle, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_exponential_mle(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_exponential_mle(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_exponential_mle(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
}

TEST(ExponentialMle, MaximizesLikelihoodLocally) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const auto e = fit_exponential_mle(xs);
  const double ll_hat = e.log_likelihood(xs);
  for (double factor : {0.8, 0.9, 1.1, 1.2}) {
    const dist::Exponential other(e.rate() * factor);
    EXPECT_LT(other.log_likelihood(xs), ll_hat) << "factor=" << factor;
  }
}

}  // namespace
}  // namespace harvest::fit
