#include "harvest/fit/mle_weibull.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

TEST(WeibullMle, RecoversPaperParameters) {
  // Ground truth: the paper's exemplar machine fit.
  numerics::Rng rng(1);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  const auto w = fit_weibull_mle(xs);
  EXPECT_NEAR(w.shape() / 0.43, 1.0, 0.03);
  EXPECT_NEAR(w.scale() / 3409.0, 1.0, 0.05);
}

TEST(WeibullMle, RecoversLightTailParameters) {
  numerics::Rng rng(2);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.weibull(3.0, 120.0);
  const auto w = fit_weibull_mle(xs);
  EXPECT_NEAR(w.shape() / 3.0, 1.0, 0.03);
  EXPECT_NEAR(w.scale() / 120.0, 1.0, 0.02);
}

TEST(WeibullMle, ExponentialDataGivesShapeNearOne) {
  numerics::Rng rng(3);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng.exponential(0.01);
  const auto w = fit_weibull_mle(xs);
  EXPECT_NEAR(w.shape(), 1.0, 0.03);
  EXPECT_NEAR(w.scale() / 100.0, 1.0, 0.03);
}

TEST(WeibullMle, SmallSample25StillReasonable) {
  // The paper's actual operating regime.
  numerics::Rng rng(4);
  std::vector<double> xs(25);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  const auto w = fit_weibull_mle(xs);
  EXPECT_GT(w.shape(), 0.15);
  EXPECT_LT(w.shape(), 1.2);
}

TEST(WeibullMle, SatisfiesScoreEquation) {
  // The fitted shape must zero the profile-likelihood score.
  numerics::Rng rng(5);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.weibull(0.7, 800.0);
  const auto w = fit_weibull_mle(xs);
  double sum_xa = 0.0, sum_xa_ln = 0.0, sum_ln = 0.0;
  for (double x : xs) {
    const double xa = std::pow(x, w.shape());
    sum_xa += xa;
    sum_xa_ln += xa * std::log(x);
    sum_ln += std::log(x);
  }
  const double score = sum_xa_ln / sum_xa - 1.0 / w.shape() -
                       sum_ln / static_cast<double>(xs.size());
  EXPECT_NEAR(score, 0.0, 1e-8);
}

TEST(WeibullMle, MaximizesLikelihoodLocally) {
  numerics::Rng rng(6);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.weibull(0.5, 1000.0);
  const auto w = fit_weibull_mle(xs);
  const double ll_hat = w.log_likelihood(xs);
  for (double ds : {-0.05, 0.05}) {
    const dist::Weibull perturbed(w.shape() + ds, w.scale());
    EXPECT_LT(perturbed.log_likelihood(xs), ll_hat);
  }
  for (double fs : {0.9, 1.1}) {
    const dist::Weibull perturbed(w.shape(), w.scale() * fs);
    EXPECT_LT(perturbed.log_likelihood(xs), ll_hat);
  }
}

TEST(WeibullMle, ClampsZeroObservations) {
  const std::vector<double> xs = {0.0, 10.0, 20.0, 40.0};
  const auto w = fit_weibull_mle(xs);  // must not blow up on ln(0)
  EXPECT_GT(w.shape(), 0.0);
  EXPECT_GT(w.scale(), 0.0);
}

TEST(WeibullMle, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_weibull_mle(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_weibull_mle(std::vector<double>{5.0, 5.0, 5.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_weibull_mle(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
}

TEST(WeibullMle, ScaleInvarianceOfShape) {
  numerics::Rng rng(7);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.weibull(0.6, 500.0);
  std::vector<double> scaled = xs;
  for (auto& x : scaled) x *= 1000.0;
  const auto w1 = fit_weibull_mle(xs);
  const auto w2 = fit_weibull_mle(scaled);
  EXPECT_NEAR(w1.shape(), w2.shape(), 1e-6);
  EXPECT_NEAR(w2.scale() / w1.scale(), 1000.0, 1e-3);
}

}  // namespace
}  // namespace harvest::fit
