#include "harvest/fit/goodness_of_fit.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

TEST(KolmogorovTail, BoundaryBehavior) {
  EXPECT_DOUBLE_EQ(kolmogorov_tail(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_tail(10.0), 0.0, 1e-12);
  // Known value: Q(1.36) ≈ 0.049 (the classic 5% critical point).
  EXPECT_NEAR(kolmogorov_tail(1.36), 0.049, 0.002);
}

TEST(KsTest, AcceptsCorrectHypothesis) {
  const dist::Exponential e(0.01);
  numerics::Rng rng(1);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = e.sample(rng);
  const auto r = ks_test(xs, e);
  EXPECT_LT(r.statistic, 0.04);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTest, RejectsWrongHypothesis) {
  // Heavy-tailed Weibull data vs an exponential with the same mean — the
  // paper's central misfit scenario.
  const dist::Weibull truth(0.43, 3409.0);
  numerics::Rng rng(2);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = truth.sample(rng);
  const dist::Exponential wrong = dist::Exponential::from_mean(truth.mean());
  const auto r = ks_test(xs, wrong);
  EXPECT_GT(r.statistic, 0.15);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, CorrectModelBeatsWrongModel) {
  const dist::Weibull truth(0.5, 1000.0);
  numerics::Rng rng(3);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = truth.sample(rng);
  const dist::Exponential wrong = dist::Exponential::from_mean(truth.mean());
  EXPECT_LT(ks_test(xs, truth).statistic, ks_test(xs, wrong).statistic);
}

TEST(KsTest, RejectsEmptySample) {
  const dist::Exponential e(1.0);
  EXPECT_THROW((void)ks_test(std::vector<double>{}, e), std::invalid_argument);
}

TEST(KsTwoSample, AcceptsSameLaw) {
  const dist::Weibull w(0.5, 1000.0);
  numerics::Rng rng(6);
  std::vector<double> a(1500);
  std::vector<double> b(1500);
  for (auto& x : a) x = w.sample(rng);
  for (auto& x : b) x = w.sample(rng);
  const auto r = ks_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTwoSample, RejectsDifferentLaws) {
  const dist::Weibull heavy(0.43, 3409.0);
  numerics::Rng rng(7);
  std::vector<double> a(1500);
  std::vector<double> b(1500);
  for (auto& x : a) x = heavy.sample(rng);
  const dist::Exponential e = dist::Exponential::from_mean(heavy.mean());
  for (auto& x : b) x = e.sample(rng);
  const auto r = ks_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 0.1);
}

TEST(KsTwoSample, SymmetricInArguments) {
  numerics::Rng rng(8);
  std::vector<double> a(200);
  std::vector<double> b(350);
  for (auto& x : a) x = rng.exponential(0.01);
  for (auto& x : b) x = rng.exponential(0.02);
  const auto r1 = ks_two_sample(a, b);
  const auto r2 = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(r1.statistic, r2.statistic);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
}

TEST(KsTwoSample, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const auto r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTwoSample, RejectsEmpty) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)ks_two_sample(xs, std::vector<double>{}),
               std::invalid_argument);
}

TEST(AndersonDarling, SmallerForCorrectModel) {
  const dist::Weibull truth(0.5, 1000.0);
  numerics::Rng rng(4);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = truth.sample(rng);
  const dist::Exponential wrong = dist::Exponential::from_mean(truth.mean());
  EXPECT_LT(anderson_darling(xs, truth), anderson_darling(xs, wrong));
}

TEST(AndersonDarling, NearCriticalRangeForTrueModel) {
  const dist::Exponential e(2.0);
  numerics::Rng rng(5);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = e.sample(rng);
  const double a2 = anderson_darling(xs, e);
  EXPECT_GT(a2, 0.0);
  EXPECT_LT(a2, 2.5);  // 5% critical value for a fully specified model ≈ 2.49
}

}  // namespace
}  // namespace harvest::fit
