#include "harvest/fit/bootstrap.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

ParameterFitter exponential_fitter() {
  return [](std::span<const double> xs) {
    return std::vector<double>{fit_exponential_mle(xs).rate()};
  };
}

ParameterFitter weibull_fitter() {
  return [](std::span<const double> xs) {
    const auto w = fit_weibull_mle(xs);
    return std::vector<double>{w.shape(), w.scale()};
  };
}

TEST(Bootstrap, IntervalCoversTruthForExponential) {
  numerics::Rng rng(1);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.exponential(0.002);
  const auto r = bootstrap_parameters(xs, exponential_fitter());
  ASSERT_EQ(r.parameters.size(), 1u);
  const auto& ci = r.parameters[0];
  EXPECT_LT(ci.lo, 0.002);
  EXPECT_GT(ci.hi, 0.002);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_EQ(r.replicates_failed, 0);
}

TEST(Bootstrap, WeibullTwoParameterIntervals) {
  numerics::Rng rng(2);
  std::vector<double> xs(150);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  const auto r = bootstrap_parameters(xs, weibull_fitter());
  ASSERT_EQ(r.parameters.size(), 2u);
  EXPECT_LT(r.parameters[0].lo, 0.43);
  EXPECT_GT(r.parameters[0].hi, 0.43);
  EXPECT_LT(r.parameters[1].lo, 3409.0);
  EXPECT_GT(r.parameters[1].hi, 3409.0);
}

TEST(Bootstrap, SmallerSamplesGiveWiderIntervals) {
  numerics::Rng rng(3);
  std::vector<double> big(400);
  for (auto& x : big) x = rng.weibull(0.5, 1000.0);
  const std::vector<double> small(big.begin(), big.begin() + 25);
  BootstrapOptions opts;
  opts.replicates = 300;
  const auto wide = bootstrap_parameters(small, weibull_fitter(), opts);
  const auto narrow = bootstrap_parameters(big, weibull_fitter(), opts);
  EXPECT_GT(wide.parameters[0].hi - wide.parameters[0].lo,
            narrow.parameters[0].hi - narrow.parameters[0].lo);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  numerics::Rng rng(4);
  std::vector<double> xs(60);
  for (auto& x : xs) x = rng.exponential(0.01);
  const auto a = bootstrap_parameters(xs, exponential_fitter());
  const auto b = bootstrap_parameters(xs, exponential_fitter());
  EXPECT_DOUBLE_EQ(a.parameters[0].lo, b.parameters[0].lo);
  EXPECT_DOUBLE_EQ(a.parameters[0].hi, b.parameters[0].hi);
}

TEST(Bootstrap, CountsFailedReplicates) {
  // A fitter that rejects resamples dominated by a single repeated value:
  // with a 3-point sample many resamples are degenerate, but not most.
  numerics::Rng rng(5);
  std::vector<double> xs = {10.0, 20.0, 40.0, 80.0};
  const auto r = bootstrap_parameters(xs, weibull_fitter());
  // Some resamples are all-identical and the Weibull fitter throws on them.
  EXPECT_GT(r.replicates_failed, 0);
  EXPECT_GT(r.replicates_used, r.replicates_failed);
}

TEST(Bootstrap, RejectsBadInputs) {
  const std::vector<double> xs = {1.0, 2.0};
  BootstrapOptions opts;
  opts.replicates = 5;
  EXPECT_THROW(
      (void)bootstrap_parameters(xs, exponential_fitter(), opts),
      std::invalid_argument);
  EXPECT_THROW((void)bootstrap_parameters(std::vector<double>{},
                                          exponential_fitter()),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fit
