#include "harvest/fit/mle_lognormal.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::fit {
namespace {

TEST(LognormalMle, RecoversTrueParameters) {
  numerics::Rng rng(1);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.lognormal(6.5, 0.9);
  const auto ln = fit_lognormal_mle(xs);
  EXPECT_NEAR(ln.mu(), 6.5, 0.02);
  EXPECT_NEAR(ln.sigma(), 0.9, 0.02);
}

TEST(LognormalMle, ClosedFormOnTinySample) {
  // logs = {0, ln 4}: mu = ln 2, sigma = ln 2 (biased 1/n variance).
  const std::vector<double> xs = {1.0, 4.0};
  const auto ln = fit_lognormal_mle(xs);
  EXPECT_NEAR(ln.mu(), std::log(2.0), 1e-12);
  EXPECT_NEAR(ln.sigma(), std::log(2.0), 1e-12);
}

TEST(LognormalMle, MaximizesLikelihoodLocally) {
  numerics::Rng rng(2);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(3.0, 1.2);
  const auto ln = fit_lognormal_mle(xs);
  const double best = ln.log_likelihood(xs);
  EXPECT_LT(dist::Lognormal(ln.mu() + 0.1, ln.sigma()).log_likelihood(xs),
            best);
  EXPECT_LT(dist::Lognormal(ln.mu(), ln.sigma() * 1.1).log_likelihood(xs),
            best);
  EXPECT_LT(dist::Lognormal(ln.mu(), ln.sigma() * 0.9).log_likelihood(xs),
            best);
}

TEST(LognormalMle, RejectsDegenerateInputs) {
  EXPECT_THROW((void)fit_lognormal_mle(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_lognormal_mle(std::vector<double>{2.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_lognormal_mle(std::vector<double>{-1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fit
