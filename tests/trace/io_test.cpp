#include "harvest/trace/io.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace harvest::trace {
namespace {

TEST(TraceIo, RoundTripsThroughCsv) {
  std::vector<AvailabilityTrace> traces(2);
  traces[0].machine_id = "alpha";
  traces[0].durations = {10.0, 20.0};
  traces[0].timestamps = {100.0, 200.0};
  traces[1].machine_id = "beta";
  traces[1].durations = {5.5};
  traces[1].timestamps = {50.0};

  std::stringstream buf;
  write_traces_csv(buf, traces);
  const auto loaded = read_traces_csv(buf);

  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].machine_id, "alpha");
  EXPECT_EQ(loaded[0].durations, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(loaded[1].machine_id, "beta");
  EXPECT_DOUBLE_EQ(loaded[1].durations[0], 5.5);
}

TEST(TraceIo, GroupsInterleavedRowsAndSortsByTimestamp) {
  std::stringstream in(
      "machine_id,timestamp,duration\n"
      "a,300,3\n"
      "b,100,1\n"
      "a,100,1\n"
      "a,200,2\n");
  const auto traces = read_traces_csv(in);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].machine_id, "a");
  EXPECT_EQ(traces[0].durations, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(traces[1].durations, (std::vector<double>{1.0}));
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream in(
      "machine_id,timestamp,duration\n"
      "\n"
      "a,1,2\n"
      "\n");
  const auto traces = read_traces_csv(in);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].durations.size(), 1u);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream in("a,1,2\n");
  EXPECT_THROW((void)read_traces_csv(in), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRowWithLineNumber) {
  std::stringstream in(
      "machine_id,timestamp,duration\n"
      "a,1,2\n"
      "broken-row\n");
  try {
    (void)read_traces_csv(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, RejectsNonNumericFields) {
  std::stringstream in(
      "machine_id,timestamp,duration\n"
      "a,xyz,2\n");
  EXPECT_THROW((void)read_traces_csv(in), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_THROW((void)read_traces_csv(in), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  std::vector<AvailabilityTrace> traces(1);
  traces[0].machine_id = "disk";
  traces[0].durations = {1.0, 2.0, 3.0};
  traces[0].timestamps = {0.0, 10.0, 20.0};
  const std::string path = ::testing::TempDir() + "/traces_roundtrip.csv";
  save_traces_csv(path, traces);
  const auto loaded = load_traces_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].durations, traces[0].durations);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_traces_csv("/nonexistent/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace harvest::trace
