#include "harvest/trace/statistics.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "harvest/trace/synthetic.hpp"

namespace harvest::trace {
namespace {

AvailabilityTrace make_trace(const std::string& id,
                             std::vector<double> durations) {
  AvailabilityTrace t;
  t.machine_id = id;
  t.durations = std::move(durations);
  for (std::size_t i = 0; i < t.durations.size(); ++i) {
    t.timestamps.push_back(static_cast<double>(i) * 100.0);
  }
  return t;
}

TEST(TraceStatistics, SummaryValues) {
  const auto t = make_trace("a", {10.0, 20.0, 30.0, 40.0});
  const auto s = summarize_trace(t);
  EXPECT_EQ(s.machine_id, "a");
  EXPECT_EQ(s.observations, 4u);
  EXPECT_DOUBLE_EQ(s.mean_s, 25.0);
  EXPECT_DOUBLE_EQ(s.median_s, 25.0);
  EXPECT_DOUBLE_EQ(s.min_s, 10.0);
  EXPECT_DOUBLE_EQ(s.max_s, 40.0);
  EXPECT_DOUBLE_EQ(s.total_observed_s, 100.0);
  EXPECT_NEAR(s.cv, std::sqrt(500.0 / 3.0) / 25.0, 1e-12);
}

TEST(TraceStatistics, SummaryRejectsTinyTrace) {
  EXPECT_THROW((void)summarize_trace(make_trace("x", {1.0})),
               std::invalid_argument);
}

TEST(TraceStatistics, PoolSummaryAggregates) {
  std::vector<AvailabilityTrace> traces = {
      make_trace("a", {10.0, 20.0}),
      make_trace("b", {100.0, 200.0, 300.0}),
      make_trace("tiny", {5.0}),  // skipped
  };
  const auto p = summarize_pool(traces);
  EXPECT_EQ(p.machine_count, 2u);
  EXPECT_EQ(p.total_observations, 5u);
  EXPECT_DOUBLE_EQ(p.mean_of_means_s, (15.0 + 200.0) / 2.0);
}

TEST(TraceStatistics, HeavyTailedFractionDetectsCvAboveOne) {
  trace::PoolSpec spec;
  spec.machine_count = 60;
  spec.durations_per_machine = 200;
  spec.seed = 5;
  std::vector<AvailabilityTrace> traces;
  for (auto& m : generate_pool(spec)) traces.push_back(std::move(m.trace));
  const auto p = summarize_pool(traces);
  // Heavy-tailed Weibulls (shape < 1) and bimodal hyperexps both have
  // cv > 1; nearly the whole pool should flag.
  EXPECT_GT(p.heavy_tailed_fraction, 0.8);
  EXPECT_GT(p.mean_cv, 1.0);
}

TEST(TraceStatistics, FilterMinObservations) {
  std::vector<AvailabilityTrace> traces = {
      make_trace("keep", {1.0, 2.0, 3.0}),
      make_trace("drop", {1.0}),
  };
  const auto kept = filter_min_observations(std::move(traces), 3);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].machine_id, "keep");
}

TEST(TraceStatistics, FilterTimeWindow) {
  auto t = make_trace("w", {1.0, 2.0, 3.0, 4.0});  // timestamps 0,100,200,300
  const auto kept = filter_time_window({t}, 100.0, 300.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].durations, (std::vector<double>{2.0, 3.0}));
}

TEST(TraceStatistics, FilterTimeWindowDropsEmptied) {
  auto t = make_trace("gone", {1.0, 2.0});
  const auto kept = filter_time_window({t}, 1000.0, 2000.0);
  EXPECT_TRUE(kept.empty());
}

TEST(TraceStatistics, FilterTimeWindowKeepsTimestampless) {
  AvailabilityTrace t;
  t.machine_id = "nots";
  t.durations = {1.0, 2.0};
  const auto kept = filter_time_window({t}, 0.0, 1.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].durations.size(), 2u);
}

TEST(TraceStatistics, FilterTimeWindowRejectsBadRange) {
  EXPECT_THROW((void)filter_time_window({}, 5.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::trace
