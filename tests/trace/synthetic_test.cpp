#include "harvest/trace/synthetic.hpp"

#include <set>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/fit/mle_weibull.hpp"

namespace harvest::trace {
namespace {

PoolSpec small_spec() {
  PoolSpec spec;
  spec.machine_count = 40;
  spec.durations_per_machine = 60;
  spec.seed = 123;
  return spec;
}

TEST(SyntheticPool, GeneratesRequestedShape) {
  const auto pool = generate_pool(small_spec());
  ASSERT_EQ(pool.size(), 40u);
  for (const auto& m : pool) {
    EXPECT_EQ(m.trace.size(), 60u);
    EXPECT_NE(m.ground_truth, nullptr);
    EXPECT_NO_THROW(m.trace.validate());
  }
}

TEST(SyntheticPool, MachineIdsAreUniqueAndStable) {
  const auto pool = generate_pool(small_spec());
  std::set<std::string> ids;
  for (const auto& m : pool) ids.insert(m.trace.machine_id);
  EXPECT_EQ(ids.size(), pool.size());
  EXPECT_EQ(pool[0].trace.machine_id, "m0000");
  EXPECT_EQ(pool[7].trace.machine_id, "m0007");
}

TEST(SyntheticPool, DeterministicFromSeed) {
  const auto a = generate_pool(small_spec());
  const auto b = generate_pool(small_spec());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace.durations, b[i].trace.durations);
  }
}

TEST(SyntheticPool, DifferentSeedsDiffer) {
  auto spec = small_spec();
  const auto a = generate_pool(spec);
  spec.seed = 456;
  const auto b = generate_pool(spec);
  EXPECT_NE(a[0].trace.durations, b[0].trace.durations);
}

TEST(SyntheticPool, MixesWeibullAndBimodalMachines) {
  auto spec = small_spec();
  spec.machine_count = 200;
  const auto pool = generate_pool(spec);
  std::size_t weibull = 0;
  std::size_t hyper = 0;
  for (const auto& m : pool) {
    if (m.ground_truth->name() == "weibull") ++weibull;
    if (m.ground_truth->name() == "hyperexp2") ++hyper;
  }
  EXPECT_EQ(weibull + hyper, pool.size());
  // bimodal_fraction = 0.5 ± sampling noise.
  EXPECT_GT(hyper, 70u);
  EXPECT_LT(hyper, 130u);
}

TEST(SyntheticPool, TraceMatchesGroundTruthScale) {
  auto spec = small_spec();
  spec.durations_per_machine = 400;
  const auto pool = generate_pool(spec);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& m = pool[i];
    double mean = 0.0;
    for (double d : m.trace.durations) mean += d;
    mean /= static_cast<double>(m.trace.size());
    EXPECT_NEAR(mean / m.ground_truth->mean(), 1.0, 0.6) << "machine " << i;
  }
}

TEST(SyntheticPool, RejectsBadSpecs) {
  PoolSpec spec;
  spec.machine_count = 0;
  EXPECT_THROW((void)generate_pool(spec), std::invalid_argument);
  spec = PoolSpec{};
  spec.shape_min = -1.0;
  EXPECT_THROW((void)generate_pool(spec), std::invalid_argument);
  spec = PoolSpec{};
  spec.bimodal_fraction = 1.5;
  EXPECT_THROW((void)generate_pool(spec), std::invalid_argument);
}

TEST(SampleTrace, RecoverableParameters) {
  // The Table 2 scenario: 5000 draws from the paper's Weibull; an MLE fit
  // on the trace must recover the generator.
  const dist::Weibull truth(0.43, 3409.0);
  const auto t = sample_trace(truth, 5000, 99, "synthetic");
  EXPECT_EQ(t.size(), 5000u);
  const auto fitted = fit::fit_weibull_mle(t.durations);
  EXPECT_NEAR(fitted.shape() / 0.43, 1.0, 0.07);
  EXPECT_NEAR(fitted.scale() / 3409.0, 1.0, 0.10);
}

TEST(SampleTrace, RejectsZeroCount) {
  const dist::Weibull truth(0.5, 100.0);
  EXPECT_THROW((void)sample_trace(truth, 0, 1, "x"), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::trace
