#include "harvest/trace/trace.hpp"

#include <gtest/gtest.h>

namespace harvest::trace {
namespace {

AvailabilityTrace make_trace(std::size_t n) {
  AvailabilityTrace t;
  t.machine_id = "m";
  for (std::size_t i = 0; i < n; ++i) {
    t.durations.push_back(100.0 + static_cast<double>(i));
    t.timestamps.push_back(static_cast<double>(i) * 1000.0);
  }
  return t;
}

TEST(AvailabilityTrace, ValidatesGoodTrace) {
  EXPECT_NO_THROW(make_trace(5).validate());
}

TEST(AvailabilityTrace, RejectsNegativeDurations) {
  auto t = make_trace(3);
  t.durations[1] = -1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(AvailabilityTrace, RejectsLengthMismatch) {
  auto t = make_trace(3);
  t.timestamps.pop_back();
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(AvailabilityTrace, RejectsDecreasingTimestamps) {
  auto t = make_trace(3);
  t.timestamps[2] = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(AvailabilityTrace, EmptyTimestampsAllowed) {
  auto t = make_trace(3);
  t.timestamps.clear();
  EXPECT_NO_THROW(t.validate());
}

TEST(SplitTrainTest, PaperDefaultTakesFirst25) {
  const auto t = make_trace(40);
  const auto split = split_train_test(t);
  EXPECT_EQ(split.train.size(), 25u);
  EXPECT_EQ(split.test.size(), 15u);
  EXPECT_DOUBLE_EQ(split.train.front(), 100.0);
  EXPECT_DOUBLE_EQ(split.test.front(), 125.0);
}

TEST(SplitTrainTest, CustomSplitPoint) {
  const auto t = make_trace(10);
  const auto split = split_train_test(t, 3);
  EXPECT_EQ(split.train.size(), 3u);
  EXPECT_EQ(split.test.size(), 7u);
}

TEST(SplitTrainTest, RejectsTooShortTrace) {
  EXPECT_THROW((void)split_train_test(make_trace(25), 25),
               std::invalid_argument);
  EXPECT_NO_THROW((void)split_train_test(make_trace(26), 25));
}

}  // namespace
}  // namespace harvest::trace
