#include "harvest/core/sensitivity.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

dist::DistributionPtr paper_weibull() {
  return std::make_shared<dist::Weibull>(0.43, 3409.0);
}

TEST(Sensitivity, EfficiencyCurveIsDecreasingInCost) {
  const std::vector<double> costs = {50.0, 100.0, 250.0, 500.0, 1000.0};
  const auto curve = efficiency_vs_cost(paper_weibull(), costs);
  ASSERT_EQ(curve.size(), costs.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].efficiency, curve[i - 1].efficiency);
    EXPECT_GT(curve[i].work_time, curve[i - 1].work_time);
    EXPECT_DOUBLE_EQ(curve[i].cost, costs[i]);
  }
}

TEST(Sensitivity, DerivativeIsNegativeAndMatchesCurveSlope) {
  const double d = efficiency_cost_derivative(paper_weibull(), 200.0);
  EXPECT_LT(d, 0.0);
  // Secant check over the same +-5 % window.
  const std::vector<double> costs = {190.0, 210.0};
  const auto curve = efficiency_vs_cost(paper_weibull(), costs);
  const double secant =
      (curve[1].efficiency - curve[0].efficiency) / 20.0;
  EXPECT_NEAR(d / secant, 1.0, 0.05);
}

TEST(Sensitivity, RobustnessRatioPeaksAtOptimum) {
  IntervalCosts costs;
  costs.checkpoint = 100.0;
  costs.recovery = 100.0;
  CheckpointOptimizer opt(MarkovModel(paper_weibull(), costs));
  const double t_opt = opt.optimize(0.0).work_time;
  EXPECT_NEAR(robustness_ratio(paper_weibull(), costs, t_opt), 1.0, 1e-3);
  EXPECT_LT(robustness_ratio(paper_weibull(), costs, t_opt * 0.3), 1.0);
  EXPECT_LT(robustness_ratio(paper_weibull(), costs, t_opt * 3.0), 1.0);
}

TEST(Sensitivity, OptimumIsFlatNearby) {
  // The paper's "all models score similarly" effect requires a flat
  // optimum: 30 % off in T should cost only a couple points.
  IntervalCosts costs;
  costs.checkpoint = 250.0;
  costs.recovery = 250.0;
  CheckpointOptimizer opt(MarkovModel(paper_weibull(), costs));
  const double t_opt = opt.optimize(0.0).work_time;
  EXPECT_GT(robustness_ratio(paper_weibull(), costs, t_opt * 1.3), 0.97);
  EXPECT_GT(robustness_ratio(paper_weibull(), costs, t_opt * 0.7), 0.97);
}

TEST(Sensitivity, RejectsBadArguments) {
  IntervalCosts costs;
  EXPECT_THROW((void)efficiency_cost_derivative(nullptr, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)efficiency_cost_derivative(paper_weibull(), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)robustness_ratio(paper_weibull(), costs, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
