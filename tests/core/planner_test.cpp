#include "harvest/core/planner.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::core {
namespace {

std::vector<double> weibull_sample(std::size_t n, std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  return xs;
}

TEST(ModelFamilyNames, RoundTrip) {
  for (ModelFamily f : paper_families()) {
    EXPECT_EQ(model_family_from_string(to_string(f)), f);
  }
  EXPECT_EQ(model_family_from_string("auto"), ModelFamily::kAutoAic);
  EXPECT_THROW((void)model_family_from_string("gaussian"),
               std::invalid_argument);
}

TEST(PaperFamilies, HasTheFourColumns) {
  const auto fams = paper_families();
  ASSERT_EQ(fams.size(), 4u);
  EXPECT_EQ(fams[0], ModelFamily::kExponential);
  EXPECT_EQ(fams[1], ModelFamily::kWeibull);
  EXPECT_EQ(fams[2], ModelFamily::kHyperexp2);
  EXPECT_EQ(fams[3], ModelFamily::kHyperexp3);
}

TEST(Planner, FitsEachFamily) {
  const auto xs = weibull_sample(200, 1);
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kExponential)->name(),
            "exponential");
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kWeibull)->name(), "weibull");
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kHyperexp2)->name(),
            "hyperexp2");
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kHyperexp3)->name(),
            "hyperexp3");
}

TEST(Planner, FitsExtendedFamilies) {
  const auto xs = weibull_sample(200, 8);
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kLognormal)->name(),
            "lognormal");
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kGamma)->name(), "gamma");
  EXPECT_EQ(model_family_from_string("lognormal"), ModelFamily::kLognormal);
  EXPECT_EQ(model_family_from_string("gamma"), ModelFamily::kGamma);
  EXPECT_EQ(to_string(ModelFamily::kGamma), "gamma");
}

TEST(Planner, ExtendedFamiliesProduceUsableSchedules) {
  const auto xs = weibull_sample(100, 9);
  IntervalCosts costs;
  costs.checkpoint = 100.0;
  costs.recovery = 100.0;
  for (ModelFamily f : {ModelFamily::kLognormal, ModelFamily::kGamma}) {
    auto schedule = Planner::plan(xs, f, costs);
    EXPECT_GT(schedule.entry(0).work_time, 0.0) << to_string(f);
    EXPECT_GT(schedule.entry(0).efficiency, 0.0) << to_string(f);
  }
}

TEST(Planner, AutoAicPicksWeibullOnWeibullData) {
  const auto xs = weibull_sample(3000, 2);
  EXPECT_EQ(Planner::fit_model(xs, ModelFamily::kAutoAic)->name(), "weibull");
}

TEST(Planner, PlanProducesUsableSchedule) {
  const auto xs = weibull_sample(25, 3);  // the paper's training size
  IntervalCosts costs;
  costs.checkpoint = 100.0;
  costs.recovery = 100.0;
  auto schedule = Planner::plan(xs, ModelFamily::kWeibull, costs);
  EXPECT_GT(schedule.entry(0).work_time, 0.0);
  EXPECT_GT(schedule.entry(0).efficiency, 0.0);
  EXPECT_LE(schedule.entry(0).efficiency, 1.0);
}

TEST(Planner, FitModelPropagatesFailures) {
  const std::vector<double> degenerate = {7.0, 7.0, 7.0};
  EXPECT_THROW((void)Planner::fit_model(degenerate, ModelFamily::kWeibull),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
