#include "harvest/core/prediction.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/core/optimizer.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/sim/job_sim.hpp"

namespace harvest::core {
namespace {

MarkovModel paper_model(double c) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = c;
  return MarkovModel(std::make_shared<dist::Weibull>(0.43, 3409.0), costs);
}

TEST(Prediction, BasicConsistency) {
  const auto m = paper_model(100.0);
  const auto p = predict_steady_state(m, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(p.work_time, 1000.0);
  EXPECT_NEAR(p.efficiency, 1000.0 / p.gamma, 1e-12);
  EXPECT_GT(p.recovery_visits, 0.0);
  EXPECT_NEAR(p.mb_per_hour, p.transfers_per_hour * 500.0, 1e-9);
}

TEST(Prediction, MoreFailuresMeanMoreRecoveryVisits) {
  const auto m = paper_model(100.0);
  const auto short_t = predict_steady_state(m, 200.0, 0.0);
  const auto long_t = predict_steady_state(m, 5000.0, 0.0);
  // Longer intervals fail more often before committing.
  EXPECT_GT(long_t.recovery_visits, short_t.recovery_visits);
}

TEST(Prediction, TransferRateFallsWithCheckpointCost) {
  // At each cost, evaluate at that cost's own T_opt (as a deployment
  // would); dearer checkpoints => longer intervals => fewer transfers.
  double prev = 1e18;
  for (double c : {50.0, 250.0, 1000.0}) {
    const auto m = paper_model(c);
    const CheckpointOptimizer opt(m);
    const double t = opt.optimize(0.0).work_time;
    const auto p = predict_steady_state(m, t, 0.0);
    EXPECT_LT(p.transfers_per_hour, prev) << "c=" << c;
    prev = p.transfers_per_hour;
  }
}

TEST(Prediction, MatchesTraceSimulationWithinTolerance) {
  // The analytic rate vs a long simulation on availability periods drawn
  // from the same law. The prediction counts every initiated transfer as
  // full-size, so it must land slightly ABOVE the pro-rated sim rate but
  // within ~20 %.
  const double cost = 250.0;
  const auto model = std::make_shared<dist::Weibull>(0.43, 3409.0);
  IntervalCosts costs;
  costs.checkpoint = cost;
  costs.recovery = cost;
  const MarkovModel markov(model, costs);
  const CheckpointOptimizer opt(markov);
  const double t_opt = opt.optimize(0.0).work_time;

  // Simulate.
  numerics::Rng rng(42);
  std::vector<double> periods(4000);
  for (auto& p : periods) p = model->sample(rng);
  ScheduleOptions sopts;
  CheckpointSchedule schedule(markov, sopts);
  const auto sim = sim::simulate_job_on_trace(periods, schedule);

  // Predict with the schedule's typical interval. The schedule is
  // aperiodic; use its early entries' scale via T_opt at age 0 as the
  // representative interval (good to first order).
  const auto pred = predict_steady_state(markov, t_opt, 0.0);
  EXPECT_NEAR(pred.efficiency / sim.efficiency(), 1.0, 0.25);
  EXPECT_GT(pred.mb_per_hour, sim.mb_per_hour() * 0.8);
  EXPECT_LT(pred.mb_per_hour, sim.mb_per_hour() * 1.6);
}

TEST(Prediction, RejectsNegativeSize) {
  const auto m = paper_model(100.0);
  EXPECT_THROW((void)predict_steady_state(m, 100.0, 0.0, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
