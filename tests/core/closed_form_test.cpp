#include "harvest/core/closed_form.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "harvest/core/optimizer.hpp"
#include "harvest/dist/exponential.hpp"

namespace harvest::core {
namespace {

IntervalCosts costs_of(double c, double r) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = r;
  return costs;
}

TEST(ClosedForm, GammaMatchesGenericMarkovModel) {
  const double rate = 1.0 / 4000.0;
  const IntervalCosts costs = costs_of(120.0, 90.0);
  const MarkovModel m(std::make_shared<dist::Exponential>(rate), costs);
  for (double t : {10.0, 200.0, 1500.0, 20000.0}) {
    EXPECT_NEAR(exponential_gamma(rate, costs, t) / m.gamma(t, 0.0), 1.0,
                1e-10)
        << "t=" << t;
  }
}

TEST(ClosedForm, GammaIndependentOfAgeForExponential) {
  const double rate = 1e-3;
  const IntervalCosts costs = costs_of(50.0, 50.0);
  const MarkovModel m(std::make_shared<dist::Exponential>(rate), costs);
  EXPECT_NEAR(exponential_gamma(rate, costs, 300.0) / m.gamma(300.0, 7777.0),
              1.0, 1e-10);
}

TEST(ClosedForm, YoungAgreesWithOptimizerInItsRegime) {
  const double rate = 1e-6;  // lambda*(C+T) << 1
  const double c = 50.0;
  const CheckpointOptimizer opt(
      MarkovModel(std::make_shared<dist::Exponential>(rate), costs_of(c, c)));
  EXPECT_NEAR(opt.optimize(0.0).work_time / young_interval(rate, c), 1.0,
              0.05);
}

TEST(ClosedForm, DalyRefinesYoungOutsideTheRegime) {
  // With lambda*C no longer tiny, Daly should land closer to the true
  // optimum than Young.
  const double rate = 1.0 / 3000.0;
  const double c = 250.0;
  const CheckpointOptimizer opt(
      MarkovModel(std::make_shared<dist::Exponential>(rate), costs_of(c, c)));
  const double t_true = opt.optimize(0.0).work_time;
  const double young_err = std::fabs(young_interval(rate, c) - t_true);
  const double daly_err = std::fabs(daly_interval(rate, c) - t_true);
  EXPECT_LT(daly_err, young_err);
}

TEST(ClosedForm, DalyCapsAtMeanLifetime) {
  EXPECT_DOUBLE_EQ(daly_interval(0.01, 500.0), 100.0);  // lambda*C = 5 >= 2
}

TEST(ClosedForm, RejectsBadArguments) {
  EXPECT_THROW((void)exponential_gamma(0.0, costs_of(1.0, 1.0), 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)exponential_gamma(1.0, costs_of(1.0, 1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)young_interval(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)daly_interval(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
