#include "harvest/core/adaptive_planner.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/core/optimizer.hpp"
#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

dist::DistributionPtr paper_weibull() {
  return std::make_shared<dist::Weibull>(0.43, 3409.0);
}

TEST(AdaptivePlanner, MatchesOfflineOptimizerGivenSameState) {
  AdaptivePlanner planner(paper_weibull());
  planner.on_placement(0.0);
  planner.on_transfer_measured(110.0);

  IntervalCosts costs;
  costs.checkpoint = 110.0;
  costs.recovery = 110.0;
  const CheckpointOptimizer offline(MarkovModel(paper_weibull(), costs));
  // After the recovery the machine has been up 110 s.
  EXPECT_NEAR(planner.next_interval(), offline.optimize(110.0).work_time,
              1e-9);
  EXPECT_NEAR(planner.predicted_efficiency(),
              offline.optimize(110.0).efficiency, 1e-9);
}

TEST(AdaptivePlanner, UptimeAdvancesThroughTheCycle) {
  AdaptivePlanner planner(paper_weibull());
  planner.on_placement(500.0);
  EXPECT_DOUBLE_EQ(planner.current_uptime_s(), 500.0);
  planner.on_transfer_measured(100.0);  // recovery
  EXPECT_DOUBLE_EQ(planner.current_uptime_s(), 600.0);
  planner.on_work_completed(1000.0);
  planner.on_transfer_measured(120.0);  // checkpoint
  EXPECT_DOUBLE_EQ(planner.current_uptime_s(), 1720.0);
  EXPECT_DOUBLE_EQ(planner.current_cost_estimate_s(), 120.0);
}

TEST(AdaptivePlanner, SmoothingBlendsMeasurements) {
  AdaptivePlannerOptions opts;
  opts.cost_smoothing = 0.5;
  AdaptivePlanner planner(paper_weibull(), opts);
  planner.on_transfer_measured(100.0);  // first: taken as-is
  planner.on_transfer_measured(200.0);
  EXPECT_DOUBLE_EQ(planner.current_cost_estimate_s(), 150.0);
  planner.on_transfer_measured(150.0);
  EXPECT_DOUBLE_EQ(planner.current_cost_estimate_s(), 150.0);
}

TEST(AdaptivePlanner, CostEstimateSurvivesEviction) {
  AdaptivePlanner planner(paper_weibull());
  planner.on_placement(0.0);
  planner.on_transfer_measured(130.0);
  planner.on_eviction();
  EXPECT_FALSE(planner.placed());
  EXPECT_DOUBLE_EQ(planner.current_cost_estimate_s(), 130.0);
  planner.on_placement(0.0);
  EXPECT_DOUBLE_EQ(planner.current_uptime_s(), 0.0);
  EXPECT_GT(planner.next_interval(), 0.0);
}

TEST(AdaptivePlanner, HeavyTailIntervalRespondsToUptime) {
  AdaptivePlanner young(paper_weibull());
  young.on_placement(0.0);
  young.on_transfer_measured(110.0);
  AdaptivePlanner old_machine(paper_weibull());
  old_machine.on_placement(50000.0);
  old_machine.on_transfer_measured(110.0);
  EXPECT_GT(old_machine.next_interval(), young.next_interval());
}

TEST(AdaptivePlanner, InitialCostOptionSkipsFirstMeasurement) {
  AdaptivePlannerOptions opts;
  opts.initial_cost_s = 110.0;
  AdaptivePlanner planner(paper_weibull(), opts);
  planner.on_placement(0.0);
  EXPECT_GT(planner.next_interval(), 0.0);
}

TEST(AdaptivePlanner, LifecycleErrors) {
  AdaptivePlanner planner(paper_weibull());
  EXPECT_THROW((void)planner.next_interval(), std::logic_error);
  planner.on_placement(0.0);
  EXPECT_THROW((void)planner.next_interval(), std::logic_error);  // no cost
  planner.on_transfer_measured(100.0);
  EXPECT_NO_THROW((void)planner.next_interval());
  planner.on_eviction();
  EXPECT_THROW((void)planner.next_interval(), std::logic_error);
  EXPECT_THROW(planner.on_work_completed(5.0), std::logic_error);
}

TEST(AdaptivePlanner, RejectsBadConstruction) {
  EXPECT_THROW(AdaptivePlanner(nullptr), std::invalid_argument);
  AdaptivePlannerOptions opts;
  opts.cost_smoothing = 0.0;
  EXPECT_THROW(AdaptivePlanner(paper_weibull(), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
