#include "harvest/core/makespan.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

CheckpointSchedule make_schedule(dist::DistributionPtr model, double c) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = c;
  return CheckpointSchedule(MarkovModel(std::move(model), costs));
}

TEST(Makespan, DominatesRequestedWork) {
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                         110.0);
  const auto est = estimate_makespan(s, 8.0 * 3600.0);
  EXPECT_GT(est.expected_time_s, 8.0 * 3600.0);
  EXPECT_DOUBLE_EQ(est.work_s, 8.0 * 3600.0);
  EXPECT_GT(est.intervals, 1u);
  EXPECT_GT(est.expected_mb, 500.0);  // input + at least one checkpoint
  EXPECT_GT(est.efficiency(), 0.0);
  EXPECT_LT(est.efficiency(), 1.0);
}

TEST(Makespan, MonotoneInWork) {
  auto s1 = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                          110.0);
  auto s2 = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                          110.0);
  const auto small = estimate_makespan(s1, 2.0 * 3600.0);
  const auto big = estimate_makespan(s2, 8.0 * 3600.0);
  EXPECT_GT(big.expected_time_s, small.expected_time_s);
  EXPECT_GE(big.intervals, small.intervals);
  EXPECT_GT(big.expected_mb, small.expected_mb);
}

TEST(Makespan, CheaperCheckpointsFinishSooner) {
  auto cheap = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                             25.0);
  auto dear = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                            500.0);
  const double w = 6.0 * 3600.0;
  auto a = estimate_makespan(cheap, w);
  auto b = estimate_makespan(dear, w);
  EXPECT_LT(a.expected_time_s, b.expected_time_s);
}

TEST(Makespan, MatchesScheduleEfficiencyForTinyWork) {
  // One interval's worth of work: the estimate reduces to Γ at that chunk.
  auto s = make_schedule(std::make_shared<dist::Exponential>(1.0 / 5000.0),
                         100.0);
  const double t0 = s.entry(0).work_time;
  auto s2 = make_schedule(std::make_shared<dist::Exponential>(1.0 / 5000.0),
                          100.0);
  const auto est = estimate_makespan(s2, t0);
  EXPECT_NEAR(est.expected_time_s, s.entry(0).gamma, 1e-9);
  EXPECT_EQ(est.intervals, 1u);
}

TEST(Makespan, ReliableMachineApproachesIdealTime) {
  // Mean availability ~115 days: overheads are just the checkpoints.
  auto s = make_schedule(std::make_shared<dist::Exponential>(1e-7), 50.0);
  const double w = 4.0 * 3600.0;
  const auto est = estimate_makespan(s, w);
  EXPECT_LT(est.expected_time_s, w * 1.05);
}

TEST(Makespan, RejectsBadArguments) {
  auto s = make_schedule(std::make_shared<dist::Exponential>(1e-4), 10.0);
  EXPECT_THROW((void)estimate_makespan(s, 0.0), std::invalid_argument);
  EXPECT_THROW((void)estimate_makespan(s, 100.0, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
