#include "harvest/core/markov_model.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::core {
namespace {

MarkovModel exp_model(double rate, double c, double r) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = r;
  return MarkovModel(std::make_shared<dist::Exponential>(rate), costs);
}

MarkovModel weibull_model(double shape, double scale, double c, double r) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = r;
  return MarkovModel(std::make_shared<dist::Weibull>(shape, scale), costs);
}

TEST(IntervalCosts, LatencyDefaultsToCheckpoint) {
  IntervalCosts costs;
  costs.checkpoint = 100.0;
  EXPECT_DOUBLE_EQ(costs.effective_latency(), 100.0);
  costs.latency = 40.0;
  EXPECT_DOUBLE_EQ(costs.effective_latency(), 40.0);
}

TEST(IntervalCosts, ValidationRejectsNegatives) {
  IntervalCosts costs;
  costs.checkpoint = -1.0;
  EXPECT_THROW(costs.validate(), std::invalid_argument);
  costs.checkpoint = 1.0;
  costs.recovery = -1.0;
  EXPECT_THROW(costs.validate(), std::invalid_argument);
}

TEST(MarkovModel, TransitionProbabilitiesAreDistributions) {
  const auto m = weibull_model(0.43, 3409.0, 100.0, 100.0);
  for (double t : {10.0, 500.0, 5000.0}) {
    for (double age : {0.0, 1000.0}) {
      const auto tr = m.transitions(t, age);
      EXPECT_NEAR(tr.p01 + tr.p02, 1.0, 1e-12);
      EXPECT_NEAR(tr.p21 + tr.p22, 1.0, 1e-12);
      EXPECT_GE(tr.p01, 0.0);
      EXPECT_LE(tr.p01, 1.0);
      EXPECT_GE(tr.p21, 0.0);
      EXPECT_LE(tr.p21, 1.0);
    }
  }
}

TEST(MarkovModel, CostsMatchPaperDefinitions) {
  const auto m = exp_model(0.001, 50.0, 80.0);
  const auto tr = m.transitions(200.0, 0.0);
  EXPECT_DOUBLE_EQ(tr.k01, 250.0);        // C + T
  EXPECT_DOUBLE_EQ(tr.k21, 50.0 + 80.0 + 200.0);  // L + R + T with L == C
  // Conditional expected failure times lie inside their windows.
  EXPECT_GT(tr.k02, 0.0);
  EXPECT_LT(tr.k02, 250.0);
  EXPECT_GT(tr.k22, 0.0);
  EXPECT_LT(tr.k22, 330.0);
}

TEST(MarkovModel, ExplicitLatencyChangesState2Window) {
  IntervalCosts costs;
  costs.checkpoint = 50.0;
  costs.recovery = 80.0;
  costs.latency = 10.0;
  const MarkovModel m(std::make_shared<dist::Exponential>(0.001), costs);
  EXPECT_DOUBLE_EQ(m.transitions(200.0, 0.0).k21, 10.0 + 80.0 + 200.0);
}

TEST(MarkovModel, GammaMatchesHandComputedExponential) {
  // For the exponential everything is closed-form; compute Eq. 11 by hand.
  const double lambda = 1.0 / 5000.0;
  const double c = 100.0;
  const double r = 100.0;
  const double t = 1000.0;
  const auto m = exp_model(lambda, c, r);

  const auto F = [&](double x) { return 1.0 - std::exp(-lambda * x); };
  const auto pe = [&](double x) {
    return (1.0 - std::exp(-lambda * x) * (1.0 + lambda * x)) / lambda;
  };
  const double p01 = 1.0 - F(c + t);
  const double p02 = F(c + t);
  const double k02 = pe(c + t) / p02;
  const double p21 = 1.0 - F(c + r + t);
  const double p22 = F(c + r + t);
  const double k22 = pe(c + r + t) / p22;
  const double expected =
      p01 * (c + t) + p02 * (k02 + k22 * p22 / p21 + (c + r + t));
  EXPECT_NEAR(m.gamma(t, 0.0), expected, 1e-9);
}

TEST(MarkovModel, GammaAgainstMonteCarloExponential) {
  const double lambda = 1.0 / 3000.0;
  const auto m = exp_model(lambda, 150.0, 150.0);
  const double t = 800.0;
  const dist::Exponential life(lambda);
  numerics::Rng rng(42);
  double total = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    // First attempt from state 0 (age irrelevant: memoryless).
    double lifetime = life.sample(rng);
    if (lifetime >= 150.0 + t) {
      total += 150.0 + t;
      continue;
    }
    total += lifetime;
    // Retry loop from state 2.
    for (;;) {
      lifetime = life.sample(rng);
      if (lifetime >= 150.0 + 150.0 + t) {
        total += 150.0 + 150.0 + t;
        break;
      }
      total += lifetime;
    }
  }
  EXPECT_NEAR(total / trials / m.gamma(t, 0.0), 1.0, 0.01);
}

TEST(MarkovModel, GammaAgainstMonteCarloConditionedWeibull) {
  // The conditioning path (age > 0) exercised end-to-end against sampling.
  const double shape = 0.43;
  const double scale = 3409.0;
  const double c = 100.0;
  const double age = 2500.0;
  const double t = 1500.0;
  const MarkovModel m = weibull_model(shape, scale, c, c);
  const dist::Weibull life(shape, scale);

  numerics::Rng rng(43);
  double total = 0.0;
  const int trials = 300000;
  for (int i = 0; i < trials; ++i) {
    // Residual lifetime at `age` via inverse transform on the tail.
    const double u = rng.uniform();
    const double p = life.cdf(age) + u * life.survival(age);
    double lifetime = life.quantile(std::min(p, 1.0 - 1e-16)) - age;
    if (lifetime >= c + t) {
      total += c + t;
      continue;
    }
    total += lifetime;
    for (;;) {
      lifetime = life.sample(rng);
      if (lifetime >= c + c + t) {
        total += c + c + t;
        break;
      }
      total += lifetime;
    }
  }
  EXPECT_NEAR(total / trials / m.gamma(t, age), 1.0, 0.02);
}

TEST(MarkovModel, GammaAgainstMonteCarloConditionedHyperexp) {
  // Bimodal availability conditioned on uptime: after 1500 s the machine is
  // probably long-phase, and Γ must reflect that.
  const double c = 120.0;
  const double age = 1500.0;
  const double t = 900.0;
  const auto law = std::make_shared<dist::Hyperexponential>(
      std::vector<double>{0.65, 0.35},
      std::vector<double>{1.0 / 250.0, 1.0 / 12000.0});
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = c;
  const MarkovModel m(law, costs);

  numerics::Rng rng(97);
  double total = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    // Residual lifetime at `age` via inverse transform on the tail.
    const double u = rng.uniform();
    const double p = law->cdf(age) + u * law->survival(age);
    double lifetime = law->quantile(std::min(p, 1.0 - 1e-16)) - age;
    if (lifetime >= c + t) {
      total += c + t;
      continue;
    }
    total += lifetime;
    for (;;) {
      lifetime = law->sample(rng);
      if (lifetime >= c + c + t) {
        total += c + c + t;
        break;
      }
      total += lifetime;
    }
  }
  EXPECT_NEAR(total / trials / m.gamma(t, age), 1.0, 0.02);
}

TEST(MarkovModel, GammaLowerBoundedByIdealTime) {
  const auto m = weibull_model(0.5, 2000.0, 50.0, 50.0);
  for (double t : {10.0, 100.0, 1000.0}) {
    EXPECT_GE(m.gamma(t, 0.0), 50.0 + t);
  }
}

TEST(MarkovModel, GammaIncreasesWithCheckpointCost) {
  const double t = 500.0;
  double prev = 0.0;
  for (double c : {10.0, 50.0, 200.0, 800.0}) {
    const auto m = weibull_model(0.43, 3409.0, c, c);
    const double g = m.gamma(t, 0.0);
    EXPECT_GT(g, prev) << "c=" << c;
    prev = g;
  }
}

TEST(MarkovModel, ConditioningReducesGammaForHeavyTail) {
  // A machine that has been up a long time is safer; the same interval
  // should cost less in expectation.
  const auto m = weibull_model(0.43, 3409.0, 100.0, 100.0);
  EXPECT_LT(m.gamma(1000.0, 20000.0), m.gamma(1000.0, 0.0));
}

TEST(MarkovModel, EfficiencyBetweenZeroAndOne) {
  const auto m = weibull_model(0.6, 1000.0, 250.0, 250.0);
  for (double t : {50.0, 500.0, 5000.0}) {
    const double e = m.expected_efficiency(t, 0.0);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);
  }
}

TEST(MarkovModel, RejectsBadArguments) {
  const auto m = exp_model(1.0, 1.0, 1.0);
  EXPECT_THROW((void)m.transitions(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)m.transitions(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(MarkovModel(nullptr, IntervalCosts{}), std::invalid_argument);
}

TEST(MarkovModel, ZeroCostCheckpointGammaApproachesWorkTime) {
  // With C == R == 0 and a failure-free horizon, Γ ≈ T.
  IntervalCosts costs;  // all zeros
  const MarkovModel m(std::make_shared<dist::Exponential>(1e-9), costs);
  EXPECT_NEAR(m.gamma(100.0, 0.0), 100.0, 1e-3);
}

}  // namespace
}  // namespace harvest::core
