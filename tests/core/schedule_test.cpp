#include "harvest/core/schedule.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

CheckpointSchedule make_schedule(dist::DistributionPtr d, double c,
                                 ScheduleOptions opts = {}) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = c;
  return CheckpointSchedule(MarkovModel(std::move(d), costs), opts);
}

TEST(Schedule, ExponentialIsPeriodic) {
  auto s = make_schedule(std::make_shared<dist::Exponential>(1.0 / 5000.0),
                         100.0);
  EXPECT_TRUE(s.is_periodic());
  EXPECT_NEAR(s.entry(0).work_time / s.entry(7).work_time, 1.0, 1e-3);
}

TEST(Schedule, HeavyTailWeibullIsAperiodicAndEventuallyGrowing) {
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                         100.0);
  EXPECT_FALSE(s.is_periodic());
  // T_opt(age) is U-shaped near zero uptime, so early entries may shrink;
  // once the hazard has decayed the intervals grow monotonically.
  for (std::size_t i = 5; i < 12; ++i) {
    EXPECT_GT(s.entry(i).work_time, s.entry(i - 1).work_time) << "i=" << i;
  }
  EXPECT_GT(s.entry(11).work_time, s.entry(0).work_time);
  // Model-predicted efficiency improves with every survived interval.
  for (std::size_t i = 1; i < 12; ++i) {
    EXPECT_GT(s.entry(i).efficiency, s.entry(i - 1).efficiency) << "i=" << i;
  }
}

TEST(Schedule, HyperexponentialConvergesToLongPhaseInterval) {
  auto s = make_schedule(
      std::make_shared<dist::Hyperexponential>(
          std::vector<double>{0.6, 0.4},
          std::vector<double>{1.0 / 300.0, 1.0 / 28800.0}),
      100.0);
  EXPECT_FALSE(s.is_periodic());
  // Once uptime has outlived the short phase, the conditional law is the
  // long phase's exponential, whose periodic optimum the schedule must
  // approach.
  auto limit = make_schedule(
      std::make_shared<dist::Exponential>(1.0 / 28800.0), 100.0);
  const double t_limit = limit.entry(0).work_time;
  EXPECT_NEAR(s.entry(8).work_time / t_limit, 1.0, 0.05);
  // And convergence is monotone from above here: early entries are larger
  // because a (probably short-phase) machine will fail soon regardless.
  EXPECT_GT(s.entry(0).work_time, s.entry(8).work_time);
}

TEST(Schedule, AgeRecurrenceHolds) {
  const double c = 150.0;
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.5, 2000.0), c);
  for (std::size_t i = 1; i < 6; ++i) {
    const auto& prev = s.entry(i - 1);
    const auto& cur = s.entry(i);
    EXPECT_NEAR(cur.age, prev.age + prev.work_time + c, 1e-9);
  }
}

TEST(Schedule, RecoveryLeadsSetsFirstAge) {
  const double c = 200.0;
  ScheduleOptions opts;
  opts.recovery_leads = true;
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.5, 2000.0), c,
                         opts);
  EXPECT_DOUBLE_EQ(s.entry(0).age, c);  // recovery == checkpoint cost here

  ScheduleOptions no_lead;
  no_lead.recovery_leads = false;
  auto s2 = make_schedule(std::make_shared<dist::Weibull>(0.5, 2000.0), c,
                          no_lead);
  EXPECT_DOUBLE_EQ(s2.entry(0).age, 0.0);
}

TEST(Schedule, InitialAgeShiftsSchedule) {
  ScheduleOptions opts;
  opts.initial_age = 10000.0;
  opts.recovery_leads = false;
  auto aged = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                            100.0, opts);
  auto fresh = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                             100.0,
                             []() {
                               ScheduleOptions o;
                               o.recovery_leads = false;
                               return o;
                             }());
  // An old machine starts with a longer first interval.
  EXPECT_GT(aged.entry(0).work_time, fresh.entry(0).work_time);
}

TEST(Schedule, LazyMemoization) {
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.5, 2000.0), 100.0);
  EXPECT_EQ(s.computed(), 0u);
  (void)s.entry(4);
  EXPECT_EQ(s.computed(), 5u);
  const double t4 = s.entry(4).work_time;
  (void)s.entry(2);
  EXPECT_EQ(s.computed(), 5u);  // no recomputation
  EXPECT_DOUBLE_EQ(s.entry(4).work_time, t4);
}

TEST(Schedule, EntriesCarryModelPredictions) {
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.5, 2000.0), 100.0);
  const auto& e = s.entry(0);
  EXPECT_GT(e.gamma, e.work_time);
  EXPECT_NEAR(e.efficiency, e.work_time / e.gamma, 1e-12);
}

TEST(Schedule, DisablingConditioningMakesAnyModelPeriodic) {
  ScheduleOptions opts;
  opts.condition_on_age = false;
  auto s = make_schedule(std::make_shared<dist::Weibull>(0.43, 3409.0),
                         100.0, opts);
  EXPECT_TRUE(s.is_periodic());
  EXPECT_DOUBLE_EQ(s.entry(0).work_time, s.entry(6).work_time);
  EXPECT_DOUBLE_EQ(s.entry(0).age, s.entry(6).age);
}

TEST(Schedule, RejectsNegativeInitialAge) {
  ScheduleOptions opts;
  opts.initial_age = -1.0;
  EXPECT_THROW(make_schedule(std::make_shared<dist::Exponential>(1.0), 1.0,
                             opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
