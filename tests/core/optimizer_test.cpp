#include "harvest/core/optimizer.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

CheckpointOptimizer make_optimizer(dist::DistributionPtr d, double c,
                                   OptimizerOptions opts = {}) {
  IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = c;
  return CheckpointOptimizer(MarkovModel(std::move(d), costs), opts);
}

TEST(Optimizer, ExponentialNearYoungApproximation) {
  // For λ(C+T) << 1, T_opt ≈ sqrt(2C/λ) (Young 1974).
  const double lambda = 1e-6;
  const double c = 50.0;
  const auto opt =
      make_optimizer(std::make_shared<dist::Exponential>(lambda), c);
  const auto r = opt.optimize(0.0);
  const double young = std::sqrt(2.0 * c / lambda);
  EXPECT_NEAR(r.work_time / young, 1.0, 0.05);
  EXPECT_FALSE(r.at_upper_bound);
}

TEST(Optimizer, ResultIsALocalMinimumOfOverheadRatio) {
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.43, 3409.0), 100.0);
  const auto r = opt.optimize(0.0);
  const auto& m = opt.model();
  const double at = m.overhead_ratio(r.work_time, 0.0);
  EXPECT_LT(at, m.overhead_ratio(r.work_time * 0.8, 0.0));
  EXPECT_LT(at, m.overhead_ratio(r.work_time * 1.25, 0.0));
}

TEST(Optimizer, GlobalGridCheck) {
  // Dense scan finds nothing better than the returned optimum.
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.6, 2000.0), 250.0);
  const auto r = opt.optimize(500.0);
  const auto& m = opt.model();
  for (double t = 10.0; t < 1e6; t *= 1.15) {
    EXPECT_GE(m.overhead_ratio(t, 500.0),
              m.overhead_ratio(r.work_time, 500.0) - 1e-9)
        << "t=" << t;
  }
}

TEST(Optimizer, WorkTimeGrowsWithCheckpointCost) {
  double prev = 0.0;
  for (double c : {10.0, 50.0, 200.0, 1000.0}) {
    const auto opt = make_optimizer(
        std::make_shared<dist::Weibull>(0.43, 3409.0), c);
    const double t = opt.optimize(0.0).work_time;
    EXPECT_GT(t, prev) << "c=" << c;
    prev = t;
  }
}

TEST(Optimizer, EfficiencyDecreasesWithCheckpointCost) {
  double prev = 1.0;
  for (double c : {10.0, 100.0, 500.0, 1500.0}) {
    const auto opt = make_optimizer(
        std::make_shared<dist::Weibull>(0.43, 3409.0), c);
    const double e = opt.optimize(0.0).efficiency;
    EXPECT_LT(e, prev) << "c=" << c;
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

TEST(Optimizer, HeavyTailScheduleDependsOnAge) {
  // Decreasing hazard makes the schedule aperiodic. T_opt(age) is actually
  // U-shaped for this Weibull (large near 0 where failure is near-certain
  // anyway, dipping around one scale, then growing without bound), so the
  // robust invariants are: (a) it varies with age, (b) it grows once the
  // hazard has genuinely decayed.
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.43, 3409.0), 100.0);
  const double t0 = opt.optimize(0.0).work_time;
  const double t1k = opt.optimize(1000.0).work_time;
  EXPECT_GT(std::fabs(t1k - t0) / t0, 0.02);  // genuinely aperiodic
  double prev = 0.0;
  for (double age : {3000.0, 10000.0, 30000.0, 100000.0}) {
    const double t = opt.optimize(age).work_time;
    EXPECT_GT(t, prev) << "age=" << age;
    prev = t;
  }
  EXPECT_GT(opt.optimize(100000.0).work_time, t0);
}

TEST(Optimizer, HeavyTailPredictedEfficiencyGrowsWithAge) {
  // Surviving longer is always good news under a decreasing hazard: the
  // expected efficiency of the next interval increases monotonically.
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.43, 3409.0), 100.0);
  double prev = 0.0;
  for (double age : {0.0, 300.0, 1000.0, 3000.0, 10000.0, 100000.0}) {
    const double e = opt.optimize(age).efficiency;
    EXPECT_GT(e, prev) << "age=" << age;
    prev = e;
  }
}

TEST(Optimizer, ExponentialIntervalIndependentOfAge) {
  const auto opt = make_optimizer(
      std::make_shared<dist::Exponential>(1.0 / 5000.0), 100.0);
  const double t0 = opt.optimize(0.0).work_time;
  const double t1 = opt.optimize(50000.0).work_time;
  EXPECT_NEAR(t0 / t1, 1.0, 1e-3);
}

TEST(Optimizer, UpperBoundFlagWhenFailureNegligible) {
  // Mean availability of ~32 years: never checkpointing wins; the search
  // pins to t_max and says so.
  OptimizerOptions opts;
  opts.t_max = 3600.0 * 24.0;
  const auto opt = make_optimizer(
      std::make_shared<dist::Exponential>(1e-9), 500.0, opts);
  const auto r = opt.optimize(0.0);
  EXPECT_TRUE(r.at_upper_bound);
}

TEST(Optimizer, RespectsSearchRange) {
  OptimizerOptions opts;
  opts.t_min = 100.0;
  opts.t_max = 200.0;
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.43, 3409.0), 10.0, opts);
  const auto r = opt.optimize(0.0);
  EXPECT_GE(r.work_time, 100.0 * (1.0 - 1e-9));
  EXPECT_LE(r.work_time, 200.0 * (1.0 + 1e-9));
}

TEST(Optimizer, RejectsBadOptions) {
  OptimizerOptions opts;
  opts.t_min = 0.0;
  EXPECT_THROW(make_optimizer(std::make_shared<dist::Exponential>(1.0), 1.0,
                              opts),
               std::invalid_argument);
  opts.t_min = 10.0;
  opts.t_max = 5.0;
  EXPECT_THROW(make_optimizer(std::make_shared<dist::Exponential>(1.0), 1.0,
                              opts),
               std::invalid_argument);
}

TEST(Optimizer, GammaEfficiencyConsistent) {
  const auto opt = make_optimizer(
      std::make_shared<dist::Weibull>(0.5, 1500.0), 250.0);
  const auto r = opt.optimize(0.0);
  EXPECT_NEAR(r.efficiency, r.work_time / r.gamma, 1e-12);
}

}  // namespace
}  // namespace harvest::core
