// Parameterized property suite over the core checkpoint machinery: every
// invariant must hold for every (availability family, checkpoint cost,
// machine age) combination. This is the optimizer-level analog of the
// distribution property suite.
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/core/optimizer.hpp"
#include "harvest/core/prediction.hpp"
#include "harvest/core/schedule.hpp"
#include "harvest/dist/exponential.hpp"
#include "harvest/dist/gamma.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::core {
namespace {

struct CoreCase {
  std::string label;
  std::function<dist::DistributionPtr()> make_model;
  double cost;
  double age;
};

std::vector<CoreCase> core_cases() {
  const auto weibull = [] {
    return std::make_shared<dist::Weibull>(0.43, 3409.0);
  };
  const auto expo = [] {
    return std::make_shared<dist::Exponential>(1.0 / 5000.0);
  };
  const auto hyper = [] {
    return std::make_shared<dist::Hyperexponential>(
        std::vector<double>{0.65, 0.35},
        std::vector<double>{1.0 / 240.0, 1.0 / 14400.0});
  };
  const auto lognormal = [] {
    return std::make_shared<dist::Lognormal>(7.4, 1.3);
  };
  const auto gamma = [] { return std::make_shared<dist::GammaDist>(0.6, 4000.0); };

  std::vector<CoreCase> cases;
  for (const auto& [name, make] :
       std::vector<std::pair<std::string, std::function<dist::DistributionPtr()>>>{
           {"weibull", weibull},
           {"exponential", expo},
           {"hyperexp2", hyper},
           {"lognormal", lognormal},
           {"gamma", gamma}}) {
    for (double cost : {50.0, 500.0}) {
      for (double age : {0.0, 2000.0}) {
        CoreCase c;
        c.label = name + "_c" + std::to_string(static_cast<int>(cost)) +
                  "_a" + std::to_string(static_cast<int>(age));
        c.make_model = make;
        c.cost = cost;
        c.age = age;
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

class CoreProperty : public ::testing::TestWithParam<CoreCase> {
 protected:
  CoreProperty() {
    IntervalCosts costs;
    costs.checkpoint = GetParam().cost;
    costs.recovery = GetParam().cost;
    model_ = std::make_unique<MarkovModel>(GetParam().make_model(), costs);
  }
  std::unique_ptr<MarkovModel> model_;
};

TEST_P(CoreProperty, TransitionsFormDistributions) {
  for (double t : {10.0, 300.0, 3000.0}) {
    const auto tr = model_->transitions(t, GetParam().age);
    EXPECT_NEAR(tr.p01 + tr.p02, 1.0, 1e-12);
    EXPECT_NEAR(tr.p21 + tr.p22, 1.0, 1e-12);
    EXPECT_GE(tr.p01, 0.0);
    EXPECT_LE(tr.p01, 1.0);
  }
}

TEST_P(CoreProperty, ExpectedFailureTimesInsideWindows) {
  const double c = GetParam().cost;
  for (double t : {10.0, 300.0, 3000.0}) {
    const auto tr = model_->transitions(t, GetParam().age);
    if (tr.p02 > 0.0) {
      EXPECT_GE(tr.k02, 0.0);
      EXPECT_LE(tr.k02, c + t + 1e-9);
    }
    if (tr.p22 > 0.0) {
      EXPECT_GE(tr.k22, 0.0);
      EXPECT_LE(tr.k22, 2.0 * c + t + 1e-9);
    }
  }
}

TEST_P(CoreProperty, GammaDominatesIdealTime) {
  for (double t : {10.0, 300.0, 3000.0}) {
    EXPECT_GE(model_->gamma(t, GetParam().age),
              GetParam().cost + t - 1e-9);
  }
}

TEST_P(CoreProperty, GammaIsMonotoneInWorkTime) {
  // More work per interval can only take longer in expectation.
  double prev = 0.0;
  for (double t : {10.0, 100.0, 1000.0, 10000.0}) {
    const double g = model_->gamma(t, GetParam().age);
    EXPECT_GT(g, prev) << "t=" << t;
    prev = g;
  }
}

TEST_P(CoreProperty, OptimizerFindsInteriorLocalMinimum) {
  const CheckpointOptimizer opt(*model_);
  const auto r = opt.optimize(GetParam().age);
  EXPECT_GT(r.work_time, 0.0);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LE(r.efficiency, 1.0);
  if (!r.at_upper_bound) {
    const double at = model_->overhead_ratio(r.work_time, GetParam().age);
    EXPECT_LE(at,
              model_->overhead_ratio(r.work_time * 0.8, GetParam().age) +
                  1e-9);
    EXPECT_LE(at,
              model_->overhead_ratio(r.work_time * 1.25, GetParam().age) +
                  1e-9);
  }
}

TEST_P(CoreProperty, ScheduleAgesAreConsistent) {
  ScheduleOptions opts;
  opts.initial_age = GetParam().age;
  CheckpointSchedule schedule(*model_, opts);
  for (std::size_t i = 1; i < 5; ++i) {
    const auto prev = schedule.entry(i - 1);
    const auto cur = schedule.entry(i);
    EXPECT_NEAR(cur.age, prev.age + prev.work_time + GetParam().cost, 1e-9);
    EXPECT_GT(cur.work_time, 0.0);
  }
}

TEST_P(CoreProperty, PredictionConsistentWithModel) {
  const CheckpointOptimizer opt(*model_);
  const auto r = opt.optimize(GetParam().age);
  const auto p =
      predict_steady_state(*model_, r.work_time, GetParam().age);
  EXPECT_NEAR(p.efficiency, r.efficiency, 1e-9);
  EXPECT_GE(p.recovery_visits, 0.0);
  EXPECT_GT(p.transfers_per_hour, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CoreProperty,
                         ::testing::ValuesIn(core_cases()),
                         [](const ::testing::TestParamInfo<CoreCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace harvest::core
