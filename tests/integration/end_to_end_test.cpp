// End-to-end integration: synthetic pool → model fitting → checkpoint
// schedules → trace-driven simulation, asserting (at reduced scale) the
// qualitative findings of the paper's §5.1.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/synthetic.hpp"

namespace harvest {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace::PoolSpec spec;
    spec.machine_count = 30;
    spec.durations_per_machine = 100;
    spec.seed = 2005;
    traces_ = new std::vector<trace::AvailabilityTrace>();
    for (auto& m : trace::generate_pool(spec)) {
      traces_->push_back(std::move(m.trace));
    }
  }
  static void TearDownTestSuite() {
    delete traces_;
    traces_ = nullptr;
  }

  static sim::ExperimentResult run(core::ModelFamily family, double cost) {
    sim::ExperimentConfig cfg;
    cfg.checkpoint_cost_s = cost;
    return sim::run_trace_experiment(*traces_, family, cfg);
  }

  static std::vector<trace::AvailabilityTrace>* traces_;
};

std::vector<trace::AvailabilityTrace>* EndToEnd::traces_ = nullptr;

TEST_F(EndToEnd, AllFamiliesProduceComparableEfficiency) {
  // Paper: "application efficiency is relatively insensitive to the choice
  // of probability distribution".
  std::map<std::string, double> eff;
  for (core::ModelFamily f : core::paper_families()) {
    const auto res = run(f, 100.0);
    ASSERT_GT(res.machines.size(), 20u) << core::to_string(f);
    eff[core::to_string(f)] = stats::mean_of(res.efficiencies());
  }
  for (const auto& [name, e] : eff) {
    EXPECT_GT(e, 0.35) << name;
    EXPECT_LT(e, 0.95) << name;
  }
  // Spread across models stays small (paper Table 1 row 100: 0.669–0.688).
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& [name, e] : eff) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_LT(hi - lo, 0.12);
}

TEST_F(EndToEnd, ExponentialConsumesMostBandwidth) {
  // Paper: "the exponential-based checkpoint schedule significantly (and
  // substantially) underperforms all of the other approaches" on network.
  std::map<std::string, double> mb;
  for (core::ModelFamily f : core::paper_families()) {
    const auto res = run(f, 500.0);
    mb[core::to_string(f)] = stats::mean_of(res.network_mbs());
  }
  EXPECT_GT(mb["exponential"], mb["hyperexp2"]);
  EXPECT_GT(mb["exponential"], mb["hyperexp3"]);
  // ≥ 30 % saving for the 2-phase hyperexponential at C >= 200 s.
  EXPECT_LT(mb["hyperexp2"] / mb["exponential"], 0.85);
}

TEST_F(EndToEnd, EfficiencyFallsWithCheckpointCost) {
  double prev = 1.0;
  for (double c : {50.0, 250.0, 1000.0}) {
    const auto res = run(core::ModelFamily::kWeibull, c);
    const double e = stats::mean_of(res.efficiencies());
    EXPECT_LT(e, prev) << "c=" << c;
    prev = e;
  }
}

TEST_F(EndToEnd, BandwidthFallsWithCheckpointCost) {
  // Longer checkpoints → longer intervals → fewer transfers (Figure 4's
  // downward slope).
  double prev = 1e18;
  for (double c : {50.0, 250.0, 1000.0}) {
    const auto res = run(core::ModelFamily::kExponential, c);
    const double mb = stats::mean_of(res.network_mbs());
    EXPECT_LT(mb, prev) << "c=" << c;
    prev = mb;
  }
}

TEST_F(EndToEnd, PairedMachinesLineUpAcrossFamilies) {
  const auto a = run(core::ModelFamily::kExponential, 100.0);
  const auto b = run(core::ModelFamily::kWeibull, 100.0);
  // Same machines (no skips differ) in the same order: paired comparisons
  // are meaningful.
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (std::size_t i = 0; i < a.machines.size(); ++i) {
    EXPECT_EQ(a.machines[i].machine_id, b.machines[i].machine_id);
  }
}

}  // namespace
}  // namespace harvest
