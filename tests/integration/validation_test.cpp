// The paper's §5.3 validation, as a test: replay the availability periods
// recorded during the live (emulated) experiment through the offline trace
// simulator with the mean measured transfer cost, and require the two
// efficiency estimates to agree within the tolerances the paper discusses
// (right-censoring and variable-vs-constant C explain small discrepancies).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "harvest/condor/live_experiment.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/sim/job_sim.hpp"

namespace harvest {
namespace {

TEST(Validation, SimulationPredictsLiveEfficiency) {
  // Build a pool and histories.
  std::vector<condor::Machine> machines;
  for (std::size_t i = 0; i < 8; ++i) {
    condor::Machine m;
    m.id = "v" + std::to_string(i);
    m.availability_law = std::make_shared<dist::Weibull>(0.45, 3000.0);
    machines.push_back(std::move(m));
  }
  condor::Pool pool(machines, 31);
  auto histories = pool.collect_traces(40);

  condor::LiveExperimentConfig cfg;
  cfg.placements = 120;
  cfg.seed = 71;
  condor::LiveExperiment live(pool, histories, net::BandwidthModel::campus(),
                              cfg);
  const auto live_result = live.run(core::ModelFamily::kWeibull);

  // Post-mortem replay: same periods, constant cost = mean measured
  // transfer, same model family fitted from the same training data.
  std::vector<double> periods;
  for (const auto& p : live_result.placements) periods.push_back(p.period_s);
  const double mean_cost = live_result.mean_transfer_s();
  ASSERT_GT(mean_cost, 0.0);

  core::IntervalCosts costs;
  costs.checkpoint = mean_cost;
  costs.recovery = mean_cost;
  // One representative fitted model (machine histories share a law here).
  std::span<const double> training(histories[0].durations.data(), 25);
  auto model = core::Planner::fit_model(training, core::ModelFamily::kWeibull);
  auto schedule = core::Planner::make_schedule(model, costs);
  const auto sim_result = sim::simulate_job_on_trace(periods, schedule);

  const double live_eff = live_result.avg_efficiency();
  const double sim_eff = sim_result.efficiency();
  EXPECT_GT(live_eff, 0.0);
  EXPECT_GT(sim_eff, 0.0);
  // Paper: "these factors are not drastically effecting the simulations,
  // but do explain small discrepancies".
  EXPECT_NEAR(live_eff, sim_eff, 0.12)
      << "live=" << live_eff << " sim=" << sim_eff;
}

TEST(Validation, NetworkLoadAgreesWithinTolerance) {
  std::vector<condor::Machine> machines;
  for (std::size_t i = 0; i < 6; ++i) {
    condor::Machine m;
    m.id = "n" + std::to_string(i);
    m.availability_law = std::make_shared<dist::Weibull>(0.5, 4000.0);
    machines.push_back(std::move(m));
  }
  condor::Pool pool(machines, 37);
  auto histories = pool.collect_traces(40);

  condor::LiveExperimentConfig cfg;
  cfg.placements = 120;
  cfg.seed = 73;
  condor::LiveExperiment live(pool, histories, net::BandwidthModel::campus(),
                              cfg);
  const auto live_result = live.run(core::ModelFamily::kHyperexp2);

  std::vector<double> periods;
  for (const auto& p : live_result.placements) periods.push_back(p.period_s);
  core::IntervalCosts costs;
  costs.checkpoint = live_result.mean_transfer_s();
  costs.recovery = costs.checkpoint;
  std::span<const double> training(histories[0].durations.data(), 25);
  auto model =
      core::Planner::fit_model(training, core::ModelFamily::kHyperexp2);
  auto schedule = core::Planner::make_schedule(model, costs);
  const auto sim_result = sim::simulate_job_on_trace(periods, schedule);

  const double live_rate = live_result.megabytes_per_hour();
  const double sim_rate = sim_result.mb_per_hour();
  ASSERT_GT(live_rate, 0.0);
  ASSERT_GT(sim_rate, 0.0);
  EXPECT_NEAR(live_rate / sim_rate, 1.0, 0.35);
}

}  // namespace
}  // namespace harvest
