// Cross-module integration paths not covered by the end-to-end study:
// model serialization through the planner, censoring-aware fitting feeding
// the simulator, and the CSV round trip feeding the experiment engine.
#include <sstream>

#include <gtest/gtest.h>

#include "harvest/dist/serialize.hpp"
#include "harvest/fit/censored.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/trace/io.hpp"
#include "harvest/trace/synthetic.hpp"

namespace harvest {
namespace {

TEST(Pipeline, SerializedModelPlansIdentically) {
  // Fit on one host (monitor side), serialize, deserialize on another (the
  // test process), plan — schedules must match exactly.
  const auto trace = trace::sample_trace(dist::Weibull(0.43, 3409.0), 25,
                                         3, "wire");
  auto fitted =
      core::Planner::fit_model(trace.durations, core::ModelFamily::kWeibull);
  auto restored = dist::deserialize(dist::serialize(*fitted));

  core::IntervalCosts costs;
  costs.checkpoint = 110.0;
  costs.recovery = 110.0;
  auto a = core::Planner::make_schedule(fitted, costs);
  auto b = core::Planner::make_schedule(restored, costs);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.entry(i).work_time, b.entry(i).work_time) << i;
  }
}

TEST(Pipeline, CensoringAwareFitImprovesSimulatedOutcome) {
  // Ground truth trace; training window censored hard. The naive fit
  // schedules too pessimistically; the censoring-aware fit should waste
  // less bandwidth at equal-or-better efficiency.
  const dist::Weibull truth(0.43, 3409.0);
  numerics::Rng rng(11);
  std::vector<double> train(60);
  for (auto& x : train) x = truth.sample(rng);
  std::vector<double> test(400);
  for (auto& x : test) x = truth.sample(rng);

  const auto censored = fit::CensoredSample::censor_at(train, 1200.0);
  const auto naive = fit::fit_weibull_mle(censored.values);
  const auto aware = fit::fit_weibull_censored(censored);

  core::IntervalCosts costs;
  costs.checkpoint = 250.0;
  costs.recovery = 250.0;
  auto sched_naive = core::Planner::make_schedule(
      std::make_shared<dist::Weibull>(naive), costs);
  auto sched_aware = core::Planner::make_schedule(
      std::make_shared<dist::Weibull>(aware), costs);
  const auto res_naive = sim::simulate_job_on_trace(test, sched_naive);
  const auto res_aware = sim::simulate_job_on_trace(test, sched_aware);

  EXPECT_LT(res_aware.network_mb, res_naive.network_mb * 0.9);
  EXPECT_GE(res_aware.efficiency(), res_naive.efficiency() - 0.02);
}

TEST(Pipeline, CsvRoundTripPreservesExperimentResults) {
  trace::PoolSpec spec;
  spec.machine_count = 10;
  spec.durations_per_machine = 60;
  spec.seed = 77;
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  std::stringstream buffer;
  trace::write_traces_csv(buffer, traces);
  const auto reloaded = trace::read_traces_csv(buffer);

  sim::ExperimentConfig cfg;
  cfg.checkpoint_cost_s = 100.0;
  const auto a =
      sim::run_trace_experiment(traces, core::ModelFamily::kWeibull, cfg);
  const auto b =
      sim::run_trace_experiment(reloaded, core::ModelFamily::kWeibull, cfg);
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (std::size_t i = 0; i < a.machines.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.machines[i].sim.efficiency(),
                     b.machines[i].sim.efficiency());
  }
}

}  // namespace
}  // namespace harvest
