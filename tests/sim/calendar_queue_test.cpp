// CalendarQueue ordering contract: ascending (time, key) pops, bit-exact
// and independent of push order, bucket count, or resize history. The
// engines' determinism rests on this, so the stress tests mirror every
// operation against a sorted reference and compare pop-for-pop.
#include "harvest/sim/calendar_queue.hpp"

#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::sim {
namespace {

using Queue = CalendarQueue<int>;
using Ref = std::tuple<double, std::uint64_t, int>;  // (time, key, payload)
using RefQueue =
    std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>>;

TEST(CalendarQueue, EmptyBehaviour) {
  Queue q(10.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_EQ(q.next_time(), std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(CalendarQueue, RejectsBadTimes) {
  Queue q(10.0);
  EXPECT_THROW(q.push(-1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), 0, 0),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PopsInTimeOrder) {
  Queue q(10.0);
  q.push(30.0, 0, 3);
  q.push(10.0, 1, 1);
  q.push(20.0, 2, 2);
  EXPECT_EQ(q.next_time(), 10.0);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EqualTimesPopInKeyOrderRegardlessOfPushOrder) {
  // Two permutations of the same (time, key) set must pop identically.
  const std::vector<std::uint64_t> keys = {5, 1, 9, 3, 7, 0, 2, 8};
  Queue fwd(10.0);
  Queue rev(10.0);
  for (const auto k : keys) fwd.push(42.0, k, static_cast<int>(k));
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    rev.push(42.0, *it, static_cast<int>(*it));
  }
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto a = fwd.pop();
    const auto b = rev.pop();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.payload, b.payload);
    if (i > 0) EXPECT_GT(a.key, prev);
    prev = a.key;
  }
}

TEST(CalendarQueue, PushEarlierThanScannedMinIsNotSkipped) {
  // Regression: with one far-future entry, peek() advances the lazy scan
  // many days past the last popped time. A later push in between — after
  // the cursor but before the scanned day — must still pop first.
  Queue q(300.0, 8);
  q.push(1000.0, 0, 0);
  EXPECT_EQ(q.pop().payload, 0);  // cursor now 1000
  q.push(5000.0, 1, 1);
  EXPECT_EQ(q.next_time(), 5000.0);  // scan ran ahead to day(5000)
  q.push(2000.0, 2, 2);              // earlier day, after the cursor
  EXPECT_EQ(q.next_time(), 2000.0);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 1);
}

TEST(CalendarQueue, GrowsAndShrinksWhileStayingSorted) {
  Queue q(1.0, 8);
  const std::size_t initial = q.bucket_count();
  for (std::size_t i = 0; i < 512; ++i) {
    q.push(static_cast<double>((i * 137) % 997), i, static_cast<int>(i));
  }
  EXPECT_GT(q.bucket_count(), initial);
  double prev = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
  EXPECT_LE(q.bucket_count(), initial * 8);
}

TEST(CalendarQueue, DegenerateWidthEstimatesStayCorrect) {
  // All times equal: a resize cannot infer a span, and the near-zero span
  // path must not break ordering (keys still tie-break).
  Queue q(1.0, 8);
  for (std::size_t i = 0; i < 64; ++i) {
    q.push(7.0, 63 - i, static_cast<int>(63 - i));
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    const auto e = q.pop();
    EXPECT_EQ(e.time, 7.0);
    EXPECT_EQ(e.key, k);
  }

  // Times packed into a tiny span around a large offset: the re-estimated
  // width is pathologically narrow relative to the magnitude.
  Queue tight(1.0, 8);
  for (std::size_t i = 0; i < 64; ++i) {
    tight.push(1.0e9 + 1.0e-3 * static_cast<double>((i * 29) % 64), i,
               static_cast<int>(i));
  }
  double prev = 0.0;
  while (!tight.empty()) {
    const auto e = tight.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

/// Discrete-event style stress: interleave pushes (at or after the last
/// popped time, like an engine scheduling from `now`) with pops, mirroring
/// a std::priority_queue, across width/bucket configurations that force
/// wraps and resizes. Every pop must match the mirror exactly.
TEST(CalendarQueue, StressMatchesReferenceHeap) {
  const double widths[] = {0.5, 37.0, 300.0};
  for (const double width : widths) {
    Queue q(width, 8);
    RefQueue ref;
    numerics::Rng rng(20260808u ^
                      static_cast<std::uint64_t>(width * 16.0));
    double now = 0.0;
    std::uint64_t seq = 0;
    for (std::size_t step = 0; step < 20000; ++step) {
      const double u = rng.uniform();
      if (u < 0.55 || ref.empty()) {
        // Mix of near-future bursts and sparse far-future events, plus
        // exact ties at `now` (key-order critical).
        double t = now;
        const double v = rng.uniform();
        if (v < 0.2) {
          t = now;  // tie at the clock
        } else if (v < 0.9) {
          t = now + 3000.0 * rng.uniform();
        } else {
          t = now + 1.0e6 * rng.uniform();  // far future: scan runs ahead
        }
        const std::uint64_t key = seq++;
        q.push(t, key, static_cast<int>(key & 0x7fffffff));
        ref.emplace(t, key, static_cast<int>(key & 0x7fffffff));
      } else {
        const auto got = q.pop();
        const auto [t, key, payload] = ref.top();
        ref.pop();
        ASSERT_EQ(got.time, t) << "width " << width << " step " << step;
        ASSERT_EQ(got.key, key) << "width " << width << " step " << step;
        ASSERT_EQ(got.payload, payload);
        now = got.time;
      }
    }
    while (!ref.empty()) {
      const auto got = q.pop();
      const auto [t, key, payload] = ref.top();
      ref.pop();
      ASSERT_EQ(got.time, t);
      ASSERT_EQ(got.key, key);
      ASSERT_EQ(got.payload, payload);
    }
    EXPECT_TRUE(q.empty());
  }
}

/// Adversarial drain/refill cycles: repeatedly drain to nearly empty (deep
/// shrink resizes), then refill far ahead of the cursor (deep grows), so
/// the scan is rebuilt across radically different widths.
TEST(CalendarQueue, DrainRefillCyclesMatchReference) {
  Queue q(10.0, 8);
  RefQueue ref;
  numerics::Rng rng(99u);
  double now = 0.0;
  std::uint64_t seq = 0;
  for (std::size_t cycle = 0; cycle < 40; ++cycle) {
    const double spread = (cycle % 2 == 0) ? 50.0 : 2.0e5;
    for (std::size_t i = 0; i < 100; ++i) {
      const double t = now + spread * rng.uniform();
      const std::uint64_t key = seq++;
      q.push(t, key, static_cast<int>(key));
      ref.emplace(t, key, static_cast<int>(key));
    }
    const std::size_t drain = (cycle % 3 == 2) ? ref.size() : 99;
    for (std::size_t i = 0; i < drain; ++i) {
      const auto got = q.pop();
      const auto [t, key, payload] = ref.top();
      ref.pop();
      ASSERT_EQ(got.time, t) << "cycle " << cycle << " pop " << i;
      ASSERT_EQ(got.key, key);
      now = got.time;
    }
  }
}

}  // namespace
}  // namespace harvest::sim
