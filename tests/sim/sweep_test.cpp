#include "harvest/sim/sweep.hpp"

#include <gtest/gtest.h>

#include "harvest/trace/synthetic.hpp"

namespace harvest::sim {
namespace {

std::vector<trace::AvailabilityTrace> small_traces() {
  trace::PoolSpec spec;
  spec.machine_count = 16;
  spec.durations_per_machine = 70;
  spec.seed = 99;
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  return traces;
}

TEST(Sweep, ShapesAndPairing) {
  SweepConfig cfg;
  cfg.costs = {100.0, 500.0};
  const auto res = run_sweep(small_traces(), cfg);
  ASSERT_EQ(res.rows.size(), 2u);
  ASSERT_EQ(res.families.size(), 4u);
  for (const auto& row : res.rows) {
    ASSERT_EQ(row.efficiency.size(), 4u);
    // Pairing: every family has identical machine counts.
    for (std::size_t f = 1; f < 4; ++f) {
      EXPECT_EQ(row.efficiency[f].size(), row.efficiency[0].size());
      EXPECT_EQ(row.network_mb[f].size(), row.network_mb[0].size());
    }
    EXPECT_GT(row.machines(), 10u);
  }
}

TEST(Sweep, CellsCarryCiAndLetters) {
  SweepConfig cfg;
  cfg.costs = {500.0};
  const auto res = run_sweep(small_traces(), cfg);
  bool any_beats = false;
  for (std::size_t f = 0; f < 4; ++f) {
    const auto eff = res.cell(0, f, SweepMetric::kEfficiency);
    EXPECT_GT(eff.ci.mean, 0.0);
    EXPECT_LT(eff.ci.mean, 1.0);
    EXPECT_GT(eff.ci.half_width, 0.0);
    const auto mb = res.cell(0, f, SweepMetric::kNetworkMb);
    EXPECT_GT(mb.ci.mean, 0.0);
    any_beats |= !mb.beats.empty();
  }
  // The exponential's bandwidth is so much worse that SOMEONE must beat it.
  EXPECT_TRUE(any_beats);
}

TEST(Sweep, ExponentialLosesOnBandwidth) {
  // Needs a larger pool than the other tests: the paired t-test must reach
  // significance, not just the right ordering.
  trace::PoolSpec spec;
  spec.machine_count = 48;
  spec.durations_per_machine = 90;
  spec.seed = 101;
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  SweepConfig cfg;
  cfg.costs = {500.0};
  const auto res = run_sweep(traces, cfg);
  const auto h2 = res.cell(0, 2, SweepMetric::kNetworkMb);
  const auto e = res.cell(0, 0, SweepMetric::kNetworkMb);
  EXPECT_LT(h2.ci.mean, e.ci.mean);
  // Letters mark families with significantly SMALLER values, so the
  // hyperexponential shows up in the exponential's cell (not vice versa).
  EXPECT_NE(e.beats.find('2'), std::string::npos);
  EXPECT_EQ(h2.beats.find('e'), std::string::npos);
}

TEST(Sweep, FamilyLettersStable) {
  EXPECT_EQ(family_letter(core::ModelFamily::kExponential), 'e');
  EXPECT_EQ(family_letter(core::ModelFamily::kWeibull), 'w');
  EXPECT_EQ(family_letter(core::ModelFamily::kHyperexp2), '2');
  EXPECT_EQ(family_letter(core::ModelFamily::kHyperexp3), '3');
  EXPECT_EQ(family_letter(core::ModelFamily::kLognormal), 'l');
  EXPECT_EQ(family_letter(core::ModelFamily::kGamma), 'g');
}

TEST(Sweep, CustomFamilySubset) {
  SweepConfig cfg;
  cfg.costs = {250.0};
  cfg.families = {core::ModelFamily::kWeibull, core::ModelFamily::kGamma};
  const auto res = run_sweep(small_traces(), cfg);
  ASSERT_EQ(res.families.size(), 2u);
  ASSERT_EQ(res.rows[0].efficiency.size(), 2u);
  EXPECT_GT(res.rows[0].machines(), 10u);
}

TEST(Sweep, RejectsEmptyGrid) {
  SweepConfig cfg;
  cfg.costs = {};
  EXPECT_THROW((void)run_sweep(small_traces(), cfg), std::invalid_argument);
  cfg.costs = {100.0};
  cfg.families = {};
  EXPECT_THROW((void)run_sweep(small_traces(), cfg), std::invalid_argument);
}

TEST(Sweep, OutOfRangeCellThrows) {
  SweepConfig cfg;
  cfg.costs = {100.0};
  const auto res = run_sweep(small_traces(), cfg);
  EXPECT_THROW((void)res.cell(1, 0, SweepMetric::kEfficiency),
               std::out_of_range);
  EXPECT_THROW((void)res.cell(0, 9, SweepMetric::kEfficiency),
               std::out_of_range);
}

}  // namespace
}  // namespace harvest::sim
