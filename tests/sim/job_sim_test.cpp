#include "harvest/sim/job_sim.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::sim {
namespace {

core::CheckpointSchedule fixed_schedule(double c, double r,
                                        dist::DistributionPtr model) {
  core::IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = r;
  return core::CheckpointSchedule(core::MarkovModel(std::move(model), costs));
}

// A schedule whose model makes T_opt land at a known value is hard to pin
// down; instead these structural tests use an exponential model and read the
// schedule's own T to compute expectations.

TEST(JobSim, TimeAccountingIdentity) {
  auto sched = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.43, 3409.0));
  numerics::Rng rng(1);
  std::vector<double> periods(200);
  for (auto& p : periods) p = rng.weibull(0.43, 3409.0);
  const auto res = simulate_job_on_trace(periods, sched);
  const double accounted = res.useful_work + res.checkpoint_time +
                           res.recovery_time + res.lost_time;
  EXPECT_NEAR(accounted / res.total_time, 1.0, 1e-9);
}

TEST(JobSim, PeriodShorterThanRecoveryIsAllRecovery) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const std::vector<double> periods = {40.0};
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_DOUBLE_EQ(res.recovery_time, 40.0);
  EXPECT_DOUBLE_EQ(res.useful_work, 0.0);
  EXPECT_EQ(res.recoveries_interrupted, 1u);
  EXPECT_EQ(res.recoveries_completed, 0u);
  EXPECT_EQ(res.evictions, 1u);
  // Pro-rated partial recovery traffic: 40/100 of 500 MB.
  EXPECT_NEAR(res.network_mb, 500.0 * 0.4, 1e-9);
}

TEST(JobSim, LongPeriodCommitsIntervals) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const double t0 = sched.entry(0).work_time;
  // Room for recovery + exactly 2 intervals + half of a third.
  const std::vector<double> periods = {100.0 + 2.0 * (t0 + 100.0) +
                                       0.5 * t0};
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_EQ(res.intervals_completed, 2u);
  EXPECT_NEAR(res.useful_work, 2.0 * t0, 1e-9);
  EXPECT_NEAR(res.lost_time, 0.5 * t0, 1e-9);
  EXPECT_EQ(res.checkpoints_completed, 2u);
  // Traffic: 1 recovery + 2 checkpoints, no partial checkpoint (evicted
  // mid-work).
  EXPECT_NEAR(res.network_mb, 3.0 * 500.0, 1e-9);
}

TEST(JobSim, EvictionDuringCheckpointLosesWork) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const double t0 = sched.entry(0).work_time;
  // Recovery + work + 30 s into the checkpoint.
  const std::vector<double> periods = {100.0 + t0 + 30.0};
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_EQ(res.intervals_completed, 0u);
  EXPECT_DOUBLE_EQ(res.useful_work, 0.0);
  EXPECT_NEAR(res.lost_time, t0, 1e-9);
  EXPECT_NEAR(res.checkpoint_time, 30.0, 1e-9);
  EXPECT_EQ(res.checkpoints_interrupted, 1u);
  // Traffic: full recovery + 30 % of a checkpoint.
  EXPECT_NEAR(res.network_mb, 500.0 + 500.0 * 0.3, 1e-9);
}

TEST(JobSim, ProrationCanBeDisabled) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const std::vector<double> periods = {40.0};  // dies during recovery
  JobSimConfig cfg;
  cfg.prorate_partial_transfers = false;
  const auto res = simulate_job_on_trace(periods, sched, cfg);
  EXPECT_DOUBLE_EQ(res.network_mb, 0.0);
}

TEST(JobSim, ZeroCostCheckpointsAllWork) {
  auto sched = fixed_schedule(0.0, 0.0,
                              std::make_shared<dist::Exponential>(1e-6));
  const std::vector<double> periods = {1000.0, 2000.0};
  const auto res = simulate_job_on_trace(periods, sched);
  // With C == R == 0 every second is either committed work or the sliver of
  // the last uncommitted interval.
  EXPECT_GT(res.efficiency(), 0.0);
  EXPECT_NEAR(res.useful_work + res.lost_time, 3000.0, 1e-9);
}

TEST(JobSim, EmptyTraceYieldsEmptyResult) {
  auto sched = fixed_schedule(10.0, 10.0,
                              std::make_shared<dist::Exponential>(1e-3));
  const std::vector<double> periods;
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_DOUBLE_EQ(res.total_time, 0.0);
  EXPECT_DOUBLE_EQ(res.efficiency(), 0.0);
  EXPECT_DOUBLE_EQ(res.mb_per_hour(), 0.0);
}

TEST(JobSim, RejectsInvalidPeriods) {
  auto sched = fixed_schedule(10.0, 10.0,
                              std::make_shared<dist::Exponential>(1e-3));
  const std::vector<double> bad = {100.0, -5.0};
  EXPECT_THROW((void)simulate_job_on_trace(bad, sched), std::invalid_argument);
}

TEST(JobSim, EfficiencyImprovesWithCheaperCheckpoints) {
  numerics::Rng rng(3);
  std::vector<double> periods(300);
  for (auto& p : periods) p = rng.weibull(0.43, 3409.0);
  double prev = 0.0;
  for (double c : {1000.0, 250.0, 50.0}) {
    auto sched = fixed_schedule(
        c, c, std::make_shared<dist::Weibull>(0.43, 3409.0));
    const double eff = simulate_job_on_trace(periods, sched).efficiency();
    EXPECT_GT(eff, prev) << "c=" << c;
    prev = eff;
  }
}

TEST(JobSim, CostJitterPreservesAccountingIdentity) {
  auto sched = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.43, 3409.0));
  numerics::Rng rng(5);
  std::vector<double> periods(150);
  for (auto& p : periods) p = rng.weibull(0.43, 3409.0);
  JobSimConfig cfg;
  cfg.cost_jitter_sigma = 0.4;
  const auto res = simulate_job_on_trace(periods, sched, cfg);
  const double accounted = res.useful_work + res.checkpoint_time +
                           res.recovery_time + res.lost_time;
  EXPECT_NEAR(accounted / res.total_time, 1.0, 1e-9);
}

TEST(JobSim, CostJitterChangesOutcomeButNotWildly) {
  numerics::Rng rng(6);
  std::vector<double> periods(400);
  for (auto& p : periods) p = rng.weibull(0.43, 3409.0);
  auto sched_a = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.43, 3409.0));
  const auto constant = simulate_job_on_trace(periods, sched_a);
  auto sched_b = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.43, 3409.0));
  JobSimConfig cfg;
  cfg.cost_jitter_sigma = 0.3;
  const auto jittered = simulate_job_on_trace(periods, sched_b, cfg);
  EXPECT_NE(constant.efficiency(), jittered.efficiency());
  // §5.3: variable costs explain only SMALL discrepancies.
  EXPECT_NEAR(jittered.efficiency() / constant.efficiency(), 1.0, 0.05);
}

TEST(JobSim, ZeroSigmaJitterIsExactlyConstantCost) {
  numerics::Rng rng(7);
  std::vector<double> periods(50);
  for (auto& p : periods) p = rng.weibull(0.5, 2000.0);
  auto sched_a = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.5, 2000.0));
  auto sched_b = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.5, 2000.0));
  JobSimConfig cfg;
  cfg.cost_jitter_sigma = 0.0;
  const auto a = simulate_job_on_trace(periods, sched_a);
  const auto b = simulate_job_on_trace(periods, sched_b, cfg);
  EXPECT_DOUBLE_EQ(a.efficiency(), b.efficiency());
  EXPECT_DOUBLE_EQ(a.network_mb, b.network_mb);
}

TEST(JobSim, ColdStartSkipsFirstRecovery) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const double t0 = sched.entry(0).work_time;
  const std::vector<double> periods = {t0 + 150.0, t0 + 150.0};
  JobSimConfig cold;
  cold.first_period_recovers = false;
  const auto res = simulate_job_on_trace(periods, sched, cold);
  // First period: no recovery, work commits (t0 + 100 <= t0 + 150).
  // Second period: recovery (100) + work t0 cut 50 s before its checkpoint
  // finishes.
  EXPECT_EQ(res.recoveries_completed, 1u);
  EXPECT_EQ(res.checkpoints_completed, 1u);
  EXPECT_NEAR(res.useful_work, t0, 1e-9);
  const double accounted = res.useful_work + res.checkpoint_time +
                           res.recovery_time + res.lost_time;
  EXPECT_NEAR(accounted, res.total_time, 1e-9);
}

TEST(JobSim, ColdStartOnlyAffectsFirstPeriod) {
  numerics::Rng rng(8);
  std::vector<double> periods(100);
  for (auto& p : periods) p = rng.weibull(0.5, 2000.0);
  auto sched_a = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.5, 2000.0));
  auto sched_b = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.5, 2000.0));
  JobSimConfig cold;
  cold.first_period_recovers = false;
  const auto warm = simulate_job_on_trace(periods, sched_a);
  const auto coldr = simulate_job_on_trace(periods, sched_b, cold);
  // Exactly one recovery attempt fewer, at most one period's difference in
  // every other metric.
  EXPECT_EQ(warm.recoveries_completed + warm.recoveries_interrupted,
            coldr.recoveries_completed + coldr.recoveries_interrupted + 1);
  EXPECT_GE(coldr.useful_work, warm.useful_work);
}

TEST(JobSim, RejectsNegativeJitterSigma) {
  auto sched = fixed_schedule(10.0, 10.0,
                              std::make_shared<dist::Exponential>(1e-3));
  JobSimConfig cfg;
  cfg.cost_jitter_sigma = -0.1;
  const std::vector<double> periods = {100.0};
  EXPECT_THROW((void)simulate_job_on_trace(periods, sched, cfg),
               std::invalid_argument);
}

TEST(JobSim, EventLogOffByDefault) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const std::vector<double> periods = {5000.0};
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_TRUE(res.events.empty());
}

TEST(JobSim, EventLogReconstructsAggregates) {
  auto sched = fixed_schedule(
      100.0, 100.0, std::make_shared<dist::Weibull>(0.43, 3409.0));
  numerics::Rng rng(9);
  std::vector<double> periods(120);
  for (auto& p : periods) p = rng.weibull(0.43, 3409.0);
  JobSimConfig cfg;
  cfg.record_events = true;
  const auto res = simulate_job_on_trace(periods, sched, cfg);
  ASSERT_FALSE(res.events.empty());

  double work = 0.0, lost = 0.0, ckpt = 0.0, rec = 0.0;
  std::size_t completed_ckpts = 0;
  for (const auto& e : res.events) {
    switch (e.kind) {
      case SimEventKind::kWork: work += e.duration_s; break;
      case SimEventKind::kWorkInterrupted: lost += e.duration_s; break;
      case SimEventKind::kCheckpoint:
        ckpt += e.duration_s;
        ++completed_ckpts;
        break;
      case SimEventKind::kCheckpointInterrupted: ckpt += e.duration_s; break;
      case SimEventKind::kRecovery:
      case SimEventKind::kRecoveryInterrupted: rec += e.duration_s; break;
    }
  }
  EXPECT_NEAR(work, res.useful_work, 1e-9);
  EXPECT_NEAR(lost, res.lost_time, 1e-9);
  EXPECT_NEAR(ckpt, res.checkpoint_time, 1e-9);
  EXPECT_NEAR(rec, res.recovery_time, 1e-9);
  EXPECT_EQ(completed_ckpts, res.checkpoints_completed);
}

TEST(JobSim, EventTimelineIsOrderedAndWithinPeriods) {
  auto sched = fixed_schedule(
      50.0, 50.0, std::make_shared<dist::Weibull>(0.5, 1500.0));
  numerics::Rng rng(10);
  std::vector<double> periods(40);
  for (auto& p : periods) p = rng.weibull(0.5, 1500.0);
  JobSimConfig cfg;
  cfg.record_events = true;
  const auto res = simulate_job_on_trace(periods, sched, cfg);
  double prev_end = 0.0;
  for (const auto& e : res.events) {
    EXPECT_GE(e.start_s, prev_end - 1e-9);  // non-overlapping, ordered
    prev_end = e.start_s + e.duration_s;
    EXPECT_LT(e.period_index, periods.size());
  }
  EXPECT_LE(prev_end, res.total_time + 1e-9);
}

TEST(JobSim, MbPerHourConsistent) {
  auto sched = fixed_schedule(100.0, 100.0,
                              std::make_shared<dist::Exponential>(1e-4));
  const std::vector<double> periods = {7200.0};
  const auto res = simulate_job_on_trace(periods, sched);
  EXPECT_NEAR(res.mb_per_hour(), res.network_mb / 2.0, 1e-9);
}

}  // namespace
}  // namespace harvest::sim
