// Parameterized invariants of the trace-driven job simulator across
// availability families, checkpoint costs, and trace shapes.
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/gamma.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/sim/job_sim.hpp"

namespace harvest::sim {
namespace {

struct SimCase {
  std::string label;
  std::function<dist::DistributionPtr()> make_model;  // schedule's model
  std::function<dist::DistributionPtr()> make_truth;  // trace generator
  double cost;
};

std::vector<SimCase> sim_cases() {
  const auto weibull = [] {
    return std::make_shared<dist::Weibull>(0.43, 3409.0);
  };
  const auto expo = [] {
    return std::make_shared<dist::Exponential>(1.0 / 3000.0);
  };
  const auto hyper = [] {
    return std::make_shared<dist::Hyperexponential>(
        std::vector<double>{0.65, 0.35},
        std::vector<double>{1.0 / 200.0, 1.0 / 9000.0});
  };
  const auto lognormal = [] {
    return std::make_shared<dist::Lognormal>(7.0, 1.4);
  };
  const auto gamma = [] {
    return std::make_shared<dist::GammaDist>(0.5, 5000.0);
  };

  std::vector<SimCase> cases;
  // Model == truth (well-specified) and model != truth (misspecified, the
  // paper's central situation) both appear.
  const std::vector<
      std::pair<std::string, std::function<dist::DistributionPtr()>>>
      laws = {{"weibull", weibull},
              {"exp", expo},
              {"hyper2", hyper},
              {"lognormal", lognormal},
              {"gamma", gamma}};
  for (const auto& [model_name, model] : laws) {
    for (double cost : {100.0, 750.0}) {
      SimCase c;
      c.label = model_name + "_on_weibull_c" +
                std::to_string(static_cast<int>(cost));
      c.make_model = model;
      c.make_truth = weibull;
      c.cost = cost;
      cases.push_back(c);
    }
  }
  for (const auto& [truth_name, truth] : laws) {
    SimCase c;
    c.label = std::string("weibull_on_") + truth_name + "_c250";
    c.make_model = weibull;
    c.make_truth = truth;
    c.cost = 250.0;
    cases.push_back(c);
  }
  return cases;
}

class JobSimProperty : public ::testing::TestWithParam<SimCase> {
 protected:
  JobSimProperty() {
    core::IntervalCosts costs;
    costs.checkpoint = GetParam().cost;
    costs.recovery = GetParam().cost;
    schedule_ = std::make_unique<core::CheckpointSchedule>(
        core::MarkovModel(GetParam().make_model(), costs));
    numerics::Rng rng(321);
    const auto truth = GetParam().make_truth();
    periods_.resize(250);
    for (auto& p : periods_) p = truth->sample(rng);
  }
  std::unique_ptr<core::CheckpointSchedule> schedule_;
  std::vector<double> periods_;
};

TEST_P(JobSimProperty, TimeAccountingIdentity) {
  const auto res = simulate_job_on_trace(periods_, *schedule_);
  const double accounted = res.useful_work + res.checkpoint_time +
                           res.recovery_time + res.lost_time;
  EXPECT_NEAR(accounted / res.total_time, 1.0, 1e-9);
}

TEST_P(JobSimProperty, MetricsWithinPhysicalBounds) {
  const auto res = simulate_job_on_trace(periods_, *schedule_);
  EXPECT_GE(res.efficiency(), 0.0);
  EXPECT_LE(res.efficiency(), 1.0);
  EXPECT_GE(res.useful_work, 0.0);
  EXPECT_GE(res.network_mb, 0.0);
  EXPECT_EQ(res.evictions, periods_.size());
  // Every committed interval carries exactly one completed checkpoint.
  EXPECT_EQ(res.intervals_completed, res.checkpoints_completed);
  // Every period triggers exactly one recovery attempt.
  EXPECT_EQ(res.recoveries_completed + res.recoveries_interrupted,
            periods_.size());
}

TEST_P(JobSimProperty, NetworkBoundedByTransferCount) {
  const auto res = simulate_job_on_trace(periods_, *schedule_);
  const double full_transfers =
      static_cast<double>(res.checkpoints_completed +
                          res.recoveries_completed);
  const double all_attempts =
      full_transfers + static_cast<double>(res.checkpoints_interrupted +
                                           res.recoveries_interrupted);
  EXPECT_GE(res.network_mb, 500.0 * full_transfers - 1e-6);
  EXPECT_LE(res.network_mb, 500.0 * all_attempts + 1e-6);
}

TEST_P(JobSimProperty, DisablingProrationOnlyReducesTraffic) {
  JobSimConfig prorated;
  JobSimConfig strict;
  strict.prorate_partial_transfers = false;
  core::IntervalCosts costs;
  costs.checkpoint = GetParam().cost;
  costs.recovery = GetParam().cost;
  core::CheckpointSchedule s1(
      core::MarkovModel(GetParam().make_model(), costs));
  core::CheckpointSchedule s2(
      core::MarkovModel(GetParam().make_model(), costs));
  const auto a = simulate_job_on_trace(periods_, s1, prorated);
  const auto b = simulate_job_on_trace(periods_, s2, strict);
  EXPECT_GE(a.network_mb, b.network_mb);
  EXPECT_DOUBLE_EQ(a.useful_work, b.useful_work);  // time flow unchanged
}

TEST_P(JobSimProperty, EventsPartitionTotalTimeExactly) {
  JobSimConfig cfg;
  cfg.record_events = true;
  const auto res = simulate_job_on_trace(periods_, *schedule_, cfg);
  ASSERT_FALSE(res.events.empty());
  // The §5.1 identity seen through the timeline: events tile
  // [0, total_time] back to back — no gaps, no overlaps, nothing after.
  double clock = 0.0;
  double total = 0.0;
  for (const auto& ev : res.events) {
    EXPECT_NEAR(ev.start_s, clock, 1e-6)
        << "gap/overlap before " << to_string(ev.kind) << " in period "
        << ev.period_index;
    EXPECT_GE(ev.duration_s, 0.0);
    clock = ev.start_s + ev.duration_s;
    total += ev.duration_s;
  }
  EXPECT_NEAR(clock / res.total_time, 1.0, 1e-9);
  EXPECT_NEAR(total / res.total_time, 1.0, 1e-9);
}

TEST_P(JobSimProperty, EventBytesMatchWireAccounting) {
  JobSimConfig cfg;
  cfg.record_events = true;
  const auto res = simulate_job_on_trace(periods_, *schedule_, cfg);
  double bytes = 0.0;
  for (const auto& ev : res.events) {
    if (ev.kind == SimEventKind::kWork ||
        ev.kind == SimEventKind::kWorkInterrupted) {
      EXPECT_DOUBLE_EQ(ev.bytes_mb, 0.0);  // work moves nothing
    }
    EXPECT_GE(ev.bytes_mb, 0.0);
    EXPECT_LE(ev.bytes_mb, cfg.checkpoint_size_mb + 1e-9);
    bytes += ev.bytes_mb;
  }
  // Interrupted transfers carry their pro-rated fraction, so the timeline's
  // bytes reproduce network_mb exactly, not just as an upper bound.
  EXPECT_NEAR(bytes, res.network_mb, 1e-6 * std::max(1.0, res.network_mb));
}

TEST_P(JobSimProperty, TracerSeesSameTimelineAsRecordedEvents) {
  obs::EventTracer tracer(0);
  JobSimConfig cfg;
  cfg.record_events = true;
  cfg.tracer = &tracer;
  const auto res = simulate_job_on_trace(periods_, *schedule_, cfg);
  const auto traced = tracer.events();
  ASSERT_EQ(traced.size(), res.events.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].name, to_string(res.events[i].kind));
    EXPECT_EQ(traced[i].category, "sim");
    EXPECT_DOUBLE_EQ(traced[i].start_s, res.events[i].start_s);
    EXPECT_DOUBLE_EQ(traced[i].duration_s, res.events[i].duration_s);
    EXPECT_DOUBLE_EQ(traced[i].value, res.events[i].bytes_mb);
    EXPECT_EQ(traced[i].id, res.events[i].period_index);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, JobSimProperty,
                         ::testing::ValuesIn(sim_cases()),
                         [](const ::testing::TestParamInfo<SimCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace harvest::sim
