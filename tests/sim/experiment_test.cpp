#include "harvest/sim/experiment.hpp"

#include <gtest/gtest.h>

#include "harvest/trace/synthetic.hpp"

namespace harvest::sim {
namespace {

std::vector<trace::AvailabilityTrace> small_pool_traces() {
  trace::PoolSpec spec;
  spec.machine_count = 12;
  spec.durations_per_machine = 60;
  spec.seed = 7;
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  return traces;
}

TEST(Experiment, RunsAllMachines) {
  const auto traces = small_pool_traces();
  ExperimentConfig cfg;
  cfg.checkpoint_cost_s = 100.0;
  const auto res =
      run_trace_experiment(traces, core::ModelFamily::kWeibull, cfg);
  EXPECT_EQ(res.machines.size() + res.skipped.size(), traces.size());
  EXPECT_GE(res.machines.size(), traces.size() - 2);  // fits rarely fail
  for (const auto& m : res.machines) {
    EXPECT_GT(m.sim.total_time, 0.0);
    EXPECT_GE(m.sim.efficiency(), 0.0);
    EXPECT_LE(m.sim.efficiency(), 1.0);
    EXPECT_EQ(m.fitted_family, "weibull");
  }
}

TEST(Experiment, SkipsShortTraces) {
  auto traces = small_pool_traces();
  traces[0].durations.resize(10);
  traces[0].timestamps.resize(10);
  ExperimentConfig cfg;
  const auto res =
      run_trace_experiment(traces, core::ModelFamily::kExponential, cfg);
  EXPECT_EQ(res.skipped.size(), 1u);
  EXPECT_EQ(res.skipped[0], traces[0].machine_id);
}

TEST(Experiment, ParallelMatchesSerial) {
  const auto traces = small_pool_traces();
  ExperimentConfig cfg;
  cfg.checkpoint_cost_s = 250.0;
  const auto serial =
      run_trace_experiment(traces, core::ModelFamily::kHyperexp2, cfg);
  util::ThreadPool pool(4);
  const auto parallel =
      run_trace_experiment(traces, core::ModelFamily::kHyperexp2, cfg, &pool);
  ASSERT_EQ(serial.machines.size(), parallel.machines.size());
  for (std::size_t i = 0; i < serial.machines.size(); ++i) {
    EXPECT_EQ(serial.machines[i].machine_id, parallel.machines[i].machine_id);
    EXPECT_DOUBLE_EQ(serial.machines[i].sim.efficiency(),
                     parallel.machines[i].sim.efficiency());
    EXPECT_DOUBLE_EQ(serial.machines[i].sim.network_mb,
                     parallel.machines[i].sim.network_mb);
  }
}

TEST(Experiment, AccessorsMatchMachines) {
  const auto traces = small_pool_traces();
  ExperimentConfig cfg;
  const auto res =
      run_trace_experiment(traces, core::ModelFamily::kExponential, cfg);
  const auto effs = res.efficiencies();
  const auto mbs = res.network_mbs();
  ASSERT_EQ(effs.size(), res.machines.size());
  ASSERT_EQ(mbs.size(), res.machines.size());
  for (std::size_t i = 0; i < effs.size(); ++i) {
    EXPECT_DOUBLE_EQ(effs[i], res.machines[i].sim.efficiency());
    EXPECT_DOUBLE_EQ(mbs[i], res.machines[i].sim.network_mb);
  }
}

TEST(Experiment, HigherCostLowersEfficiency) {
  const auto traces = small_pool_traces();
  ExperimentConfig cheap;
  cheap.checkpoint_cost_s = 50.0;
  ExperimentConfig dear;
  dear.checkpoint_cost_s = 1000.0;
  const auto a =
      run_trace_experiment(traces, core::ModelFamily::kWeibull, cheap);
  const auto b =
      run_trace_experiment(traces, core::ModelFamily::kWeibull, dear);
  double mean_a = 0.0;
  for (double e : a.efficiencies()) mean_a += e;
  double mean_b = 0.0;
  for (double e : b.efficiencies()) mean_b += e;
  EXPECT_GT(mean_a / a.machines.size(), mean_b / b.machines.size());
}

TEST(Experiment, RejectsNegativeCost) {
  ExperimentConfig cfg;
  cfg.checkpoint_cost_s = -1.0;
  EXPECT_THROW((void)run_trace_experiment(small_pool_traces(),
                                          core::ModelFamily::kWeibull, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::sim
