#include "harvest/sim/parallel_sim.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"

namespace harvest::sim {
namespace {

std::vector<dist::DistributionPtr> small_pool() {
  return {std::make_shared<dist::Weibull>(0.5, 3000.0),
          std::make_shared<dist::Weibull>(0.45, 2000.0),
          std::make_shared<dist::Weibull>(0.6, 4000.0)};
}

ParallelSimConfig fast_config(std::size_t jobs) {
  ParallelSimConfig cfg;
  cfg.job_count = jobs;
  cfg.horizon_s = 12.0 * 3600.0;
  cfg.seed = 17;
  return cfg;
}

TEST(ParallelSim, ProducesOneStatsPerJob) {
  const auto res = run_parallel_simulation(small_pool(), fast_config(4));
  EXPECT_EQ(res.jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(res.horizon_s, 12.0 * 3600.0);
}

TEST(ParallelSim, SingleJobHasNoCollisionStretch) {
  const auto res = run_parallel_simulation(small_pool(), fast_config(1));
  EXPECT_NEAR(res.mean_stretch(), 1.0, 1e-6);
}

TEST(ParallelSim, StretchGrowsWithJobCount) {
  const double s1 =
      run_parallel_simulation(small_pool(), fast_config(1)).mean_stretch();
  const double s8 =
      run_parallel_simulation(small_pool(), fast_config(8)).mean_stretch();
  EXPECT_GT(s8, s1 * 1.05);
}

TEST(ParallelSim, EfficiencyDegradesUnderContention) {
  const double e1 =
      run_parallel_simulation(small_pool(), fast_config(1)).efficiency();
  const double e12 =
      run_parallel_simulation(small_pool(), fast_config(12)).efficiency();
  EXPECT_GT(e1, 0.2);
  EXPECT_LT(e12, e1);
}

TEST(ParallelSim, TimeAccountingWithinHorizon) {
  const auto res = run_parallel_simulation(small_pool(), fast_config(6));
  for (const auto& j : res.jobs) {
    const double accounted =
        j.useful_work_s + j.lost_work_s + j.transfer_time_s;
    // Accounted time can't exceed the horizon (plus one in-flight phase
    // truncated by the horizon that was never attributed).
    EXPECT_LE(accounted, res.horizon_s * (1.0 + 1e-9));
    EXPECT_GE(j.moved_mb, 0.0);
  }
}

TEST(ParallelSim, StretchNeverBelowOne) {
  const auto res = run_parallel_simulation(small_pool(), fast_config(8));
  for (const auto& j : res.jobs) {
    if (j.transfers_completed > 0) {
      EXPECT_GE(j.stretch_sum / j.transfers_completed, 1.0 - 1e-9);
    }
  }
}

TEST(ParallelSim, DeterministicAcrossRuns) {
  const auto a = run_parallel_simulation(small_pool(), fast_config(5));
  const auto b = run_parallel_simulation(small_pool(), fast_config(5));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].useful_work_s, b.jobs[i].useful_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
  }
}

TEST(ParallelSim, EvictionsAreCounted) {
  const auto res = run_parallel_simulation(small_pool(), fast_config(4));
  // Mean availability ~a few thousand seconds over a 12 h horizon: there
  // must be a decent number of evictions in total.
  EXPECT_GT(res.total_evictions(), 10u);
}

TEST(ParallelSim, CostSmoothingIsWiredThrough) {
  ParallelSimConfig sharp = fast_config(8);
  ParallelSimConfig smooth = fast_config(8);
  smooth.cost_smoothing = 0.3;
  const auto a = run_parallel_simulation(small_pool(), sharp);
  const auto b = run_parallel_simulation(small_pool(), smooth);
  // Different planning behavior must change the outcome (same seeds).
  EXPECT_NE(a.total_moved_mb(), b.total_moved_mb());
  // Both remain sane.
  EXPECT_GT(b.efficiency(), 0.0);
  EXPECT_LE(b.efficiency(), 1.0);
}

TEST(ParallelSim, RejectsBadConfig) {
  ParallelSimConfig cfg = fast_config(0);
  EXPECT_THROW((void)run_parallel_simulation(small_pool(), cfg),
               std::invalid_argument);
  cfg = fast_config(2);
  cfg.horizon_s = 0.0;
  EXPECT_THROW((void)run_parallel_simulation(small_pool(), cfg),
               std::invalid_argument);
  EXPECT_THROW((void)run_parallel_simulation({}, fast_config(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::sim
