#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"
#include "harvest/stats/kaplan_meier.hpp"

namespace harvest::stats {
namespace {

TEST(NelsonAalen, HandComputedExample) {
  // Times 1, 2+, 3 (+ censored): H(1) = 1/3, H(3) = 1/3 + 1/1.
  const std::vector<double> times = {1.0, 2.0, 3.0};
  const std::vector<bool> obs = {true, false, true};
  const NelsonAalen na(times, obs);
  EXPECT_DOUBLE_EQ(na.cumulative_hazard(0.5), 0.0);
  EXPECT_NEAR(na.cumulative_hazard(1.5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(na.cumulative_hazard(10.0), 1.0 / 3.0 + 1.0, 1e-12);
}

TEST(NelsonAalen, SurvivalIsExpOfMinusHazard) {
  const std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> obs = {true, true, true, true};
  const NelsonAalen na(times, obs);
  for (double t : {0.5, 1.5, 3.5}) {
    EXPECT_DOUBLE_EQ(na.survival(t), std::exp(-na.cumulative_hazard(t)));
  }
}

TEST(NelsonAalen, TracksTrueCumulativeHazardOfExponential) {
  numerics::Rng rng(7);
  const double rate = 0.01;
  std::vector<double> times(20000);
  std::vector<bool> obs(times.size(), true);
  for (auto& t : times) t = rng.exponential(rate);
  const NelsonAalen na(times, obs);
  for (double t : {20.0, 80.0, 200.0}) {
    EXPECT_NEAR(na.cumulative_hazard(t) / (rate * t), 1.0, 0.05)
        << "t=" << t;
  }
}

TEST(NelsonAalen, ConcaveForDecreasingHazardData) {
  // Weibull shape < 1: H(t) = (t/beta)^alpha is concave — the model-free
  // signature of the paper's heavy-tailed availability.
  numerics::Rng rng(8);
  std::vector<double> times(20000);
  std::vector<bool> obs(times.size(), true);
  for (auto& t : times) t = rng.weibull(0.43, 3409.0);
  const NelsonAalen na(times, obs);
  const double h1 = na.cumulative_hazard(500.0);
  const double h2 = na.cumulative_hazard(1000.0);
  const double h3 = na.cumulative_hazard(1500.0);
  // Concavity: equal-width increments shrink.
  EXPECT_GT(h2 - h1, h3 - h2);
}

TEST(NelsonAalen, SitsSlightlyAboveKaplanMeierSurvival) {
  numerics::Rng rng(9);
  std::vector<double> times(500);
  std::vector<bool> obs(times.size(), true);
  for (auto& t : times) t = rng.exponential(0.002);
  const NelsonAalen na(times, obs);
  const KaplanMeier km(times, obs);
  for (double t : {200.0, 500.0, 1500.0}) {
    EXPECT_GE(na.survival(t), km.survival(t) - 1e-12) << "t=" << t;
  }
}

TEST(NelsonAalen, RejectsBadInputs) {
  EXPECT_THROW(NelsonAalen({}, {}), std::invalid_argument);
  EXPECT_THROW(NelsonAalen({1.0}, {true, false}), std::invalid_argument);
  EXPECT_THROW(NelsonAalen({-1.0}, {true}), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
