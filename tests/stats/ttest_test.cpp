#include "harvest/stats/ttest.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::stats {
namespace {

TEST(PairedTTest, DetectsConsistentShift) {
  std::vector<double> a;
  std::vector<double> b;
  numerics::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const double base = rng.uniform(0.0, 10.0);
    a.push_back(base + 1.0 + rng.normal(0.0, 0.2));
    b.push_back(base);
  }
  const auto r = paired_t_test(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_GT(r.t_statistic, 0.0);
  EXPECT_NEAR(r.mean_diff, 1.0, 0.2);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(PairedTTest, NoFalsePositiveOnPureNoise) {
  std::vector<double> a;
  std::vector<double> b;
  numerics::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double base = rng.uniform(0.0, 10.0);
    a.push_back(base + rng.normal(0.0, 1.0));
    b.push_back(base + rng.normal(0.0, 1.0));
  }
  const auto r = paired_t_test(a, b);
  EXPECT_GT(r.p_value, 0.05);  // seed chosen to be unremarkable
}

TEST(PairedTTest, PairingRemovesMachineVariance) {
  // Across-machine variance dwarfs the shift; only the paired test sees it.
  std::vector<double> a;
  std::vector<double> b;
  numerics::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double machine_scale = rng.uniform(0.0, 1000.0);
    a.push_back(machine_scale + 0.5);
    b.push_back(machine_scale);
  }
  EXPECT_TRUE(paired_t_test(a, b).significant);
  EXPECT_FALSE(welch_t_test(a, b).significant);
}

TEST(PairedTTest, KnownTStatistic) {
  // diffs = {1,2,3}: mean 2, sd 1, t = 2 / (1/sqrt(3)) = 2*sqrt(3).
  const std::vector<double> a = {2.0, 4.0, 6.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto r = paired_t_test(a, b);
  EXPECT_NEAR(r.t_statistic, 2.0 * std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(r.df, 2.0);
}

TEST(PairedTTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const auto r = paired_t_test(a, a);
  EXPECT_FALSE(r.significant);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(PairedTTest, ConstantNonzeroDifferenceIsSignificant) {
  const std::vector<double> a = {2.0, 3.0, 4.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto r = paired_t_test(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(PairedTTest, RejectsBadInputs) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)paired_t_test(a, b), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)paired_t_test(one, one), std::invalid_argument);
}

TEST(OneSampleTTest, DetectsShiftFromMu0) {
  const std::vector<double> xs = {5.1, 4.9, 5.2, 5.0, 5.1, 4.8, 5.3};
  EXPECT_FALSE(one_sample_t_test(xs, 5.0).significant);
  EXPECT_TRUE(one_sample_t_test(xs, 4.0).significant);
}

TEST(WelchTTest, UnequalVariances) {
  std::vector<double> a;
  std::vector<double> b;
  numerics::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.normal(10.0, 0.5));
    b.push_back(rng.normal(12.0, 5.0));
  }
  const auto r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_LT(r.t_statistic, 0.0);
  // Welch df must be below the pooled n1+n2-2.
  EXPECT_LT(r.df, 98.0);
}

}  // namespace
}  // namespace harvest::stats
