#include "harvest/stats/summary.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace harvest::stats {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW((void)rs.mean(), std::logic_error);
  EXPECT_THROW((void)rs.min(), std::logic_error);
  rs.add(1.0);
  EXPECT_THROW((void)rs.variance(), std::logic_error);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0 + i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(ConfidenceInterval, KnownSmallSample) {
  // n=4, mean=5, sd=2 => se=1, t_{0.975,3}=3.1824 => hw≈3.1824.
  const std::vector<double> xs = {3.0, 4.0, 6.0, 7.0};
  const auto ci = mean_confidence_interval(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  const double sd = std::sqrt(10.0 / 3.0);
  EXPECT_NEAR(ci.half_width, 3.182446 * sd / 2.0, 1e-4);
  EXPECT_EQ(ci.n, 4u);
}

TEST(ConfidenceInterval, WidthShrinksWithConfidence) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto ci90 = mean_confidence_interval(xs, 0.90);
  const auto ci99 = mean_confidence_interval(xs, 0.99);
  EXPECT_LT(ci90.half_width, ci99.half_width);
}

TEST(ConfidenceInterval, RejectsDegenerateInputs) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)mean_confidence_interval(one), std::invalid_argument);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW((void)mean_confidence_interval(two, 1.5),
               std::invalid_argument);
}

TEST(Quantiles, MedianAndInterpolation) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantiles, RejectsBadInputs) {
  const std::vector<double> empty;
  EXPECT_THROW((void)median_of(empty), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)quantile_of(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile_of(xs, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
