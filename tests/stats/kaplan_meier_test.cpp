#include "harvest/stats/kaplan_meier.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::stats {
namespace {

TEST(KaplanMeier, NoCensoringMatchesEcdfComplement) {
  const std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> obs = {true, true, true, true};
  const KaplanMeier km(times, obs);
  EXPECT_DOUBLE_EQ(km.survival(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.survival(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.survival(2.5), 0.5);
  EXPECT_DOUBLE_EQ(km.survival(4.0), 0.0);
}

TEST(KaplanMeier, TextbookCensoredExample) {
  // Times 1, 2+, 3, 4+ (+'s censored):
  // S(1) = 3/4; S(3) = 3/4 * (1 - 1/2) = 3/8.
  const std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> obs = {true, false, true, false};
  const KaplanMeier km(times, obs);
  EXPECT_DOUBLE_EQ(km.survival(1.5), 0.75);
  EXPECT_DOUBLE_EQ(km.survival(3.5), 0.375);
  // No event at 4: the curve never drops below 0.375.
  EXPECT_DOUBLE_EQ(km.survival(100.0), 0.375);
}

TEST(KaplanMeier, TiedEventTimes) {
  const std::vector<double> times = {2.0, 2.0, 2.0, 5.0};
  const std::vector<bool> obs = {true, true, false, true};
  const KaplanMeier km(times, obs);
  // At t=2: 4 at risk, 2 events -> S = 0.5; at t=5: 1 at risk, 1 event -> 0.
  EXPECT_DOUBLE_EQ(km.survival(2.0), 0.5);
  EXPECT_DOUBLE_EQ(km.survival(5.0), 0.0);
  ASSERT_EQ(km.points().size(), 2u);
  EXPECT_EQ(km.points()[0].events, 2u);
  EXPECT_EQ(km.points()[0].at_risk, 4u);
}

TEST(KaplanMeier, MedianDetection) {
  const std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> obs = {true, true, true, true};
  EXPECT_DOUBLE_EQ(KaplanMeier(times, obs).median(), 2.0);
  // Heavily censored: median unreachable.
  const std::vector<bool> cens = {true, false, false, false};
  EXPECT_TRUE(std::isnan(KaplanMeier(times, cens).median()));
}

TEST(KaplanMeier, AgreesWithTrueSurvivalOnLargeSample) {
  // Exponential lifetimes censored at a fixed horizon; KM should track the
  // true survival up to the horizon.
  numerics::Rng rng(9);
  const double rate = 0.01;
  std::vector<double> times;
  std::vector<bool> obs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(rate);
    if (x > 150.0) {
      times.push_back(150.0);
      obs.push_back(false);
    } else {
      times.push_back(x);
      obs.push_back(true);
    }
  }
  const KaplanMeier km(times, obs);
  for (double t : {20.0, 60.0, 120.0}) {
    EXPECT_NEAR(km.survival(t), std::exp(-rate * t), 0.01) << "t=" << t;
  }
}

TEST(KaplanMeier, RestrictedMeanMatchesStepIntegral) {
  const std::vector<double> times = {1.0, 3.0};
  const std::vector<bool> obs = {true, true};
  const KaplanMeier km(times, obs);
  // S = 1 on [0,1), 0.5 on [1,3), 0 beyond: ∫₀³ = 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(km.restricted_mean(3.0), 2.0);
  EXPECT_DOUBLE_EQ(km.restricted_mean(), 2.0);
  EXPECT_DOUBLE_EQ(km.restricted_mean(2.0), 1.5);
}

TEST(KaplanMeier, RejectsBadInputs) {
  const std::vector<double> times = {1.0};
  const std::vector<bool> short_obs = {};
  EXPECT_THROW(KaplanMeier(times, short_obs), std::invalid_argument);
  const std::vector<double> neg = {-1.0};
  const std::vector<bool> one = {true};
  EXPECT_THROW(KaplanMeier(neg, one), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
