#include "harvest/stats/autocorrelation.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::stats {
namespace {

std::vector<double> iid_sample(std::size_t n, std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.weibull(0.5, 1000.0);
  return xs;
}

std::vector<double> ar1_sample(std::size_t n, double phi,
                               std::uint64_t seed) {
  numerics::Rng rng(seed);
  std::vector<double> xs(n);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = phi * prev + rng.normal();
    x = prev;
  }
  return xs;
}

TEST(Autocorrelation, NearZeroForIidData) {
  const auto xs = iid_sample(5000, 1);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.05);
}

TEST(Autocorrelation, DetectsAr1Structure) {
  const double phi = 0.7;
  const auto xs = ar1_sample(8000, phi, 2);
  EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.06);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.05);
}

TEST(Autocorrelation, RejectsBadInputs) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)autocorrelation(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)autocorrelation(xs, 2), std::invalid_argument);
  const std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_THROW((void)autocorrelation(constant, 1), std::invalid_argument);
}

TEST(IidDiagnostic, AcceptsIidData) {
  const auto d = iid_diagnostic(iid_sample(2000, 3));
  EXPECT_TRUE(d.iid_plausible);
  EXPECT_GT(d.p_value, 0.05);
  EXPECT_EQ(d.lags, 10);
}

TEST(IidDiagnostic, RejectsCorrelatedData) {
  const auto d = iid_diagnostic(ar1_sample(2000, 0.5, 4));
  EXPECT_FALSE(d.iid_plausible);
  EXPECT_LT(d.p_value, 1e-6);
  EXPECT_GT(d.lag1, 0.3);
}

TEST(IidDiagnostic, FalsePositiveRateRoughlyAlpha) {
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto d = iid_diagnostic(iid_sample(300, 100 + t));
    if (!d.iid_plausible) ++rejections;
  }
  // Expected ~5 %; allow generous slack for a 200-trial estimate.
  EXPECT_LT(rejections, 30);
  EXPECT_GT(rejections, 0);
}

TEST(IidDiagnostic, RejectsBadArguments) {
  const auto xs = iid_sample(50, 5);
  EXPECT_THROW((void)iid_diagnostic(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)iid_diagnostic(xs, 10, 1.5), std::invalid_argument);
  const std::vector<double> tiny = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)iid_diagnostic(tiny, 10), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
