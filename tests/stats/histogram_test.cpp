#include "harvest/stats/histogram.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace harvest::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs = {0.5, 1.5, 1.7, 2.5, 3.5, 3.9};
  h.add_all(xs);
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * (h.bin_hi(b) - h.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, AsciiRenderHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  const std::string render = h.render_ascii(10);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 3);
  EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

}  // namespace
}  // namespace harvest::stats
