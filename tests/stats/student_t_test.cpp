#include "harvest/stats/student_t.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::stats {
namespace {

TEST(StudentT, CdfAtZeroIsHalf) {
  for (double df : {1.0, 3.0, 10.0, 100.0}) {
    EXPECT_DOUBLE_EQ(student_t_cdf(0.0, df), 0.5);
  }
}

TEST(StudentT, CdfSymmetry) {
  for (double t : {0.5, 1.0, 2.5}) {
    for (double df : {2.0, 5.0, 30.0}) {
      EXPECT_NEAR(student_t_cdf(t, df) + student_t_cdf(-t, df), 1.0, 1e-12);
    }
  }
}

TEST(StudentT, CauchySpecialCase) {
  // df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/pi.
  for (double t : {-2.0, -0.5, 0.7, 3.0}) {
    EXPECT_NEAR(student_t_cdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-10)
        << "t=" << t;
  }
}

TEST(StudentT, KnownCriticalValues) {
  // Classic table entries: t_{0.975, df}.
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 5.0), 2.5706, 1e-4);
  EXPECT_NEAR(student_t_quantile(0.975, 30.0), 2.0423, 1e-4);
  EXPECT_NEAR(student_t_quantile(0.975, 120.0), 1.9799, 1e-4);
}

TEST(StudentT, QuantileRoundTrips) {
  for (double df : {2.0, 7.0, 25.0, 200.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const double t = student_t_quantile(p, df);
      EXPECT_NEAR(student_t_cdf(t, df), p, 1e-9)
          << "df=" << df << " p=" << p;
    }
  }
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  // z_{0.975} = 1.95996
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), 1.95996, 1e-3);
}

TEST(StudentT, TwoSidedPValues) {
  // p = 0.05 exactly at the critical value.
  const double t = student_t_quantile(0.975, 10.0);
  EXPECT_NEAR(student_t_two_sided_p(t, 10.0), 0.05, 1e-9);
  EXPECT_NEAR(student_t_two_sided_p(-t, 10.0), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(0.0, 10.0), 1.0);
}

TEST(StudentT, RejectsBadArguments) {
  EXPECT_THROW((void)student_t_cdf(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(1.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
