#include "harvest/dist/exponential.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::dist {
namespace {

TEST(Exponential, BasicFunctions) {
  const Exponential e(0.5);
  EXPECT_DOUBLE_EQ(e.rate(), 0.5);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_NEAR(e.pdf(1.0), 0.5 * std::exp(-0.5), 1e-15);
  EXPECT_NEAR(e.cdf(1.0), 1.0 - std::exp(-0.5), 1e-15);
  EXPECT_NEAR(e.survival(1.0), std::exp(-0.5), 1e-15);
  EXPECT_DOUBLE_EQ(e.hazard(3.0), 0.5);  // constant hazard
}

TEST(Exponential, FromMean) {
  const Exponential e = Exponential::from_mean(100.0);
  EXPECT_DOUBLE_EQ(e.mean(), 100.0);
  EXPECT_DOUBLE_EQ(e.rate(), 0.01);
}

TEST(Exponential, NegativeArgumentsAreZeroMass) {
  const Exponential e(1.0);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.survival(-1.0), 1.0);
}

TEST(Exponential, QuantileInvertsCdf) {
  const Exponential e(0.2);
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(e.cdf(e.quantile(p)), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
}

TEST(Exponential, Memorylessness) {
  const Exponential e(0.1);
  for (double age : {0.0, 5.0, 100.0, 1e4}) {
    for (double x : {1.0, 10.0, 50.0}) {
      EXPECT_NEAR(e.conditional_survival(age, x), e.survival(x), 1e-12)
          << "age=" << age << " x=" << x;
    }
  }
}

TEST(Exponential, PartialExpectationClosedForm) {
  const Exponential e(0.25);
  // Against a hand-computed value: ∫₀⁴ t·0.25 e^{−0.25t} dt
  //   = 4(1 − e^{−1}(1+1)/1)... use formula (1 − e^{-λx}(1+λx))/λ.
  const double x = 4.0;
  const double expected = (1.0 - std::exp(-1.0) * 2.0) / 0.25;
  EXPECT_NEAR(e.partial_expectation(x), expected, 1e-12);
  // Converges to the mean.
  EXPECT_NEAR(e.partial_expectation(1e4), e.mean(), 1e-9);
}

TEST(Exponential, LogPdfMatchesLogOfPdf) {
  const Exponential e(2.0);
  for (double x : {0.1, 1.0, 10.0}) {
    EXPECT_NEAR(e.log_pdf(x), std::log(e.pdf(x)), 1e-12);
  }
  EXPECT_TRUE(std::isinf(e.log_pdf(-1.0)));
}

TEST(Exponential, SampleMeanConverges) {
  const Exponential e(0.01);
  numerics::Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += e.sample(rng);
  EXPECT_NEAR(sum / n / e.mean(), 1.0, 0.02);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential::from_mean(0.0), std::invalid_argument);
}

TEST(Exponential, CloneIsIndependentCopy) {
  const Exponential e(3.0);
  const auto c = e.clone();
  EXPECT_EQ(c->name(), "exponential");
  EXPECT_DOUBLE_EQ(c->mean(), e.mean());
}

}  // namespace
}  // namespace harvest::dist
