#include "harvest/dist/empirical.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace harvest::dist {
namespace {

TEST(Empirical, CdfStepsThroughSample) {
  const Empirical e({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(100.0), 1.0);
}

TEST(Empirical, MeanMatchesSample) {
  const Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.mean(), 2.5);
}

TEST(Empirical, PartialExpectationExactPrefixSum) {
  const Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.partial_expectation(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.partial_expectation(2.0), (1.0 + 2.0) / 4.0);
  EXPECT_DOUBLE_EQ(e.partial_expectation(10.0), 2.5);
}

TEST(Empirical, QuantilePicksOrderStatistics) {
  const Empirical e({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.99), 40.0);
}

TEST(Empirical, SampleBootstrapsFromData) {
  const Empirical e({5.0, 7.0});
  numerics::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = e.sample(rng);
    EXPECT_TRUE(x == 5.0 || x == 7.0);
  }
}

TEST(Empirical, PdfThrows) {
  const Empirical e({1.0});
  EXPECT_THROW((void)e.pdf(1.0), std::logic_error);
}

TEST(Empirical, RejectsBadSamples) {
  EXPECT_THROW(Empirical({}), std::invalid_argument);
  EXPECT_THROW(Empirical({-1.0}), std::invalid_argument);
}

TEST(Empirical, SortsUnorderedInput) {
  const Empirical e({9.0, 1.0, 5.0});
  const auto& s = e.sorted_sample();
  EXPECT_EQ(s, (std::vector<double>{1.0, 5.0, 9.0}));
}

}  // namespace
}  // namespace harvest::dist
