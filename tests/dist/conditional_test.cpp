#include "harvest/dist/conditional.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {
namespace {

TEST(Conditional, AgeZeroEqualsBase) {
  const auto base = std::make_shared<Weibull>(0.43, 3409.0);
  const Conditional c(base, 0.0);
  for (double x : {1.0, 100.0, 5000.0}) {
    EXPECT_NEAR(c.cdf(x), base->cdf(x), 1e-12);
    EXPECT_NEAR(c.pdf(x), base->pdf(x), 1e-12);
    EXPECT_NEAR(c.partial_expectation(x), base->partial_expectation(x), 1e-9);
  }
  EXPECT_NEAR(c.mean() / base->mean(), 1.0, 1e-6);
}

TEST(Conditional, MatchesPaperEq8Definition) {
  const auto base = std::make_shared<Weibull>(0.6, 2000.0);
  const double t = 750.0;
  const Conditional c(base, t);
  for (double x : {10.0, 500.0, 4000.0}) {
    const double expected =
        (base->cdf(t + x) - base->cdf(t)) / (1.0 - base->cdf(t));
    EXPECT_NEAR(c.cdf(x), expected, 1e-12) << "x=" << x;
  }
}

TEST(Conditional, ExponentialBaseIsUnchanged) {
  const auto base = std::make_shared<Exponential>(0.01);
  const Conditional c(base, 12345.0);
  for (double x : {1.0, 50.0, 1000.0}) {
    EXPECT_NEAR(c.cdf(x), base->cdf(x), 1e-12);
  }
  EXPECT_NEAR(c.mean() / base->mean(), 1.0, 1e-8);
}

TEST(Conditional, PdfIntegratesToCdf) {
  const auto base = std::make_shared<Hyperexponential>(
      std::vector<double>{0.7, 0.3},
      std::vector<double>{1.0 / 200.0, 1.0 / 10000.0});
  const Conditional c(base, 400.0);
  const double x = 1500.0;
  const double integral = numerics::integrate_adaptive_simpson(
      [&](double u) { return c.pdf(u); }, 0.0, x, 1e-11);
  EXPECT_NEAR(integral, c.cdf(x), 1e-8);
}

TEST(Conditional, PartialExpectationAgainstQuadrature) {
  const auto base = std::make_shared<Weibull>(0.43, 3409.0);
  const Conditional c(base, 2000.0);
  for (double x : {100.0, 2000.0, 20000.0}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double u) { return u * c.pdf(u); }, 0.0, x, 1e-10);
    EXPECT_NEAR(c.partial_expectation(x) / numeric, 1.0, 1e-6) << "x=" << x;
  }
}

TEST(Conditional, MeanResidualLifeGrowsForHeavyTail) {
  const auto base = std::make_shared<Weibull>(0.43, 3409.0);
  double prev = 0.0;
  for (double age : {0.0, 1000.0, 10000.0}) {
    const Conditional c(base, age);
    const double m = c.mean();
    EXPECT_GT(m, prev) << "age=" << age;
    prev = m;
  }
}

TEST(Conditional, MeanResidualLifeShrinksForLightTail) {
  const auto base = std::make_shared<Weibull>(2.0, 100.0);
  const Conditional young(base, 0.0);
  const Conditional old(base, 200.0);
  EXPECT_LT(old.mean(), young.mean());
}

TEST(Conditional, NestedConditioningAddsAges) {
  const auto base = std::make_shared<Weibull>(0.5, 1000.0);
  const Conditional c(base, 300.0);
  EXPECT_NEAR(c.conditional_survival(200.0, 50.0),
              base->conditional_survival(500.0, 50.0), 1e-12);
}

TEST(Conditional, SamplesAreConsistentWithCdf) {
  const auto base = std::make_shared<Weibull>(0.7, 500.0);
  const Conditional c(base, 250.0);
  numerics::Rng rng(31);
  int below_median = 0;
  const int n = 20000;
  const double median = c.quantile(0.5);
  for (int i = 0; i < n; ++i) {
    if (c.sample(rng) <= median) ++below_median;
  }
  EXPECT_NEAR(below_median / static_cast<double>(n), 0.5, 0.02);
}

TEST(Conditional, RejectsInvalidConstruction) {
  EXPECT_THROW(Conditional(nullptr, 1.0), std::invalid_argument);
  const auto base = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(Conditional(base, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::dist
