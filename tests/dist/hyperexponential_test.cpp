#include "harvest/dist/hyperexponential.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {
namespace {

Hyperexponential bimodal() {
  // Short office occupancies (mean 5 min) mixed with long overnight ones
  // (mean 8 h).
  return Hyperexponential({0.6, 0.4}, {1.0 / 300.0, 1.0 / 28800.0});
}

TEST(Hyperexponential, SinglePhaseReducesToExponential) {
  const Hyperexponential h({1.0}, {0.5});
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 10.0}) {
    EXPECT_NEAR(h.pdf(x), e.pdf(x), 1e-14);
    EXPECT_NEAR(h.cdf(x), e.cdf(x), 1e-14);
    EXPECT_NEAR(h.partial_expectation(x), e.partial_expectation(x), 1e-14);
  }
  EXPECT_DOUBLE_EQ(h.mean(), e.mean());
}

TEST(Hyperexponential, MeanIsWeightedSum) {
  const Hyperexponential h = bimodal();
  EXPECT_NEAR(h.mean(), 0.6 * 300.0 + 0.4 * 28800.0, 1e-9);
}

TEST(Hyperexponential, CdfSurvivalComplement) {
  const Hyperexponential h = bimodal();
  for (double x : {1.0, 300.0, 5000.0, 1e5}) {
    EXPECT_NEAR(h.cdf(x) + h.survival(x), 1.0, 1e-14);
  }
}

TEST(Hyperexponential, ConditionalSurvivalMatchesPaperEq10) {
  const Hyperexponential h = bimodal();
  const double t = 1000.0;
  const double x = 2000.0;
  double num = 0.0;
  double den = 0.0;
  const auto& w = h.weights();
  const auto& r = h.rates();
  for (std::size_t i = 0; i < w.size(); ++i) {
    num += w[i] * std::exp(-r[i] * (t + x));
    den += w[i] * std::exp(-r[i] * t);
  }
  EXPECT_NEAR(h.conditional_survival(t, x), num / den, 1e-12);
}

TEST(Hyperexponential, AgeRevealsLongPhase) {
  // A machine that has survived 2 hours is almost surely a "long" machine,
  // so its conditional survival of another hour beats the unconditional.
  const Hyperexponential h = bimodal();
  EXPECT_GT(h.conditional_survival(7200.0, 3600.0), h.survival(3600.0));
}

TEST(Hyperexponential, ConditionalSurvivalStableAtExtremeAge) {
  const Hyperexponential h = bimodal();
  // At an age where the short phase has utterly underflowed, the ratio must
  // converge to the long phase's survival, not NaN.
  const double s = h.conditional_survival(1e6, 3600.0);
  EXPECT_NEAR(s, std::exp(-3600.0 / 28800.0), 1e-9);
}

TEST(Hyperexponential, PartialExpectationAgainstQuadrature) {
  const Hyperexponential h = bimodal();
  for (double x : {50.0, 300.0, 10000.0}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double t) { return t * h.pdf(t); }, 0.0, x, 1e-10);
    EXPECT_NEAR(h.partial_expectation(x), numeric, 1e-7) << "x=" << x;
  }
}

TEST(Hyperexponential, SampleMeanConverges) {
  const Hyperexponential h = bimodal();
  numerics::Rng rng(21);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += h.sample(rng);
  EXPECT_NEAR(sum / n / h.mean(), 1.0, 0.02);
}

TEST(Hyperexponential, ParameterCountIs2kMinus1) {
  EXPECT_EQ(bimodal().parameter_count(), 3);
  const Hyperexponential h3({0.5, 0.3, 0.2}, {1.0, 0.1, 0.01});
  EXPECT_EQ(h3.parameter_count(), 5);
}

TEST(Hyperexponential, NameEncodesPhaseCount) {
  EXPECT_EQ(bimodal().name(), "hyperexp2");
  const Hyperexponential h3({0.5, 0.3, 0.2}, {1.0, 0.1, 0.01});
  EXPECT_EQ(h3.name(), "hyperexp3");
}

TEST(Hyperexponential, WeightsRenormalizedExactly) {
  const Hyperexponential h({0.3000001, 0.6999999}, {1.0, 2.0});
  double sum = 0.0;
  for (double w : h.weights()) sum += w;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Hyperexponential, RejectsInvalidConstruction) {
  EXPECT_THROW(Hyperexponential({}, {}), std::invalid_argument);
  EXPECT_THROW(Hyperexponential({0.5, 0.5}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Hyperexponential({0.5, 0.4}, {1.0, 2.0}),
               std::invalid_argument);  // weights sum to 0.9
  EXPECT_THROW(Hyperexponential({0.5, 0.5}, {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Hyperexponential({-0.5, 1.5}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::dist
