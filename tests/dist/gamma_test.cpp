#include "harvest/dist/gamma.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {
namespace {

TEST(GammaDist, ShapeOneIsExponential) {
  const GammaDist g(1.0, 100.0);
  const Exponential e(0.01);
  for (double x : {1.0, 50.0, 300.0}) {
    EXPECT_NEAR(g.pdf(x), e.pdf(x), 1e-12);
    EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-12);
    EXPECT_NEAR(g.partial_expectation(x), e.partial_expectation(x), 1e-9);
  }
}

TEST(GammaDist, MeanIsShapeTimesScale) {
  EXPECT_DOUBLE_EQ(GammaDist(2.5, 40.0).mean(), 100.0);
}

TEST(GammaDist, ErlangCdfClosedForm) {
  // k = 2 (Erlang): F(x) = 1 − e^{−x/θ}(1 + x/θ).
  const GammaDist g(2.0, 10.0);
  for (double x : {5.0, 20.0, 100.0}) {
    const double z = x / 10.0;
    EXPECT_NEAR(g.cdf(x), 1.0 - std::exp(-z) * (1.0 + z), 1e-12);
  }
}

TEST(GammaDist, PdfIntegratesToCdf) {
  const GammaDist g(0.6, 1000.0);  // decreasing hazard like the paper's data
  const double lo = g.quantile(0.01);
  const double x = 2000.0;
  const double integral = numerics::integrate_adaptive_simpson(
      [&](double u) { return g.pdf(u); }, lo, x, 1e-11);
  EXPECT_NEAR(integral, g.cdf(x) - g.cdf(lo), 1e-7);
}

TEST(GammaDist, PartialExpectationAgainstQuadrature) {
  const GammaDist g(0.6, 1000.0);
  for (double x : {50.0, 600.0, 5000.0}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double u) { return u * g.pdf(u); }, 1e-12, x, 1e-9);
    EXPECT_NEAR(g.partial_expectation(x) / numeric, 1.0, 1e-5) << "x=" << x;
  }
}

TEST(GammaDist, SampleMomentsMatchBothShapeRegimes) {
  numerics::Rng rng(88);
  for (double shape : {0.5, 3.0}) {  // exercises the boost path and not
    const GammaDist g(shape, 200.0);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += g.sample(rng);
    EXPECT_NEAR(sum / n / g.mean(), 1.0, 0.02) << "shape=" << shape;
  }
}

TEST(GammaDist, DensityAtZeroEdgeCases) {
  EXPECT_DOUBLE_EQ(GammaDist(2.0, 1.0).pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaDist(1.0, 4.0).pdf(0.0), 0.25);
  EXPECT_TRUE(std::isinf(GammaDist(0.5, 1.0).pdf(0.0)));
}

TEST(GammaDist, RejectsBadParameters) {
  EXPECT_THROW(GammaDist(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GammaDist(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::dist
