#include "harvest/dist/serialize.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/conditional.hpp"
#include "harvest/dist/empirical.hpp"
#include "harvest/dist/exponential.hpp"
#include "harvest/dist/gamma.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::dist {
namespace {

void expect_same_law(const Distribution& a, const Distribution& b) {
  EXPECT_EQ(a.name(), b.name());
  for (double x : {0.1 * a.mean(), a.mean(), 5.0 * a.mean()}) {
    EXPECT_DOUBLE_EQ(a.cdf(x), b.cdf(x)) << "x=" << x;
  }
}

TEST(Serialize, RoundTripsEveryParametricFamily) {
  const std::vector<DistributionPtr> models = {
      std::make_shared<Exponential>(0.0123456789),
      std::make_shared<Weibull>(0.43, 3409.0),
      std::make_shared<Hyperexponential>(
          std::vector<double>{0.6, 0.4},
          std::vector<double>{1.0 / 300.0, 1.0 / 28800.0}),
      std::make_shared<Hyperexponential>(
          std::vector<double>{0.5, 0.3, 0.2},
          std::vector<double>{0.01, 0.001, 0.0001}),
      std::make_shared<Lognormal>(6.5, 1.2),
      std::make_shared<GammaDist>(0.6, 2000.0),
  };
  for (const auto& m : models) {
    const auto restored = deserialize(serialize(*m));
    expect_same_law(*m, *restored);
  }
}

TEST(Serialize, ExactDoubleRoundTrip) {
  // 17 significant digits must reproduce the bits.
  const Weibull w(0.4300000000000001, 3409.000000000002);
  const auto r = deserialize(serialize(w));
  const auto* rw = dynamic_cast<const Weibull*>(r.get());
  ASSERT_NE(rw, nullptr);
  EXPECT_DOUBLE_EQ(rw->shape(), w.shape());
  EXPECT_DOUBLE_EQ(rw->scale(), w.scale());
}

TEST(Serialize, FormatIsStable) {
  EXPECT_EQ(serialize(Exponential(0.5)), "exponential 0.5");
  EXPECT_EQ(serialize(Weibull(2.0, 100.0)), "weibull 2 100");
}

TEST(Serialize, RejectsNonSerializableKinds) {
  const Empirical e({1.0, 2.0});
  EXPECT_THROW((void)serialize(e), std::invalid_argument);
  const Conditional c(std::make_shared<Exponential>(1.0), 5.0);
  EXPECT_THROW((void)serialize(c), std::invalid_argument);
}

TEST(Deserialize, RejectsMalformedInput) {
  EXPECT_THROW((void)deserialize(""), std::invalid_argument);
  EXPECT_THROW((void)deserialize("gaussian 0 1"), std::invalid_argument);
  EXPECT_THROW((void)deserialize("weibull 0.5"), std::invalid_argument);
  EXPECT_THROW((void)deserialize("exponential abc"), std::invalid_argument);
  EXPECT_THROW((void)deserialize("hyperexp 2 0.5 1.0"),
               std::invalid_argument);
  EXPECT_THROW((void)deserialize("hyperexp 0"), std::invalid_argument);
  // Parameter validation still applies after parsing.
  EXPECT_THROW((void)deserialize("weibull -1 100"), std::invalid_argument);
  EXPECT_THROW((void)deserialize("hyperexp 2 0.9 1.0 0.9 2.0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::dist
