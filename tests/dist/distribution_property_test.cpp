// Parameterized property suite: every invariant here must hold for every
// distribution family in the library. New families get these checks for
// free by adding a factory entry.
#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/conditional.hpp"
#include "harvest/dist/exponential.hpp"
#include "harvest/dist/gamma.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/quadrature.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::dist {
namespace {

struct Case {
  std::string label;
  std::function<DistributionPtr()> make;
};

std::vector<Case> all_cases() {
  return {
      {"exp_fast", [] { return std::make_shared<Exponential>(0.01); }},
      {"exp_slow", [] { return std::make_shared<Exponential>(2.0); }},
      {"weibull_paper", [] { return std::make_shared<Weibull>(0.43, 3409.0); }},
      {"weibull_light", [] { return std::make_shared<Weibull>(2.5, 50.0); }},
      {"weibull_exp_like", [] { return std::make_shared<Weibull>(1.0, 100.0); }},
      {"hyper2",
       [] {
         return std::make_shared<Hyperexponential>(
             std::vector<double>{0.6, 0.4},
             std::vector<double>{1.0 / 300.0, 1.0 / 28800.0});
       }},
      {"hyper3",
       [] {
         return std::make_shared<Hyperexponential>(
             std::vector<double>{0.5, 0.3, 0.2},
             std::vector<double>{1.0 / 60.0, 1.0 / 1800.0, 1.0 / 40000.0});
       }},
      {"lognormal", [] { return std::make_shared<Lognormal>(7.0, 1.1); }},
      {"gamma_heavy", [] { return std::make_shared<GammaDist>(0.6, 2000.0); }},
      {"gamma_light", [] { return std::make_shared<GammaDist>(3.0, 50.0); }},
      {"conditional_lognormal",
       [] {
         return std::make_shared<Conditional>(
             std::make_shared<Lognormal>(7.0, 1.1), 800.0);
       }},
      {"conditional_gamma",
       [] {
         return std::make_shared<Conditional>(
             std::make_shared<GammaDist>(0.6, 2000.0), 1200.0);
       }},
      {"conditional_weibull",
       [] {
         return std::make_shared<Conditional>(
             std::make_shared<Weibull>(0.43, 3409.0), 1500.0);
       }},
      {"conditional_hyper",
       [] {
         return std::make_shared<Conditional>(
             std::make_shared<Hyperexponential>(
                 std::vector<double>{0.6, 0.4},
                 std::vector<double>{1.0 / 300.0, 1.0 / 28800.0}),
             900.0);
       }},
  };
}

class DistributionProperty : public ::testing::TestWithParam<Case> {
 protected:
  DistributionPtr dist_ = GetParam().make();

  // Probe points spanning the distribution's scale.
  std::vector<double> probes() const {
    const double m = dist_->mean();
    return {1e-3 * m, 0.1 * m, 0.5 * m, m, 2.0 * m, 5.0 * m, 20.0 * m};
  }
};

TEST_P(DistributionProperty, CdfIsMonotoneWithinUnitInterval) {
  double prev = 0.0;
  for (double x : probes()) {
    const double f = dist_->cdf(x);
    EXPECT_GE(f, prev - 1e-14) << "x=" << x;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(dist_->cdf(0.0), 0.0);
}

TEST_P(DistributionProperty, SurvivalComplementsCdf) {
  for (double x : probes()) {
    EXPECT_NEAR(dist_->cdf(x) + dist_->survival(x), 1.0, 1e-12) << "x=" << x;
  }
}

TEST_P(DistributionProperty, PdfIsNonNegativeAndIntegratesToCdf) {
  // Integrate from the 1 % quantile upward: heavy-tailed Weibulls have an
  // integrable pdf singularity at 0 that adaptive Simpson cannot resolve.
  const double m = dist_->mean();
  const double lo = dist_->quantile(0.01);
  for (double x : {0.2 * m, m, 3.0 * m}) {
    if (x <= lo) continue;
    const double integral = numerics::integrate_adaptive_simpson(
        [&](double u) { return dist_->pdf(u); }, lo, x, 1e-11);
    EXPECT_NEAR(integral, dist_->cdf(x) - dist_->cdf(lo), 5e-6) << "x=" << x;
  }
  for (double x : probes()) EXPECT_GE(dist_->pdf(x), 0.0);
}

TEST_P(DistributionProperty, PartialExpectationMatchesQuadrature) {
  const double m = dist_->mean();
  for (double x : {0.3 * m, m, 4.0 * m}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double u) { return u * dist_->pdf(u); }, 1e-12, x, 1e-11);
    EXPECT_NEAR(dist_->partial_expectation(x), numeric,
                5e-6 * std::max(1.0, numeric))
        << "x=" << x;
  }
}

TEST_P(DistributionProperty, PartialExpectationIsMonotoneAndBoundedByMean) {
  double prev = 0.0;
  for (double x : probes()) {
    const double pe = dist_->partial_expectation(x);
    EXPECT_GE(pe, prev - 1e-12);
    EXPECT_LE(pe, dist_->mean() * (1.0 + 1e-9));
    prev = pe;
  }
  EXPECT_DOUBLE_EQ(dist_->partial_expectation(0.0), 0.0);
}

TEST_P(DistributionProperty, MeanEqualsIntegralOfSurvival) {
  // E[X] = ∫₀^∞ S(x) dx for non-negative X; truncate far into the tail.
  const double m = dist_->mean();
  double upper = 200.0 * m;
  // For very heavy tails extend further and accept the tail remainder.
  const double integral = numerics::integrate_adaptive_simpson(
      [&](double u) { return dist_->survival(u); }, 0.0, upper, 1e-9 * m);
  EXPECT_NEAR(integral / m, 1.0, 0.02);
}

TEST_P(DistributionProperty, ConditionalSurvivalAtAgeZeroIsSurvival) {
  for (double x : probes()) {
    EXPECT_NEAR(dist_->conditional_survival(0.0, x), dist_->survival(x),
                1e-12)
        << "x=" << x;
  }
}

TEST_P(DistributionProperty, ConditionalSurvivalDecreasesInHorizon) {
  const double m = dist_->mean();
  for (double age : {0.0, 0.5 * m, 2.0 * m}) {
    double prev = 1.0;
    for (double x : probes()) {
      const double s = dist_->conditional_survival(age, x);
      EXPECT_LE(s, prev + 1e-12) << "age=" << age << " x=" << x;
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      prev = s;
    }
    EXPECT_NEAR(dist_->conditional_survival(age, 0.0), 1.0, 1e-12);
  }
}

TEST_P(DistributionProperty, ConditionalSurvivalMatchesSurvivalRatio) {
  const double m = dist_->mean();
  for (double age : {0.1 * m, m}) {
    for (double x : {0.2 * m, 2.0 * m}) {
      const double st = dist_->survival(age);
      if (st < 1e-12) continue;
      EXPECT_NEAR(dist_->conditional_survival(age, x),
                  dist_->survival(age + x) / st, 1e-9)
          << "age=" << age << " x=" << x;
    }
  }
}

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = dist_->quantile(p);
    EXPECT_NEAR(dist_->cdf(x), p, 1e-8) << "p=" << p;
  }
}

TEST_P(DistributionProperty, SampleMeanConvergesToModelMean) {
  numerics::Rng rng(12345);
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += dist_->sample(rng);
  // Heavy tails converge slowly; 15 % is loose but catches gross breakage.
  EXPECT_NEAR(sum / n / dist_->mean(), 1.0, 0.15);
}

TEST_P(DistributionProperty, SampleKsAgainstOwnCdf) {
  numerics::Rng rng(777);
  const int n = 5000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist_->sample(rng);
  std::sort(xs.begin(), xs.end());
  double d = 0.0;
  for (int i = 0; i < n; ++i) {
    const double f = dist_->cdf(xs[i]);
    d = std::max(d, std::fabs(f - static_cast<double>(i) / n));
    d = std::max(d, std::fabs(static_cast<double>(i + 1) / n - f));
  }
  // KS 0.1% critical value ≈ 1.95 / sqrt(n) — loose enough that a fixed
  // seed across many instantiations doesn't trip on multiple comparisons,
  // tight enough to catch an actually-wrong sampler.
  EXPECT_LT(d, 1.95 / std::sqrt(static_cast<double>(n)));
}

TEST_P(DistributionProperty, SecondMomentMatchesSurvivalIntegral) {
  // E[X²] = 2∫₀^∞ t S(t) dt; integrate far enough into the tail that the
  // remainder is negligible relative to the closed form.
  const double m = dist_->mean();
  const double m2 = dist_->second_moment();
  double total = 0.0;
  double lo = 0.0;
  double width = m;
  for (int i = 0; i < 60; ++i) {
    total += numerics::integrate_adaptive_simpson(
        [&](double t) { return t * dist_->survival(t); }, lo, lo + width,
        1e-9 * m2);
    lo += width;
    if (dist_->survival(lo) * lo * lo < 1e-10 * m2) break;
    width *= 1.8;
  }
  EXPECT_NEAR(2.0 * total / m2, 1.0, 2e-3);
}

TEST_P(DistributionProperty, VarianceIsNonNegativeAndCvSane) {
  EXPECT_GE(dist_->variance(), 0.0);
  const double cv = dist_->coefficient_of_variation();
  EXPECT_GE(cv, 0.0);
  EXPECT_NEAR(cv * cv, dist_->variance() / (dist_->mean() * dist_->mean()),
              1e-9);
}

TEST_P(DistributionProperty, SampleVarianceConverges) {
  numerics::Rng rng(2468);
  const int n = 80000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist_->sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  // Sample variance of heavy-tailed laws converges slowly: loose bound.
  EXPECT_NEAR(var / dist_->variance(), 1.0, 0.5);
}

TEST_P(DistributionProperty, CloneBehavesIdentically) {
  const auto copy = dist_->clone();
  for (double x : probes()) {
    EXPECT_DOUBLE_EQ(copy->cdf(x), dist_->cdf(x));
  }
  EXPECT_EQ(copy->name(), dist_->name());
  EXPECT_EQ(copy->parameter_count(), dist_->parameter_count());
}

TEST_P(DistributionProperty, LogLikelihoodSumsLogPdf) {
  const std::vector<double> xs = {0.5 * dist_->mean(), dist_->mean(),
                                  1.5 * dist_->mean()};
  double expected = 0.0;
  for (double x : xs) expected += dist_->log_pdf(x);
  EXPECT_NEAR(dist_->log_likelihood(xs), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionProperty, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) { return info.param.label; });

}  // namespace
}  // namespace harvest::dist
