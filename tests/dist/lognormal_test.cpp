#include "harvest/dist/lognormal.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {
namespace {

TEST(Lognormal, MomentsMatchClosedForm) {
  const Lognormal ln(7.0, 1.2);
  EXPECT_NEAR(ln.mean(), std::exp(7.0 + 0.5 * 1.44), 1e-9);
}

TEST(Lognormal, MedianIsExpMu) {
  const Lognormal ln(3.0, 0.8);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(3.0), 1e-8);
  EXPECT_NEAR(ln.cdf(std::exp(3.0)), 0.5, 1e-12);
}

TEST(Lognormal, PdfIntegratesToCdf) {
  const Lognormal ln(1.0, 0.5);
  const double x = 5.0;
  const double integral = numerics::integrate_adaptive_simpson(
      [&](double u) { return ln.pdf(u); }, 1e-9, x, 1e-11);
  EXPECT_NEAR(integral, ln.cdf(x), 1e-8);
}

TEST(Lognormal, PartialExpectationAgainstQuadrature) {
  const Lognormal ln(6.0, 1.0);
  for (double x : {100.0, 500.0, 5000.0}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double u) { return u * ln.pdf(u); }, 1e-9, x, 1e-9);
    EXPECT_NEAR(ln.partial_expectation(x) / std::max(numeric, 1e-300), 1.0,
                1e-5)
        << "x=" << x;
  }
}

TEST(Lognormal, QuantileRoundTrips) {
  const Lognormal ln(2.0, 0.3);
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(Lognormal, SampleMeanConverges) {
  const Lognormal ln(5.0, 0.6);
  numerics::Rng rng(77);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += ln.sample(rng);
  EXPECT_NEAR(sum / n / ln.mean(), 1.0, 0.02);
}

TEST(Lognormal, NegativeArgumentsAreZeroMass) {
  const Lognormal ln(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ln.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_TRUE(std::isinf(ln.log_pdf(0.0)));
}

TEST(Lognormal, RejectsBadParameters) {
  EXPECT_THROW(Lognormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Lognormal(0.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::dist
