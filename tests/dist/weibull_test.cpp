#include "harvest/dist/weibull.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {
namespace {

// The paper's published exemplar fit (§5.1).
constexpr double kPaperShape = 0.43;
constexpr double kPaperScale = 3409.0;

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 4.0);
  const Exponential e(0.25);
  for (double x : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(w.pdf(x), e.pdf(x), 1e-12);
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
  EXPECT_NEAR(w.mean(), e.mean(), 1e-12);
}

TEST(Weibull, MeanMatchesGammaFormula) {
  const Weibull w(kPaperShape, kPaperScale);
  const double expected =
      kPaperScale * std::exp(std::lgamma(1.0 + 1.0 / kPaperShape));
  EXPECT_NEAR(w.mean(), expected, 1e-6);
}

TEST(Weibull, HazardDecreasesForShapeBelowOne) {
  const Weibull w(kPaperShape, kPaperScale);
  double prev = w.hazard(10.0);
  for (double x : {100.0, 1000.0, 10000.0}) {
    const double h = w.hazard(x);
    EXPECT_LT(h, prev);
    prev = h;
  }
}

TEST(Weibull, HazardIncreasesForShapeAboveOne) {
  const Weibull w(2.0, 100.0);
  EXPECT_LT(w.hazard(10.0), w.hazard(100.0));
}

TEST(Weibull, ConditionalSurvivalMatchesPaperEq9) {
  const Weibull w(kPaperShape, kPaperScale);
  const double t = 500.0;
  const double x = 1000.0;
  const double expected = std::exp(std::pow(t / kPaperScale, kPaperShape) -
                                   std::pow((t + x) / kPaperScale,
                                            kPaperShape));
  EXPECT_NEAR(w.conditional_survival(t, x), expected, 1e-12);
}

TEST(Weibull, HeavyTailConditionalSurvivalGrowsWithAge) {
  // Decreasing hazard: the longer a machine has been up, the more likely it
  // survives the next hour. This is what makes the schedule aperiodic.
  const Weibull w(kPaperShape, kPaperScale);
  const double x = 3600.0;
  double prev = 0.0;
  for (double age : {0.0, 600.0, 3600.0, 36000.0}) {
    const double s = w.conditional_survival(age, x);
    EXPECT_GT(s, prev) << "age=" << age;
    prev = s;
  }
}

TEST(Weibull, PartialExpectationAgainstQuadrature) {
  const Weibull w(kPaperShape, kPaperScale);
  for (double x : {10.0, 500.0, 3409.0, 50000.0}) {
    const double numeric = numerics::integrate_adaptive_simpson(
        [&](double t) { return t * w.pdf(t); }, 1e-9, x, 1e-10);
    EXPECT_NEAR(w.partial_expectation(x) / numeric, 1.0, 1e-6) << "x=" << x;
  }
}

TEST(Weibull, PartialExpectationConvergesToMean) {
  const Weibull w(0.7, 1000.0);
  EXPECT_NEAR(w.partial_expectation(1e9) / w.mean(), 1.0, 1e-9);
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(kPaperShape, kPaperScale);
  for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  }
}

TEST(Weibull, DensityAtZeroEdgeCases) {
  EXPECT_DOUBLE_EQ(Weibull(2.0, 1.0).pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Weibull(1.0, 2.0).pdf(0.0), 0.5);
  EXPECT_TRUE(std::isinf(Weibull(0.5, 1.0).pdf(0.0)));
}

TEST(Weibull, SampleMomentsMatch) {
  const Weibull w(kPaperShape, kPaperScale);
  numerics::Rng rng(7);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += w.sample(rng);
  EXPECT_NEAR(sum / n / w.mean(), 1.0, 0.05);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull(-1.0, 1.0), std::invalid_argument);
}

TEST(Weibull, DescribeMentionsParameters) {
  const Weibull w(0.43, 3409.0);
  const std::string d = w.describe();
  EXPECT_NE(d.find("0.43"), std::string::npos);
  EXPECT_NE(d.find("3409"), std::string::npos);
}

}  // namespace
}  // namespace harvest::dist
