// FailurePredictor oracle: config validation, determinism under a fixed
// seed, alert-placement invariants (true alerts inside the window ending at
// the event, false alerts provably outside it), and convergence of the
// observed precision/recall to the configured (p, r).
#include "harvest/predict/failure_predictor.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"

namespace harvest::predict {
namespace {

TEST(PredictorConfig, ValidateRejectsOutOfDomainFields) {
  PredictorConfig ok;
  EXPECT_NO_THROW(ok.validate());

  PredictorConfig bad = ok;
  bad.precision = 0.0;  // p must be strictly positive
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.precision = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.recall = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.recall = 1.01;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.window_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  PredictorConfig edge = ok;
  edge.precision = 1.0;  // a perfect predictor is in-domain
  edge.recall = 0.0;     // a silent one too
  EXPECT_NO_THROW(edge.validate());
}

TEST(FailurePredictor, RejectsNonPositiveSpell) {
  FailurePredictor oracle({}, 1);
  EXPECT_THROW(oracle.alerts_for_spell(100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(oracle.alerts_for_spell(100.0, 50.0), std::invalid_argument);
}

TEST(FailurePredictor, SameSeedAndSpellsReproduceAlertsBitForBit) {
  const PredictorConfig cfg{0.7, 0.6, 900.0};
  FailurePredictor a(cfg, 42);
  FailurePredictor b(cfg, 42);
  numerics::Rng spells(7);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double len = spells.uniform(10.0, 5000.0);
    const auto xs = a.alerts_for_spell(t, t + len);
    const auto ys = b.alerts_for_spell(t, t + len);
    ASSERT_EQ(xs.size(), ys.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      EXPECT_EQ(xs[k].time_s, ys[k].time_s);  // exact double equality
      EXPECT_EQ(xs[k].truth, ys[k].truth);
    }
    t += len;
  }
  EXPECT_EQ(a.stats().events, b.stats().events);
  EXPECT_EQ(a.stats().true_alerts, b.stats().true_alerts);
  EXPECT_EQ(a.stats().false_alerts, b.stats().false_alerts);
}

TEST(FailurePredictor, AlertsRespectWindowPlacementInvariants) {
  const PredictorConfig cfg{0.6, 0.8, 600.0};
  FailurePredictor oracle(cfg, 9);
  numerics::Rng spells(3);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double len = spells.uniform(5.0, 4000.0);
    const double event = t + len;
    double prev = t;
    for (const auto& a : oracle.alerts_for_spell(t, event)) {
      // Sorted, strictly inside the spell.
      EXPECT_GE(a.time_s, prev);
      EXPECT_GE(a.time_s, t);
      EXPECT_LT(a.time_s, event);
      if (a.truth) {
        // True alert: inside the window of length I ending at the event,
        // so the event falls inside (alert, alert + I].
        EXPECT_GE(a.time_s, event - cfg.window_s);
      } else {
        // False alert: strictly more than I before the event, so its
        // forward window provably misses it.
        EXPECT_LT(a.time_s, event - cfg.window_s);
      }
      prev = a.time_s;
    }
    t = event;
  }
}

TEST(FailurePredictor, ZeroRecallNeverAlerts) {
  FailurePredictor oracle({0.8, 0.0, 1800.0}, 5);
  numerics::Rng spells(1);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double len = spells.uniform(10.0, 5000.0);
    EXPECT_TRUE(oracle.alerts_for_spell(t, t + len).empty());
    t += len;
  }
  EXPECT_EQ(oracle.stats().true_alerts, 0u);
  EXPECT_EQ(oracle.stats().false_alerts, 0u);
  EXPECT_EQ(oracle.stats().missed, oracle.stats().events);
  EXPECT_EQ(oracle.stats().events, 100u);
}

TEST(FailurePredictor, ObservedPrecisionAndRecallConverge) {
  const PredictorConfig cfg{0.8, 0.7, 300.0};
  FailurePredictor oracle(cfg, 2024);
  numerics::Rng spells(77);
  double t = 0.0;
  // Spells mostly much longer than the window, so false alerts have room
  // and the observed precision can converge to p (not just from above).
  for (int i = 0; i < 20000; ++i) {
    const double len = spells.uniform(600.0, 6000.0);
    (void)oracle.alerts_for_spell(t, t + len);
    t += len;
  }
  const auto& s = oracle.stats();
  EXPECT_EQ(s.events, 20000u);
  EXPECT_EQ(s.missed, s.events - s.true_alerts);
  EXPECT_NEAR(oracle.stats().observed_recall(), cfg.recall, 0.02);
  EXPECT_NEAR(oracle.stats().observed_precision(), cfg.precision, 0.02);
}

TEST(FailurePredictor, ShortSpellsPushObservedPrecisionAboveConfigured) {
  // Every spell shorter than the window: no room for a provably false
  // alert, so every emitted alert is true and precision converges to 1.
  const PredictorConfig cfg{0.5, 0.9, 10000.0};
  FailurePredictor oracle(cfg, 6);
  numerics::Rng spells(8);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double len = spells.uniform(10.0, 1000.0);
    (void)oracle.alerts_for_spell(t, t + len);
    t += len;
  }
  EXPECT_EQ(oracle.stats().false_alerts, 0u);
  EXPECT_DOUBLE_EQ(oracle.stats().observed_precision(), 1.0);
}

TEST(PredictorStats, AccumulateAcrossOracles) {
  PredictorStats total;
  FailurePredictor a({0.8, 0.7, 600.0}, 1);
  FailurePredictor b({0.8, 0.7, 600.0}, 2);
  (void)a.alerts_for_spell(0.0, 5000.0);
  (void)b.alerts_for_spell(0.0, 5000.0);
  total += a.stats();
  total += b.stats();
  EXPECT_EQ(total.events, 2u);
  EXPECT_EQ(total.true_alerts + total.missed, total.events);
}

TEST(PredictorStats, EmptyStatsReportZeroRates) {
  const PredictorStats s;
  EXPECT_DOUBLE_EQ(s.observed_precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.observed_recall(), 0.0);
}

TEST(FailurePredictor, InvalidConfigThrowsAtConstruction) {
  PredictorConfig bad;
  bad.window_s = -1.0;
  EXPECT_THROW(FailurePredictor(bad, 1), std::invalid_argument);
}

TEST(FailurePredictor, ReclaimHintIsDeterministicAndRngFree) {
  // The matchmaking hint must be a pure function of (seed, spell, now):
  // calling it any number of times, in any order, neither advances the
  // alert RNG nor changes its own answer.
  const PredictorConfig cfg{0.8, 0.7, 900.0};
  FailurePredictor a(cfg, 33);
  FailurePredictor b(cfg, 33);
  numerics::Rng spells(4);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double len = spells.uniform(10.0, 4000.0);
    const double now = t + 0.25 * len;
    const auto h1 = a.reclaim_hint(t, t + len, now);
    const auto h2 = a.reclaim_hint(t, t + len, now);  // idempotent
    ASSERT_EQ(h1.has_value(), h2.has_value());
    if (h1.has_value()) EXPECT_EQ(*h1, *h2);
    // `a` answered hints, `b` did not; their alert streams must agree.
    const auto xs = a.alerts_for_spell(t, t + len);
    const auto ys = b.alerts_for_spell(t, t + len);
    ASSERT_EQ(xs.size(), ys.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      EXPECT_EQ(xs[k].time_s, ys[k].time_s);
    }
    t += len;
  }
}

TEST(FailurePredictor, ReclaimHintRespectsWindowAndRecall) {
  const PredictorConfig cfg{0.8, 1.0, 900.0};
  FailurePredictor oracle(cfg, 7);
  // Event outside the look-ahead window: no hint regardless of recall.
  EXPECT_FALSE(oracle.reclaim_hint(0.0, 10000.0, 100.0).has_value());
  // Event inside the window with recall 1: always hinted, with the exact
  // remaining time.
  const auto hint = oracle.reclaim_hint(0.0, 500.0, 100.0);
  ASSERT_TRUE(hint.has_value());
  EXPECT_DOUBLE_EQ(*hint, 400.0);
  // Reclamation already due clamps at zero rather than going negative.
  const auto overdue = oracle.reclaim_hint(0.0, 500.0, 600.0);
  ASSERT_TRUE(overdue.has_value());
  EXPECT_DOUBLE_EQ(*overdue, 0.0);

  FailurePredictor silent({0.8, 0.0, 900.0}, 7);
  EXPECT_FALSE(silent.reclaim_hint(0.0, 500.0, 100.0).has_value());
}

TEST(FailurePredictor, ReclaimHintCoverageTracksRecall) {
  const PredictorConfig cfg{0.8, 0.6, 1.0e9};
  FailurePredictor oracle(cfg, 11);
  numerics::Rng spells(12);
  int hinted = 0;
  const int trials = 5000;
  double t = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double len = spells.uniform(10.0, 4000.0);
    if (oracle.reclaim_hint(t, t + len, t).has_value()) ++hinted;
    t += len;
  }
  EXPECT_NEAR(static_cast<double>(hinted) / trials, cfg.recall, 0.03);
}

}  // namespace
}  // namespace harvest::predict
