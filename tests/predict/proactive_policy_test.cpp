// ProactivePolicy window rule: the three regimes of the clamped
// d* = ((I-C) - W)/2 placement, the benefit margin, and the Aupy et al.
// period-stretch factor with its effective-recall discount and cap.
#include "harvest/predict/proactive_policy.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace harvest::predict {
namespace {

constexpr PredictorConfig kPred{0.9, 0.8, 1000.0};  // p, r, I

TEST(ProactivePolicy, WindowTooShortForCheckpointSkips) {
  const ProactivePolicy policy(kPred);
  // I <= C: no delay can fit the checkpoint inside the window.
  const auto d = policy.decide(/*work_at_risk_s=*/500.0,
                               /*checkpoint_cost_s=*/1000.0);
  EXPECT_EQ(d.action, ProactiveAction::kSkip);
  const auto d2 = policy.decide(500.0, 1500.0);
  EXPECT_EQ(d2.action, ProactiveAction::kSkip);
}

TEST(ProactivePolicy, LargeWorkAtRiskCheckpointsImmediately) {
  const ProactivePolicy policy(kPred);
  // W >= I - C: d* clamps to 0 — delaying risks more than it accrues.
  const double c = 100.0;  // slack = 900
  const auto d = policy.decide(/*work_at_risk_s=*/2000.0, c);
  EXPECT_EQ(d.action, ProactiveAction::kCheckpointNow);
  EXPECT_DOUBLE_EQ(d.delay_s, 0.0);
  // B(0) = p * (I - C)/I * W - C.
  EXPECT_NEAR(d.expected_benefit_s, 0.9 * (900.0 / 1000.0) * 2000.0 - c,
              1e-9);
}

TEST(ProactivePolicy, SmallWorkAtRiskDelaysToWindowFraction) {
  const ProactivePolicy policy(kPred);
  const double c = 100.0;   // slack = I - C = 900
  const double w = 100.0;   // < slack: d* = (900 - 100)/2 = 400
  const auto d = policy.decide(w, c);
  EXPECT_EQ(d.action, ProactiveAction::kCheckpointDelayed);
  EXPECT_DOUBLE_EQ(d.delay_s, 400.0);
  // B(d*) = p * (slack - d*)/I * (W + d*) - C.
  EXPECT_NEAR(d.expected_benefit_s,
              0.9 * (500.0 / 1000.0) * 500.0 - c, 1e-9);
}

TEST(ProactivePolicy, DelayedPlacementMaximizesTheBenefitParabola) {
  const ProactivePolicy policy(kPred);
  const double c = 50.0;
  const double w = 200.0;
  const auto best = policy.decide(w, c);
  ASSERT_EQ(best.action, ProactiveAction::kCheckpointDelayed);
  const double slack = kPred.window_s - c;
  for (const double d : {0.0, 100.0, best.delay_s - 1.0, best.delay_s + 1.0,
                         slack}) {
    const double b =
        kPred.precision * ((slack - d) / kPred.window_s) * (w + d) - c;
    EXPECT_GE(best.expected_benefit_s, b - 1e-9);
  }
}

TEST(ProactivePolicy, NegativeBenefitSkipsEvenWhenWindowFits) {
  const ProactivePolicy policy(kPred);
  // Tiny work at risk, expensive checkpoint: B(d*) < 0.
  const auto d = policy.decide(/*work_at_risk_s=*/0.1,
                               /*checkpoint_cost_s=*/800.0);
  EXPECT_EQ(d.action, ProactiveAction::kSkip);
}

TEST(ProactivePolicy, MinBenefitMarginGatesTheAction) {
  const double c = 100.0;
  const double w = 100.0;
  const double b =
      ProactivePolicy(kPred).decide(w, c).expected_benefit_s;
  ASSERT_GT(b, 0.0);
  ProactivePolicyConfig strict;
  strict.min_benefit_s = b + 1.0;  // just above what this alert clears
  EXPECT_EQ(ProactivePolicy(kPred, strict).decide(w, c).action,
            ProactiveAction::kSkip);
  strict.min_benefit_s = b - 1.0;
  EXPECT_NE(ProactivePolicy(kPred, strict).decide(w, c).action,
            ProactiveAction::kSkip);
}

TEST(ProactivePolicy, InvalidPredictorConfigThrows) {
  PredictorConfig bad = kPred;
  bad.precision = 2.0;
  EXPECT_THROW(ProactivePolicy{bad}, std::invalid_argument);
}

TEST(ToString, CoversEveryAction) {
  EXPECT_EQ(to_string(ProactiveAction::kSkip), "skip");
  EXPECT_EQ(to_string(ProactiveAction::kCheckpointNow), "checkpoint_now");
  EXPECT_EQ(to_string(ProactiveAction::kCheckpointDelayed),
            "checkpoint_delayed");
}

TEST(EffectiveRecall, DiscountsByWindowFraction) {
  // r̃ = r * max(0, I - C)/I.
  EXPECT_DOUBLE_EQ(effective_recall(kPred, 0.0), 0.8);
  EXPECT_DOUBLE_EQ(effective_recall(kPred, 500.0), 0.8 * 0.5);
  EXPECT_DOUBLE_EQ(effective_recall(kPred, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(effective_recall(kPred, 2000.0), 0.0);
}

TEST(PeriodFactor, ZeroRecallIsExactlyIdentity) {
  PredictorConfig silent = kPred;
  silent.recall = 0.0;
  // Bit-exact 1.0: the engines multiply T_opt by this on the legacy path.
  EXPECT_EQ(prediction_period_factor(silent, 60.0), 1.0);
  // A window the checkpoint cannot fit is equally inert.
  EXPECT_EQ(prediction_period_factor(kPred, kPred.window_s), 1.0);
}

TEST(PeriodFactor, MatchesSquareRootLawAndIsCapped) {
  const double c = 200.0;  // r̃ = 0.8 * 0.8 = 0.64
  EXPECT_NEAR(prediction_period_factor(kPred, c),
              1.0 / std::sqrt(1.0 - 0.64), 1e-12);
  // Perfect recall with a negligible checkpoint: capped, large, finite.
  PredictorConfig perfect = kPred;
  perfect.recall = 1.0;
  const double f = prediction_period_factor(perfect, 0.0);
  EXPECT_NEAR(f, 1.0 / std::sqrt(1.0 - kMaxEffectiveRecall), 1e-12);
  EXPECT_TRUE(std::isfinite(f));
}

TEST(PeriodFactor, MonotoneInRecall) {
  double prev = 1.0;
  for (double r = 0.1; r <= 1.0; r += 0.1) {
    PredictorConfig cfg = kPred;
    cfg.recall = r;
    const double f = prediction_period_factor(cfg, 100.0);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace harvest::predict
