// The megapool engine's headline guarantee: bit-identical results to the
// legacy single-threaded engines at equal seeds, for every scenario
// (uncontended, contended, predictor) at any shard or thread count — plus
// the validate() resolution rules of the engine/scenario API.
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/span.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "mp" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.55, 2200.0 + 250.0 * static_cast<double>(i % 9));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig base_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 17;
  return cfg;
}

PoolSimConfig contended_config() {
  PoolSimConfig cfg = base_config();
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  cfg.scenario.fleet = fc;
  return cfg;
}

void expect_identical(const PoolSimResult& a, const PoolSimResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server_enabled, b.server_enabled);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s)
        << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].useful_work_s, b.jobs[i].useful_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].lost_work_s, b.jobs[i].lost_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_EQ(a.jobs[i].placements, b.jobs[i].placements);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
    EXPECT_EQ(a.jobs[i].proactive_checkpoints,
              b.jobs[i].proactive_checkpoints);
  }
}

PoolSimResult run_megapool(PoolSimConfig cfg, std::size_t threads,
                           std::size_t machines, std::size_t shards = 0) {
  cfg.engine = PoolEngine::kMegapool;
  cfg.megapool.threads = threads;
  cfg.megapool.shards = shards;
  return run_pool_simulation(park(machines), cfg);
}

TEST(Megapool, UncontendedBitIdenticalAtAnyThreadCount) {
  const auto legacy = run_pool_simulation(park(24), base_config());
  EXPECT_EQ(legacy.engine, PoolEngine::kUncontended);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto mega = run_megapool(base_config(), threads, 24);
    EXPECT_EQ(mega.engine, PoolEngine::kMegapool);
    expect_identical(legacy, mega);
  }
}

TEST(Megapool, ContendedBitIdenticalAtAnyThreadCount) {
  const auto legacy = run_pool_simulation(park(24), contended_config());
  EXPECT_EQ(legacy.engine, PoolEngine::kContended);
  ASSERT_TRUE(legacy.server_enabled);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto mega = run_megapool(contended_config(), threads, 24);
    expect_identical(legacy, mega);
    EXPECT_EQ(legacy.fleet.shards.size(), mega.fleet.shards.size());
  }
}

TEST(Megapool, ShardCountNeverChangesResults) {
  const auto one = run_megapool(contended_config(), 2, 30, 1);
  for (const std::size_t shards : {3u, 16u, 64u}) {
    expect_identical(one, run_megapool(contended_config(), 2, 30, shards));
  }
}

TEST(Megapool, PredictorScenarioBitIdentical) {
  PoolSimConfig cfg = contended_config();
  cfg.scenario.predictor = predict::PredictorConfig{0.9, 0.8, 600.0};
  const auto legacy = run_pool_simulation(park(24), cfg);
  ASSERT_TRUE(legacy.predictor_enabled);
  for (const std::size_t threads : {1u, 8u}) {
    const auto mega = run_megapool(cfg, threads, 24);
    expect_identical(legacy, mega);
    EXPECT_EQ(legacy.predictor.events, mega.predictor.events);
    EXPECT_EQ(legacy.predictor.true_alerts, mega.predictor.true_alerts);
    EXPECT_EQ(legacy.predictor.false_alerts, mega.predictor.false_alerts);
  }
}

TEST(Megapool, ModelRankedPolicyBitIdentical) {
  // kModelRanked exercises the candidate scan (uptime, model scoring, the
  // predictor demotion) rather than the random pick.
  for (auto policy : {MatchPolicy::kLongestUptime, MatchPolicy::kModelRanked}) {
    PoolSimConfig cfg = contended_config();
    cfg.policy = policy;
    cfg.scenario.predictor = predict::PredictorConfig{0.9, 0.7, 900.0};
    const auto legacy = run_pool_simulation(park(24), cfg);
    const auto mega = run_megapool(cfg, 8, 24);
    expect_identical(legacy, mega);
  }
}

TEST(Megapool, HooksRideAlongIdentically) {
  // Spans + timeline attach through the same RuntimeHooks on both engines
  // and must neither perturb results nor disagree with each other.
  obs::SpanStore legacy_spans;
  obs::SpanStore mega_spans;
  PoolSimConfig cfg = contended_config();
  cfg.hooks.snapshot_every_s = 6.0 * 3600.0;
  cfg.hooks.spans = &legacy_spans;
  const auto legacy = run_pool_simulation(park(24), cfg);
  cfg.hooks.spans = &mega_spans;
  const auto mega = run_megapool(cfg, 8, 24);
  expect_identical(legacy, mega);
  ASSERT_EQ(legacy.timeline.size(), mega.timeline.size());
  for (std::size_t f = 0; f < legacy.timeline.size(); ++f) {
    EXPECT_DOUBLE_EQ(legacy.timeline[f].interval_mb,
                     mega.timeline[f].interval_mb);
    EXPECT_EQ(legacy.timeline[f].jobs_finished,
              mega.timeline[f].jobs_finished);
  }
  const auto lr = legacy_spans.report();
  const auto mr = mega_spans.report();
  EXPECT_EQ(lr.total.transfers, mr.total.transfers);
  EXPECT_DOUBLE_EQ(lr.total.moved_mb, mr.total.moved_mb);
  EXPECT_TRUE(mega_spans.verify().ok());
}

TEST(Megapool, DeprecatedServerShorthandStaysBitIdentical) {
  // `server` desugars to a one-shard fleet in validate(); both spellings
  // must produce the same run under both engine families.
  server::ServerConfig sc;
  sc.capacity_mbps = 12.0;
  sc.slots = 2;

  PoolSimConfig shorthand = base_config();
  shorthand.server = sc;
  PoolSimConfig canonical = base_config();
  server::FleetConfig fc;
  fc.shards = 1;
  fc.server = sc;
  canonical.scenario.fleet = fc;

  expect_identical(run_pool_simulation(park(20), shorthand),
                   run_pool_simulation(park(20), canonical));
  expect_identical(run_megapool(shorthand, 4, 20),
                   run_megapool(canonical, 4, 20));
}

TEST(PoolSimValidate, AutoResolvesFromScenario) {
  PoolSimConfig cfg = base_config();
  EXPECT_EQ(cfg.validate().engine, PoolEngine::kUncontended);
  EXPECT_FALSE(cfg.validate().fleet.has_value());
  PoolSimConfig fleet_cfg = contended_config();
  EXPECT_EQ(fleet_cfg.validate().engine, PoolEngine::kContended);
  EXPECT_TRUE(fleet_cfg.validate().fleet.has_value());
  fleet_cfg.engine = PoolEngine::kMegapool;
  EXPECT_EQ(fleet_cfg.validate().engine, PoolEngine::kMegapool);
}

TEST(PoolSimValidate, DeprecatedServerDesugarsWithWarning) {
  PoolSimConfig cfg = base_config();
  cfg.server = server::ServerConfig{};
  const auto v = cfg.validate();
  EXPECT_EQ(v.engine, PoolEngine::kContended);
  ASSERT_TRUE(v.fleet.has_value());
  EXPECT_EQ(v.fleet->shards, 1u);
  const bool warned = std::any_of(
      v.warnings.begin(), v.warnings.end(), [](const std::string& w) {
        return w.find("deprecated") != std::string::npos;
      });
  EXPECT_TRUE(warned);
}

TEST(PoolSimValidate, ContradictionsThrow) {
  PoolSimConfig both = contended_config();
  both.server = server::ServerConfig{};
  EXPECT_THROW((void)both.validate(), std::invalid_argument);

  PoolSimConfig unc_fleet = contended_config();
  unc_fleet.engine = PoolEngine::kUncontended;
  EXPECT_THROW((void)unc_fleet.validate(), std::invalid_argument);

  PoolSimConfig cont_bare = base_config();
  cont_bare.engine = PoolEngine::kContended;
  EXPECT_THROW((void)cont_bare.validate(), std::invalid_argument);

  PoolSimConfig bad = base_config();
  bad.job_count = 0;
  EXPECT_THROW((void)bad.validate(), std::invalid_argument);
  bad = base_config();
  bad.negotiation_interval_s = 0.0;
  EXPECT_THROW((void)bad.validate(), std::invalid_argument);
}

TEST(PoolSimValidate, WarnsWhenMegapoolTuningIsIgnored) {
  PoolSimConfig cfg = base_config();
  cfg.megapool.threads = 8;
  const auto v = cfg.validate();
  EXPECT_EQ(v.engine, PoolEngine::kUncontended);
  const bool warned = std::any_of(
      v.warnings.begin(), v.warnings.end(), [](const std::string& w) {
        return w.find("megapool") != std::string::npos;
      });
  EXPECT_TRUE(warned);
}

TEST(PoolSimValidate, EngineNamesRoundTrip) {
  EXPECT_EQ(to_string(PoolEngine::kAuto), "auto");
  EXPECT_EQ(to_string(PoolEngine::kUncontended), "uncontended");
  EXPECT_EQ(to_string(PoolEngine::kContended), "contended");
  EXPECT_EQ(to_string(PoolEngine::kMegapool), "megapool");
}

}  // namespace
}  // namespace harvest::condor
