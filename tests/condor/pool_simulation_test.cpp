#include "harvest/condor/pool_simulation.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "pk" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig quick_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  return cfg;
}

TEST(PoolSimulation, JobsFinishAndAccountingHolds) {
  const auto res = run_pool_simulation(park(24), quick_config());
  ASSERT_EQ(res.jobs.size(), 6u);
  EXPECT_EQ(res.finished_count(), 6u);
  for (const auto& j : res.jobs) {
    EXPECT_TRUE(j.finished);
    EXPECT_NEAR(j.useful_work_s, 2.0 * 3600.0, 1.0);
    EXPECT_GT(j.completion_s, j.useful_work_s);  // overheads exist
    EXPECT_GT(j.placements, 0u);
    EXPECT_GT(j.moved_mb, 0.0);
  }
  EXPECT_GE(res.makespan_s, res.mean_completion_s());
}

TEST(PoolSimulation, DeterministicGivenSeed) {
  const auto a = run_pool_simulation(park(24), quick_config());
  const auto b = run_pool_simulation(park(24), quick_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
  }
}

TEST(PoolSimulation, MoreWorkTakesLonger) {
  PoolSimConfig small = quick_config();
  PoolSimConfig big = quick_config();
  big.work_per_job_s = 6.0 * 3600.0;
  const auto a = run_pool_simulation(park(24), small);
  const auto b = run_pool_simulation(park(24), big);
  EXPECT_GT(b.mean_completion_s(), a.mean_completion_s());
}

TEST(PoolSimulation, ContentionSlowsCompletion) {
  // Many jobs on few machines queue behind one another.
  PoolSimConfig uncontended = quick_config();
  uncontended.job_count = 2;
  PoolSimConfig contended = quick_config();
  contended.job_count = 24;
  const auto a = run_pool_simulation(park(8), uncontended);
  const auto b = run_pool_simulation(park(8), contended);
  EXPECT_GT(b.makespan_s, a.makespan_s);
}

TEST(PoolSimulation, HorizonCapsUnfinishedJobs) {
  PoolSimConfig cfg = quick_config();
  cfg.work_per_job_s = 1e9;  // cannot finish
  cfg.horizon_s = 6.0 * 3600.0;
  const auto res = run_pool_simulation(park(12), cfg);
  EXPECT_EQ(res.finished_count(), 0u);
  EXPECT_DOUBLE_EQ(res.makespan_s, cfg.horizon_s);
}

TEST(PoolSimulation, WanLinkMovesFewerLargerTransfersButFinishes) {
  PoolSimConfig campus = quick_config();
  PoolSimConfig wan = quick_config();
  wan.link = net::BandwidthModel::wan();
  const auto a = run_pool_simulation(park(24), campus);
  const auto b = run_pool_simulation(park(24), wan);
  EXPECT_EQ(b.finished_count(), 6u);
  // Dearer transfers → longer completion.
  EXPECT_GT(b.mean_completion_s(), a.mean_completion_s());
}

TEST(PoolSimulation, RejectsBadConfig) {
  EXPECT_THROW((void)run_pool_simulation({}, quick_config()),
               std::invalid_argument);
  PoolSimConfig cfg = quick_config();
  cfg.job_count = 0;
  EXPECT_THROW((void)run_pool_simulation(park(4), cfg),
               std::invalid_argument);
  cfg = quick_config();
  cfg.work_per_job_s = 0.0;
  EXPECT_THROW((void)run_pool_simulation(park(4), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::condor
