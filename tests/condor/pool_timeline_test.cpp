// Per-interval pool telemetry (PoolSimConfig::snapshot_every_s): the
// timeline must tile the run, partition the network total exactly, carry
// one shard slice per fleet shard — and, critically, never perturb the
// simulation itself.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "tl" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig fleet_config(std::size_t shards) {
  PoolSimConfig cfg;
  cfg.job_count = 8;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  server::FleetConfig fc;
  fc.shards = shards;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  cfg.scenario.fleet = fc;
  return cfg;
}

double timeline_mb(const std::vector<PoolTimelineFrame>& timeline) {
  double mb = 0.0;
  for (const auto& f : timeline) mb += f.interval_mb;
  return mb;
}

TEST(PoolTimeline, EmptyByDefault) {
  const auto res = run_pool_simulation(park(16), fleet_config(2));
  EXPECT_TRUE(res.timeline.empty());
}

TEST(PoolTimeline, NegativeCadenceThrows) {
  auto cfg = fleet_config(2);
  cfg.hooks.snapshot_every_s = -1.0;
  EXPECT_THROW(run_pool_simulation(park(16), cfg), std::invalid_argument);
}

// The acceptance-criteria run: a 128-machine K=4 fleet at a 600 s cadence.
// Summing per-interval shard megabytes over all frames must reproduce the
// run's total network traffic — the frames are an exact partition, not an
// approximation.
TEST(PoolTimeline, FleetFramesPartitionNetworkTotalExactly) {
  auto cfg = fleet_config(4);
  cfg.job_count = 32;
  cfg.hooks.snapshot_every_s = 600.0;
  const auto res = run_pool_simulation(park(128), cfg);
  ASSERT_FALSE(res.timeline.empty());
  const double total = res.total_moved_mb();
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(timeline_mb(res.timeline), total, 1e-6 * total);
  // Per-frame consistency: interval_mb is the sum of its shard slices.
  double shard_sum = 0.0;
  for (const auto& f : res.timeline) {
    ASSERT_EQ(f.shards.size(), 4u);
    double frame_shards = 0.0;
    for (const auto& s : f.shards) frame_shards += s.moved_mb;
    EXPECT_NEAR(frame_shards, f.interval_mb,
                1e-9 * std::max(1.0, f.interval_mb));
    shard_sum += frame_shards;
  }
  EXPECT_NEAR(shard_sum, total, 1e-6 * total);
  // And the fleet's own per-shard ledgers agree with the timeline's
  // per-shard sums.
  for (std::size_t k = 0; k < 4; ++k) {
    double mb = 0.0;
    for (const auto& f : res.timeline) mb += f.shards[k].moved_mb;
    EXPECT_NEAR(mb, res.fleet.shards[k].moved_mb,
                1e-6 * std::max(1.0, res.fleet.shards[k].moved_mb));
  }
}

TEST(PoolTimeline, FramesTileTheRunInOrder) {
  auto cfg = fleet_config(2);
  cfg.hooks.snapshot_every_s = 900.0;
  const auto res = run_pool_simulation(park(24), cfg);
  ASSERT_FALSE(res.timeline.empty());
  EXPECT_DOUBLE_EQ(res.timeline.front().start_s, 0.0);
  for (std::size_t i = 0; i < res.timeline.size(); ++i) {
    const auto& f = res.timeline[i];
    EXPECT_LE(f.start_s, f.t_s);
    if (i + 1 < res.timeline.size()) {
      // Interior frames are exactly one cadence long and abut the next.
      EXPECT_DOUBLE_EQ(f.t_s - f.start_s, 900.0);
      EXPECT_DOUBLE_EQ(res.timeline[i + 1].start_s, f.t_s);
    }
  }
  // Job completions land in frames too: their total matches the run.
  std::size_t finished = 0;
  for (const auto& f : res.timeline) finished += f.jobs_finished;
  EXPECT_EQ(finished, res.finished_count());
}

// Recording the timeline must not change a single bit of the simulation:
// same seed with and without a cadence gives identical job stats, makespan,
// and server ledgers.
TEST(PoolTimeline, TimelineDoesNotPerturbTheRun) {
  const auto plain = run_pool_simulation(park(24), fleet_config(2));
  auto cfg = fleet_config(2);
  cfg.hooks.snapshot_every_s = 300.0;
  const auto timed = run_pool_simulation(park(24), cfg);
  ASSERT_EQ(plain.jobs.size(), timed.jobs.size());
  EXPECT_DOUBLE_EQ(plain.makespan_s, timed.makespan_s);
  EXPECT_EQ(plain.server.submitted, timed.server.submitted);
  EXPECT_DOUBLE_EQ(plain.server.moved_mb, timed.server.moved_mb);
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.jobs[i].completion_s, timed.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(plain.jobs[i].moved_mb, timed.jobs[i].moved_mb);
    EXPECT_DOUBLE_EQ(plain.jobs[i].server_wait_s,
                     timed.jobs[i].server_wait_s);
    EXPECT_EQ(plain.jobs[i].evictions, timed.jobs[i].evictions);
  }
  EXPECT_TRUE(plain.timeline.empty());
  EXPECT_FALSE(timed.timeline.empty());
}

// Uncontended mode (no server/fleet) buckets whole placements by their end
// instant; the partition guarantee holds there too, with empty shard
// slices.
TEST(PoolTimeline, UncontendedFramesPartitionNetworkTotal) {
  PoolSimConfig cfg;
  cfg.job_count = 8;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  cfg.hooks.snapshot_every_s = 600.0;
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_FALSE(res.server_enabled);
  ASSERT_FALSE(res.timeline.empty());
  const double total = res.total_moved_mb();
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(timeline_mb(res.timeline), total, 1e-6 * total);
  std::size_t finished = 0;
  for (const auto& f : res.timeline) {
    EXPECT_TRUE(f.shards.empty());
    finished += f.jobs_finished;
  }
  EXPECT_EQ(finished, res.finished_count());
}

TEST(PoolTimeline, CsvHeaderAndRowShape) {
  auto cfg = fleet_config(2);
  cfg.hooks.snapshot_every_s = 900.0;
  const auto res = run_pool_simulation(park(24), cfg);
  const std::string csv = timeline_csv(res.timeline);
  const std::string header =
      "frame,start_s,end_s,interval_mb,jobs_finished,shard,queue_depth,"
      "active,pending_mb,moved_mb,wait_p50_s,wait_p99_s,utilization,"
      "storms_deferred\n";
  ASSERT_EQ(csv.rfind(header, 0), 0u);
  // One row per (frame, shard) plus the header line.
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + res.timeline.size() * 2);
  // Uncontended timelines render one row per frame with empty shard cells.
  PoolSimConfig ucfg;
  ucfg.job_count = 4;
  ucfg.work_per_job_s = 3600.0;
  ucfg.seed = 5;
  ucfg.hooks.snapshot_every_s = 600.0;
  const auto ures = run_pool_simulation(park(16), ucfg);
  const std::string ucsv = timeline_csv(ures.timeline);
  const auto ulines = static_cast<std::size_t>(
      std::count(ucsv.begin(), ucsv.end(), '\n'));
  EXPECT_EQ(ulines, 1 + ures.timeline.size());
  EXPECT_NE(ucsv.find(",,,,,,,\n"), std::string::npos);
}

TEST(PoolTimeline, UtilizationBoundedAndWaitsOrdered) {
  auto cfg = fleet_config(4);
  cfg.job_count = 16;
  cfg.hooks.snapshot_every_s = 600.0;
  const auto res = run_pool_simulation(park(64), cfg);
  for (const auto& f : res.timeline) {
    for (const auto& s : f.shards) {
      EXPECT_GE(s.utilization, 0.0);
      EXPECT_LE(s.utilization, 1.0);
      EXPECT_LE(s.wait_p50_s, s.wait_p99_s + 1e-12);
      EXPECT_GE(s.pending_mb, 0.0);
    }
  }
}

}  // namespace
}  // namespace harvest::condor
