// Pool simulation in contended-server mode: the opt-in ServerConfig routes
// every recovery/checkpoint transfer through one CheckpointServer. Checks
// determinism per seed, byte conservation between the job stats / server
// stats / tracer events, per-machine tracer tracks, and that the legacy
// path is untouched when the option is absent.
#include "harvest/condor/pool_simulation.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "pk" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig server_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  cfg.server = server::ServerConfig{};
  cfg.server->capacity_mbps = 12.0;
  cfg.server->slots = 2;
  return cfg;
}

TEST(PoolSimulationServer, JobsFinishAndServerStatsFill) {
  const auto res = run_pool_simulation(park(24), server_config());
  ASSERT_EQ(res.jobs.size(), 6u);
  EXPECT_TRUE(res.server_enabled);
  EXPECT_EQ(res.finished_count(), 6u);
  for (const auto& j : res.jobs) {
    EXPECT_NEAR(j.useful_work_s, 2.0 * 3600.0, 1.0);
    EXPECT_GT(j.moved_mb, 0.0);
  }
  EXPECT_GT(res.server.submitted, 0u);
  EXPECT_GT(res.server.completed, 0u);
  EXPECT_GE(res.server.submitted,
            res.server.completed + res.server.rejected);
  // Every byte the jobs account for went through the server, and vice
  // versa.
  EXPECT_NEAR(res.server.moved_mb, res.total_moved_mb(),
              1e-6 * res.total_moved_mb());
}

TEST(PoolSimulationServer, DeterministicGivenSeed) {
  const auto a = run_pool_simulation(park(24), server_config());
  const auto b = run_pool_simulation(park(24), server_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_DOUBLE_EQ(a.jobs[i].server_wait_s, b.jobs[i].server_wait_s);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
  }
}

TEST(PoolSimulationServer, SeedChangesTheRun) {
  auto cfg = server_config();
  const auto a = run_pool_simulation(park(24), cfg);
  cfg.seed = 6;
  const auto b = run_pool_simulation(park(24), cfg);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(PoolSimulationServer, TracerBytesMatchMovedMb) {
  auto cfg = server_config();
  obs::EventTracer tracer(0);  // unbounded: every event must survive
  cfg.hooks.tracer = &tracer;
  const auto res = run_pool_simulation(park(24), cfg);

  // Σ per-transfer server event bytes == server moved_mb == job moved_mb.
  double server_traced_mb = 0.0;
  double placement_traced_mb = 0.0;
  std::set<std::uint64_t> machine_tids;
  for (const auto& e : tracer.events()) {
    if (e.name == "server.transfer" ||
        e.name == "server.transfer.interrupted") {
      server_traced_mb += e.value;
      EXPECT_EQ(e.tid, server::kServerTraceTrack);
    } else if (e.name == "placement") {
      placement_traced_mb += e.value;
      machine_tids.insert(e.tid);
    }
  }
  EXPECT_NEAR(server_traced_mb, res.server.moved_mb,
              1e-9 * std::max(1.0, res.server.moved_mb));
  EXPECT_NEAR(placement_traced_mb, res.total_moved_mb(),
              1e-9 * std::max(1.0, res.total_moved_mb()));
  // Per-machine tracks: placements spread over several machine tids, all
  // plausible machine indices (well below the server's reserved track).
  EXPECT_GT(machine_tids.size(), 1u);
  for (const auto tid : machine_tids) {
    EXPECT_LT(tid, 24u);
  }
}

TEST(PoolSimulationServer, LegacyPathTracerAlsoUsesMachineTracks) {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  obs::EventTracer tracer(0);
  cfg.hooks.tracer = &tracer;
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_FALSE(res.server_enabled);
  double placement_traced_mb = 0.0;
  std::set<std::uint64_t> machine_tids;
  for (const auto& e : tracer.events()) {
    if (e.name != "placement") continue;
    placement_traced_mb += e.value;
    machine_tids.insert(e.tid);
  }
  EXPECT_NEAR(placement_traced_mb, res.total_moved_mb(),
              1e-9 * std::max(1.0, res.total_moved_mb()));
  EXPECT_GT(machine_tids.size(), 1u);
}

TEST(PoolSimulationServer, TightSlotsIncreaseWaiting) {
  auto roomy = server_config();
  roomy.server->slots = 16;
  auto tight = server_config();
  tight.server->slots = 1;
  tight.job_count = 12;
  roomy.job_count = 12;
  const auto a = run_pool_simulation(park(12), roomy);
  const auto b = run_pool_simulation(park(12), tight);
  // With one slot and twelve jobs hammering the same server, transfers
  // queue; with sixteen slots they rarely do.
  EXPECT_GT(b.server.mean_wait_s(), a.server.mean_wait_s());
  EXPECT_GT(b.server.peak_queue_depth, 0u);
}

TEST(PoolSimulationServer, UrgencyPolicyRunsAndConservesWork) {
  auto cfg = server_config();
  cfg.server->policy = server::SchedulerPolicy::kUrgency;
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_EQ(res.finished_count(), 6u);
  for (const auto& j : res.jobs) {
    EXPECT_NEAR(j.useful_work_s, 2.0 * 3600.0, 1.0);
  }
  EXPECT_NEAR(res.server.moved_mb, res.total_moved_mb(),
              1e-6 * res.total_moved_mb());
}

TEST(PoolSimulationServer, FairPolicyRunsWithZeroSlots) {
  auto cfg = server_config();
  cfg.server->policy = server::SchedulerPolicy::kFair;
  cfg.server->slots = 0;  // fair ignores the bound
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_EQ(res.finished_count(), 6u);
  EXPECT_DOUBLE_EQ(res.server.total_wait_s, 0.0);  // nothing ever queues
}

TEST(PoolSimulationFleet, OneShardFleetMatchesLegacyServerOption) {
  // cfg.server is documented as shorthand for a 1-shard fleet: spelling
  // the fleet out explicitly must reproduce the legacy run bit for bit.
  const auto legacy = run_pool_simulation(park(24), server_config());
  auto cfg = server_config();
  server::FleetConfig fleet;
  fleet.shards = 1;
  fleet.routing = server::RoutingPolicy::kStatic;
  fleet.server = *cfg.server;
  cfg.server.reset();
  cfg.scenario.fleet = fleet;
  const auto explicit_fleet = run_pool_simulation(park(24), cfg);

  EXPECT_DOUBLE_EQ(legacy.makespan_s, explicit_fleet.makespan_s);
  EXPECT_DOUBLE_EQ(legacy.total_moved_mb(), explicit_fleet.total_moved_mb());
  EXPECT_EQ(legacy.server.submitted, explicit_fleet.server.submitted);
  EXPECT_DOUBLE_EQ(legacy.server.total_wait_s,
                   explicit_fleet.server.total_wait_s);
  ASSERT_EQ(legacy.jobs.size(), explicit_fleet.jobs.size());
  for (std::size_t i = 0; i < legacy.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy.jobs[i].completion_s,
                     explicit_fleet.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(legacy.jobs[i].moved_mb, explicit_fleet.jobs[i].moved_mb);
  }
  ASSERT_EQ(explicit_fleet.fleet.shards.size(), 1u);
}

TEST(PoolSimulationFleet, SettingBothServerAndFleetThrows) {
  auto cfg = server_config();
  cfg.scenario.fleet = server::FleetConfig{};
  EXPECT_THROW((void)run_pool_simulation(park(24), cfg),
               std::invalid_argument);
}

TEST(PoolSimulationFleet, ShardedFleetRunsAndConservesBytes) {
  for (const auto routing :
       {server::RoutingPolicy::kStatic, server::RoutingPolicy::kHash,
        server::RoutingPolicy::kLeastLoaded}) {
    auto cfg = server_config();
    server::FleetConfig fleet;
    fleet.shards = 3;
    fleet.routing = routing;
    fleet.server = *cfg.server;
    cfg.server.reset();
    cfg.scenario.fleet = fleet;
    cfg.job_count = 12;
    const auto res = run_pool_simulation(park(24), cfg);
    EXPECT_TRUE(res.server_enabled);
    EXPECT_EQ(res.finished_count(), 12u);
    ASSERT_EQ(res.fleet.shards.size(), 3u);
    // The stable `server` field is the fleet aggregate.
    EXPECT_EQ(res.server.submitted, res.fleet.total.submitted);
    EXPECT_DOUBLE_EQ(res.server.moved_mb, res.fleet.total.moved_mb);
    // Per-shard ledgers sum to the aggregate and bytes balance with jobs.
    double shard_mb = 0.0;
    std::uint64_t shard_submitted = 0;
    for (const auto& s : res.fleet.shards) {
      shard_mb += s.moved_mb;
      shard_submitted += s.submitted;
    }
    EXPECT_NEAR(shard_mb, res.fleet.total.moved_mb,
                1e-9 * std::max(1.0, shard_mb));
    EXPECT_EQ(shard_submitted, res.fleet.total.submitted);
    EXPECT_NEAR(res.server.moved_mb, res.total_moved_mb(),
                1e-6 * res.total_moved_mb());
    EXPECT_GE(res.fleet.imbalance_ratio(), 1.0);
  }
}

TEST(PoolSimulationFleet, ShardedFleetIsDeterministicPerSeed) {
  auto make_cfg = [] {
    auto cfg = server_config();
    server::FleetConfig fleet;
    fleet.shards = 4;
    fleet.routing = server::RoutingPolicy::kHash;
    fleet.server = *cfg.server;
    cfg.server.reset();
    cfg.scenario.fleet = fleet;
    return cfg;
  };
  const auto a = run_pool_simulation(park(24), make_cfg());
  const auto b = run_pool_simulation(park(24), make_cfg());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  ASSERT_EQ(a.fleet.shards.size(), b.fleet.shards.size());
  for (std::size_t k = 0; k < a.fleet.shards.size(); ++k) {
    EXPECT_EQ(a.fleet.shards[k].submitted, b.fleet.shards[k].submitted);
    EXPECT_DOUBLE_EQ(a.fleet.shards[k].moved_mb, b.fleet.shards[k].moved_mb);
  }
}

}  // namespace
}  // namespace harvest::condor
