// Pool simulation in contended-server mode: the opt-in ServerConfig routes
// every recovery/checkpoint transfer through one CheckpointServer. Checks
// determinism per seed, byte conservation between the job stats / server
// stats / tracer events, per-machine tracer tracks, and that the legacy
// path is untouched when the option is absent.
#include "harvest/condor/pool_simulation.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "pk" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig server_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  cfg.server = server::ServerConfig{};
  cfg.server->capacity_mbps = 12.0;
  cfg.server->slots = 2;
  return cfg;
}

TEST(PoolSimulationServer, JobsFinishAndServerStatsFill) {
  const auto res = run_pool_simulation(park(24), server_config());
  ASSERT_EQ(res.jobs.size(), 6u);
  EXPECT_TRUE(res.server_enabled);
  EXPECT_EQ(res.finished_count(), 6u);
  for (const auto& j : res.jobs) {
    EXPECT_NEAR(j.useful_work_s, 2.0 * 3600.0, 1.0);
    EXPECT_GT(j.moved_mb, 0.0);
  }
  EXPECT_GT(res.server.submitted, 0u);
  EXPECT_GT(res.server.completed, 0u);
  EXPECT_GE(res.server.submitted,
            res.server.completed + res.server.rejected);
  // Every byte the jobs account for went through the server, and vice
  // versa.
  EXPECT_NEAR(res.server.moved_mb, res.total_moved_mb(),
              1e-6 * res.total_moved_mb());
}

TEST(PoolSimulationServer, DeterministicGivenSeed) {
  const auto a = run_pool_simulation(park(24), server_config());
  const auto b = run_pool_simulation(park(24), server_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_DOUBLE_EQ(a.jobs[i].server_wait_s, b.jobs[i].server_wait_s);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
  }
}

TEST(PoolSimulationServer, SeedChangesTheRun) {
  auto cfg = server_config();
  const auto a = run_pool_simulation(park(24), cfg);
  cfg.seed = 6;
  const auto b = run_pool_simulation(park(24), cfg);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(PoolSimulationServer, TracerBytesMatchMovedMb) {
  auto cfg = server_config();
  obs::EventTracer tracer(0);  // unbounded: every event must survive
  cfg.tracer = &tracer;
  const auto res = run_pool_simulation(park(24), cfg);

  // Σ per-transfer server event bytes == server moved_mb == job moved_mb.
  double server_traced_mb = 0.0;
  double placement_traced_mb = 0.0;
  std::set<std::uint64_t> machine_tids;
  for (const auto& e : tracer.events()) {
    if (e.name == "server.transfer" ||
        e.name == "server.transfer.interrupted") {
      server_traced_mb += e.value;
      EXPECT_EQ(e.tid, server::kServerTraceTrack);
    } else if (e.name == "placement") {
      placement_traced_mb += e.value;
      machine_tids.insert(e.tid);
    }
  }
  EXPECT_NEAR(server_traced_mb, res.server.moved_mb,
              1e-9 * std::max(1.0, res.server.moved_mb));
  EXPECT_NEAR(placement_traced_mb, res.total_moved_mb(),
              1e-9 * std::max(1.0, res.total_moved_mb()));
  // Per-machine tracks: placements spread over several machine tids, all
  // plausible machine indices (well below the server's reserved track).
  EXPECT_GT(machine_tids.size(), 1u);
  for (const auto tid : machine_tids) {
    EXPECT_LT(tid, 24u);
  }
}

TEST(PoolSimulationServer, LegacyPathTracerAlsoUsesMachineTracks) {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  obs::EventTracer tracer(0);
  cfg.tracer = &tracer;
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_FALSE(res.server_enabled);
  double placement_traced_mb = 0.0;
  std::set<std::uint64_t> machine_tids;
  for (const auto& e : tracer.events()) {
    if (e.name != "placement") continue;
    placement_traced_mb += e.value;
    machine_tids.insert(e.tid);
  }
  EXPECT_NEAR(placement_traced_mb, res.total_moved_mb(),
              1e-9 * std::max(1.0, res.total_moved_mb()));
  EXPECT_GT(machine_tids.size(), 1u);
}

TEST(PoolSimulationServer, TightSlotsIncreaseWaiting) {
  auto roomy = server_config();
  roomy.server->slots = 16;
  auto tight = server_config();
  tight.server->slots = 1;
  tight.job_count = 12;
  roomy.job_count = 12;
  const auto a = run_pool_simulation(park(12), roomy);
  const auto b = run_pool_simulation(park(12), tight);
  // With one slot and twelve jobs hammering the same server, transfers
  // queue; with sixteen slots they rarely do.
  EXPECT_GT(b.server.mean_wait_s(), a.server.mean_wait_s());
  EXPECT_GT(b.server.peak_queue_depth, 0u);
}

TEST(PoolSimulationServer, UrgencyPolicyRunsAndConservesWork) {
  auto cfg = server_config();
  cfg.server->policy = server::SchedulerPolicy::kUrgency;
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_EQ(res.finished_count(), 6u);
  for (const auto& j : res.jobs) {
    EXPECT_NEAR(j.useful_work_s, 2.0 * 3600.0, 1.0);
  }
  EXPECT_NEAR(res.server.moved_mb, res.total_moved_mb(),
              1e-6 * res.total_moved_mb());
}

TEST(PoolSimulationServer, FairPolicyRunsWithZeroSlots) {
  auto cfg = server_config();
  cfg.server->policy = server::SchedulerPolicy::kFair;
  cfg.server->slots = 0;  // fair ignores the bound
  const auto res = run_pool_simulation(park(24), cfg);
  EXPECT_EQ(res.finished_count(), 6u);
  EXPECT_DOUBLE_EQ(res.server.total_wait_s, 0.0);  // nothing ever queues
}

}  // namespace
}  // namespace harvest::condor
