// Pool-level span tracing: attaching a SpanStore must not change either
// engine's results bit-for-bit, every attributed transfer's wait must
// partition exactly, job roots must cover the run, and the contended
// engine must surface backoff / rejection spans when admission pushes
// back.
#include "harvest/condor/pool_simulation.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/obs/span.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "sp" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig contended_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  cfg.server = server::ServerConfig{};
  cfg.server->capacity_mbps = 12.0;
  cfg.server->slots = 2;
  return cfg;
}

void expect_identical(const PoolSimResult& a, const PoolSimResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_EQ(a.server.rejected, b.server.rejected);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished);
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_DOUBLE_EQ(a.jobs[i].server_wait_s, b.jobs[i].server_wait_s);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
  }
}

TEST(PoolSpans, ContendedEngineIsBitIdenticalWithSpansAttached) {
  const auto plain = run_pool_simulation(park(24), contended_config());
  obs::SpanStore store;
  PoolSimConfig cfg = contended_config();
  cfg.hooks.spans = &store;
  const auto spanned = run_pool_simulation(park(24), cfg);
  expect_identical(plain, spanned);
  EXPECT_GT(store.report().total.transfers, 0u);
}

TEST(PoolSpans, ContendedPartitionIsExactAndTreeWellFormed) {
  obs::SpanStore store;
  PoolSimConfig cfg = contended_config();
  cfg.hooks.spans = &store;
  const auto res = run_pool_simulation(park(24), cfg);
  const auto r = store.report();
  EXPECT_LE(r.max_partition_error_s, 1e-9);
  EXPECT_TRUE(store.verify().ok());
  // Every server-side completion or interruption was attributed.
  EXPECT_EQ(r.total.transfers,
            res.server.completed + res.server.interrupted);
  EXPECT_EQ(r.total.rejected, res.server.rejected);
  EXPECT_NEAR(r.total.moved_mb, res.server.moved_mb, 1e-6);
  // One root span per job, all closed by the end of the run.
  std::size_t job_roots = 0;
  for (const auto& s : store.spans()) {
    if (s.phase == obs::SpanPhase::kJob) ++job_roots;
  }
  EXPECT_EQ(job_roots, res.jobs.size());
}

TEST(PoolSpans, AdmissionPushbackYieldsBackoffAndRejectionSpans) {
  obs::SpanStore store;
  PoolSimConfig cfg = contended_config();
  cfg.server->slots = 1;
  cfg.server->queue_limit = 0;  // every contender is bounced into backoff
  cfg.hooks.spans = &store;
  (void)run_pool_simulation(park(24), cfg);
  const auto r = store.report();
  EXPECT_GT(r.total.rejected, 0u);
  EXPECT_GT(r.total.backoffs, 0u);
  EXPECT_GT(r.total.backoff_s, 0.0);
  EXPECT_TRUE(store.verify().ok());
}

TEST(PoolSpans, UncontendedEngineIsBitIdenticalWithSpansAttached) {
  PoolSimConfig cfg;
  cfg.job_count = 5;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 11;
  const auto plain = run_pool_simulation(park(20), cfg);
  obs::SpanStore store;
  cfg.hooks.spans = &store;
  const auto spanned = run_pool_simulation(park(20), cfg);
  EXPECT_DOUBLE_EQ(plain.makespan_s, spanned.makespan_s);
  ASSERT_EQ(plain.jobs.size(), spanned.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.jobs[i].completion_s,
                     spanned.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(plain.jobs[i].moved_mb, spanned.jobs[i].moved_mb);
  }
  // Uncontended transfers never wait: pure service phase, zero wait,
  // trivially exact partition.
  const auto r = store.report();
  EXPECT_GT(r.total.transfers, 0u);
  EXPECT_DOUBLE_EQ(r.total.wait_s, 0.0);
  EXPECT_DOUBLE_EQ(r.total.stagger_s, 0.0);
  EXPECT_DOUBLE_EQ(r.max_partition_error_s, 0.0);
  EXPECT_GT(r.total.service_solo_s, 0.0);
  EXPECT_TRUE(store.verify().ok());
}

TEST(PoolSpans, FleetRunSplitsAttributionAcrossShards) {
  obs::SpanStore store;
  PoolSimConfig cfg;
  cfg.job_count = 8;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 7;
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  cfg.scenario.fleet = fc;
  cfg.hooks.spans = &store;
  const auto res = run_pool_simulation(park(24), cfg);
  ASSERT_TRUE(res.server_enabled);
  const auto r = store.report();
  EXPECT_LE(r.max_partition_error_s, 1e-9);
  ASSERT_EQ(r.by_shard.size(), res.fleet.shards.size());
  std::uint64_t sum = 0;
  double shard_mb = 0.0;
  for (std::size_t i = 0; i < r.by_shard.size(); ++i) {
    sum += r.by_shard[i].transfers;
    shard_mb += r.by_shard[i].moved_mb;
    // Per-shard span totals mirror the per-shard server ledger.
    EXPECT_EQ(r.by_shard[i].transfers,
              res.fleet.shards[i].completed + res.fleet.shards[i].interrupted);
  }
  EXPECT_EQ(sum, r.total.transfers);
  EXPECT_NEAR(shard_mb, res.fleet.total.moved_mb, 1e-6);
}

}  // namespace
}  // namespace harvest::condor
