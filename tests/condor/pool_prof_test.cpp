// Engine self-profiling through run_pool_simulation: the profiler hook's
// purity contract (bit-identical results in all three engines), the phase
// taxonomy each spine emits, the conservation invariant on real runs, and
// the per-machine predictor attribution that rides in the same PR.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/prof.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "p" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.6, 2000.0 + 250.0 * static_cast<double>(i % 5));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig base_config() {
  PoolSimConfig cfg;
  cfg.job_count = 4;
  cfg.work_per_job_s = 1.5 * 3600.0;
  cfg.seed = 404;
  return cfg;
}

void expect_identical(const PoolSimResult& a, const PoolSimResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished);
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].useful_work_s, b.jobs[i].useful_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].lost_work_s, b.jobs[i].lost_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_EQ(a.jobs[i].placements, b.jobs[i].placements);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
    EXPECT_DOUBLE_EQ(a.jobs[i].server_wait_s, b.jobs[i].server_wait_s);
  }
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  EXPECT_DOUBLE_EQ(a.server.total_wait_s, b.server.total_wait_s);
}

TEST(PoolProfiling, UncontendedBitIdenticalWithProfiler) {
  const auto specs = park(12);
  PoolSimConfig cfg = base_config();
  const auto plain = run_pool_simulation(specs, cfg);

  obs::prof::PhaseProfiler profiler;
  cfg.hooks.profiler = &profiler;
  const auto profiled = run_pool_simulation(specs, cfg);
  expect_identical(plain, profiled);

  const auto report = profiler.report();
  EXPECT_GT(report.scope_count("uncontended.negotiate"), 0u);
  EXPECT_GT(report.scope_count("uncontended.placement"), 0u);
  EXPECT_GT(report.scope_count("fit.models"), 0u);
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
}

TEST(PoolProfiling, ContendedBitIdenticalWithProfiler) {
  const auto specs = park(12);
  PoolSimConfig cfg = base_config();
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 15.0;
  fc.server.slots = 2;
  cfg.scenario.fleet = fc;
  const auto plain = run_pool_simulation(specs, cfg);

  obs::prof::PhaseProfiler profiler;
  cfg.hooks.profiler = &profiler;
  const auto profiled = run_pool_simulation(specs, cfg);
  expect_identical(plain, profiled);

  const auto report = profiler.report();
  EXPECT_GT(report.scope_count("contended.negotiate"), 0u);
  EXPECT_GT(report.scope_count("contended.drain"), 0u);
  EXPECT_GT(report.scope_count("fleet.submit"), 0u);
  EXPECT_GT(report.scope_count("fleet.drain"), 0u);
  EXPECT_GT(report.scope_count("server.admission"), 0u);
  EXPECT_GT(report.scope_count("server.drain"), 0u);
  EXPECT_GT(report.scope_count("server.schedule"), 0u);
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
}

TEST(PoolProfiling, MegapoolBitIdenticalWithProfilerAtAnyThreadCount) {
  const auto specs = park(12);
  PoolSimConfig cfg = base_config();
  cfg.engine = PoolEngine::kMegapool;
  cfg.megapool.shards = 3;
  cfg.policy = MatchPolicy::kLongestUptime;

  cfg.megapool.threads = 1;
  const auto plain = run_pool_simulation(specs, cfg);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PoolSimConfig on = cfg;
    on.megapool.threads = threads;
    obs::prof::PhaseProfiler profiler;
    on.hooks.profiler = &profiler;
    const auto profiled = run_pool_simulation(specs, on);
    expect_identical(plain, profiled);

    const auto report = profiler.report();
    EXPECT_GT(report.scope_count("megapool.negotiate"), 0u);
    EXPECT_GT(report.scope_count("megapool.spell-advance"), 0u);
    EXPECT_GT(report.scope_count("megapool.matchmake"), 0u);
    EXPECT_GT(report.scope_count("megapool.merge"), 0u);
    EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
    if (threads > 1) {
      // The fanned run records queue waits as latency rows — visible in
      // the report but exempt from the wall-clock conservation check.
      EXPECT_GT(report.scope_count("pool.run"), 0u);
    }
  }
}

TEST(PoolProfiling, ProfilerDeactivatedAfterRun) {
  const auto specs = park(6);
  PoolSimConfig cfg = base_config();
  cfg.job_count = 2;
  obs::prof::PhaseProfiler profiler;
  cfg.hooks.profiler = &profiler;
  obs::prof::set_active(nullptr);
  (void)run_pool_simulation(specs, cfg);
  EXPECT_EQ(obs::prof::active(), nullptr);
}

TEST(PoolProfiling, PerMachinePredictorStatsSumToAggregate) {
  const auto specs = park(12);
  PoolSimConfig cfg = base_config();
  predict::PredictorConfig pc;
  pc.precision = 0.8;
  pc.recall = 0.6;
  pc.window_s = 1200.0;
  cfg.scenario.predictor = pc;

  for (const bool contended : {false, true}) {
    PoolSimConfig run = cfg;
    if (contended) {
      server::FleetConfig fc;
      fc.shards = 2;
      run.scenario.fleet = fc;
    }
    const auto res = run_pool_simulation(specs, run);
    ASSERT_TRUE(res.predictor_enabled);
    ASSERT_FALSE(res.predictor_machines.empty());
    EXPECT_LE(res.predictor_machines.size(), specs.size());
    predict::PredictorStats sum;
    for (const auto& m : res.predictor_machines) sum += m;
    // The engines attribute every spell to its machine, so the per-machine
    // slices partition the aggregate exactly.
    EXPECT_EQ(sum.events, res.predictor.events);
    EXPECT_EQ(sum.true_alerts, res.predictor.true_alerts);
    EXPECT_EQ(sum.false_alerts, res.predictor.false_alerts);
    EXPECT_EQ(sum.missed, res.predictor.missed);
  }
}

TEST(PoolProfiling, PerMachineAttributionDoesNotChangeResults) {
  // The machine parameter on alerts_for_spell is bookkeeping only: a
  // predictor run must produce the same alerts (hence same results) as it
  // did before per-machine attribution existed. Pinned by comparing the
  // predictor-on run against itself across engines, which share streams.
  const auto specs = park(12);
  PoolSimConfig cfg = base_config();
  predict::PredictorConfig pc;
  pc.recall = 0.5;
  cfg.scenario.predictor = pc;

  const auto legacy = run_pool_simulation(specs, cfg);

  PoolSimConfig mega = cfg;
  mega.engine = PoolEngine::kMegapool;
  mega.megapool.threads = 1;
  const auto megapool = run_pool_simulation(specs, mega);
  expect_identical(legacy, megapool);
  EXPECT_EQ(legacy.predictor.events, megapool.predictor.events);
  ASSERT_EQ(legacy.predictor_machines.size(),
            megapool.predictor_machines.size());
  for (std::size_t i = 0; i < legacy.predictor_machines.size(); ++i) {
    EXPECT_EQ(legacy.predictor_machines[i].events,
              megapool.predictor_machines[i].events);
  }
}

}  // namespace
}  // namespace harvest::condor
