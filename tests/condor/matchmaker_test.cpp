#include "harvest/condor/matchmaker.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/predict/failure_predictor.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> mixed_specs(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "tm" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.45, 1500.0 + 500.0 * static_cast<double>(i % 5));
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<dist::DistributionPtr> ground_truth_models(
    const std::vector<TimelinePool::MachineSpec>& specs) {
  std::vector<dist::DistributionPtr> models;
  for (const auto& s : specs) models.push_back(s.availability_law);
  return models;
}

TEST(TimelinePool, CandidatesCarryConsistentUptimes) {
  TimelinePool pool(mixed_specs(20), 3);
  const auto c1 = pool.available_at(1000.0);
  EXPECT_FALSE(c1.empty());
  for (const auto& c : c1) {
    EXPECT_GE(c.uptime_s, 0.0);
    EXPECT_LE(c.uptime_s, 1000.0 + 1e-9);
    EXPECT_GT(pool.remaining_availability(c.machine_index, 1000.0), 0.0);
  }
}

TEST(TimelinePool, TimeMovesForwardConsistently) {
  TimelinePool pool(mixed_specs(10), 5);
  const auto early = pool.available_at(500.0);
  const auto late = pool.available_at(600.0);
  // A machine available at both instants with no state change in between
  // must have aged exactly 100 s.
  for (const auto& a : early) {
    for (const auto& b : late) {
      if (a.machine_index == b.machine_index &&
          b.uptime_s >= a.uptime_s) {
        EXPECT_NEAR(b.uptime_s - a.uptime_s, 100.0, 1e-9);
      }
    }
  }
}

TEST(TimelinePool, RemainingAvailabilityRequiresAvailable) {
  TimelinePool pool(mixed_specs(4), 7);
  const auto avail = pool.available_at(100.0);
  // Some machine is busy at t=100 (4 machines, random phases) across seeds;
  // find one and expect the logic_error.
  bool found_busy = false;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    bool is_available = false;
    for (const auto& c : avail) {
      if (c.machine_index == i) is_available = true;
    }
    if (!is_available) {
      found_busy = true;
      EXPECT_THROW((void)pool.remaining_availability(i, 100.0),
                   std::logic_error);
    }
  }
  (void)found_busy;  // phase randomness may make all available; that's fine
}

TEST(TimelinePool, RejectsEmptyOrLawless) {
  EXPECT_THROW(TimelinePool({}, 1), std::invalid_argument);
  std::vector<TimelinePool::MachineSpec> specs(1);
  specs[0].id = "nolaw";
  EXPECT_THROW(TimelinePool(std::move(specs), 1), std::invalid_argument);
}

TEST(Matchmaker, LongestUptimePicksOldestCandidate) {
  TimelinePool pool(mixed_specs(30), 11);
  Matchmaker mm(pool, {}, MatchPolicy::kLongestUptime, 1);
  const auto match = mm.place(5000.0);
  ASSERT_TRUE(match.has_value());
  const auto candidates = pool.available_at(5000.0);
  double oldest = 0.0;
  for (const auto& c : candidates) oldest = std::max(oldest, c.uptime_s);
  EXPECT_DOUBLE_EQ(match->uptime_s, oldest);
}

TEST(Matchmaker, ModelRankedNeedsModels) {
  TimelinePool pool(mixed_specs(5), 13);
  EXPECT_THROW(Matchmaker(pool, {}, MatchPolicy::kModelRanked, 1),
               std::invalid_argument);
}

TEST(Matchmaker, PolicyNamesRoundTrip) {
  EXPECT_EQ(to_string(MatchPolicy::kRandom), "random");
  EXPECT_EQ(to_string(MatchPolicy::kLongestUptime), "longest-uptime");
  EXPECT_EQ(to_string(MatchPolicy::kModelRanked), "model-ranked");
}

TEST(Matchmaker, AgeAwarePoliciesBeatRandomOnHeavyTails) {
  // The core claim: with decreasing hazards, picking machines that have
  // been up longer yields longer remaining availability on average.
  const auto specs = mixed_specs(40);
  const auto models = ground_truth_models(specs);

  double mean_random = 0.0;
  double mean_oldest = 0.0;
  double mean_model = 0.0;
  int n = 0;
  for (int trial = 0; trial < 250; ++trial) {
    const double now = 2000.0 + 997.0 * trial;
    TimelinePool p1(specs, 100 + trial);
    TimelinePool p2(specs, 100 + trial);
    TimelinePool p3(specs, 100 + trial);
    Matchmaker random(p1, {}, MatchPolicy::kRandom, trial);
    Matchmaker oldest(p2, {}, MatchPolicy::kLongestUptime, trial);
    Matchmaker ranked(p3, models, MatchPolicy::kModelRanked, trial);
    const auto r = random.place(now);
    const auto o = oldest.place(now);
    const auto m = ranked.place(now);
    if (!r || !o || !m) continue;
    mean_random += r->remaining_s;
    mean_oldest += o->remaining_s;
    mean_model += m->remaining_s;
    ++n;
  }
  ASSERT_GT(n, 150);
  mean_random /= n;
  mean_oldest /= n;
  mean_model /= n;
  // Heavy-tailed means are noisy even at n=250; a 10 % margin is already a
  // decisive policy difference while keeping the test stable.
  EXPECT_GT(mean_oldest, mean_random * 1.1);
  EXPECT_GT(mean_model, mean_random * 1.1);
}

TEST(Matchmaker, SilentPredictorLeavesModelRankedUntouched) {
  // recall = 0 can never hint, so attaching the oracle must not move a
  // single placement.
  const auto specs = mixed_specs(30);
  const auto models = ground_truth_models(specs);
  const predict::FailurePredictor silent({0.9, 0.0, 600.0}, 5);
  for (int trial = 0; trial < 50; ++trial) {
    const double now = 1500.0 + 811.0 * trial;
    TimelinePool p1(specs, 40 + trial);
    TimelinePool p2(specs, 40 + trial);
    Matchmaker plain(p1, models, MatchPolicy::kModelRanked, trial);
    Matchmaker hinted(p2, models, MatchPolicy::kModelRanked, trial);
    hinted.set_predictor(&silent);
    const auto a = plain.place(now);
    const auto b = hinted.place(now);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->machine_index, b->machine_index);
      EXPECT_DOUBLE_EQ(a->remaining_s, b->remaining_s);
    }
  }
}

TEST(Matchmaker, PerfectOracleImprovesModelRankedPlacements) {
  // A perfect oracle (recall 1, window covering every spell) hints the
  // exact time-to-reclaim, so ranking by min(model, hint) demotes machines
  // about to be reclaimed and lands on longer-lived ones than the model
  // alone.
  const auto specs = mixed_specs(40);
  const auto models = ground_truth_models(specs);
  const predict::FailurePredictor oracle({0.9, 1.0, 1.0e12}, 99);

  double mean_plain = 0.0;
  double mean_hinted = 0.0;
  int n = 0;
  for (int trial = 0; trial < 250; ++trial) {
    const double now = 2000.0 + 997.0 * trial;
    TimelinePool p1(specs, 100 + trial);
    TimelinePool p2(specs, 100 + trial);
    Matchmaker plain(p1, models, MatchPolicy::kModelRanked, trial);
    Matchmaker hinted(p2, models, MatchPolicy::kModelRanked, trial);
    hinted.set_predictor(&oracle);
    const auto a = plain.place(now);
    const auto b = hinted.place(now);
    if (!a || !b) continue;
    mean_plain += a->remaining_s;
    mean_hinted += b->remaining_s;
    ++n;
  }
  ASSERT_GT(n, 150);
  EXPECT_GT(mean_hinted / n, mean_plain / n * 1.1);
}

TEST(Matchmaker, RandomEventuallyCoversCandidates) {
  TimelinePool pool(mixed_specs(10), 17);
  Matchmaker mm(pool, {}, MatchPolicy::kRandom, 23);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 300; ++i) {
    const auto m = mm.place(4000.0);
    ASSERT_TRUE(m.has_value());
    ++hits[m->machine_index];
  }
  int distinct = 0;
  for (int h : hits) {
    if (h > 0) ++distinct;
  }
  EXPECT_GE(distinct, 3);  // at least the available subset gets variety
}

}  // namespace
}  // namespace harvest::condor
