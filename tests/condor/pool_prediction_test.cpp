// Fault prediction in the pool engines: leaving the predictor unset (or
// silencing it with recall 0) must reproduce the legacy engines
// bit-identically, an active predictor must surface proactive checkpoints
// as their own traffic class end to end, and the run must be deterministic
// under a fixed seed.
#include "harvest/condor/pool_simulation.hpp"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/obs/span.hpp"

namespace harvest::condor {
namespace {

std::vector<TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<TimelinePool::MachineSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    TimelinePool::MachineSpec s;
    s.id = "pr" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

PoolSimConfig contended_config() {
  PoolSimConfig cfg;
  cfg.job_count = 6;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 5;
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  cfg.scenario.fleet = fc;
  return cfg;
}

PoolSimConfig uncontended_config() {
  PoolSimConfig cfg;
  cfg.job_count = 5;
  cfg.work_per_job_s = 2.0 * 3600.0;
  cfg.seed = 11;
  return cfg;
}

/// Short window + the fleet's ~42 s checkpoints: the clamped d* placement
/// regularly lands before the periodic cadence, so proactive fires.
predict::PredictorConfig active_predictor() {
  return {0.9, 0.8, 600.0};
}

void expect_identical(const PoolSimResult& a, const PoolSimResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server.submitted, b.server.submitted);
  EXPECT_EQ(a.server.completed, b.server.completed);
  EXPECT_EQ(a.server.rejected, b.server.rejected);
  EXPECT_DOUBLE_EQ(a.server.moved_mb, b.server.moved_mb);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finished, b.jobs[i].finished);
    EXPECT_DOUBLE_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].useful_work_s, b.jobs[i].useful_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].lost_work_s, b.jobs[i].lost_work_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].moved_mb, b.jobs[i].moved_mb);
    EXPECT_EQ(a.jobs[i].placements, b.jobs[i].placements);
    EXPECT_EQ(a.jobs[i].evictions, b.jobs[i].evictions);
    EXPECT_EQ(a.jobs[i].proactive_checkpoints,
              b.jobs[i].proactive_checkpoints);
  }
}

TEST(PoolPrediction, RecallZeroPredictorIsBitIdenticalContended) {
  const auto plain = run_pool_simulation(park(24), contended_config());
  PoolSimConfig cfg = contended_config();
  predict::PredictorConfig silent = active_predictor();
  silent.recall = 0.0;
  cfg.scenario.predictor = silent;
  const auto silenced = run_pool_simulation(park(24), cfg);
  expect_identical(plain, silenced);
  EXPECT_FALSE(plain.predictor_enabled);
  EXPECT_TRUE(silenced.predictor_enabled);
  EXPECT_EQ(silenced.predictor.true_alerts, 0u);
  EXPECT_EQ(silenced.predictor.false_alerts, 0u);
  EXPECT_EQ(silenced.total_proactive_checkpoints(), 0u);
  // The silent predictor still observed every placement spell.
  EXPECT_GT(silenced.predictor.events, 0u);
}

TEST(PoolPrediction, RecallZeroPredictorIsBitIdenticalUncontended) {
  const auto plain = run_pool_simulation(park(20), uncontended_config());
  PoolSimConfig cfg = uncontended_config();
  predict::PredictorConfig silent = active_predictor();
  silent.recall = 0.0;
  cfg.scenario.predictor = silent;
  const auto silenced = run_pool_simulation(park(20), cfg);
  expect_identical(plain, silenced);
  EXPECT_EQ(silenced.total_proactive_checkpoints(), 0u);
}

TEST(PoolPrediction, ActivePredictorIsDeterministicUnderFixedSeed) {
  PoolSimConfig cfg = contended_config();
  cfg.scenario.predictor = active_predictor();
  const auto a = run_pool_simulation(park(24), cfg);
  const auto b = run_pool_simulation(park(24), cfg);
  expect_identical(a, b);
  EXPECT_EQ(a.predictor.events, b.predictor.events);
  EXPECT_EQ(a.predictor.true_alerts, b.predictor.true_alerts);
  EXPECT_EQ(a.predictor.false_alerts, b.predictor.false_alerts);
}

TEST(PoolPrediction, ProactiveIsItsOwnTrafficClassContended) {
  obs::SpanStore store;
  PoolSimConfig cfg = contended_config();
  cfg.scenario.predictor = active_predictor();
  cfg.hooks.spans = &store;
  const auto res = run_pool_simulation(park(24), cfg);
  ASSERT_TRUE(res.predictor_enabled);
  EXPECT_GT(res.predictor.true_alerts, 0u);
  EXPECT_GT(res.total_proactive_checkpoints(), 0u);

  // Fleet ledger: the proactive class is accounted separately and the
  // three classes partition the submissions.
  const auto& pro = res.server.of(server::TransferKind::kProactive);
  const auto& ckpt = res.server.of(server::TransferKind::kCheckpoint);
  const auto& rec = res.server.of(server::TransferKind::kRecovery);
  EXPECT_GT(pro.submitted, 0u);
  EXPECT_EQ(ckpt.submitted + rec.submitted + pro.submitted,
            res.server.submitted);

  // Span layer: proactive transfers carry kind 2 through attribution.
  const auto report = store.report();
  EXPECT_GT(report.by_kind[2].transfers, 0u);
  EXPECT_LE(report.max_partition_error_s, 1e-9);
  EXPECT_TRUE(store.verify().ok());

  // A committed proactive checkpoint moved checkpoint-sized payloads.
  EXPECT_GT(report.by_kind[2].moved_mb, 0.0);
}

TEST(PoolPrediction, ProactiveCheckpointsCommitUncontended) {
  PoolSimConfig cfg = uncontended_config();
  cfg.scenario.predictor = active_predictor();
  const auto res = run_pool_simulation(park(20), cfg);
  ASSERT_TRUE(res.predictor_enabled);
  EXPECT_GT(res.predictor.events, 0u);
  EXPECT_GT(res.predictor.true_alerts, 0u);
  EXPECT_GT(res.total_proactive_checkpoints(), 0u);
  std::size_t sum = 0;
  for (const auto& j : res.jobs) sum += j.proactive_checkpoints;
  EXPECT_EQ(sum, res.total_proactive_checkpoints());
}

TEST(PoolPrediction, ObservedPrecisionTracksConfigured) {
  // Many placements accumulate enough spells for p̂ to be meaningful; with
  // spells often shorter than the window, precision converges from above.
  PoolSimConfig cfg = uncontended_config();
  cfg.job_count = 10;
  cfg.work_per_job_s = 4.0 * 3600.0;
  cfg.scenario.predictor = active_predictor();
  const auto res = run_pool_simulation(park(24), cfg);
  ASSERT_TRUE(res.predictor_enabled);
  ASSERT_GT(res.predictor.true_alerts + res.predictor.false_alerts, 20u);
  EXPECT_GE(res.predictor.observed_precision(),
            cfg.scenario.predictor->precision - 0.15);
  EXPECT_LE(res.predictor.observed_recall(), 1.0);
  EXPECT_EQ(res.predictor.missed,
            res.predictor.events - res.predictor.true_alerts);
}

TEST(PoolPrediction, PeriodStretchReducesCheckpointTraffic) {
  // Same seed, same park: an active predictor stretches the periodic
  // cadence (1/sqrt(1 - r̃)), so the run moves fewer checkpoint bytes.
  PoolSimConfig cfg = contended_config();
  const auto plain = run_pool_simulation(park(24), cfg);
  cfg.scenario.predictor = active_predictor();
  const auto predicted = run_pool_simulation(park(24), cfg);
  EXPECT_LT(predicted.total_moved_mb(), plain.total_moved_mb());
}

TEST(PoolPrediction, InvalidPredictorConfigThrows) {
  PoolSimConfig cfg = uncontended_config();
  cfg.scenario.predictor = predict::PredictorConfig{0.0, 0.5, 600.0};
  EXPECT_THROW((void)run_pool_simulation(park(4), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::condor
