#include "harvest/condor/pool.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::condor {
namespace {

std::vector<Machine> two_machines() {
  std::vector<Machine> machines(2);
  machines[0].id = "fast-churn";
  machines[0].availability_law = std::make_shared<dist::Exponential>(1.0 / 60.0);
  machines[1].id = "stable";
  machines[1].availability_law =
      std::make_shared<dist::Weibull>(0.5, 20000.0);
  return machines;
}

TEST(Pool, RejectsEmptyOrInvalidMachines) {
  EXPECT_THROW(Pool({}, 1), std::invalid_argument);
  std::vector<Machine> machines(1);
  machines[0].id = "lawless";
  EXPECT_THROW(Pool(std::move(machines), 1), std::invalid_argument);
}

TEST(Pool, CollectTracesShapesAndValidity) {
  Pool pool(two_machines(), 11);
  const auto traces = pool.collect_traces(30);
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& t : traces) {
    EXPECT_EQ(t.size(), 30u);
    EXPECT_NO_THROW(t.validate());
  }
  EXPECT_EQ(traces[0].machine_id, "fast-churn");
  EXPECT_EQ(traces[1].machine_id, "stable");
}

TEST(Pool, CollectedTracesReflectMachineScale) {
  Pool pool(two_machines(), 13);
  const auto traces = pool.collect_traces(300);
  double mean0 = 0.0;
  double mean1 = 0.0;
  for (double d : traces[0].durations) mean0 += d;
  for (double d : traces[1].durations) mean1 += d;
  mean0 /= 300.0;
  mean1 /= 300.0;
  EXPECT_NEAR(mean0 / 60.0, 1.0, 0.25);
  EXPECT_GT(mean1, 50.0 * mean0);  // stable machine dwarfs the churner
}

TEST(Pool, PlacementsCoverMachines) {
  Pool pool(two_machines(), 17);
  int seen0 = 0;
  int seen1 = 0;
  for (int i = 0; i < 200; ++i) {
    const auto p = pool.next_placement();
    ASSERT_LT(p.machine_index, 2u);
    EXPECT_GE(p.available_for_s, 0.0);
    (p.machine_index == 0 ? seen0 : seen1)++;
  }
  EXPECT_GT(seen0, 50);
  EXPECT_GT(seen1, 50);
}

TEST(Pool, DeterministicAcrossSameSeed) {
  Pool a(two_machines(), 23);
  Pool b(two_machines(), 23);
  for (int i = 0; i < 20; ++i) {
    const auto pa = a.next_placement();
    const auto pb = b.next_placement();
    EXPECT_EQ(pa.machine_index, pb.machine_index);
    EXPECT_DOUBLE_EQ(pa.available_for_s, pb.available_for_s);
  }
}

TEST(Pool, MachineAccessorBoundsChecked) {
  Pool pool(two_machines(), 1);
  EXPECT_EQ(pool.machine(0).id, "fast-churn");
  EXPECT_THROW((void)pool.machine(2), std::out_of_range);
}

TEST(Pool, CollectTracesRejectsZero) {
  Pool pool(two_machines(), 1);
  EXPECT_THROW((void)pool.collect_traces(0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::condor
