// Additional live-experiment behaviors: adaptive cost tracking, model
// caching across placements, and WAN-vs-campus consistency.
#include <memory>

#include <gtest/gtest.h>

#include "harvest/condor/live_experiment.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::condor {
namespace {

struct Fixture {
  std::vector<Machine> machines;
  std::vector<trace::AvailabilityTrace> histories;

  Fixture() {
    for (std::size_t i = 0; i < 8; ++i) {
      Machine m;
      m.id = "x" + std::to_string(i);
      m.availability_law = std::make_shared<dist::Weibull>(0.5, 3500.0);
      machines.push_back(std::move(m));
    }
    Pool seed_pool(machines, 400);
    histories = seed_pool.collect_traces(40);
  }
};

TEST(LiveExperimentExtra, FirstMeasuredCostTracksLinkSpeed) {
  Fixture fx;
  Pool campus_pool(fx.machines, 41);
  LiveExperimentConfig cfg;
  cfg.placements = 60;
  cfg.seed = 42;
  LiveExperiment campus(campus_pool, fx.histories,
                        net::BandwidthModel::campus(), cfg);
  const auto campus_res = campus.run(core::ModelFamily::kWeibull);

  Pool wan_pool(fx.machines, 41);
  LiveExperiment wan(wan_pool, fx.histories, net::BandwidthModel::wan(),
                     cfg);
  const auto wan_res = wan.run(core::ModelFamily::kWeibull);

  // First measured costs reflect the respective links (~110 s vs ~475 s).
  double campus_first = 0.0;
  double wan_first = 0.0;
  int nc = 0;
  int nw = 0;
  for (const auto& p : campus_res.placements) {
    if (p.intervals_completed > 0) {
      campus_first += p.first_measured_cost_s;
      ++nc;
    }
  }
  for (const auto& p : wan_res.placements) {
    if (p.intervals_completed > 0) {
      wan_first += p.first_measured_cost_s;
      ++nw;
    }
  }
  ASSERT_GT(nc, 5);
  ASSERT_GT(nw, 5);
  EXPECT_NEAR(campus_first / nc / 110.0, 1.0, 0.2);
  EXPECT_NEAR(wan_first / nw / 475.0, 1.0, 0.25);
  // Dearer transfers => lower efficiency on the same placements.
  EXPECT_LT(wan_res.avg_efficiency(), campus_res.avg_efficiency());
}

TEST(LiveExperimentExtra, IdenticalSeedsGiveIdenticalRuns) {
  Fixture fx;
  LiveExperimentConfig cfg;
  cfg.placements = 40;
  cfg.seed = 77;
  Pool p1(fx.machines, 9);
  LiveExperiment a(p1, fx.histories, net::BandwidthModel::campus(), cfg);
  const auto ra = a.run(core::ModelFamily::kHyperexp2);
  Pool p2(fx.machines, 9);
  LiveExperiment b(p2, fx.histories, net::BandwidthModel::campus(), cfg);
  const auto rb = b.run(core::ModelFamily::kHyperexp2);
  ASSERT_EQ(ra.sample_size(), rb.sample_size());
  EXPECT_DOUBLE_EQ(ra.avg_efficiency(), rb.avg_efficiency());
  EXPECT_DOUBLE_EQ(ra.megabytes_used(), rb.megabytes_used());
}

TEST(LiveExperimentExtra, EveryPlacementLandsOnAKnownMachine) {
  Fixture fx;
  Pool pool(fx.machines, 13);
  LiveExperimentConfig cfg;
  cfg.placements = 50;
  cfg.seed = 5;
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(), cfg);
  const auto res = exp.run(core::ModelFamily::kExponential);
  for (const auto& p : res.placements) {
    EXPECT_LT(p.machine_index, fx.machines.size());
    EXPECT_GE(p.period_s, 0.0);
  }
}

}  // namespace
}  // namespace harvest::condor
