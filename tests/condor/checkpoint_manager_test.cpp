#include "harvest/condor/checkpoint_manager.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace harvest::condor {
namespace {

TEST(CheckpointManager, CompletedTransferMovesAllBytes) {
  CheckpointManager mgr(net::BandwidthModel(5.0, 0.0), 1);
  const auto out = mgr.transfer(0, TransferKind::kCheckpoint, 500.0,
                                std::numeric_limits<double>::infinity());
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.duration_s, 100.0);
  EXPECT_DOUBLE_EQ(out.moved_mb, 500.0);
}

TEST(CheckpointManager, InterruptedTransferIsProrated) {
  CheckpointManager mgr(net::BandwidthModel(5.0, 0.0), 1);
  const auto out = mgr.transfer(3, TransferKind::kRecovery, 500.0, 25.0);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.duration_s, 25.0);
  EXPECT_DOUBLE_EQ(out.moved_mb, 125.0);  // 25 of 100 s → a quarter
}

TEST(CheckpointManager, LogRecordsEveryTransfer) {
  CheckpointManager mgr(net::BandwidthModel(10.0, 0.0), 1);
  (void)mgr.transfer(1, TransferKind::kRecovery, 100.0, 1e9);
  (void)mgr.transfer(1, TransferKind::kCheckpoint, 100.0, 1.0);
  ASSERT_EQ(mgr.log().size(), 2u);
  EXPECT_EQ(mgr.log()[0].kind, TransferKind::kRecovery);
  EXPECT_TRUE(mgr.log()[0].completed);
  EXPECT_EQ(mgr.log()[1].kind, TransferKind::kCheckpoint);
  EXPECT_FALSE(mgr.log()[1].completed);
  EXPECT_EQ(mgr.log()[1].job_id, 1u);
}

TEST(CheckpointManager, TotalMovedAccumulates) {
  CheckpointManager mgr(net::BandwidthModel(10.0, 0.0), 1);
  (void)mgr.transfer(0, TransferKind::kRecovery, 100.0, 1e9);
  (void)mgr.transfer(0, TransferKind::kCheckpoint, 100.0, 5.0);  // half done
  EXPECT_DOUBLE_EQ(mgr.total_moved_mb(), 150.0);
}

TEST(CheckpointManager, JitteredDurationsVary) {
  CheckpointManager mgr(net::BandwidthModel(5.0, 0.3), 42);
  const auto a = mgr.transfer(0, TransferKind::kCheckpoint, 500.0, 1e9);
  const auto b = mgr.transfer(0, TransferKind::kCheckpoint, 500.0, 1e9);
  EXPECT_NE(a.duration_s, b.duration_s);
}

TEST(CheckpointManager, RejectsBadArguments) {
  CheckpointManager mgr(net::BandwidthModel(1.0, 0.0), 1);
  EXPECT_THROW((void)mgr.transfer(0, TransferKind::kRecovery, -1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW((void)mgr.transfer(0, TransferKind::kRecovery, 1.0, -10.0),
               std::invalid_argument);
}

TEST(CheckpointManager, ZeroAvailabilityMovesNothing) {
  CheckpointManager mgr(net::BandwidthModel(1.0, 0.0), 1);
  const auto out = mgr.transfer(0, TransferKind::kRecovery, 100.0, 0.0);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.moved_mb, 0.0);
}

}  // namespace
}  // namespace harvest::condor
