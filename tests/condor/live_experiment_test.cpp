#include "harvest/condor/live_experiment.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"

namespace harvest::condor {
namespace {

struct Fixture {
  std::vector<Machine> machines;
  std::vector<trace::AvailabilityTrace> histories;

  explicit Fixture(std::size_t n_machines = 6, std::size_t history = 40) {
    for (std::size_t i = 0; i < n_machines; ++i) {
      Machine m;
      m.id = "m" + std::to_string(i);
      m.availability_law = std::make_shared<dist::Weibull>(
          0.43, 2000.0 + 500.0 * static_cast<double>(i));
      machines.push_back(std::move(m));
    }
    Pool seed_pool(machines, 99);
    histories = seed_pool.collect_traces(history);
  }
};

LiveExperimentConfig fast_config() {
  LiveExperimentConfig cfg;
  cfg.placements = 30;
  cfg.seed = 5;
  return cfg;
}

TEST(LiveExperiment, RunsRequestedPlacements) {
  Fixture fx;
  Pool pool(fx.machines, 1);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kWeibull);
  EXPECT_EQ(res.sample_size(), 30u);
  EXPECT_EQ(res.family, "weibull");
}

TEST(LiveExperiment, AccountingWithinEachPlacement) {
  Fixture fx;
  Pool pool(fx.machines, 2);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kExponential);
  for (const auto& p : res.placements) {
    const double accounted = p.useful_work_s + p.checkpoint_time_s +
                             p.recovery_time_s + p.lost_work_s;
    // Attributed time never exceeds the availability period, and the gap
    // (if any) is only the un-lost tail of an in-progress interval — zero
    // here because eviction always interrupts a phase.
    EXPECT_LE(accounted, p.period_s * (1.0 + 1e-9));
    EXPECT_GE(p.moved_mb, 0.0);
  }
  EXPECT_GT(res.total_time_s(), 0.0);
}

TEST(LiveExperiment, EfficiencyIsPlausible) {
  Fixture fx;
  Pool pool(fx.machines, 3);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kWeibull);
  EXPECT_GT(res.avg_efficiency(), 0.2);
  EXPECT_LT(res.avg_efficiency(), 1.0);
}

TEST(LiveExperiment, MeanTransferNearLinkExpectation) {
  Fixture fx;
  Pool pool(fx.machines, 4);
  LiveExperimentConfig cfg = fast_config();
  cfg.placements = 60;
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(), cfg);
  const auto res = exp.run(core::ModelFamily::kWeibull);
  EXPECT_NEAR(res.mean_transfer_s() / 110.0, 1.0, 0.15);
}

TEST(LiveExperiment, WanUsesFewerMbPerHourThanItsTotalSuggests) {
  // Sanity relation: MB/h must equal MB / hours.
  Fixture fx;
  Pool pool(fx.machines, 5);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::wan(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kHyperexp2);
  EXPECT_NEAR(res.megabytes_per_hour(),
              res.megabytes_used() / (res.total_time_s() / 3600.0), 1e-9);
}

TEST(LiveExperiment, ManagerLogConsistentWithPlacements) {
  Fixture fx;
  Pool pool(fx.machines, 6);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kWeibull);
  double placement_mb = 0.0;
  for (const auto& p : res.placements) placement_mb += p.moved_mb;
  EXPECT_NEAR(exp.manager().total_moved_mb(), placement_mb, 1e-6);
}

TEST(LiveExperiment, StandardUniverseGraceImprovesEfficiency) {
  // Same placements (same seeds); the Standard universe's last-gasp
  // checkpoint can only save work, never lose more.
  Fixture fx;
  Pool vanilla_pool(fx.machines, 9);
  LiveExperimentConfig vanilla_cfg = fast_config();
  vanilla_cfg.placements = 80;
  LiveExperiment vanilla(vanilla_pool, fx.histories,
                         net::BandwidthModel::campus(), vanilla_cfg);
  const auto v = vanilla.run(core::ModelFamily::kWeibull);

  Pool standard_pool(fx.machines, 9);
  LiveExperimentConfig standard_cfg = vanilla_cfg;
  standard_cfg.eviction_grace_s = 300.0;
  LiveExperiment standard(standard_pool, fx.histories,
                          net::BandwidthModel::campus(), standard_cfg);
  const auto s = standard.run(core::ModelFamily::kWeibull);

  EXPECT_EQ(v.sample_size(), s.sample_size());
  EXPECT_GE(s.avg_efficiency(), v.avg_efficiency());
  // Grace checkpoints move extra bytes.
  EXPECT_GE(s.megabytes_used(), v.megabytes_used());
  // At least one placement must actually have been saved by grace for the
  // comparison to be meaningful.
  bool any_saved = false;
  for (const auto& p : s.placements) any_saved |= p.saved_by_grace;
  EXPECT_TRUE(any_saved);
}

TEST(LiveExperiment, ZeroGraceNeverSetsGraceFields) {
  Fixture fx;
  Pool pool(fx.machines, 10);
  LiveExperiment exp(pool, fx.histories, net::BandwidthModel::campus(),
                     fast_config());
  const auto res = exp.run(core::ModelFamily::kExponential);
  for (const auto& p : res.placements) {
    EXPECT_FALSE(p.saved_by_grace);
    EXPECT_DOUBLE_EQ(p.grace_transfer_s, 0.0);
  }
}

TEST(LiveExperiment, RequiresMatchingHistories) {
  Fixture fx;
  Pool pool(fx.machines, 7);
  auto short_histories = fx.histories;
  short_histories.pop_back();
  EXPECT_THROW(LiveExperiment(pool, short_histories,
                              net::BandwidthModel::campus(), fast_config()),
               std::invalid_argument);
}

TEST(LiveExperiment, RejectsZeroPlacements) {
  Fixture fx;
  Pool pool(fx.machines, 8);
  LiveExperimentConfig cfg = fast_config();
  cfg.placements = 0;
  EXPECT_THROW(LiveExperiment(pool, fx.histories,
                              net::BandwidthModel::campus(), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::condor
