// SnapshotSeries: cadence enforcement, bounded-ring eviction order, delta
// extraction (monotone for counters, even under concurrent writers), and
// the stability of the CSV/JSONL timeline exports.
#include "harvest/obs/series.hpp"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {
namespace {

TEST(SnapshotSeries, RejectsBadCadence) {
  EXPECT_THROW(SnapshotSeries(0.0), std::invalid_argument);
  EXPECT_THROW(SnapshotSeries(-5.0), std::invalid_argument);
}

TEST(SnapshotSeries, MaybeSampleEnforcesCadence) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  SnapshotSeries series(10.0);
  EXPECT_TRUE(series.maybe_sample(0.0, reg));    // first call always cuts
  EXPECT_FALSE(series.maybe_sample(5.0, reg));   // not due yet
  EXPECT_FALSE(series.maybe_sample(9.99, reg));
  EXPECT_TRUE(series.maybe_sample(10.0, reg));   // due exactly
  // Overshooting several periods cuts ONE frame, not a backlog.
  EXPECT_TRUE(series.maybe_sample(55.0, reg));
  EXPECT_FALSE(series.maybe_sample(59.0, reg));
  EXPECT_TRUE(series.maybe_sample(60.0, reg));   // next whole multiple
  EXPECT_EQ(series.size(), 4u);
}

TEST(SnapshotSeries, BoundedRingEvictsOldestInOrder) {
  MetricsRegistry reg;
  auto& g = reg.gauge("v");
  SnapshotSeries series(1.0, 4);
  for (int i = 0; i < 10; ++i) {
    g.set(static_cast<double>(i));
    series.sample(static_cast<double>(i), reg);
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.evicted(), 6u);
  const auto frames = series.frames();
  ASSERT_EQ(frames.size(), 4u);
  // Oldest surviving first: t = 6, 7, 8, 9.
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_DOUBLE_EQ(frames[i].t_s, 6.0 + static_cast<double>(i));
    ASSERT_EQ(frames[i].snapshot.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(frames[i].snapshot.gauges[0].value,
                     6.0 + static_cast<double>(i));
  }
  ASSERT_TRUE(series.latest().has_value());
  EXPECT_DOUBLE_EQ(series.latest()->t_s, 9.0);
}

TEST(SnapshotSeries, CounterSeriesDeltasAndRates) {
  MetricsRegistry reg;
  auto& c = reg.counter("jobs");
  SnapshotSeries series(1.0);
  c.add(5);
  series.sample(0.0, reg);
  c.add(3);
  series.sample(10.0, reg);
  c.add(0);
  series.sample(20.0, reg);
  const auto pts = series.counter_series("jobs");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].value, 5.0);
  EXPECT_DOUBLE_EQ(pts[0].delta, 0.0);  // no previous frame
  EXPECT_DOUBLE_EQ(pts[1].delta, 3.0);
  EXPECT_DOUBLE_EQ(pts[1].rate, 0.3);
  EXPECT_DOUBLE_EQ(pts[2].delta, 0.0);
  EXPECT_TRUE(series.counter_series("absent").empty());
}

// Counters are monotone, so whatever interleaving concurrent writers
// produce, every frame-to-frame delta must be >= 0.
TEST(SnapshotSeries, CounterDeltasMonotoneUnderConcurrentWriters) {
  MetricsRegistry reg;
  auto& c = reg.counter("hits");
  SnapshotSeries series(1.0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.add(1);
    });
  }
  for (int i = 0; i < 50; ++i) series.sample(static_cast<double>(i), reg);
  stop.store(true);
  for (auto& t : writers) t.join();
  const auto pts = series.counter_series("hits");
  ASSERT_EQ(pts.size(), 50u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].delta, 0.0) << "frame " << i;
    EXPECT_GE(pts[i].value, pts[i - 1].value) << "frame " << i;
  }
}

TEST(SnapshotSeries, CounterRatesUseTwoNewestFrames) {
  MetricsRegistry reg;
  auto& a = reg.counter("a");
  auto& b = reg.counter("b");
  SnapshotSeries series(1.0);
  EXPECT_TRUE(series.counter_rates().empty());  // needs two frames
  a.add(10);
  series.sample(0.0, reg);
  EXPECT_TRUE(series.counter_rates().empty());
  a.add(5);
  b.add(4);
  series.sample(10.0, reg);
  auto rates = series.counter_rates();
  ASSERT_EQ(rates.size(), 2u);  // sorted by name
  EXPECT_EQ(rates[0].name, "a");
  EXPECT_DOUBLE_EQ(rates[0].rate, 0.5);
  // 'b' was absent from the first frame: its full value counts as the
  // delta only once both frames carry it — here the first frame snapshot
  // still contains b (created before sampling), value 0.
  EXPECT_EQ(rates[1].name, "b");
  EXPECT_DOUBLE_EQ(rates[1].rate, 0.4);
  // Only the two NEWEST frames matter.
  a.add(100);
  series.sample(20.0, reg);
  rates = series.counter_rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0].rate, 10.0);
  EXPECT_DOUBLE_EQ(rates[1].rate, 0.0);
}

TEST(SnapshotSeries, CounterRatesSkipMissingAndZeroDt) {
  MetricsRegistry reg;
  SnapshotSeries series(1.0);
  reg.counter("old").add(1);
  series.sample(0.0, reg);
  MetricsRegistry other;
  other.counter("new").add(7);
  series.sample(5.0, other.snapshot());
  // No counter common to both frames: nothing to rate.
  EXPECT_TRUE(series.counter_rates().empty());
  // Identical timestamps make dt = 0: also nothing.
  SnapshotSeries flat(1.0);
  reg.counter("old").add(1);
  flat.sample(3.0, reg);
  flat.sample(3.0, reg);
  EXPECT_TRUE(flat.counter_rates().empty());
}

TEST(SnapshotSeries, CounterRatesSurviveRingWraparound) {
  MetricsRegistry reg;
  auto& c = reg.counter("c");
  SnapshotSeries series(1.0, 3);  // tiny bounded ring
  for (int i = 0; i < 10; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    series.sample(static_cast<double>(i), reg);
  }
  // Newest two frames are t = 8 (value 36) and t = 9 (value 45).
  const auto rates = series.counter_rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].rate, 9.0);
}

TEST(SnapshotSeries, GaugeSeriesAllowsNegativeDeltas) {
  MetricsRegistry reg;
  auto& g = reg.gauge("depth");
  SnapshotSeries series(1.0);
  g.set(10.0);
  series.sample(0.0, reg);
  g.set(4.0);
  series.sample(2.0, reg);
  const auto pts = series.gauge_series("depth");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[1].delta, -6.0);
  EXPECT_DOUBLE_EQ(pts[1].rate, -3.0);
}

TEST(SnapshotSeries, CsvHeaderIsSortedUnionAndStable) {
  MetricsRegistry reg;
  SnapshotSeries series(1.0);
  // First frame knows only one metric; later frames add more. The header
  // must be the sorted union regardless of appearance order.
  reg.counter("zeta").add(1);
  series.sample(0.0, reg);
  reg.gauge("alpha").set(2.0);
  reg.histogram("mid").observe(1.5);
  series.sample(1.0, reg);
  const std::string csv = series.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "t_s,alpha,mid.count,mid.p50,mid.p99,mid.sum,zeta");
  // The first frame has no value for 'alpha': its cell is empty.
  const auto row0_start = csv.find('\n') + 1;
  const std::string row0 = csv.substr(row0_start,
                                      csv.find('\n', row0_start) - row0_start);
  EXPECT_EQ(row0.rfind("0,", 0), 0u);
  EXPECT_NE(row0.find(",,"), std::string::npos);
}

TEST(SnapshotSeries, JsonlOneFramePerLine) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  SnapshotSeries series(1.0);
  series.sample(0.0, reg);
  series.sample(1.0, reg);
  const std::string jsonl = series.to_jsonl();
  std::size_t lines = 0;
  for (const char ch : jsonl) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.rfind("{\"t_s\":0,", 0), 0u);
  EXPECT_NE(jsonl.find("\"metrics\":{"), std::string::npos);
}

TEST(SnapshotSeries, CompactionRejectsBadOptions) {
  SeriesCompaction comp;
  comp.keep_recent = 8;  // >= max_frames
  EXPECT_THROW(SnapshotSeries(1.0, 8, comp), std::invalid_argument);
  comp.keep_recent = 4;
  EXPECT_THROW(SnapshotSeries(1.0, 0, comp), std::invalid_argument);
  comp.stride = 1;
  EXPECT_THROW(SnapshotSeries(1.0, 8, comp), std::invalid_argument);
  comp.stride = 2;
  EXPECT_NO_THROW(SnapshotSeries(1.0, 8, comp));
}

TEST(SnapshotSeries, CompactionMergesOldFramesKeepingGroupLast) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  SeriesCompaction comp;
  comp.keep_recent = 4;
  comp.stride = 2;
  SnapshotSeries series(1.0, 8, comp);
  for (int i = 0; i < 8; ++i) {
    c.add(1);
    series.sample(static_cast<double>(i), reg);
  }
  EXPECT_EQ(series.size(), 8u);
  EXPECT_EQ(series.compacted(), 0u);
  // 9th sample: the full ring compacts the oldest 4 frames (t = 0..3) into
  // the group-last survivors t = 1 and t = 3, keeps the recent t = 4..7,
  // then appends t = 8 — nothing is evicted outright.
  c.add(1);
  series.sample(8.0, reg);
  EXPECT_EQ(series.size(), 7u);
  EXPECT_EQ(series.compacted(), 2u);
  EXPECT_EQ(series.evicted(), 0u);
  const auto fs = series.frames();
  ASSERT_EQ(fs.size(), 7u);
  EXPECT_DOUBLE_EQ(fs[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(fs[1].t_s, 3.0);
  EXPECT_DOUBLE_EQ(fs[2].t_s, 4.0);
  EXPECT_DOUBLE_EQ(fs.back().t_s, 8.0);
  // Conservation: every frame ever cut is alive, merged, or evicted.
  EXPECT_EQ(series.evicted() + series.compacted() + series.size(), 9u);
}

TEST(SnapshotSeries, CounterDeltasStayExactAcrossCompactedBoundaries) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  SeriesCompaction comp;
  comp.keep_recent = 4;
  comp.stride = 2;
  SnapshotSeries series(1.0, 8, comp);
  // Frame i carries a distinct increment so merged deltas are detectable.
  std::uint64_t total = 0;
  for (int i = 0; i < 9; ++i) {
    c.add(static_cast<std::uint64_t>(i + 1));
    total += static_cast<std::uint64_t>(i + 1);
    series.sample(static_cast<double>(i), reg);
  }
  ASSERT_GT(series.compacted(), 0u);
  const auto pts = series.counter_series("work");
  ASSERT_GE(pts.size(), 3u);
  // The survivor boundary t=1 → t=3 spans two raw frames; its delta is the
  // SUM of the merged per-frame increments (3 + 4), and its rate uses the
  // widened dt — cumulative snapshots make compaction lossless for deltas.
  EXPECT_DOUBLE_EQ(pts[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].t_s, 3.0);
  EXPECT_DOUBLE_EQ(pts[1].delta, 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(pts[1].rate, (3.0 + 4.0) / 2.0);
  // Sum of surviving deltas reproduces the total counter movement since
  // the first surviving frame.
  double sum = 0.0;
  for (const auto& p : pts) sum += p.delta;
  EXPECT_DOUBLE_EQ(sum + pts.front().value, static_cast<double>(total));
}

TEST(SnapshotSeries, RepeatedCompactionCoarsensTheTail) {
  MetricsRegistry reg;
  auto& c = reg.counter("work");
  SeriesCompaction comp;
  comp.keep_recent = 2;
  comp.stride = 2;
  SnapshotSeries series(1.0, 4, comp);
  for (int i = 0; i < 32; ++i) {
    c.add(1);
    series.sample(static_cast<double>(i), reg);
  }
  // The ring never outgrows its bound, nothing is evicted outright, and
  // the conservation identity holds through many compaction rounds.
  EXPECT_LE(series.size(), 4u);
  EXPECT_EQ(series.evicted(), 0u);
  EXPECT_EQ(series.evicted() + series.compacted() + series.size(), 32u);
  // Newest frame is always intact, and deltas still telescope exactly.
  const auto fs = series.frames();
  EXPECT_DOUBLE_EQ(fs.back().t_s, 31.0);
  const auto pts = series.counter_series("work");
  double sum = 0.0;
  for (const auto& p : pts) sum += p.delta;
  EXPECT_DOUBLE_EQ(sum + pts.front().value, 32.0);
}

TEST(SnapshotSeries, CompactionClearResetsCounters) {
  MetricsRegistry reg;
  SeriesCompaction comp;
  comp.keep_recent = 2;
  comp.stride = 2;
  SnapshotSeries series(1.0, 4, comp);
  for (int i = 0; i < 12; ++i) series.sample(static_cast<double>(i), reg);
  ASSERT_GT(series.compacted(), 0u);
  series.clear();
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.compacted(), 0u);
  EXPECT_EQ(series.evicted(), 0u);
  // The policy survives clear(): refilling compacts again.
  for (int i = 0; i < 12; ++i) series.sample(static_cast<double>(i), reg);
  EXPECT_GT(series.compacted(), 0u);
}

TEST(SnapshotSeries, ClearResetsFramesButKeepsConfig) {
  MetricsRegistry reg;
  SnapshotSeries series(5.0, 8);
  series.sample(0.0, reg);
  series.clear();
  EXPECT_EQ(series.size(), 0u);
  EXPECT_FALSE(series.latest().has_value());
  EXPECT_DOUBLE_EQ(series.every_s(), 5.0);
  EXPECT_EQ(series.max_frames(), 8u);
  // After clear() the next maybe_sample cuts again immediately.
  EXPECT_TRUE(series.maybe_sample(0.0, reg));
}

}  // namespace
}  // namespace harvest::obs
