// Prometheus text exposition: format shape (# TYPE lines, name
// sanitization, label escaping) and a full round trip — a tiny parser reads
// the exposition back and must recover every counter value, gauge value,
// and histogram (cumulative buckets, sum, count) the registry held.
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {
namespace {

/// Minimal exposition parser: "name{labels} value" lines plus "# TYPE name
/// kind" headers. Good enough to round-trip what to_prometheus emits.
struct ParsedExposition {
  std::map<std::string, std::string> types;  // sanitized name -> kind
  std::map<std::string, std::string> helps;  // sanitized name -> help text
  std::map<std::string, double> samples;     // full sample key -> value
};

/// Undo HELP escaping (the format escapes `\` and newline, nothing else).
std::string unescape_help(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      if (s[i + 1] == 'n') {
        out.push_back('\n');
        ++i;
        continue;
      }
      if (s[i + 1] == '\\') {
        out.push_back('\\');
        ++i;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

ParsedExposition parse_ok(const std::string& text) {
  ParsedExposition parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string name;
      std::string kind;
      header >> name >> kind;
      parsed.types[name] = kind;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      EXPECT_NE(space, std::string::npos) << "HELP without text: " << line;
      if (space == std::string::npos) continue;
      parsed.helps[rest.substr(0, space)] =
          unescape_help(rest.substr(space + 1));
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment line: " << line;
    const auto space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "sample without value: " << line;
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    parsed.samples[key] = std::stod(line.substr(space + 1));
  }
  return parsed;
}

TEST(Prometheus, CounterGaugeRoundTrip) {
  MetricsRegistry reg;
  reg.counter("em.iterations").add(123);
  reg.counter("sim.evictions").add(7);
  reg.gauge("net.mb_moved").add(2560.5);

  const auto parsed = parse_ok(reg.prometheus_text());
  EXPECT_EQ(parsed.types.at("em_iterations_total"), "counter");
  EXPECT_EQ(parsed.types.at("sim_evictions_total"), "counter");
  EXPECT_EQ(parsed.types.at("net_mb_moved"), "gauge");
  EXPECT_DOUBLE_EQ(parsed.samples.at("em_iterations_total"), 123.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("sim_evictions_total"), 7.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("net_mb_moved"), 2560.5);
}

TEST(Prometheus, HistogramRoundTripsBucketsSumCount) {
  MetricsRegistry reg;
  auto& h = reg.histogram("server.wait_s", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // overflow bucket

  const auto parsed = parse_ok(reg.prometheus_text());
  EXPECT_EQ(parsed.types.at("server_wait_s"), "histogram");
  // Buckets are cumulative.
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_bucket{le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_bucket{le=\"10\"}"), 3.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_bucket{le=\"100\"}"),
                   4.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_bucket{le=\"+Inf\"}"),
                   5.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_sum"),
                   0.5 + 5.0 + 5.0 + 50.0 + 5000.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("server_wait_s_count"), 5.0);
}

TEST(Prometheus, RegistrySnapshotRoundTripIsLossless) {
  // Everything the JSON snapshot knows, the exposition must also carry.
  MetricsRegistry reg;
  reg.counter("a.b.c").add(1);
  reg.counter("x").add(999999);
  reg.gauge("g.one").set(-3.25);
  reg.gauge("g.two").add(1e12);
  auto& h = reg.histogram("h.lat", {2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.observe(static_cast<double>(i));

  const auto snap = reg.snapshot();
  const auto parsed = parse_ok(snap.to_prometheus());
  for (const auto& c : snap.counters) {
    std::string name;
    for (char ch : c.name) name.push_back(ch == '.' ? '_' : ch);
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_total"),
                     static_cast<double>(c.value))
        << c.name;
  }
  for (const auto& g : snap.gauges) {
    std::string name;
    for (char ch : g.name) name.push_back(ch == '.' ? '_' : ch);
    EXPECT_DOUBLE_EQ(parsed.samples.at(name), g.value) << g.name;
  }
  for (const auto& hs : snap.histograms) {
    std::string name;
    for (char ch : hs.name) name.push_back(ch == '.' ? '_' : ch);
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_sum"), hs.sum);
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_count"),
                     static_cast<double>(hs.count));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hs.bounds.size(); ++b) {
      cumulative += hs.bucket_counts[b];
      std::ostringstream key;
      key << name << "_bucket{le=\"" << hs.bounds[b] << "\"}";
      EXPECT_DOUBLE_EQ(parsed.samples.at(key.str()),
                       static_cast<double>(cumulative));
    }
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_bucket{le=\"+Inf\"}"),
                     static_cast<double>(hs.count));
  }
}

TEST(Prometheus, LabelsAttachToEverySampleAndEscape) {
  MetricsRegistry reg;
  reg.counter("runs").add(2);
  reg.gauge("level").set(4.0);
  const std::string text = reg.prometheus_text(
      {{"family", "hyperexp2"}, {"note", "quote\" slash\\ nl\n"}});
  const auto parsed = parse_ok(text);
  const std::string labels =
      "{family=\"hyperexp2\",note=\"quote\\\" slash\\\\ nl\\n\"}";
  EXPECT_DOUBLE_EQ(parsed.samples.at("runs_total" + labels), 2.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("level" + labels), 4.0);
}

TEST(Prometheus, SanitizesHostileMetricNames) {
  MetricsRegistry reg;
  reg.counter("weird name-with.dots").add(1);
  const auto parsed = parse_ok(reg.prometheus_text());
  EXPECT_DOUBLE_EQ(parsed.samples.at("weird_name_with_dots_total"), 1.0);
}

TEST(Prometheus, HelpLinesEmitForDescribedMetricsOnly) {
  MetricsRegistry reg;
  reg.counter("described").add(1);
  reg.counter("anonymous").add(1);
  reg.describe("described", "Counts described things.");
  const std::string text = reg.prometheus_text();
  const auto parsed = parse_ok(text);
  ASSERT_EQ(parsed.helps.count("described_total"), 1u);
  EXPECT_EQ(parsed.helps.at("described_total"), "Counts described things.");
  EXPECT_EQ(parsed.helps.count("anonymous_total"), 0u);
  // HELP precedes TYPE for the described metric, per convention.
  EXPECT_LT(text.find("# HELP described_total"),
            text.find("# TYPE described_total"));
}

TEST(Prometheus, HelpEscapingRoundTrips) {
  // The format escapes backslash and newline in HELP (quotes are legal
  // there, unlike in label values).
  MetricsRegistry reg;
  reg.gauge("tricky").set(1.0);
  const std::string help = "line one\nline two \\ back\"slash";
  reg.describe("tricky", help);
  const std::string text = reg.prometheus_text();
  // The emitted line must stay a single physical line...
  const auto pos = text.find("# HELP tricky ");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_EQ(line, "# HELP tricky line one\\nline two \\\\ back\"slash");
  // ...and the parser must recover the original text exactly.
  const auto parsed = parse_ok(text);
  EXPECT_EQ(parsed.helps.at("tricky"), help);
}

TEST(Prometheus, DescribeWorksForHistogramsAndOverwrites) {
  MetricsRegistry reg;
  reg.histogram("h.wait", {1.0}).observe(0.5);
  reg.describe("h.wait", "first");
  reg.describe("h.wait", "second");  // re-describing overwrites
  const auto parsed = parse_ok(reg.prometheus_text());
  EXPECT_EQ(parsed.helps.at("h_wait"), "second");
  // Snapshots carry the help text too.
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].help, "second");
}

TEST(Prometheus, EmptyHistogramStillEmitsInfBucket) {
  // A histogram constructed but never observed (or one with no finite
  // bounds) must still expose the +Inf bucket the format requires.
  MetricsRegistry reg;
  reg.histogram("never.observed", {1.0, 2.0});
  const auto parsed = parse_ok(reg.prometheus_text());
  EXPECT_EQ(parsed.types.at("never_observed"), "histogram");
  EXPECT_DOUBLE_EQ(parsed.samples.at("never_observed_bucket{le=\"+Inf\"}"),
                   0.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("never_observed_count"), 0.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("never_observed_sum"), 0.0);
}

TEST(Prometheus, BucketlessHistogramSnapshotRoundTrips) {
  // A snapshot whose bucket_counts is empty entirely (hand-built, as a
  // downstream aggregator might) still emits a valid +Inf bucket carrying
  // the count.
  RegistrySnapshot snap;
  HistogramSnapshot hs;
  hs.name = "agg.lat";
  hs.count = 42;
  hs.sum = 84.0;
  snap.histograms.push_back(hs);
  const auto parsed = parse_ok(snap.to_prometheus());
  EXPECT_DOUBLE_EQ(parsed.samples.at("agg_lat_bucket{le=\"+Inf\"}"), 42.0);
  EXPECT_DOUBLE_EQ(parsed.samples.at("agg_lat_count"), 42.0);
}

TEST(Prometheus, WriteToFileMatchesInMemoryText) {
  MetricsRegistry reg;
  reg.counter("io.test").add(5);
  const std::string path =
      testing::TempDir() + "/harvest_prom_roundtrip.prom";
  reg.write_prometheus(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.prometheus_text());
}

}  // namespace
}  // namespace harvest::obs
