// EventTracer: ring semantics (overwrite + dropped accounting), export
// formats (JSONL, Chrome trace_event), and the end-to-end property that a
// simulated job's exported phase events partition its total time (§5.1
// accounting identity, viewed through the tracer).
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/sim/job_sim.hpp"

namespace harvest::obs {
namespace {

// Minimal recursive-descent JSON syntax checker — enough to prove the
// exporters emit well-formed documents without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool json_valid(std::string_view s) { return JsonChecker(s).valid(); }

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
  EXPECT_FALSE(json_valid(R"({"a":1,})"));
  EXPECT_FALSE(json_valid(R"([1,2)"));
  EXPECT_FALSE(json_valid(R"({"a" 1})"));
}

TEST(JsonWriter, EscapesAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  JsonWriter w;
  w.begin_object();
  w.field("s", "hi");
  w.field("n", 3.25);
  w.key("arr").begin_array().value(1).value(false).null().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"s":"hi","n":3.25,"arr":[1,false,null]})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(EventTracer, RecordsInOrder) {
  EventTracer t(16);
  t.record_complete("work", "sim", 0.0, 10.0, 1, 0.0);
  t.record_instant("eviction", "sim", 10.0, 1, 0.0);
  t.record_complete("recovery", "sim", 10.0, 3.0, 2, 500.0);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].name, "work");
  EXPECT_EQ(evs[1].phase, TracePhase::kInstant);
  EXPECT_EQ(evs[2].name, "recovery");
  EXPECT_DOUBLE_EQ(evs[2].value, 500.0);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(EventTracer, BoundedRingOverwritesOldestAndCountsDrops) {
  EventTracer t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record_complete("e", "test", static_cast<double>(i), 1.0, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(evs[k].id, 6u + k);  // oldest surviving first
  }
}

TEST(EventTracer, UnboundedKeepsEverything) {
  EventTracer t(0);
  for (int i = 0; i < 1000; ++i) t.record_instant("i", "test", i);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(EventTracer, ClearEmptiesButKeepsCapacity) {
  EventTracer t(8);
  t.record_instant("i", "test", 0.0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_TRUE(t.events().empty());
}

TEST(EventTracer, JsonlOneValidObjectPerLine) {
  EventTracer t;
  t.record_complete("work", "sim", 1.0, 2.0, 7, 0.0);
  t.record_instant("note \"quoted\"", "sim", 3.0);
  const std::string jsonl = t.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string_view line(jsonl.data() + start, end - start);
    EXPECT_TRUE(json_valid(line)) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(EventTracer, ChromeTraceParsesAndConvertsToMicroseconds) {
  EventTracer t;
  t.record_complete("work", "sim", 1.5, 0.25, 42, 500.0);
  t.record_instant("eviction", "sim", 2.0);
  const std::string trace = t.to_chrome_trace();
  ASSERT_TRUE(json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  // 1.5 s -> 1.5e6 µs, exact in binary; accept either rendering to_chars
  // may pick for the shortest round-trip.
  EXPECT_TRUE(trace.find("1.5e+06") != std::string::npos ||
              trace.find("1500000") != std::string::npos)
      << trace;
}

// The acceptance property: run a real job simulation with a tracer
// attached; its "sim"-category complete events must tile [0, total_time]
// with no gaps or overlaps, and their byte payloads must sum to the wire
// total. Then the Chrome export of that same tracer must be valid JSON.
TEST(EventTracer, SimPhaseEventsPartitionSimulatedTime) {
  numerics::Rng rng(99);
  const auto truth = std::make_shared<dist::Weibull>(0.5, 2500.0);
  std::vector<double> periods(120);
  for (auto& p : periods) p = truth->sample(rng);

  core::IntervalCosts costs;
  costs.checkpoint = 300.0;
  costs.recovery = 300.0;
  core::CheckpointSchedule schedule(core::MarkovModel(truth, costs));

  EventTracer tracer(0);  // unbounded: the identity needs every event
  sim::JobSimConfig cfg;
  cfg.tracer = &tracer;
  const auto res = sim::simulate_job_on_trace(periods, schedule, cfg);

  double clock = 0.0;
  double total = 0.0;
  double bytes = 0.0;
  std::size_t spans = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.phase != TracePhase::kComplete || ev.category != "sim") continue;
    EXPECT_NEAR(ev.start_s, clock, 1e-6) << "gap/overlap before " << ev.name;
    EXPECT_GE(ev.duration_s, 0.0);
    clock = ev.start_s + ev.duration_s;
    total += ev.duration_s;
    bytes += ev.value;
    ++spans;
  }
  ASSERT_GT(spans, 0u);
  EXPECT_NEAR(clock, res.total_time, 1e-6 * std::max(1.0, res.total_time));
  EXPECT_NEAR(total / res.total_time, 1.0, 1e-9);
  EXPECT_NEAR(bytes, res.network_mb, 1e-6 * std::max(1.0, res.network_mb));

  ASSERT_TRUE(json_valid(tracer.to_chrome_trace()));
}

}  // namespace
}  // namespace harvest::obs
