// HttpServer + ExporterEndpoints socket smoke tests: bind an ephemeral
// loopback port, GET every endpoint, and assert status, content-type, and
// that /metrics stays parseable while a producer thread hammers the
// registry — the harvestd serving path, minus the daemon.
#include "harvest/obs/http.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/series.hpp"

namespace harvest::obs {
namespace {

struct Exporter {
  MetricsRegistry registry;
  SnapshotSeries series{60.0};
  ExporterEndpoints endpoints{registry, series};
  HttpServer server{endpoints.handler()};

  Exporter() {
    server.bind(0);  // ephemeral port
    server.start();
  }
};

TEST(HttpServer, BindResolvesEphemeralPort) {
  Exporter e;
  EXPECT_GT(e.server.port(), 0);
  EXPECT_TRUE(e.server.running());
  e.server.stop();
  EXPECT_FALSE(e.server.running());
  e.server.stop();  // idempotent
}

TEST(HttpServer, BindExplicitLoopbackAddressServes) {
  MetricsRegistry registry;
  SnapshotSeries series{60.0};
  ExporterEndpoints endpoints{registry, series};
  HttpServer server{endpoints.handler()};
  server.bind("127.0.0.1", 0);
  server.start();
  EXPECT_EQ(server.address(), "127.0.0.1");
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
}

TEST(HttpServer, BindRejectsUnparseableAddress) {
  MetricsRegistry registry;
  SnapshotSeries series{60.0};
  ExporterEndpoints endpoints{registry, series};
  HttpServer server{endpoints.handler()};
  EXPECT_THROW(server.bind("not-an-address", 0), std::invalid_argument);
  EXPECT_THROW(server.bind("256.0.0.1", 0), std::invalid_argument);
  // The failed binds left the server unbound; a good address still works.
  server.bind("127.0.0.1", 0);
  EXPECT_GT(server.port(), 0);
}

TEST(HttpServer, DefaultBindReportsLoopbackAddress) {
  Exporter e;
  EXPECT_EQ(e.server.address(), "127.0.0.1");
}

TEST(HttpServer, HealthzAlwaysOk) {
  Exporter e;
  const auto res = http_get(e.server.port(), "/healthz");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "text/plain; charset=utf-8");
  EXPECT_EQ(res.body, "ok\n");
}

TEST(HttpServer, ReadyzFlipsWithReadiness) {
  Exporter e;
  EXPECT_EQ(http_get(e.server.port(), "/readyz").status, 503);
  e.endpoints.set_ready(true);
  const auto res = http_get(e.server.port(), "/readyz");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ready\n");
}

TEST(HttpServer, MetricsServesPrometheusText) {
  Exporter e;
  e.registry.counter("pool.jobs").add(3);
  e.registry.gauge("pool.depth").set(1.5);
  const auto res = http_get(e.server.port(), "/metrics");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(res.body.find("pool_jobs_total 3"), std::string::npos);
  EXPECT_NE(res.body.find("pool_depth 1.5"), std::string::npos);
}

TEST(HttpServer, SnapshotJson404UntilFrameExistsThenServesLatest) {
  Exporter e;
  EXPECT_EQ(http_get(e.server.port(), "/snapshot.json").status, 404);
  e.registry.counter("c").add(7);
  e.series.sample(123.0, e.registry);
  const auto res = http_get(e.server.port(), "/snapshot.json");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"t_s\":123"), std::string::npos);
  EXPECT_NE(res.body.find("\"c\":7"), std::string::npos);
}

TEST(HttpServer, UnknownPathIs404) {
  Exporter e;
  EXPECT_EQ(http_get(e.server.port(), "/nope").status, 404);
}

TEST(HttpServer, QueryStringIsStripped) {
  Exporter e;
  EXPECT_EQ(http_get(e.server.port(), "/healthz?verbose=1").status, 200);
}

// The raw target (query included) reaches the handler — harvestd's /plan
// endpoint parses ?machine=... itself; ExporterEndpoints strips it.
TEST(HttpServer, HandlerSeesFullTargetWithQuery) {
  HttpServer server([](const std::string& target) {
    HttpResponse res;
    res.status = 200;
    res.content_type = "text/plain; charset=utf-8";
    res.body = target;
    return res;
  });
  server.bind(0);
  server.start();
  const auto res = http_get(server.port(), "/plan?machine=m0003");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "/plan?machine=m0003");
}

// Counters scraped twice through a SnapshotSeries grow `_rate` gauges on
// /metrics (the live-scrape rate view harvestd exports).
TEST(HttpServer, MetricsExportsCounterRateGauges) {
  Exporter e;
  auto& c = e.registry.counter("pool.jobs");
  c.add(10);
  // One frame only: no rate gauge yet.
  e.series.sample(0.0, e.registry);
  auto res = http_get(e.server.port(), "/metrics");
  EXPECT_EQ(res.body.find("pool_jobs_rate"), std::string::npos);
  c.add(30);
  e.series.sample(60.0, e.registry);
  res = http_get(e.server.port(), "/metrics");
  ASSERT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("# TYPE pool_jobs_rate gauge"), std::string::npos);
  EXPECT_NE(res.body.find("pool_jobs_rate 0.5"), std::string::npos);
  // The raw counter is still exported alongside its rate.
  EXPECT_NE(res.body.find("pool_jobs_total 40"), std::string::npos);
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server([](const std::string&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  server.bind(0);
  server.start();
  EXPECT_EQ(http_get(server.port(), "/anything").status, 500);
}

// The harvestd contract: /metrics must stay well-formed while a producer
// thread is mutating the registry and cutting frames.
TEST(HttpServer, MetricsParseableUnderConcurrentProduction) {
  Exporter e;
  // Create the handles before the producer starts so the first scrape
  // already sees every metric; the thread then just mutates values.
  auto& items = e.registry.counter("work.items");
  auto& level = e.registry.gauge("work.level");
  auto& lat = e.registry.histogram("work.lat_s");
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    double t = 0.0;
    while (!stop.load()) {
      items.add(1);
      level.set(t);
      lat.observe(0.01);
      e.series.sample(t, e.registry);
      t += 1.0;
    }
  });
  for (int i = 0; i < 20; ++i) {
    const auto res = http_get(e.server.port(), "/metrics");
    ASSERT_EQ(res.status, 200);
    // Spot-check exposition shape: every TYPE'd metric, histogram +Inf.
    EXPECT_NE(res.body.find("# TYPE work_items_total counter"),
              std::string::npos);
    EXPECT_NE(res.body.find("le=\"+Inf\""), std::string::npos);
    const auto snap = http_get(e.server.port(), "/snapshot.json");
    ASSERT_TRUE(snap.status == 200 || snap.status == 404);
  }
  stop.store(true);
  producer.join();
}

}  // namespace
}  // namespace harvest::obs
