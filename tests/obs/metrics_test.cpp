// MetricsRegistry under fire: exactness of counters/histograms when
// hammered from util::ThreadPool workers, quantile monotonicity, handle
// stability across reset(), and the ScopedTimer enable gate.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/util/thread_pool.hpp"

namespace harvest::obs {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAccumulate) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(0.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, SnapshotStatistics) {
  Histogram h(Histogram::exponential_bounds(1.0, 1000.0, 16));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto s = h.snapshot("t");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Quantiles interpolate inside log-spaced buckets: order must hold and
  // the values must land in the data's range.
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LE(s.p99, 100.0 + 1e-9);
}

TEST(Histogram, EmptySnapshotIsAllZeros) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 0.0);
}

TEST(Histogram, OverflowBucketReportsObservedMax) {
  Histogram h(std::vector<double>{1.0, 10.0});
  h.observe(5000.0);  // beyond every bound -> overflow bucket
  const auto s = h.snapshot();
  EXPECT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[2], 1u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5000.0);
}

TEST(Histogram, ExponentialBoundsAreAscendingAndCoverRange) {
  const auto b = Histogram::exponential_bounds(1e-3, 1e3, 13);
  ASSERT_EQ(b.size(), 13u);
  EXPECT_NEAR(b.front(), 1e-3, 1e-12);
  EXPECT_NEAR(b.back(), 1e3, 1e-6);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("x.h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.h");  // bounds ignored after creation
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, ResetZeroesInPlaceWithoutInvalidatingHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.add(7);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.counter("m").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "m");
  EXPECT_EQ(snap.counters[2].name, "z");
}

// The registry's contract with sim::run_trace_experiment: many pool workers
// bang on the same handles concurrently and nothing is lost.
TEST(MetricsRegistry, ConcurrentCountersAreExact) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 20000;
  MetricsRegistry reg;
  Counter& hits = reg.counter("hammer.hits");
  Gauge& mb = reg.gauge("hammer.mb");
  util::ThreadPool pool(8);
  util::parallel_for_each(pool, kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      hits.add();
      mb.add(0.5);
    }
  });
  EXPECT_EQ(hits.value(), kTasks * kPerTask);
  // 0.5 increments sum exactly in binary floating point at this magnitude.
  EXPECT_DOUBLE_EQ(mb.value(), 0.5 * static_cast<double>(kTasks * kPerTask));
}

TEST(MetricsRegistry, ConcurrentHistogramExactTotalsAndMonotoneQuantiles) {
  constexpr std::size_t kTasks = 32;
  constexpr int kPerTask = 5000;
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("hammer.h", Histogram::exponential_bounds(1, 256, 9));
  util::ThreadPool pool(8);
  util::parallel_for_each(pool, kTasks, [&](std::size_t) {
    for (int i = 0; i < kPerTask; ++i) {
      h.observe(static_cast<double>(1 + (i % 200)));
    }
  });
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kTasks * static_cast<std::uint64_t>(kPerTask));
  // Integer-valued observations: the double accumulator is exact here.
  const double expected_sum =
      static_cast<double>(kTasks) * (kPerTask / 200) * (200 * 201 / 2);
  EXPECT_DOUBLE_EQ(s.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const auto n : s.bucket_counts) bucket_total += n;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 200.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

// Handle creation itself racing: all workers ask for the same names while
// the map is being populated.
TEST(MetricsRegistry, ConcurrentFindOrCreateIsExact) {
  constexpr std::size_t kTasks = 48;
  constexpr std::uint64_t kPerTask = 1000;
  MetricsRegistry reg;
  util::ThreadPool pool(8);
  util::parallel_for_each(pool, kTasks, [&](std::size_t t) {
    const std::string name = "shared." + std::to_string(t % 4);
    for (std::uint64_t i = 0; i < kPerTask; ++i) reg.counter(name).add();
  });
  std::uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    total += reg.counter("shared." + std::to_string(k)).value();
  }
  EXPECT_EQ(total, kTasks * kPerTask);
}

TEST(ScopedTimer, InertWhenTimingDisabled) {
  set_timing_enabled(false);
  Histogram h;
  {
    ScopedTimer t(&h);
    EXPECT_DOUBLE_EQ(t.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimer, RecordsOnceWhenEnabled) {
  set_timing_enabled(true);
  Histogram h;
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);

  Histogram h2;
  ScopedTimer t2(&h2);
  t2.stop();
  t2.stop();  // idempotent: detached after the first stop
  EXPECT_EQ(h2.count(), 1u);
  set_timing_enabled(false);  // leave the process-wide gate as found
}

TEST(ScopedTimer, NullSinkIsSafe) {
  set_timing_enabled(true);
  {
    ScopedTimer t(nullptr);
    EXPECT_DOUBLE_EQ(t.elapsed_seconds(), 0.0);
  }
  set_timing_enabled(false);
}

}  // namespace
}  // namespace harvest::obs
