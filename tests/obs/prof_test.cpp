// QuantileSketch + PhaseProfiler: the self-profiling layer's own contracts.
// Suite names (QuantileSketch*, PhaseProfiler*) are part of the CI TSan
// regex — the concurrent tests here run under -fsanitize=thread.
#include "harvest/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/quantile_sketch.hpp"
#include "harvest/util/thread_pool.hpp"

namespace harvest::obs {
namespace {

TEST(QuantileSketch, EmptyAndBasicMoments) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(QuantileSketch, RelativeErrorBoundHolds) {
  // DDSketch contract: quantile(q) is within alpha (relative) of the exact
  // order statistic for every q, for any value distribution.
  const double alpha = 0.01;
  QuantileSketch s(alpha);
  numerics::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed mix spanning ~9 decades.
    const double v = std::exp(rng.uniform(-9.0, 9.0) * std::log(10.0) / 4.0);
    values.push_back(v);
    s.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    const double exact = values[rank];
    const double est = s.quantile(q);
    EXPECT_NEAR(est, exact, 2.0 * alpha * exact)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(QuantileSketch, ZeroAndNegativeGoToZeroBucket) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-5.0);
  s.add(1.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 1.0, QuantileSketch::kDefaultRelativeError);
}

TEST(QuantileSketch, MergeEqualsBulkAdd) {
  QuantileSketch a, b, all;
  numerics::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.exponential(1.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Quantiles derive from integer bucket counts only, so a merge is EXACT,
  // not approximate: identical buckets, identical quantiles.
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
  }
  EXPECT_EQ(a.encode(), all.encode());
}

TEST(QuantileSketch, MergeRejectsMismatchedError) {
  QuantileSketch a(0.01), b(0.02);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, EncodeDecodeRoundTrip) {
  QuantileSketch s(0.02);
  numerics::Rng rng(3);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform(0.001, 1000.0));
  s.add(0.0);
  const auto bytes = s.encode();
  const auto back = QuantileSketch::decode(bytes);
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.min(), s.min());
  EXPECT_DOUBLE_EQ(back.max(), s.max());
  EXPECT_DOUBLE_EQ(back.relative_error(), s.relative_error());
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(back.quantile(q), s.quantile(q));
  }
  // Decoded bytes re-encode identically (sum is reconstructed from bucket
  // midpoints and excluded from the wire format by design).
  EXPECT_EQ(back.encode(), bytes);
}

TEST(QuantileSketch, DecodeRejectsGarbage) {
  EXPECT_THROW(QuantileSketch::decode("nonsense"),
               std::invalid_argument);
  auto bytes = QuantileSketch().encode();
  bytes += "trailing";
  EXPECT_THROW(QuantileSketch::decode(bytes), std::invalid_argument);
}

TEST(QuantileSketch, MergeDeterministicUnderThreadPoolAnyOrder) {
  // The /profile.json byte-determinism claim reduced to its core: the same
  // multiset of samples, partitioned across any number of concurrent
  // shards and merged in any order, encodes to the same bytes.
  numerics::Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 8000; ++i) values.push_back(rng.exponential(0.5));

  const auto run = [&](std::size_t shards, std::size_t threads,
                       bool reverse_merge) {
    std::vector<QuantileSketch> parts(shards);
    util::ThreadPool pool(threads);
    util::parallel_for_each(pool, shards, [&](std::size_t s) {
      for (std::size_t i = s; i < values.size(); i += shards) {
        parts[s].add(values[i]);
      }
    });
    QuantileSketch total;
    if (reverse_merge) {
      for (std::size_t s = shards; s-- > 0;) total.merge(parts[s]);
    } else {
      for (const auto& p : parts) total.merge(p);
    }
    return total.encode();
  };

  const std::string reference = run(1, 1, false);
  EXPECT_EQ(run(4, 4, false), reference);
  EXPECT_EQ(run(4, 2, true), reference);
  EXPECT_EQ(run(16, 8, true), reference);
}

TEST(QuantileSketch, RegistryInstrumentExposesSummary) {
  MetricsRegistry reg;
  reg.describe("demo.latency_s", "Demo sketch.");
  auto& sk = reg.sketch("demo.latency_s");
  for (int i = 1; i <= 100; ++i) sk.observe(static_cast<double>(i));
  EXPECT_EQ(sk.count(), 100u);
  // Same name returns the same instrument.
  reg.sketch("demo.latency_s").observe(1.0);
  EXPECT_EQ(sk.count(), 101u);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.sketches.size(), 1u);
  EXPECT_EQ(snap.sketches[0].name, "demo.latency_s");
  EXPECT_EQ(snap.sketches[0].count, 101u);
  EXPECT_GT(snap.sketches[0].p99, snap.sketches[0].p50);

  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  EXPECT_NE(json.find("demo.latency_s"), std::string::npos);

  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE demo_latency_s summary"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("demo_latency_s_count 101"), std::string::npos);
}

TEST(PhaseProfiler, InertWithoutActivation) {
  prof::set_active(nullptr);
  {
    PROF_PHASE("inert.scope");  // must be a no-op, not a crash
  }
  EXPECT_EQ(prof::active(), nullptr);
}

TEST(PhaseProfiler, ActivationScopeRestoresPrevious) {
  prof::PhaseProfiler outer;
  prof::set_active(&outer);
  {
    prof::PhaseProfiler inner;
    prof::ActivationScope scope(&inner);
    EXPECT_EQ(prof::active(), &inner);
  }
  EXPECT_EQ(prof::active(), &outer);
  {
    prof::ActivationScope noop(nullptr);  // null profiler: no-op scope
    EXPECT_EQ(prof::active(), &outer);
  }
  prof::set_active(nullptr);
}

TEST(PhaseProfiler, NestedScopesAttributeSelfTime) {
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  for (int i = 0; i < 3; ++i) {
    PROF_PHASE("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      PROF_PHASE("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const auto report = profiler.report();
  EXPECT_EQ(report.scope_count("outer"), 3u);
  EXPECT_EQ(report.scope_count("inner"), 3u);
  EXPECT_GT(report.self_seconds("outer"), 0.0);
  EXPECT_GT(report.self_seconds("inner"), 0.0);
  // inner's time is NOT double-counted into outer's self time.
  bool found_inner = false;
  for (const auto& p : report.phases) {
    if (p.name == "inner") {
      EXPECT_EQ(p.parent, "outer");
      found_inner = true;
    }
  }
  EXPECT_TRUE(found_inner);
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(PhaseProfiler, ConservationHoldsUnderRepeatedScopes) {
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  for (int i = 0; i < 5000; ++i) {
    PROF_PHASE("hot");
  }
  const auto report = profiler.report();
  EXPECT_EQ(report.scope_count("hot"), 5000u);
  ASSERT_EQ(report.threads.size(), 1u);
  // The invariant itself, re-derived from the report's own numbers.
  EXPECT_LE(report.threads[0].self_total_s,
            report.threads[0].wall_s + 1e-6 +
                1e-9 * report.threads[0].wall_s);
  EXPECT_TRUE(report.conservation_ok);
}

TEST(PhaseProfiler, RecordedLatencyExcludedFromConservation) {
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  static const std::uint16_t kWait = prof::phase_id("test.wait");
  {
    PROF_PHASE("work");
    // A concurrent-wait total can legitimately dwarf wall time (N queued
    // jobs waiting together); it must not trip the wall-clock invariant.
    prof::record(kWait, 1e6);
    prof::record(kWait, 2e6);
  }
  const auto report = profiler.report();
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
  bool found = false;
  for (const auto& p : report.phases) {
    if (p.name == "test.wait") {
      EXPECT_TRUE(p.latency);
      EXPECT_EQ(p.parent, "work");  // attributed under the enclosing scope
      EXPECT_EQ(p.count, 2u);
      EXPECT_DOUBLE_EQ(p.self_s, 3e6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(report.to_json().find("\"latency\""), std::string::npos);
}

TEST(PhaseProfiler, ShardedScopesFoldPerShard) {
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  for (std::size_t s = 0; s < 3; ++s) {
    for (int i = 0; i <= static_cast<int>(s); ++i) {
      PROF_PHASE_SHARD("sharded", s);
    }
  }
  const auto report = profiler.report();
  EXPECT_EQ(report.scope_count("sharded"), 6u);
  std::size_t shard_rows = 0;
  for (const auto& p : report.phases) {
    if (p.name == "sharded" && p.shard != prof::kNoShard) ++shard_rows;
  }
  EXPECT_EQ(shard_rows, 3u);
}

TEST(PhaseProfiler, ConcurrentScopesMergeAcrossThreads) {
  // TSan-covered: many threads open nested scopes against one profiler
  // while the main thread folds reports mid-flight.
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  constexpr int kThreads = 8;
  constexpr int kScopesPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kScopesPerThread; ++i) {
        PROF_PHASE("mt.outer");
        PROF_PHASE("mt.inner");
      }
    });
  }
  go.store(true);
  (void)profiler.report();  // live fold while scopes are open
  for (auto& t : threads) t.join();
  const auto report = profiler.report();
  EXPECT_EQ(report.scope_count("mt.outer"),
            static_cast<std::uint64_t>(kThreads) * kScopesPerThread);
  EXPECT_EQ(report.scope_count("mt.inner"),
            static_cast<std::uint64_t>(kThreads) * kScopesPerThread);
  EXPECT_GE(report.threads.size(), static_cast<std::size_t>(kThreads));
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
}

TEST(PhaseProfiler, ThreadPoolQueueInstrumentation) {
  prof::PhaseProfiler profiler;
  prof::ActivationScope scope(&profiler);
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      });
    }
    pool.wait_idle();
  }
  const auto report = profiler.report();
  EXPECT_EQ(report.scope_count("pool.run"), 64u);
  EXPECT_EQ(report.scope_count("pool.queue-wait"), 64u);
  bool wait_is_latency = false;
  for (const auto& p : report.phases) {
    if (p.name == "pool.queue-wait") wait_is_latency = p.latency;
  }
  EXPECT_TRUE(wait_is_latency);
  EXPECT_TRUE(report.conservation_ok) << report.max_thread_excess_s;
  // The queue-depth gauge is always on (profiler or not).
  bool gauge_found = false;
  for (const auto& g : default_registry().snapshot().gauges) {
    if (g.name == "util.thread_pool.queue_depth") gauge_found = true;
  }
  EXPECT_TRUE(gauge_found);
}

TEST(PhaseProfiler, FlameExportRequiresCaptureEvents) {
  prof::PhaseProfiler plain;
  EXPECT_THROW(plain.write_chrome_trace("/tmp/never_written.json"),
               std::runtime_error);

  prof::PhaseProfilerOptions opts;
  opts.capture_events = true;
  prof::PhaseProfiler capturing(opts);
  {
    prof::ActivationScope scope(&capturing);
    PROF_PHASE("flame.scope");
  }
  ASSERT_NE(capturing.events(), nullptr);
  EXPECT_GE(capturing.events()->size(), 1u);
  const std::string path =
      ::testing::TempDir() + "prof_flame_test_trace.json";
  capturing.write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("flame.scope"), std::string::npos);
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
}

TEST(PhaseProfiler, ClearDropsDataKeepsThreads) {
  prof::PhaseProfiler profiler;
  {
    prof::ActivationScope scope(&profiler);
    PROF_PHASE("gone");
  }
  EXPECT_EQ(profiler.report().scope_count("gone"), 1u);
  profiler.clear();
  EXPECT_EQ(profiler.report().scope_count("gone"), 0u);
}

TEST(PhaseProfiler, PhaseInternIsStable) {
  const auto a = prof::phase_id("intern.same");
  const auto b = prof::phase_id("intern.same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(prof::phase_name(a), "intern.same");
  EXPECT_NE(prof::phase_id("intern.other"), a);
}

}  // namespace
}  // namespace harvest::obs
