// SpanStore unit behavior: the attribute() wait decomposition (exact
// partition, pass-over boundary, truncation of removed transfers), job-root
// lifecycle, bounded-ring drops with eviction-proof aggregates, bounded
// top-k, tree well-formedness, exports, and metrics wiring.
#include "harvest/obs/span.hpp"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {
namespace {

/// A fully populated lifecycle: staggered 2 s, passed over at t = 15,
/// served 10 s of which 8 s was the solo transfer time.
TransferTimings full_timings() {
  TransferTimings t;
  t.job_id = 1;
  t.megabytes = 100.0;
  t.moved_mb = 100.0;
  t.arrival_s = 10.0;
  t.eligible_s = 12.0;
  t.first_pass_s = 15.0;
  t.start_s = 20.0;
  t.end_s = 30.0;
  t.solo_service_s = 8.0;
  t.entered_service = true;
  t.completed = true;
  return t;
}

TEST(SpanAttribute, PartitionsWaitExactly) {
  const WaitBreakdown w = attribute(full_timings());
  EXPECT_DOUBLE_EQ(w.stagger_s, 2.0);
  EXPECT_DOUBLE_EQ(w.admission_queue_s, 3.0);
  EXPECT_DOUBLE_EQ(w.scheduler_queue_s, 5.0);
  EXPECT_DOUBLE_EQ(w.wait_s, 10.0);
  EXPECT_DOUBLE_EQ(w.stagger_s + w.admission_queue_s + w.scheduler_queue_s,
                   w.wait_s);
  EXPECT_DOUBLE_EQ(w.service_s, 10.0);
  EXPECT_DOUBLE_EQ(w.solo_s, 8.0);
  EXPECT_DOUBLE_EQ(w.dilation_s, 2.0);
}

TEST(SpanAttribute, NeverPassedOverHasNoSchedulerWait) {
  TransferTimings t = full_timings();
  t.first_pass_s.reset();
  const WaitBreakdown w = attribute(t);
  // Without a losing scheduling decision the whole queue wait is capacity.
  EXPECT_DOUBLE_EQ(w.admission_queue_s, 8.0);
  EXPECT_DOUBLE_EQ(w.scheduler_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(w.stagger_s + w.admission_queue_s + w.scheduler_queue_s,
                   w.wait_s);
}

TEST(SpanAttribute, RemovedWhileWaitingTruncatesTheChain) {
  TransferTimings t = full_timings();
  t.entered_service = false;
  t.completed = false;
  t.moved_mb = 0.0;
  t.solo_service_s = 0.0;
  t.end_s = 14.0;  // removed after eligibility, before any pass-over
  t.first_pass_s.reset();
  const WaitBreakdown w = attribute(t);
  EXPECT_DOUBLE_EQ(w.stagger_s, 2.0);
  EXPECT_DOUBLE_EQ(w.admission_queue_s, 2.0);
  EXPECT_DOUBLE_EQ(w.scheduler_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(w.wait_s, 4.0);
  EXPECT_DOUBLE_EQ(w.service_s, 0.0);
  // Removed while still staggered: even the stagger phase clamps.
  t.end_s = 11.0;
  const WaitBreakdown w2 = attribute(t);
  EXPECT_DOUBLE_EQ(w2.stagger_s, 1.0);
  EXPECT_DOUBLE_EQ(w2.admission_queue_s, 0.0);
  EXPECT_DOUBLE_EQ(w2.wait_s, 1.0);
}

TEST(SpanStore, TransferOpensJobRootAndChildrenTile) {
  SpanStore store;
  store.record_transfer(full_timings());
  store.close_job(1, 40.0, /*finished=*/true);
  const auto spans = store.spans();
  // transfer + stagger + admission + scheduler + service + job root.
  ASSERT_EQ(spans.size(), 6u);
  const Span& transfer = spans[0];
  EXPECT_EQ(transfer.phase, SpanPhase::kTransfer);
  EXPECT_DOUBLE_EQ(transfer.start_s, 10.0);
  EXPECT_DOUBLE_EQ(transfer.end_s, 30.0);
  // Phase children tile [arrival, end) under the transfer span.
  double cursor = transfer.start_s;
  for (std::size_t i = 1; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, transfer.id);
    EXPECT_DOUBLE_EQ(spans[i].start_s, cursor);
    cursor = spans[i].end_s;
  }
  EXPECT_DOUBLE_EQ(cursor, transfer.end_s);
  const Span& job = spans.back();
  EXPECT_EQ(job.phase, SpanPhase::kJob);
  EXPECT_EQ(job.parent, 0u);
  EXPECT_EQ(transfer.parent, job.id);
  // The auto-opened root starts at the first transfer's arrival.
  EXPECT_DOUBLE_EQ(job.start_s, 10.0);
  EXPECT_DOUBLE_EQ(job.end_s, 40.0);
  EXPECT_TRUE(store.verify().ok());
}

TEST(SpanStore, ReopenedJobGetsAFreshRoot) {
  SpanStore store;
  store.open_job(7, 0.0);
  store.close_job(7, 5.0, true);
  store.open_job(7, 10.0);
  store.close_job(7, 15.0, false);
  const auto spans = store.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].id, spans[1].id);
  EXPECT_TRUE(spans[0].ok);
  EXPECT_FALSE(spans[1].ok);
  // Closing an already-closed (or unknown) job is a no-op.
  store.close_job(7, 20.0, true);
  store.close_job(99, 20.0, true);
  EXPECT_EQ(store.spans().size(), 2u);
}

TEST(SpanStore, RingDropsOldestButAggregatesSurviveEviction) {
  SpanStoreOptions opts;
  opts.capacity = 4;
  SpanStore store(opts);
  for (int i = 0; i < 10; ++i) {
    TransferTimings t = full_timings();
    t.job_id = static_cast<std::uint64_t>(i + 1);
    t.arrival_s += i;
    t.eligible_s += i;
    *t.first_pass_s += i;
    t.start_s += i;
    t.end_s += i;
    store.record_transfer(t);
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_GT(store.dropped(), 0u);
  EXPECT_EQ(store.recorded(), store.dropped() + store.size());
  // The report is folded at record time, so eviction cannot lose it.
  const AttributionReport r = store.report();
  EXPECT_EQ(r.total.transfers, 10u);
  EXPECT_EQ(r.total.completed, 10u);
  EXPECT_DOUBLE_EQ(r.total.wait_s, 100.0);
  EXPECT_DOUBLE_EQ(r.total.moved_mb, 1000.0);
  EXPECT_LE(r.max_partition_error_s, 1e-9);
}

TEST(SpanStore, TopKKeepsTheSlowestSortedDescending) {
  SpanStoreOptions opts;
  opts.top_k = 2;
  SpanStore store(opts);
  for (int i = 0; i < 5; ++i) {
    TransferTimings t = full_timings();
    t.transfer_id = static_cast<std::uint64_t>(i + 1);
    t.first_pass_s.reset();
    t.start_s = t.eligible_s + static_cast<double>(i);  // wait grows with i
    t.end_s = t.start_s + 8.0;
    store.record_transfer(t);
  }
  const AttributionReport r = store.report();
  ASSERT_EQ(r.slowest.size(), 2u);
  EXPECT_EQ(r.slowest[0].transfer_id, 5u);
  EXPECT_EQ(r.slowest[1].transfer_id, 4u);
  EXPECT_GE(r.slowest[0].slowness_s(), r.slowest[1].slowness_s());
}

TEST(SpanStore, BackoffAndRejectedFoldIntoTotalsOnly) {
  SpanStore store;
  store.record_backoff(3, 100.0, 130.0, /*kind=*/0);
  store.record_rejected(3, /*shard=*/2, /*kind=*/1, 130.0);
  const AttributionReport r = store.report();
  EXPECT_EQ(r.total.backoffs, 1u);
  EXPECT_DOUBLE_EQ(r.total.backoff_s, 30.0);
  EXPECT_EQ(r.total.rejected, 1u);
  EXPECT_EQ(r.by_kind[0].backoffs, 1u);
  EXPECT_EQ(r.by_kind[1].rejected, 1u);
  ASSERT_GE(r.by_shard.size(), 3u);
  EXPECT_EQ(r.by_shard[2].rejected, 1u);
  // Neither contributes transfers (they precede / replace a lifecycle).
  EXPECT_EQ(r.total.transfers, 0u);
  EXPECT_TRUE(store.verify().ok());
}

TEST(SpanStore, ExportsParseAndFlagDrops) {
  SpanStoreOptions opts;
  opts.capacity = 3;
  SpanStore store(opts);
  for (int i = 0; i < 3; ++i) store.record_transfer(full_timings());
  const std::string jsonl = store.to_jsonl();
  std::size_t lines = 0;
  for (const char ch : jsonl) {
    if (ch == '\n') ++lines;
  }
  // Every surviving span is one line, plus the meta line once dropping
  // started (3 transfers x 5 spans >> capacity 3).
  EXPECT_EQ(lines, store.size() + 1);
  EXPECT_EQ(jsonl.rfind("{\"meta\":\"spans\"", 0), 0u);
  EXPECT_NE(jsonl.find("\"phase\":"), std::string::npos);
  const std::string chrome = store.to_chrome_trace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // The standalone Span::to_json matches the JSONL record shape.
  const std::string one = store.spans().front().to_json();
  EXPECT_EQ(one.rfind("{\"id\":", 0), 0u);
  EXPECT_NE(one.find("\"dur_s\":"), std::string::npos);
}

TEST(SpanStore, MetricsCountRecordedTransfersAndRejections) {
  MetricsRegistry reg;
  SpanStoreOptions opts;
  opts.capacity = 2;
  SpanStore store(opts, &reg);
  store.record_transfer(full_timings());
  store.record_rejected(1, 0, 0, 31.0);
  EXPECT_EQ(reg.counter("obs.span.recorded").value(), store.recorded());
  EXPECT_EQ(reg.counter("obs.span.transfers").value(), 1u);
  EXPECT_EQ(reg.counter("obs.span.rejected").value(), 1u);
  EXPECT_EQ(reg.counter("obs.span.dropped").value(), store.dropped());
}

TEST(SpanStore, ClearResetsEverything) {
  SpanStore store;
  store.record_transfer(full_timings());
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.recorded(), 0u);
  EXPECT_EQ(store.report().total.transfers, 0u);
  EXPECT_DOUBLE_EQ(store.max_partition_error_s(), 0.0);
}

}  // namespace
}  // namespace harvest::obs
