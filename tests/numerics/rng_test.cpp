#include "harvest/numerics/rng.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace harvest::numerics {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // each ~1000 expected
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(5);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.05);
}

TEST(Rng, WeibullMeanMatchesGammaFormula) {
  Rng rng(9);
  const double shape = 0.43;
  const double scale = 3409.0;
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(shape, scale);
  // E = scale * Gamma(1 + 1/shape) = 3409 * Gamma(3.3256...) ≈ 9268.
  const double expected = scale * std::exp(std::lgamma(1.0 + 1.0 / shape));
  EXPECT_NEAR(sum / n / expected, 1.0, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal(2.0, 3.0);
    sum += z;
    sq += z * z;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, LognormalMeanOneMultiplier) {
  Rng rng(17);
  const double sigma = 0.35;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.lognormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, CategoricalRejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_THROW((void)rng.categorical({}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical({0.5, -0.5}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child stream differs from the continuing parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace harvest::numerics
