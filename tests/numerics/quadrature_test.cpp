#include "harvest/numerics/quadrature.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::numerics {
namespace {

TEST(AdaptiveSimpson, PolynomialExact) {
  // Simpson is exact for cubics.
  const auto f = [](double x) { return x * x * x - 2.0 * x + 1.0; };
  // ∫₀² = 4 − 4 + 2 = 2
  EXPECT_NEAR(integrate_adaptive_simpson(f, 0.0, 2.0), 2.0, 1e-12);
}

TEST(AdaptiveSimpson, TranscendentalIntegrals) {
  EXPECT_NEAR(integrate_adaptive_simpson(
                  [](double x) { return std::sin(x); }, 0.0, M_PI),
              2.0, 1e-9);
  EXPECT_NEAR(integrate_adaptive_simpson(
                  [](double x) { return std::exp(-x); }, 0.0, 50.0),
              1.0, 1e-8);
}

TEST(AdaptiveSimpson, EmptyInterval) {
  EXPECT_DOUBLE_EQ(
      integrate_adaptive_simpson([](double) { return 1.0; }, 3.0, 3.0), 0.0);
}

TEST(AdaptiveSimpson, RejectsReversedInterval) {
  EXPECT_THROW((void)integrate_adaptive_simpson([](double) { return 1.0; },
                                                1.0, 0.0),
               std::invalid_argument);
}

TEST(AdaptiveSimpson, SharpPeakResolved) {
  // Narrow Gaussian at 0.3 with width 0.01 integrates to ~1 over [0,1].
  const double mu = 0.3;
  const double s = 0.01;
  const auto f = [&](double x) {
    const double z = (x - mu) / s;
    return std::exp(-0.5 * z * z) / (s * std::sqrt(2.0 * M_PI));
  };
  EXPECT_NEAR(integrate_adaptive_simpson(f, 0.0, 1.0, 1e-10), 1.0, 1e-6);
}

TEST(GaussLegendre, PolynomialExact) {
  // 16-point GL is exact for polynomials up to degree 31.
  const auto f = [](double x) { return std::pow(x, 9) + x * x; };
  // ∫₀¹ = 1/10 + 1/3
  EXPECT_NEAR(integrate_gauss_legendre(f, 0.0, 1.0, 1), 0.1 + 1.0 / 3.0,
              1e-13);
}

TEST(GaussLegendre, MatchesAdaptiveOnSmoothIntegrand) {
  const auto f = [](double x) { return std::exp(-0.3 * x) * std::cos(x); };
  const double a = integrate_adaptive_simpson(f, 0.0, 10.0, 1e-12);
  const double g = integrate_gauss_legendre(f, 0.0, 10.0, 8);
  EXPECT_NEAR(a, g, 1e-10);
}

TEST(GaussLegendre, RejectsBadPanels) {
  EXPECT_THROW((void)integrate_gauss_legendre([](double) { return 1.0; }, 0.0,
                                              1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::numerics
