#include "harvest/numerics/minimize.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::numerics {
namespace {

TEST(GoldenSection, QuadraticMinimum) {
  const auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; };
  const auto r = minimize_golden_section(f, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-4);
  EXPECT_NEAR(r.value, 2.0, 1e-8);
}

TEST(GoldenSection, MinimumAtBracketEdge) {
  const auto f = [](double x) { return x; };  // monotone: min at lo
  const auto r = minimize_golden_section(f, 1.0, 5.0);
  EXPECT_NEAR(r.x, 1.0, 1e-3);
}

TEST(GoldenSection, RejectsBadBracket) {
  EXPECT_THROW((void)minimize_golden_section([](double x) { return x; }, 2.0,
                                             1.0),
               std::invalid_argument);
}

TEST(Brent, QuadraticMinimumFewEvals) {
  const auto f = [](double x) { return (x - 1.5) * (x - 1.5); };
  const auto r = minimize_brent(f, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
  // Parabolic interpolation should beat golden section on a parabola.
  const auto g = minimize_golden_section(f, -10.0, 10.0, 1e-8);
  EXPECT_LT(r.evaluations, g.evaluations);
}

TEST(Brent, NonSmoothObjective) {
  const auto f = [](double x) { return std::fabs(x - 0.7); };
  const auto r = minimize_brent(f, -2.0, 2.0);
  EXPECT_NEAR(r.x, 0.7, 1e-6);
}

TEST(BracketLogScan, FindsInteriorBracket) {
  // Minimum of x + 100/x is at x = 10.
  const auto f = [](double x) { return x + 100.0 / x; };
  const auto b = bracket_log_scan(f, 0.1, 1e4, 64);
  EXPECT_LT(b.lo, 10.0);
  EXPECT_GT(b.hi, 10.0);
}

TEST(BracketLogScan, RejectsNonPositiveLo) {
  EXPECT_THROW((void)bracket_log_scan([](double x) { return x; }, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)bracket_log_scan([](double x) { return x; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(MinimizeLogBracketed, WideRangeObjective) {
  // Checkpoint-like objective: overhead C/T + growing loss term.
  const double c = 100.0;
  const double rate = 1e-4;
  const auto f = [&](double t) { return c / t + 0.5 * rate * t; };
  // Analytic minimum: t* = sqrt(2c / rate).
  const double expected = std::sqrt(2.0 * c / rate);
  const auto r = minimize_log_bracketed(f, 1.0, 1e8);
  EXPECT_NEAR(r.x / expected, 1.0, 1e-3);
}

TEST(MinimizeLogBracketed, MinimumNearLowerEdge) {
  const auto f = [](double t) { return t; };
  const auto r = minimize_log_bracketed(f, 0.5, 1e6);
  EXPECT_NEAR(r.x, 0.5, 0.1);
}

}  // namespace
}  // namespace harvest::numerics
