#include "harvest/numerics/special_functions.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::numerics {
namespace {

TEST(GammaFn, MatchesFactorialAtIntegers) {
  EXPECT_NEAR(gamma_fn(1.0), 1.0, 1e-12);
  EXPECT_NEAR(gamma_fn(2.0), 1.0, 1e-12);
  EXPECT_NEAR(gamma_fn(3.0), 2.0, 1e-11);
  EXPECT_NEAR(gamma_fn(5.0), 24.0, 1e-9);
  EXPECT_NEAR(gamma_fn(7.0), 720.0, 1e-7);
}

TEST(GammaFn, HalfIntegerValue) {
  EXPECT_NEAR(gamma_fn(0.5), std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(gamma_fn(1.5), 0.5 * std::sqrt(M_PI), 1e-12);
}

TEST(GammaFn, RejectsNonPositive) {
  EXPECT_THROW((void)gamma_fn(0.0), std::invalid_argument);
  EXPECT_THROW((void)gamma_fn(-1.0), std::invalid_argument);
  EXPECT_THROW((void)log_gamma(0.0), std::invalid_argument);
}

TEST(GammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(1.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(1.0, 1e3), 1.0, 1e-12);
}

TEST(GammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 − e^{−x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
}

TEST(GammaP, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaP, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    const double v = gamma_p(0.7, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(GammaP, KnownValue) {
  // From standard tables: P(2, 2) = 1 − 3e^{−2}.
  EXPECT_NEAR(gamma_p(2.0, 2.0), 1.0 - 3.0 * std::exp(-2.0), 1e-12);
}

TEST(GammaP, RejectsBadArguments) {
  EXPECT_THROW((void)gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(LowerIncompleteGamma, ConsistentWithRegularized) {
  const double a = 1.7;
  const double x = 2.3;
  EXPECT_NEAR(lower_incomplete_gamma(a, x), gamma_p(a, x) * gamma_fn(a),
              1e-10);
}

TEST(Digamma, KnownValues) {
  // psi(1) = -gamma_E; psi(2) = 1 - gamma_E; psi(1/2) = -gamma_E - 2 ln 2.
  constexpr double kEulerGamma = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -kEulerGamma, 1e-12);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerGamma, 1e-12);
  EXPECT_NEAR(digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-12);
}

TEST(Digamma, RecurrenceHolds) {
  for (double x : {0.3, 1.7, 5.5, 42.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-12) << "x=" << x;
  }
}

TEST(Digamma, MatchesLogGammaDerivative) {
  for (double x : {0.8, 2.5, 10.0}) {
    const double h = 1e-6 * x;
    const double numeric = (log_gamma(x + h) - log_gamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(digamma(x), numeric, 1e-6) << "x=" << x;
  }
}

TEST(Digamma, RejectsNonPositive) {
  EXPECT_THROW((void)digamma(0.0), std::invalid_argument);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-12);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (double p : {1e-6, 0.01, 0.3, 0.5, 0.8, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownCriticalValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-8);
}

TEST(NormalQuantile, RejectsBoundary) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a, b) = 1 − I_{1−x}(b, a)
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(incomplete_beta(2.0, 5.0, x),
                1.0 - incomplete_beta(5.0, 2.0, 1.0 - x), 1e-12)
        << "x=" << x;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, KnownBinomialValue) {
  // I_x(a, 1) = x^a.
  EXPECT_NEAR(incomplete_beta(3.0, 1.0, 0.5), 0.125, 1e-12);
}

TEST(IncompleteBeta, RejectsBadArguments) {
  EXPECT_THROW((void)incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)incomplete_beta(1.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW((void)incomplete_beta(1.0, 1.0, 1.1), std::invalid_argument);
}

TEST(IncompleteBetaInv, RoundTrips) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double b : {0.5, 2.0, 7.0}) {
      for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
        const double x = incomplete_beta_inv(a, b, p);
        EXPECT_NEAR(incomplete_beta(a, b, x), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

TEST(IncompleteBetaInv, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta_inv(2.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta_inv(2.0, 2.0, 1.0), 1.0);
}

}  // namespace
}  // namespace harvest::numerics
