#include "harvest/numerics/roots.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace harvest::numerics {
namespace {

TEST(Bisection, FindsRootOfCubic) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  const auto r = find_root_bisection(f, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::cbrt(2.0), 1e-9);
}

TEST(Bisection, ExactRootAtEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(find_root_bisection(f, 1.0, 2.0).x, 1.0);
  EXPECT_DOUBLE_EQ(find_root_bisection(f, 0.0, 1.0).x, 1.0);
}

TEST(Bisection, RejectsSameSign) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)find_root_bisection(f, -1.0, 1.0), std::invalid_argument);
}

TEST(Newton, QuadraticConvergence) {
  const auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto df = [](double x) { return std::exp(x); };
  const auto r = find_root_newton(f, df, 0.0, 5.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::log(3.0), 1e-10);
  // Newton should use far fewer evaluations than bisection at this tol.
  const auto b = find_root_bisection(f, 0.0, 5.0, 1e-12);
  EXPECT_LT(r.evaluations, b.evaluations);
}

TEST(Newton, SafeguardedAgainstDivergentSteps) {
  // f has a nearly flat region that would throw plain Newton far away;
  // the bracket keeps it contained.
  const auto f = [](double x) { return std::tanh(x - 2.0); };
  const auto df = [](double x) {
    const double t = std::tanh(x - 2.0);
    return 1.0 - t * t;
  };
  const auto r = find_root_newton(f, df, -50.0, 50.0, -49.0);
  EXPECT_NEAR(r.x, 2.0, 1e-8);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const auto f = [](double x) { return x - 1000.0; };
  double lo = 0.0;
  double hi = 1.0;
  EXPECT_TRUE(expand_bracket_upward(f, lo, hi));
  EXPECT_LE(f(lo) * f(hi), 0.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  const auto f = [](double) { return 1.0; };
  double lo = 0.0;
  double hi = 1.0;
  EXPECT_FALSE(expand_bracket_upward(f, lo, hi, 10));
}

}  // namespace
}  // namespace harvest::numerics
