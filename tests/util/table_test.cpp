#include "harvest/util/table.hpp"

#include <gtest/gtest.h>

namespace harvest::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"CTime", "Exp."});
  t.add_row({"50", "0.754"});
  t.add_row({"100", "0.677"});
  const std::string out = t.render();
  EXPECT_NE(out.find("CTime"), std::string::npos);
  EXPECT_NE(out.find("0.754"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xxxxxx", "y"});
  const std::string out = t.render();
  // Every line is as wide as the widest cell per column (6 + 2 + 4).
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    EXPECT_EQ(eol - pos, 12u);
    pos = eol + 1;
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(0.7539, 3), "0.754");
  EXPECT_EQ(format_fixed(110296.4, 0), "110296");
}

TEST(FormatCiCell, PaperStyle) {
  EXPECT_EQ(format_ci_cell(0.754, 0.013, 3, ""), "0.754 +- 0.013");
  EXPECT_EQ(format_ci_cell(0.767, 0.012, 3, "e,2,3"),
            "0.767 +- 0.012 (e,2,3)");
}

}  // namespace
}  // namespace harvest::util
