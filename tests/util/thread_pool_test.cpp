#include "harvest/util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace harvest::util {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for_each(pool, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForEach, ComputesSameResultAsSerial) {
  ThreadPool pool(4);
  std::vector<double> out(1000);
  parallel_for_each(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ParallelForEach, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_each(pool, 10,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ParallelForEach, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelForEach, PoolReusableAfterException) {
  ThreadPool pool(2);
  try {
    parallel_for_each(pool, 4, [](std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  parallel_for_each(pool, 8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace harvest::util
