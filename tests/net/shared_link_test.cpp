#include "harvest/net/shared_link.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace harvest::net {
namespace {

TEST(SharedLink, SingleTransferRunsAtFullCapacity) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{0.0, 500.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(out[0].finish_s, 50.0);
}

TEST(SharedLink, TwoSimultaneousTransfersShareEvenly) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{0.0, 100.0}, {0.0, 100.0}});
  // Each gets 5 MB/s: both finish at t = 20.
  EXPECT_DOUBLE_EQ(out[0].finish_s, 20.0);
  EXPECT_DOUBLE_EQ(out[1].finish_s, 20.0);
}

TEST(SharedLink, UnequalSizesReleaseCapacity) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{0.0, 50.0}, {0.0, 150.0}});
  // Phase 1: both at 5 MB/s; small one done at t=10 (leaving 100 MB).
  // Phase 2: big one alone at 10 MB/s: 10 more seconds -> t=20.
  EXPECT_DOUBLE_EQ(out[0].finish_s, 10.0);
  EXPECT_DOUBLE_EQ(out[1].finish_s, 20.0);
}

TEST(SharedLink, LateArrivalSlowsExistingTransfer) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{0.0, 100.0}, {5.0, 100.0}});
  // t∈[0,5): first alone, drains 50 MB. t>=5: share 5 MB/s each.
  // First finishes its remaining 50 MB at t = 5 + 10 = 15.
  // Second then alone: remaining 100−50=50 MB at 10 MB/s: t = 20.
  EXPECT_DOUBLE_EQ(out[0].finish_s, 15.0);
  EXPECT_DOUBLE_EQ(out[1].finish_s, 20.0);
}

TEST(SharedLink, DisjointTransfersDoNotInteract) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{0.0, 100.0}, {100.0, 100.0}});
  EXPECT_DOUBLE_EQ(out[0].finish_s, 10.0);
  EXPECT_DOUBLE_EQ(out[1].start_s, 100.0);
  EXPECT_DOUBLE_EQ(out[1].finish_s, 110.0);
}

TEST(SharedLink, WorkConservation) {
  // Total bytes / capacity == busy time regardless of interleaving.
  const SharedLink link(4.0);
  const auto out = link.resolve(
      {{0.0, 40.0}, {1.0, 60.0}, {2.0, 20.0}, {3.0, 80.0}});
  double last_finish = 0.0;
  for (const auto& o : out) last_finish = std::max(last_finish, o.finish_s);
  // All arrive within the busy period, so makespan = 200 MB / 4 MB/s = 50 s.
  EXPECT_NEAR(last_finish, 50.0, 1e-9);
}

TEST(SharedLink, DurationNeverBeatsDedicatedLink) {
  const SharedLink link(8.0);
  const auto out = link.resolve({{0.0, 80.0}, {0.0, 40.0}, {2.0, 160.0}});
  const std::vector<double> sizes = {80.0, 40.0, 160.0};
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i].duration(), sizes[i] / 8.0 - 1e-9) << "i=" << i;
  }
}

TEST(SharedLink, NColliderSlowdownIsLinear) {
  // The paper's motivation for parallel checkpointing: k simultaneous
  // checkpoints take k times as long.
  for (int k : {1, 2, 4, 8}) {
    const SharedLink link(10.0);
    std::vector<TransferRequest> reqs(k, TransferRequest{0.0, 100.0});
    const auto out = link.resolve(reqs);
    EXPECT_NEAR(out[0].finish_s, 10.0 * k, 1e-9) << "k=" << k;
  }
}

TEST(SharedLink, EmptyRequestListIsFine) {
  const SharedLink link(1.0);
  EXPECT_TRUE(link.resolve({}).empty());
}

TEST(SharedLink, RejectsInvalidInputs) {
  EXPECT_THROW(SharedLink(0.0), std::invalid_argument);
  const SharedLink link(1.0);
  EXPECT_THROW((void)link.resolve({{-1.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW((void)link.resolve({{0.0, -5.0}}), std::invalid_argument);
}

TEST(SharedLink, ZeroSizeTransferCompletesAtArrival) {
  const SharedLink link(10.0);
  const auto out = link.resolve({{3.0, 0.0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].start_s, 3.0);
  EXPECT_DOUBLE_EQ(out[0].finish_s, 3.0);
  EXPECT_DOUBLE_EQ(out[0].duration(), 0.0);
}

TEST(SharedLink, ZeroSizeTransferDoesNotDisturbOthers) {
  const SharedLink link(10.0);
  // The zero-size arrival at t=5 joins the active set for a zero-length
  // instant: the 100 MB transfer must still finish at t=10.
  const auto out = link.resolve({{0.0, 100.0}, {5.0, 0.0}});
  EXPECT_DOUBLE_EQ(out[0].finish_s, 10.0);
  EXPECT_DOUBLE_EQ(out[1].finish_s, 5.0);
}

TEST(SharedLink, IdenticalArrivalTimesShareFromTheStart) {
  const SharedLink link(9.0);
  const auto out =
      link.resolve({{7.0, 90.0}, {7.0, 90.0}, {7.0, 90.0}});
  // Three equal transfers from the same instant: each at 3 MB/s, all done
  // 30 s later, and every start is the common arrival.
  for (const auto& o : out) {
    EXPECT_DOUBLE_EQ(o.start_s, 7.0);
    EXPECT_DOUBLE_EQ(o.finish_s, 37.0);
  }
}

TEST(SharedLink, SoloDurationIsExactlySizeOverCapacity) {
  // No contention: duration must be exactly megabytes / capacity, not
  // merely >= (the sweep should introduce no numerical slack).
  const SharedLink link(12.0);
  const auto out = link.resolve({{42.0, 600.0}});
  EXPECT_DOUBLE_EQ(out[0].duration(), 600.0 / 12.0);
  EXPECT_DOUBLE_EQ(out[0].finish_s, 42.0 + 50.0);
}

}  // namespace
}  // namespace harvest::net
