#include "harvest/net/bandwidth_model.hpp"

#include <gtest/gtest.h>

namespace harvest::net {
namespace {

TEST(BandwidthModel, ExpectedTransferTime) {
  const BandwidthModel link(5.0, 0.0);
  EXPECT_DOUBLE_EQ(link.expected_transfer_seconds(500.0), 100.0);
  EXPECT_DOUBLE_EQ(link.expected_transfer_seconds(0.0), 0.0);
}

TEST(BandwidthModel, NoJitterIsDeterministic) {
  const BandwidthModel link(2.0, 0.0);
  numerics::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(link.sample_transfer_seconds(100.0, rng), 50.0);
  }
}

TEST(BandwidthModel, JitteredMeanMatchesExpected) {
  const BandwidthModel link(500.0 / 110.0, 0.25);
  numerics::Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += link.sample_transfer_seconds(500.0, rng);
  }
  EXPECT_NEAR(sum / n / 110.0, 1.0, 0.01);
}

TEST(BandwidthModel, JitterActuallyVaries) {
  const BandwidthModel link(1.0, 0.3);
  numerics::Rng rng(3);
  const double a = link.sample_transfer_seconds(100.0, rng);
  const double b = link.sample_transfer_seconds(100.0, rng);
  EXPECT_NE(a, b);
}

TEST(BandwidthModel, CampusPresetMatchesPaperTable4) {
  const BandwidthModel link = BandwidthModel::campus();
  EXPECT_NEAR(link.expected_transfer_seconds(500.0), 110.0, 1e-9);
}

TEST(BandwidthModel, WanPresetMatchesPaperTable5) {
  const BandwidthModel link = BandwidthModel::wan();
  EXPECT_NEAR(link.expected_transfer_seconds(500.0), 475.0, 1e-9);
  // WAN is configured with heavier variability than campus.
  EXPECT_GT(link.jitter_sigma(), BandwidthModel::campus().jitter_sigma());
}

TEST(BandwidthModel, RejectsBadParameters) {
  EXPECT_THROW(BandwidthModel(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(BandwidthModel(1.0, -0.1), std::invalid_argument);
  const BandwidthModel link(1.0, 0.1);
  numerics::Rng rng(1);
  EXPECT_THROW((void)link.expected_transfer_seconds(-1.0),
               std::invalid_argument);
  EXPECT_THROW((void)link.sample_transfer_seconds(-1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::net
