// Fit all four availability models to a trace and report parameters and
// goodness of fit — the paper's §3.4 "software system that takes a set of
// measurements as inputs and computes Weibull, exponential, and
// hyperexponential parameters automatically".
//
// Usage:
//   ./fit_availability                 # demo on a synthetic heavy-tail trace
//   ./fit_availability traces.csv     # fit every machine in a monitor CSV
#include <cstdio>
#include <string>
#include <vector>

#include "harvest/dist/weibull.hpp"
#include "harvest/fit/model_select.hpp"
#include "harvest/stats/histogram.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/io.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

void report(const std::string& id, const std::vector<double>& durations) {
  using namespace harvest;
  std::printf("--- machine %s (%zu observations) ---\n", id.c_str(),
              durations.size());

  const auto fits = fit::fit_all(durations);
  if (fits.empty()) {
    std::printf("no family could be fitted (degenerate sample)\n\n");
    return;
  }
  util::TextTable table(
      {"family", "parameters", "logLik", "AIC", "KS", "A^2"});
  for (const auto& f : fits) {
    table.add_row({f.family, f.model->describe(),
                   util::format_fixed(f.log_likelihood, 1),
                   util::format_fixed(f.aic, 1),
                   util::format_fixed(f.ks_statistic, 3),
                   util::format_fixed(f.anderson_darling, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("best by AIC: %s | best by BIC: %s\n\n",
              fit::best_by_aic(fits).family.c_str(),
              fit::best_by_bic(fits).family.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harvest;
  if (argc > 1) {
    const auto traces = trace::load_traces_csv(argv[1]);
    std::printf("loaded %zu machines from %s\n\n", traces.size(), argv[1]);
    for (const auto& t : traces) report(t.machine_id, t.durations);
    return 0;
  }

  // Demo: the paper's exemplar Weibull, 200 observations.
  std::printf("no CSV given; fitting a demo trace drawn from %s\n\n",
              dist::Weibull(0.43, 3409.0).describe().c_str());
  const auto t =
      trace::sample_trace(dist::Weibull(0.43, 3409.0), 200, 7, "demo");
  report(t.machine_id, t.durations);

  std::printf("duration histogram (log-ish view, 12 bins to p95):\n");
  stats::Histogram h(0.0, stats::quantile_of(t.durations, 0.95), 12);
  h.add_all(t.durations);
  std::printf("%s", h.render_ascii(40).c_str());
  return 0;
}
