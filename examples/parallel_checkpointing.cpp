// Parallel checkpointing demo: N guest jobs share one link to the
// checkpoint server. Shows the feedback loop the paper's conclusion warns
// about — collisions stretch transfers, stretched transfers lose more work
// to evictions — and how a bandwidth-parsimonious availability model
// softens it.
//
// Usage: ./parallel_checkpointing [jobs] [family]
// Defaults: 8 jobs, compares exponential vs hyperexp2.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/sim/parallel_sim.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;
  const std::size_t jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  if (jobs == 0) {
    std::fprintf(stderr, "jobs must be >= 1\n");
    return 1;
  }

  // A small mixed machine park: two heavy-tailed Weibulls and a bimodal
  // office machine.
  std::vector<dist::DistributionPtr> laws = {
      std::make_shared<dist::Weibull>(0.45, 2500.0),
      std::make_shared<dist::Weibull>(0.55, 4000.0),
      std::make_shared<dist::Hyperexponential>(
          std::vector<double>{0.65, 0.35},
          std::vector<double>{1.0 / 240.0, 1.0 / 10800.0}),
  };

  std::vector<core::ModelFamily> families;
  if (argc > 2) {
    families.push_back(core::model_family_from_string(argv[2]));
  } else {
    families = {core::ModelFamily::kExponential,
                core::ModelFamily::kHyperexp2};
  }

  std::printf("%zu jobs, 24 h horizon, campus link (500 MB ~ 110 s)\n\n",
              jobs);
  util::TextTable table({"family", "efficiency", "mean stretch",
                         "GB moved", "evictions", "xfers ok/cut"});
  for (core::ModelFamily f : families) {
    sim::ParallelSimConfig cfg;
    cfg.job_count = jobs;
    cfg.family = f;
    cfg.seed = 9;
    const auto res = sim::run_parallel_simulation(laws, cfg);
    std::size_t ok = 0;
    std::size_t cut = 0;
    for (const auto& j : res.jobs) {
      ok += j.transfers_completed;
      cut += j.transfers_interrupted;
    }
    table.add_row({core::to_string(f),
                   util::format_fixed(res.efficiency(), 3),
                   util::format_fixed(res.mean_stretch(), 2),
                   util::format_fixed(res.total_moved_mb() / 1024.0, 1),
                   std::to_string(res.total_evictions()),
                   std::to_string(ok) + "/" + std::to_string(cut)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Try growing the job count: the exponential model's extra checkpoint\n"
      "traffic amplifies its own collisions.\n");
  return 0;
}
