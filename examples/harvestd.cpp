// harvestd — long-running live-scrape daemon over the fleet simulation.
//
// Generates a synthetic Condor pool once, then loops whole-pool contended
// simulations (a fresh seed per iteration) while serving the conventional
// exporter endpoint set from a background HTTP listener:
//
//   /metrics        Prometheus text exposition of the default registry,
//                   plus `<counter>_rate` gauges once two snapshot frames
//                   exist
//   /healthz        liveness (200 as long as the process runs)
//   /readyz         readiness (503 until the first simulation finishes)
//   /snapshot.json  latest SnapshotSeries frame (full registry, JSON)
//   /plan           planner-as-a-service: /plan?machine=<id> (an id like
//                   "m0007" or a bare index like "7") returns the machine's
//                   fitted model and checkpoint schedule as JSON, served
//                   from the sharded plan cache
//   /spans.json     newest causal spans from the live SpanStore
//                   (?limit=<n>, default 256) plus recorded/dropped totals
//   /attribution.json  the fleet-wide wait-attribution report: per-phase
//                   totals overall / per shard / per traffic class and the
//                   top-k slowest transfers with their exact wait breakdown
//   /history.json   bounded ring (newest-last, up to 64) of per-iteration
//                   simulation summaries: seed, wall seconds, makespan,
//                   network MB, jobs finished, timeline frame count
//   /config         the daemon's effective configuration as JSON
//
// Machines continuously report their (ground-truth-sampled) occupancy
// durations to a plan::PlannerService — the paper's training size (25) per
// machine up front, a trickle per iteration after, one in eight censored —
// so /plan exercises the full streaming-fit → plan-cache path live.
//
// SIGHUP re-reads --config <path> (``key value`` lines, `#` comments)
// between simulation iterations and applies the reloadable knobs: jobs,
// work-hours, family, snapshot-every, seed. /config and the
// `harvestd.config_reloads` counter reflect each reload.
//
// The SnapshotSeries is keyed by cumulative simulated seconds across
// iterations, so scraping /snapshot.json repeatedly shows the fleet's
// counters advancing on the simulation's own clock.
//
// usage: harvestd [flags]
//   --port <n>            listen port (default 9188; 0 picks an ephemeral
//                         port — the bound port is printed on stdout)
//   --bind <addr>         IPv4 listen address (default 127.0.0.1; anything
//                         else exposes the exporter beyond loopback and is
//                         called out with a startup warning)
//   --machines <n>        synthetic pool size (default 128)
//   --jobs <n>            jobs per simulation (default 32)
//   --work-hours <h>      work per job in hours (default 4)
//   --family <name>       fitted model family (default weibull)
//   --snapshot-every <s>  telemetry cadence in simulated seconds, for both
//                         the pool timeline and the series (default 600)
//   --seed <n>            base RNG seed (default 31; iteration i adds i)
//   --config <path>       optional config file of ``key value`` lines for
//                         the reloadable knobs above; applied at startup
//                         (over the flags) and re-read on SIGHUP
//   --once                run exactly one simulation, then keep serving
//                         until SIGINT/SIGTERM (CI smoke mode)
//   --tiny                shrink the pool for smoke runs (16 machines,
//                         4 jobs, 1 work-hour)
// plus every --server-* / --fleet-* flag (see below). Without any of
// those, harvestd defaults to a 4-shard static-routed fleet.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/obs/http.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/obs/series.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/plan/service.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/cli_options.hpp"
#include "harvest/trace/synthetic.hpp"

namespace {

using namespace harvest;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_reload{false};

void on_signal(int) { g_stop.store(true); }
void on_sighup(int) { g_reload.store(true); }

int usage() {
  std::fprintf(
      stderr,
      "usage: harvestd [--port n] [--bind addr] [--machines n] [--jobs n]\n"
      "                [--work-hours h] [--family name] [--snapshot-every s]\n"
      "                [--seed n] [--config path] [--once] [--tiny]\n"
      "                [--predict-p p] [--predict-r r] [--predict-window s]\n"
      "endpoints: /metrics /healthz /readyz /snapshot.json\n"
      "           /plan?machine=<id>[&p=&r=&window=]\n"
      "           /spans.json /attribution.json /history.json /config\n"
      "           /profile.json /buildinfo.json\n"
      "%s",
      server::CliOptions::help_text().c_str());
  return 2;
}

/// Strip `--<name> <value>` / `--<name>=<value>`; empty string if absent.
std::string strip_value_flag(int& argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  std::string value;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] && i + 1 < argc) {
      value = argv[++i];
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = argv[i] + eq.size();
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return value;
}

/// Strip a bare `--<name>` switch; true when it was present.
bool strip_switch(int& argc, char** argv, const char* name) {
  const std::string bare = std::string("--") + name;
  bool present = false;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      present = true;
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return present;
}

/// The knobs a SIGHUP reload may change between simulation iterations.
/// Pool size and the listener port are intentionally NOT here: the park is
/// generated once and the socket is bound once.
struct RuntimeConfig {
  std::size_t jobs = 32;
  double work_hours = 4.0;
  core::ModelFamily family = core::ModelFamily::kWeibull;
  double snapshot_every = 600.0;
  std::uint64_t seed = 31;
};

/// Apply ``key value`` lines from `path` onto `rc`. Returns the problems
/// encountered (unknown keys, bad values, unreadable file); valid lines
/// apply even when other lines are broken, so a reload is never all-or-
/// nothing.
std::vector<std::string> apply_config_file(const std::string& path,
                                           RuntimeConfig& rc) {
  std::vector<std::string> problems;
  std::ifstream in(path);
  if (!in) {
    problems.push_back("cannot open config file '" + path + "'");
    return problems;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key[0] == '#') continue;
    std::string value;
    ls >> value;
    const auto complain = [&](const std::string& what) {
      problems.push_back("config line " + std::to_string(lineno) + ": " +
                         what);
    };
    if (key == "jobs") {
      const auto v = std::strtoul(value.c_str(), nullptr, 10);
      v > 0 ? void(rc.jobs = v) : complain("jobs must be > 0");
    } else if (key == "work-hours") {
      const double v = std::atof(value.c_str());
      v > 0.0 ? void(rc.work_hours = v) : complain("work-hours must be > 0");
    } else if (key == "family") {
      try {
        rc.family = core::model_family_from_string(value);
      } catch (const std::exception& e) {
        complain(e.what());
      }
    } else if (key == "snapshot-every") {
      const double v = std::atof(value.c_str());
      v > 0.0 ? void(rc.snapshot_every = v)
              : complain("snapshot-every must be > 0");
    } else if (key == "seed") {
      rc.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      complain("unknown key '" + key + "'");
    }
  }
  return problems;
}

/// Value of `name` in the request target's query string ("" if absent).
std::string query_param(const std::string& target, const std::string& name) {
  const auto q = target.find('?');
  if (q == std::string::npos) return {};
  std::size_t pos = q + 1;
  while (pos < target.size()) {
    auto amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const auto eq = target.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        target.compare(pos, eq - pos, name) == 0) {
      return target.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return {};
}

/// True when the streaming fitters support `family` (plan::PlannerService's
/// menu).
bool streaming_family(core::ModelFamily family) {
  switch (family) {
    case core::ModelFamily::kExponential:
    case core::ModelFamily::kWeibull:
    case core::ModelFamily::kHyperexp2:
    case core::ModelFamily::kHyperexp3:
      return true;
    default:
      return false;
  }
}

obs::HttpResponse json_error(int status, const std::string& message) {
  obs::JsonWriter w;
  w.begin_object().field("error", message).end_object();
  return {status, "application/json", w.str() + '\n'};
}

/// One finished simulation iteration, as /history.json reports it.
struct IterationRecord {
  std::uint64_t iteration = 0;
  std::uint64_t seed = 0;      ///< PoolSimConfig seed this iteration ran with
  double wall_s = 0.0;         ///< real time the simulation took
  double makespan_s = 0.0;
  double network_mb = 0.0;
  std::size_t jobs_finished = 0;
  std::size_t jobs = 0;
  std::size_t timeline_frames = 0;
};

/// Bounded newest-last ring of iteration summaries behind /history.json.
class IterationHistory {
 public:
  static constexpr std::size_t kMaxRecords = 64;

  void push(const IterationRecord& rec) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(rec);
    if (records_.size() > kMaxRecords) records_.pop_front();
  }

  [[nodiscard]] obs::HttpResponse respond() const {
    obs::JsonWriter w;
    std::lock_guard<std::mutex> lock(mutex_);
    w.begin_object()
        .field("count", static_cast<std::uint64_t>(records_.size()))
        .field("capacity", static_cast<std::uint64_t>(kMaxRecords));
    w.key("iterations").begin_array();
    for (const auto& r : records_) {
      w.begin_object()
          .field("iteration", r.iteration)
          .field("seed", r.seed)
          .field("wall_s", r.wall_s)
          .field("makespan_s", r.makespan_s)
          .field("network_mb", r.network_mb)
          .field("jobs_finished", static_cast<std::uint64_t>(r.jobs_finished))
          .field("jobs", static_cast<std::uint64_t>(r.jobs))
          .field("timeline_frames",
                 static_cast<std::uint64_t>(r.timeline_frames))
          .end_object();
    }
    w.end_array();
    w.end_object();
    return {200, "application/json", w.str() + '\n'};
  }

 private:
  mutable std::mutex mutex_;
  std::deque<IterationRecord> records_;
};

/// GET /spans.json: the newest `?limit=` spans (default 256, 0 = all
/// surviving) plus the store's recorded/dropped totals.
obs::HttpResponse spans_response(const obs::SpanStore& store,
                                 const std::string& target) {
  std::size_t limit = 256;
  const std::string limit_s = query_param(target, "limit");
  if (!limit_s.empty()) limit = std::strtoul(limit_s.c_str(), nullptr, 10);
  const std::vector<obs::Span> all = store.spans();
  const std::size_t n = limit == 0 ? all.size() : std::min(limit, all.size());
  obs::JsonWriter w;
  w.begin_object()
      .field("recorded", store.recorded())
      .field("dropped", store.dropped())
      .field("count", static_cast<std::uint64_t>(n));
  w.key("spans").begin_array();
  for (std::size_t i = all.size() - n; i < all.size(); ++i) {
    w.raw(all[i].to_json());
  }
  w.end_array();
  w.end_object();
  return {200, "application/json", w.str() + '\n'};
}

/// GET /plan?machine=<id>[&p=<precision>&r=<recall>&window=<s>]. Accepts
/// the full machine id ("m0007") or a bare numeric index ("7", resolved to
/// the pool's zero-padded id scheme). Supplying any predictor parameter
/// switches to the prediction-aware plan (all three default sensibly:
/// p 0.8, r 0.7, window 1800 s); the response then carries a "predictor"
/// object and the schedule's work_s entries include the period stretch.
obs::HttpResponse plan_response(plan::PlannerService& service,
                                const std::string& target) {
  std::string id = query_param(target, "machine");
  if (id.empty()) {
    return json_error(400, "missing ?machine=<id> parameter");
  }
  if (!id.empty() &&
      std::all_of(id.begin(), id.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    std::ostringstream padded;
    padded << 'm';
    padded.fill('0');
    padded.width(4);
    padded << id;
    id = padded.str();
  }
  const std::string p_s = query_param(target, "p");
  const std::string r_s = query_param(target, "r");
  const std::string window_s = query_param(target, "window");
  std::optional<predict::PredictorConfig> predictor;
  if (!p_s.empty() || !r_s.empty() || !window_s.empty()) {
    predict::PredictorConfig pc;
    if (!p_s.empty()) pc.precision = std::atof(p_s.c_str());
    if (!r_s.empty()) pc.recall = std::atof(r_s.c_str());
    if (!window_s.empty()) pc.window_s = std::atof(window_s.c_str());
    try {
      pc.validate();
    } catch (const std::exception& e) {
      return json_error(400, e.what());
    }
    predictor = pc;
  }
  plan::GetPlanResult res = service.get_plan(id, predictor);
  if (res.status == plan::PlanStatus::kUnknownMachine) {
    return json_error(404, "unknown machine '" + id + "'");
  }
  if (res.status == plan::PlanStatus::kInsufficientData) {
    return json_error(503, "machine '" + id +
                               "' has too little data to fit (" +
                               std::to_string(res.observations) +
                               " observations)");
  }
  const plan::PlanCacheStats cache = service.cache().stats();
  obs::JsonWriter w;
  w.begin_object()
      .field("machine", id)
      .field("status", std::string(to_string(res.status)))
      .field("observations", static_cast<std::uint64_t>(res.observations))
      .field("family", res.plan->family)
      .field("model", res.plan->model_description)
      .field("fitted", res.fitted_description);
  w.key("params").begin_array();
  for (const double p : res.plan->params) w.value(p);
  w.end_array();
  if (res.plan->predictor_enabled) {
    w.key("predictor")
        .begin_object()
        .field("precision", res.plan->predictor.precision)
        .field("recall", res.plan->predictor.recall)
        .field("window_s", res.plan->predictor.window_s)
        .field("period_factor", res.plan->period_factor)
        .end_object();
  }
  w.key("cache")
      .begin_object()
      .field("hit", res.cache_hit)
      .field("refitted", res.refitted)
      .field("hits", cache.hits)
      .field("misses", cache.misses)
      .field("evictions", cache.evictions)
      .field("size", static_cast<std::uint64_t>(cache.size))
      .field("hit_ratio", cache.hit_ratio())
      .end_object();
  w.key("schedule").begin_array();
  for (const auto& e : res.plan->entries) {
    w.begin_object()
        .field("work_s", e.work_s)
        .field("age_s", e.age_s)
        .field("efficiency", e.efficiency)
        .field("at_upper_bound", e.at_upper_bound)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return {200, "application/json", w.str() + '\n'};
}

/// The /config document: effective configuration + startup warnings.
std::string render_config_json(const RuntimeConfig& rc, std::size_t machines,
                               int port, const std::string& config_path,
                               core::ModelFamily plan_family,
                               std::size_t fleet_shards, bool once, bool tiny,
                               std::uint64_t reloads,
                               const std::vector<std::string>& warnings) {
  obs::JsonWriter w;
  w.begin_object()
      .field("port", port)
      .field("machines", static_cast<std::uint64_t>(machines))
      .field("jobs", static_cast<std::uint64_t>(rc.jobs))
      .field("work_hours", rc.work_hours)
      .field("family", core::to_string(rc.family))
      .field("snapshot_every_s", rc.snapshot_every)
      .field("seed", rc.seed)
      .field("config_path", config_path)
      .field("plan_family", core::to_string(plan_family))
      .field("fleet_shards", static_cast<std::uint64_t>(fleet_shards))
      .field("once", once)
      .field("tiny", tiny)
      .field("config_reloads", reloads);
  w.key("warnings").begin_array();
  for (const auto& warning : warnings) w.value(warning);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  server::CliOptions server_opts;
  try {
    server_opts = server::CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestd: %s\n", e.what());
    return 2;
  }
  const std::string port_s = strip_value_flag(argc, argv, "port");
  std::string bind_addr = strip_value_flag(argc, argv, "bind");
  if (bind_addr.empty()) bind_addr = "127.0.0.1";
  const std::string machines_s = strip_value_flag(argc, argv, "machines");
  const std::string jobs_s = strip_value_flag(argc, argv, "jobs");
  const std::string hours_s = strip_value_flag(argc, argv, "work-hours");
  const std::string family_s = strip_value_flag(argc, argv, "family");
  const std::string every_s = strip_value_flag(argc, argv, "snapshot-every");
  const std::string seed_s = strip_value_flag(argc, argv, "seed");
  const std::string config_path = strip_value_flag(argc, argv, "config");
  const std::string predict_p_s = strip_value_flag(argc, argv, "predict-p");
  const std::string predict_r_s = strip_value_flag(argc, argv, "predict-r");
  const std::string predict_w_s =
      strip_value_flag(argc, argv, "predict-window");
  const bool once = strip_switch(argc, argv, "once");
  const bool tiny = strip_switch(argc, argv, "tiny");
  if (argc > 1) return usage();  // leftover positional args

  int port = port_s.empty() ? 9188 : std::atoi(port_s.c_str());
  std::size_t machines = tiny ? 16 : 128;
  RuntimeConfig rc;
  if (tiny) {
    rc.jobs = 4;
    rc.work_hours = 1.0;
  }
  if (!machines_s.empty()) machines = std::strtoul(machines_s.c_str(), nullptr, 10);
  if (!jobs_s.empty()) rc.jobs = std::strtoul(jobs_s.c_str(), nullptr, 10);
  if (!hours_s.empty()) rc.work_hours = std::atof(hours_s.c_str());
  if (!every_s.empty()) rc.snapshot_every = std::atof(every_s.c_str());
  if (!seed_s.empty()) rc.seed = std::strtoull(seed_s.c_str(), nullptr, 10);
  if (!family_s.empty()) {
    try {
      rc.family = core::model_family_from_string(family_s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harvestd: %s\n", e.what());
      return 2;
    }
  }
  std::vector<std::string> config_problems;
  if (!config_path.empty()) {
    config_problems = apply_config_file(config_path, rc);
    for (const auto& p : config_problems) {
      std::fprintf(stderr, "harvestd: warning: %s\n", p.c_str());
    }
  }
  if (port < 0 || port > 65535 || machines == 0 || rc.jobs == 0 ||
      !(rc.work_hours > 0.0) || !(rc.snapshot_every > 0.0)) {
    return usage();
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGHUP, on_sighup);

  // The park: a synthetic Condor pool whose ground-truth laws drive the
  // volatility (no fitting detour — harvestd shows the live fleet, not the
  // model-selection pipeline).
  trace::PoolSpec pool_spec;
  pool_spec.machine_count = machines;
  pool_spec.durations_per_machine = 60;
  pool_spec.seed = rc.seed;
  std::vector<condor::TimelinePool::MachineSpec> specs;
  specs.reserve(machines);
  for (auto& m : trace::generate_pool(pool_spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = std::move(m.ground_truth);
    specs.push_back(std::move(s));
  }

  // Live span sink shared by every iteration: /spans.json serves the ring,
  // /attribution.json the eviction-proof aggregate report.
  obs::SpanStoreOptions span_opts;
  span_opts.capacity = 1 << 15;
  obs::SpanStore span_store(span_opts, &obs::default_registry());

  // Engine self-profiling: one profiler shared by every iteration AND the
  // HTTP thread (so /plan requests' fit/cache phases land in the same
  // report). Activated for the daemon's whole life; /profile.json serves a
  // fold of everything accumulated so far.
  obs::prof::PhaseProfiler profiler;
  obs::prof::set_active(&profiler);

  condor::PoolSimConfig cfg;
  cfg.job_count = rc.jobs;
  cfg.work_per_job_s = rc.work_hours * 3600.0;
  cfg.hooks.snapshot_every_s = rc.snapshot_every;
  cfg.family = rc.family;
  cfg.hooks.spans = &span_store;
  cfg.hooks.profiler = &profiler;
  condor::apply_cli_options(cfg, server_opts);
  // Any --predict-* flag switches on the fault-prediction scenario; the
  // others keep PredictorConfig's defaults.
  if (!predict_p_s.empty() || !predict_r_s.empty() || !predict_w_s.empty()) {
    predict::PredictorConfig pc;
    if (!predict_p_s.empty()) pc.precision = std::atof(predict_p_s.c_str());
    if (!predict_r_s.empty()) pc.recall = std::atof(predict_r_s.c_str());
    if (!predict_w_s.empty()) pc.window_s = std::atof(predict_w_s.c_str());
    try {
      pc.validate();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harvestd: %s\n", e.what());
      return 2;
    }
    cfg.scenario.predictor = pc;
  }
  if (!cfg.scenario.fleet.has_value()) {
    server::FleetConfig fc;
    fc.shards = 4;
    cfg.scenario.fleet = fc;
  }

  // Surface EVERY validation warning — the CLI layer's and the fleet
  // config's own (previously dropped on the default 4-shard path) — once
  // at startup, and keep the count scrapeable.
  std::vector<std::string> startup_warnings = server_opts.warnings();
  if (bind_addr != "127.0.0.1") {
    startup_warnings.push_back(
        "--bind " + bind_addr +
        " exposes the exporter beyond loopback; it serves plaintext HTTP "
        "with no authentication — front it with a firewall or reverse "
        "proxy");
  }
  const server::ServerConfigValidation fleet_validation =
      cfg.scenario.fleet->validate();
  startup_warnings.insert(startup_warnings.end(),
                          fleet_validation.warnings.begin(),
                          fleet_validation.warnings.end());
  startup_warnings.insert(startup_warnings.end(), config_problems.begin(),
                          config_problems.end());
  for (const auto& w : startup_warnings) {
    std::fprintf(stderr, "harvestd: warning: %s\n", w.c_str());
  }

  auto& reg = obs::default_registry();
  reg.describe("harvestd.iterations",
               "Completed simulation iterations since startup.");
  reg.describe("harvestd.sim_seconds",
               "Cumulative simulated seconds across iterations.");
  reg.describe("harvestd.last_makespan_s",
               "Makespan of the most recent simulation (simulated s).");
  reg.describe("harvestd.last_network_mb",
               "Network traffic of the most recent simulation (MB).");
  reg.describe("harvestd.config_reloads",
               "Successful SIGHUP config reloads since startup.");
  reg.describe("config.warnings",
               "Configuration validation warnings at startup (CLI + fleet "
               "config + config file).");
  reg.describe("plan.http_requests", "GET /plan requests served.");
  auto& iterations = reg.counter("harvestd.iterations");
  auto& sim_seconds = reg.gauge("harvestd.sim_seconds");
  auto& last_makespan = reg.gauge("harvestd.last_makespan_s");
  auto& last_network = reg.gauge("harvestd.last_network_mb");
  auto& config_reloads = reg.counter("harvestd.config_reloads");
  auto& plan_requests = reg.counter("plan.http_requests");
  reg.gauge("config.warnings")
      .set(static_cast<double>(startup_warnings.size()));

  // Planner-as-a-service over the same park. The service's family is fixed
  // at startup (per-machine fitter state is family-specific); a reload's
  // `family` only changes what the simulation fits.
  plan::PlannerServiceOptions popts;
  popts.family =
      streaming_family(rc.family) ? rc.family : core::ModelFamily::kWeibull;
  popts.costs.checkpoint =
      cfg.link.expected_transfer_seconds(cfg.checkpoint_size_mb);
  popts.costs.recovery = popts.costs.checkpoint;
  plan::PlannerService service(popts, &reg);

  std::mutex config_mutex;
  std::string config_json;
  std::uint64_t reloads = 0;
  const auto refresh_config_json = [&] {
    std::string doc = render_config_json(
        rc, machines, port, config_path, popts.family, cfg.scenario.fleet->shards,
        once, tiny, reloads, startup_warnings);
    std::lock_guard<std::mutex> lock(config_mutex);
    config_json = std::move(doc);
  };
  refresh_config_json();

  // A daemon outlives its ring: compact instead of evicting, so the series
  // keeps cadence resolution for the recent past and a coarser long tail.
  obs::SeriesCompaction series_compaction;
  series_compaction.keep_recent = 256;
  obs::SnapshotSeries series(rc.snapshot_every,
                             obs::SnapshotSeries::kDefaultMaxFrames,
                             series_compaction);
  IterationHistory history;
  obs::ExporterEndpoints endpoints(reg, series);
  obs::HttpServer http([&](const std::string& target) -> obs::HttpResponse {
    const std::string path = target.substr(0, target.find('?'));
    if (path == "/plan") {
      plan_requests.add();
      return plan_response(service, target);
    }
    if (path == "/spans.json") {
      return spans_response(span_store, target);
    }
    if (path == "/attribution.json") {
      return {200, "application/json", span_store.report().to_json() + '\n'};
    }
    if (path == "/history.json") {
      return history.respond();
    }
    if (path == "/config") {
      std::lock_guard<std::mutex> lock(config_mutex);
      return {200, "application/json", config_json + '\n'};
    }
    if (path == "/profile.json") {
      return {200, "application/json", profiler.report().to_json() + '\n'};
    }
    if (path == "/buildinfo.json") {
      return {200, "application/json", obs::build_info_json() + '\n'};
    }
    return endpoints.respond(target);
  });
  try {
    http.bind(bind_addr, static_cast<std::uint16_t>(port));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestd: %s\n", e.what());
    return 1;
  }
  http.start();
  // CI parses this line to learn the ephemeral port; keep it first and
  // flushed (on the default bind it reads "listening on 127.0.0.1:<port>").
  std::printf("harvestd: listening on %s:%u\n", http.address().c_str(),
              static_cast<unsigned>(http.port()));
  std::fflush(stdout);

  numerics::Rng plan_rng(rc.seed * 0x9E3779B97F4A7C15ULL + 1);
  std::uint64_t plan_reports = 0;
  double sim_clock_s = 0.0;
  std::uint64_t iter = 0;
  while (!g_stop.load()) {
    if (g_reload.exchange(false) && !config_path.empty()) {
      const auto problems = apply_config_file(config_path, rc);
      for (const auto& p : problems) {
        std::fprintf(stderr, "harvestd: warning: %s\n", p.c_str());
      }
      cfg.job_count = rc.jobs;
      cfg.work_per_job_s = rc.work_hours * 3600.0;
      cfg.hooks.snapshot_every_s = rc.snapshot_every;
      cfg.family = rc.family;
      ++reloads;
      config_reloads.add();
      refresh_config_json();
      std::fprintf(stderr,
                   "harvestd: reloaded %s (jobs %zu, work %.2f h, family "
                   "%s, snapshot every %.0f s, seed %llu)\n",
                   config_path.c_str(), rc.jobs, rc.work_hours,
                   core::to_string(rc.family).c_str(), rc.snapshot_every,
                   static_cast<unsigned long long>(rc.seed));
    }
    if (once && iter >= 1) {
      // Smoke mode: the one simulation is done; keep serving until a
      // signal arrives so the scraper can take its time.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    // Feed the planner service: the paper's training size per machine on
    // the first iteration, then a trickle, with one in eight reports
    // censored (occupancy still in progress when recorded).
    const std::size_t feed = iter == 0 ? cfg.train_count : 4;
    for (const auto& s : specs) {
      for (std::size_t i = 0; i < feed; ++i) {
        const double d = s.availability_law->sample(plan_rng);
        service.report(s.id, d, (++plan_reports % 8) == 0);
      }
    }
    cfg.seed = rc.seed + iter;
    condor::PoolSimResult res;
    const auto wall_start = std::chrono::steady_clock::now();
    try {
      res = condor::run_pool_simulation(specs, cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harvestd: simulation failed: %s\n", e.what());
      return 1;
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    ++iter;
    iterations.add();
    history.push({iter, cfg.seed, wall_s, res.makespan_s,
                  res.total_moved_mb(), res.finished_count(), res.jobs.size(),
                  res.timeline.size()});
    sim_clock_s += res.makespan_s;
    sim_seconds.set(sim_clock_s);
    last_makespan.set(res.makespan_s);
    last_network.set(res.total_moved_mb());
    if (res.predictor_enabled) {
      // Per-machine predictor quality: how well the oracle's configured
      // (p, r) held up on each machine's actual spell mix. Sampled before
      // series.sample so /snapshot.json carries the same gauges.
      for (std::size_t m = 0; m < res.predictor_machines.size(); ++m) {
        const auto& ms = res.predictor_machines[m];
        if (ms.events == 0) continue;
        const std::string base = "predict.machine." + specs[m].id;
        reg.gauge(base + ".events").set(static_cast<double>(ms.events));
        reg.gauge(base + ".precision").set(ms.observed_precision());
        reg.gauge(base + ".recall").set(ms.observed_recall());
      }
    }
    series.sample(sim_clock_s, reg);
    endpoints.set_ready(true);
    std::fprintf(stderr,
                 "harvestd: iteration %llu: %zu/%zu jobs, makespan %.1f h, "
                 "network %.1f GB, %zu timeline frames\n",
                 static_cast<unsigned long long>(iter), res.finished_count(),
                 res.jobs.size(), res.makespan_s / 3600.0,
                 res.total_moved_mb() / 1024.0, res.timeline.size());
  }
  http.stop();
  std::fprintf(stderr, "harvestd: stopped after %llu iterations\n",
               static_cast<unsigned long long>(iter));
  return 0;
}
