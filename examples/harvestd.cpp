// harvestd — long-running live-scrape daemon over the fleet simulation.
//
// Generates a synthetic Condor pool once, then loops whole-pool contended
// simulations (a fresh seed per iteration) while serving the conventional
// exporter endpoint set from a background HTTP listener:
//
//   /metrics        Prometheus text exposition of the default registry
//   /healthz        liveness (200 as long as the process runs)
//   /readyz         readiness (503 until the first simulation finishes)
//   /snapshot.json  latest SnapshotSeries frame (full registry, JSON)
//
// The SnapshotSeries is keyed by cumulative simulated seconds across
// iterations, so scraping /snapshot.json repeatedly shows the fleet's
// counters advancing on the simulation's own clock.
//
// usage: harvestd [flags]
//   --port <n>            listen port (default 9188; 0 picks an ephemeral
//                         port — the bound port is printed on stdout)
//   --machines <n>        synthetic pool size (default 128)
//   --jobs <n>            jobs per simulation (default 32)
//   --work-hours <h>      work per job in hours (default 4)
//   --family <name>       fitted model family (default weibull)
//   --snapshot-every <s>  telemetry cadence in simulated seconds, for both
//                         the pool timeline and the series (default 600)
//   --seed <n>            base RNG seed (default 31; iteration i adds i)
//   --once                run exactly one simulation, then keep serving
//                         until SIGINT/SIGTERM (CI smoke mode)
//   --tiny                shrink the pool for smoke runs (16 machines,
//                         4 jobs, 1 work-hour)
// plus every --server-* / --fleet-* flag (see below). Without any of
// those, harvestd defaults to a 4-shard static-routed fleet.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/http.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/series.hpp"
#include "harvest/server/cli_options.hpp"
#include "harvest/trace/synthetic.hpp"

namespace {

using namespace harvest;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(
      stderr,
      "usage: harvestd [--port n] [--machines n] [--jobs n] "
      "[--work-hours h]\n"
      "                [--family name] [--snapshot-every s] [--seed n]\n"
      "                [--once] [--tiny]\n"
      "endpoints: /metrics /healthz /readyz /snapshot.json\n"
      "%s",
      server::CliOptions::help_text().c_str());
  return 2;
}

/// Strip `--<name> <value>` / `--<name>=<value>`; empty string if absent.
std::string strip_value_flag(int& argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  std::string value;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] && i + 1 < argc) {
      value = argv[++i];
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = argv[i] + eq.size();
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return value;
}

/// Strip a bare `--<name>` switch; true when it was present.
bool strip_switch(int& argc, char** argv, const char* name) {
  const std::string bare = std::string("--") + name;
  bool present = false;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      present = true;
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return present;
}

}  // namespace

int main(int argc, char** argv) {
  server::CliOptions server_opts;
  try {
    server_opts = server::CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestd: %s\n", e.what());
    return 2;
  }
  const std::string port_s = strip_value_flag(argc, argv, "port");
  const std::string machines_s = strip_value_flag(argc, argv, "machines");
  const std::string jobs_s = strip_value_flag(argc, argv, "jobs");
  const std::string hours_s = strip_value_flag(argc, argv, "work-hours");
  const std::string family_s = strip_value_flag(argc, argv, "family");
  const std::string every_s = strip_value_flag(argc, argv, "snapshot-every");
  const std::string seed_s = strip_value_flag(argc, argv, "seed");
  const bool once = strip_switch(argc, argv, "once");
  const bool tiny = strip_switch(argc, argv, "tiny");
  if (argc > 1) return usage();  // leftover positional args

  int port = port_s.empty() ? 9188 : std::atoi(port_s.c_str());
  std::size_t machines = tiny ? 16 : 128;
  std::size_t jobs = tiny ? 4 : 32;
  double work_hours = tiny ? 1.0 : 4.0;
  double snapshot_every = 600.0;
  std::uint64_t seed = 31;
  if (!machines_s.empty()) machines = std::strtoul(machines_s.c_str(), nullptr, 10);
  if (!jobs_s.empty()) jobs = std::strtoul(jobs_s.c_str(), nullptr, 10);
  if (!hours_s.empty()) work_hours = std::atof(hours_s.c_str());
  if (!every_s.empty()) snapshot_every = std::atof(every_s.c_str());
  if (!seed_s.empty()) seed = std::strtoull(seed_s.c_str(), nullptr, 10);
  if (port < 0 || port > 65535 || machines == 0 || jobs == 0 ||
      !(work_hours > 0.0) || !(snapshot_every > 0.0)) {
    return usage();
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // The park: a synthetic Condor pool whose ground-truth laws drive the
  // volatility (no fitting detour — harvestd shows the live fleet, not the
  // model-selection pipeline).
  trace::PoolSpec pool_spec;
  pool_spec.machine_count = machines;
  pool_spec.durations_per_machine = 60;
  pool_spec.seed = seed;
  std::vector<condor::TimelinePool::MachineSpec> specs;
  specs.reserve(machines);
  for (auto& m : trace::generate_pool(pool_spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = std::move(m.ground_truth);
    specs.push_back(std::move(s));
  }

  condor::PoolSimConfig cfg;
  cfg.job_count = jobs;
  cfg.work_per_job_s = work_hours * 3600.0;
  cfg.snapshot_every_s = snapshot_every;
  if (!family_s.empty()) {
    try {
      cfg.family = core::model_family_from_string(family_s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harvestd: %s\n", e.what());
      return 2;
    }
  }
  if (server_opts.any()) {
    cfg.fleet = server_opts.fleet_config();
  } else {
    server::FleetConfig fc;
    fc.shards = 4;
    cfg.fleet = fc;
  }
  for (const auto& w : server_opts.warnings()) {
    std::fprintf(stderr, "harvestd: warning: %s\n", w.c_str());
  }

  auto& reg = obs::default_registry();
  reg.describe("harvestd.iterations",
               "Completed simulation iterations since startup.");
  reg.describe("harvestd.sim_seconds",
               "Cumulative simulated seconds across iterations.");
  reg.describe("harvestd.last_makespan_s",
               "Makespan of the most recent simulation (simulated s).");
  reg.describe("harvestd.last_network_mb",
               "Network traffic of the most recent simulation (MB).");
  auto& iterations = reg.counter("harvestd.iterations");
  auto& sim_seconds = reg.gauge("harvestd.sim_seconds");
  auto& last_makespan = reg.gauge("harvestd.last_makespan_s");
  auto& last_network = reg.gauge("harvestd.last_network_mb");

  obs::SnapshotSeries series(snapshot_every);
  obs::ExporterEndpoints endpoints(reg, series);
  obs::HttpServer http(endpoints.handler());
  try {
    http.bind(static_cast<std::uint16_t>(port));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestd: %s\n", e.what());
    return 1;
  }
  http.start();
  // CI parses this line to learn the ephemeral port; keep it first and
  // flushed.
  std::printf("harvestd: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(http.port()));
  std::fflush(stdout);

  double sim_clock_s = 0.0;
  std::uint64_t iter = 0;
  while (!g_stop.load()) {
    if (once && iter >= 1) {
      // Smoke mode: the one simulation is done; keep serving until a
      // signal arrives so the scraper can take its time.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    cfg.seed = seed + iter;
    condor::PoolSimResult res;
    try {
      res = condor::run_pool_simulation(specs, cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harvestd: simulation failed: %s\n", e.what());
      return 1;
    }
    ++iter;
    iterations.add();
    sim_clock_s += res.makespan_s;
    sim_seconds.set(sim_clock_s);
    last_makespan.set(res.makespan_s);
    last_network.set(res.total_moved_mb());
    series.sample(sim_clock_s, reg);
    endpoints.set_ready(true);
    std::fprintf(stderr,
                 "harvestd: iteration %llu: %zu/%zu jobs, makespan %.1f h, "
                 "network %.1f GB, %zu timeline frames\n",
                 static_cast<unsigned long long>(iter), res.finished_count(),
                 res.jobs.size(), res.makespan_s / 3600.0,
                 res.total_moved_mb() / 1024.0, res.timeline.size());
  }
  http.stop();
  std::fprintf(stderr, "harvestd: stopped after %llu iterations\n",
               static_cast<unsigned long long>(iter));
  return 0;
}
