// Explore how the four availability models schedule checkpoints for the
// same machine: fit each family to one history, print the first intervals
// of each schedule side by side, and show the expected efficiency the
// Markov model predicts — the paper's §3.5 machinery made tangible.
//
// Usage:
//   ./schedule_explorer [checkpoint_cost_s] [recovery_cost_s]
// Defaults: 110 110 (campus-LAN 500 MB transfer).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;
  const double c = argc > 1 ? std::atof(argv[1]) : 110.0;
  const double r = argc > 2 ? std::atof(argv[2]) : c;
  if (c < 0.0 || r < 0.0) {
    std::fprintf(stderr, "costs must be >= 0\n");
    return 1;
  }

  // One heavy-tailed machine history, 25 observations (the paper's training
  // window).
  const auto history =
      trace::sample_trace(dist::Weibull(0.43, 3409.0), 25, 11, "explorer");

  core::IntervalCosts costs;
  costs.checkpoint = c;
  costs.recovery = r;
  std::printf("checkpoint C=%.0f s, recovery R=%.0f s, training n=%zu\n\n",
              c, r, history.size());

  // Build one schedule per family.
  std::vector<core::CheckpointSchedule> schedules;
  std::vector<std::string> names;
  for (core::ModelFamily f : core::paper_families()) {
    try {
      schedules.push_back(
          core::Planner::plan(history.durations, f, costs));
      names.push_back(core::to_string(f));
    } catch (const std::exception& e) {
      std::printf("could not fit %s: %s\n", core::to_string(f).c_str(),
                  e.what());
    }
  }

  util::TextTable table({"interval", "exp T_opt", "weib T_opt",
                         "hyper2 T_opt", "hyper3 T_opt"});
  for (std::size_t i = 0; i < 10; ++i) {
    std::vector<std::string> row = {std::to_string(i)};
    for (auto& s : schedules) {
      row.push_back(util::format_fixed(s.entry(i).work_time, 0));
    }
    while (row.size() < 5) row.push_back("-");
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("model-predicted efficiency of the first interval:\n");
  for (std::size_t s = 0; s < schedules.size(); ++s) {
    std::printf("  %-12s %.3f\n", names[s].c_str(),
                schedules[s].entry(0).efficiency);
  }
  std::printf(
      "\nThe exponential column is constant (memoryless); the others adapt\n"
      "to uptime — the essence of the paper's aperiodic schedules.\n");
  return 0;
}
