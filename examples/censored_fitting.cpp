// Right-censoring demo: what a short monitoring window does to availability
// fits, and how to correct it.
//
// A monitor that only ran for `window` seconds records every longer
// occupancy as "still running at window end" — a right-censored value. This
// example fits a Weibull three ways (full data / naive on censored data /
// censoring-aware) and compares against the nonparametric Kaplan–Meier
// curve.
//
// Usage: ./censored_fitting [window_seconds]   (default 3000)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harvest/dist/weibull.hpp"
#include "harvest/fit/censored.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/stats/kaplan_meier.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;
  const double window = argc > 1 ? std::atof(argv[1]) : 3000.0;
  if (window <= 0.0) {
    std::fprintf(stderr, "window must be > 0\n");
    return 1;
  }

  // Ground truth: the paper's exemplar machine.
  const dist::Weibull truth(0.43, 3409.0);
  numerics::Rng rng(2024);
  std::vector<double> lifetimes(4000);
  for (auto& x : lifetimes) x = truth.sample(rng);

  const auto censored = fit::CensoredSample::censor_at(lifetimes, window);
  std::printf("ground truth: %s\n", truth.describe().c_str());
  std::printf("window %.0f s censors %zu of %zu observations\n\n", window,
              censored.size() - censored.event_count(), censored.size());

  const auto full = fit::fit_weibull_mle(lifetimes);
  const auto naive = fit::fit_weibull_mle(censored.values);
  const auto aware = fit::fit_weibull_censored(censored);

  util::TextTable table({"fit", "shape", "scale", "mean avail (s)"});
  const auto add = [&](const char* name, const dist::Weibull& w) {
    table.add_row({name, util::format_fixed(w.shape(), 3),
                   util::format_fixed(w.scale(), 0),
                   util::format_fixed(w.mean(), 0)});
  };
  add("full data", full);
  add("naive on censored", naive);
  add("censoring-aware", aware);
  std::printf("%s\n", table.render().c_str());

  // Nonparametric cross-check: survival at a few horizons.
  stats::KaplanMeier km(censored.values, censored.observed);
  std::printf("survival cross-check (KM is model-free):\n");
  std::printf("%-10s %-8s %-8s %-8s %-8s\n", "t (s)", "truth", "KM",
              "naive", "aware");
  for (double t : {200.0, 800.0, 0.5 * window, 0.9 * window}) {
    std::printf("%-10.0f %-8.3f %-8.3f %-8.3f %-8.3f\n", t,
                truth.survival(t), km.survival(t), naive.survival(t),
                aware.survival(t));
  }
  std::printf(
      "\nThe naive fit underestimates survival (it thinks censored machines\n"
      "died); the censoring-aware fit tracks the Kaplan-Meier curve.\n");
  return 0;
}
