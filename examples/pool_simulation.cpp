// Simulate a whole cycle-harvesting pool: generate (or load) machine
// traces, fit every model family per machine, and compare time efficiency
// and network load across families — a miniature of the paper's §5.1 study
// you can point at your own monitor data.
//
// Usage:
//   ./pool_simulation                      # synthetic 60-machine pool
//   ./pool_simulation traces.csv          # your own monitor CSV
//   ./pool_simulation traces.csv 250     # custom checkpoint cost (s)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/io.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;

  std::vector<trace::AvailabilityTrace> traces;
  if (argc > 1) {
    traces = trace::load_traces_csv(argv[1]);
    std::printf("loaded %zu machines from %s\n", traces.size(), argv[1]);
  } else {
    trace::PoolSpec spec;
    spec.machine_count = 60;
    spec.durations_per_machine = 100;
    spec.seed = 99;
    for (auto& m : trace::generate_pool(spec)) {
      traces.push_back(std::move(m.trace));
    }
    std::printf("generated a synthetic pool of %zu machines (seed %llu)\n",
                traces.size(),
                static_cast<unsigned long long>(spec.seed));
  }
  const double cost = argc > 2 ? std::atof(argv[2]) : 110.0;
  std::printf("checkpoint = recovery = %.0f s, 500 MB per transfer, "
              "train = first 25\n\n", cost);

  sim::ExperimentConfig cfg;
  cfg.checkpoint_cost_s = cost;

  util::TextTable table({"family", "machines", "mean eff", "eff 95% CI",
                         "mean MB", "MB/hour"});
  for (core::ModelFamily f : core::paper_families()) {
    const auto res = sim::run_trace_experiment(traces, f, cfg);
    if (res.machines.size() < 2) {
      std::printf("%s: not enough fittable machines\n",
                  core::to_string(f).c_str());
      continue;
    }
    const auto effs = res.efficiencies();
    const auto ci = stats::mean_confidence_interval(effs);
    double mb = 0.0;
    double hours = 0.0;
    for (const auto& m : res.machines) {
      mb += m.sim.network_mb;
      hours += m.sim.total_time / 3600.0;
    }
    table.add_row({core::to_string(f), std::to_string(res.machines.size()),
                   util::format_fixed(ci.mean, 3),
                   "+-" + util::format_fixed(ci.half_width, 3),
                   util::format_fixed(mb / res.machines.size(), 0),
                   util::format_fixed(mb / hours, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expect: similar efficiency columns, but markedly lower MB for the\n"
      "hyperexponential families — the paper's central observation.\n");
  return 0;
}
