// harvestctl — command-line front end to the library's full pipeline.
//
//   harvestctl generate <out.csv> [machines] [durations] [seed]
//       Synthesize a Condor-like pool and write its monitor traces.
//   harvestctl summarize <traces.csv>
//       Pool-level availability statistics.
//   harvestctl fit <traces.csv> <machine_id>
//       Fit the full model menu to one machine and rank the fits.
//   harvestctl plan <traces.csv> <machine_id> <family> <C> [R]
//       Print the checkpoint schedule a placed job would follow.
//   harvestctl simulate <traces.csv> <family> <C>
//       Trace-driven simulation across the pool (efficiency + network).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harvest/core/makespan.hpp"
#include "harvest/core/prediction.hpp"
#include "harvest/fit/model_select.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/io.hpp"
#include "harvest/trace/statistics.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  harvestctl generate <out.csv> [machines] [durations] [seed]\n"
      "  harvestctl summarize <traces.csv>\n"
      "  harvestctl fit <traces.csv> <machine_id>\n"
      "  harvestctl plan <traces.csv> <machine_id> <family> <C> [R]\n"
      "  harvestctl simulate <traces.csv> <family> <C>\n"
      "  harvestctl predict <traces.csv> <machine_id> <family> <C>\n"
      "  harvestctl makespan <traces.csv> <machine_id> <family> <C> "
      "<work_hours>\n"
      "families: exponential weibull hyperexp2 hyperexp3 lognormal gamma "
      "auto\n");
  return 2;
}

const trace::AvailabilityTrace* find_machine(
    const std::vector<trace::AvailabilityTrace>& traces,
    const std::string& id) {
  for (const auto& t : traces) {
    if (t.machine_id == id) return &t;
  }
  return nullptr;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) return usage();
  trace::PoolSpec spec;
  if (argc > 3) spec.machine_count = std::strtoul(argv[3], nullptr, 10);
  if (argc > 4) {
    spec.durations_per_machine = std::strtoul(argv[4], nullptr, 10);
  }
  if (argc > 5) spec.seed = std::strtoull(argv[5], nullptr, 10);
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  trace::save_traces_csv(argv[2], traces);
  std::printf("wrote %zu machines x %zu durations to %s (seed %llu)\n",
              spec.machine_count, spec.durations_per_machine, argv[2],
              static_cast<unsigned long long>(spec.seed));
  return 0;
}

int cmd_summarize(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto pool = trace::summarize_pool(traces);
  std::printf("machines:              %zu\n", pool.machine_count);
  std::printf("total observations:    %zu\n", pool.total_observations);
  std::printf("mean availability:     %.0f s (median of machine means %.0f)\n",
              pool.mean_of_means_s, pool.median_of_means_s);
  std::printf("mean cv:               %.2f\n", pool.mean_cv);
  std::printf("heavy-tailed machines: %.0f%% (cv > 1)\n",
              100.0 * pool.heavy_tailed_fraction);
  return 0;
}

int cmd_fit(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  fit::ModelMenu menu;
  menu.lognormal = true;
  menu.gamma = true;
  const auto fits = fit::fit_all(t->durations, menu);
  util::TextTable table({"family", "parameters", "logLik", "AIC", "KS"});
  for (const auto& f : fits) {
    table.add_row({f.family, f.model->describe(),
                   util::format_fixed(f.log_likelihood, 1),
                   util::format_fixed(f.aic, 1),
                   util::format_fixed(f.ks_statistic, 3)});
  }
  std::printf("%s", table.render().c_str());
  if (!fits.empty()) {
    std::printf("best by AIC: %s\n", fit::best_by_aic(fits).family.c_str());
  }
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = argc > 6 ? std::atof(argv[6]) : costs.checkpoint;
  auto schedule = core::Planner::plan(t->durations, family, costs);
  std::printf("machine %s, model %s, C=%.0f R=%.0f\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint,
              costs.recovery);
  util::TextTable table({"interval", "uptime (s)", "T_opt (s)", "pred. eff"});
  for (std::size_t i = 0; i < 10; ++i) {
    const auto e = schedule.entry(i);
    table.add_row({std::to_string(i), util::format_fixed(e.age, 0),
                   util::format_fixed(e.work_time, 0),
                   util::format_fixed(e.efficiency, 3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto family = core::model_family_from_string(argv[3]);
  sim::ExperimentConfig cfg;
  cfg.checkpoint_cost_s = std::atof(argv[4]);
  const auto res = sim::run_trace_experiment(traces, family, cfg);
  if (res.machines.size() < 2) {
    std::fprintf(stderr, "not enough fittable machines\n");
    return 1;
  }
  const auto ci = stats::mean_confidence_interval(res.efficiencies());
  std::printf("model %s, C=R=%.0f s, %zu machines (%zu skipped)\n",
              core::to_string(family).c_str(), cfg.checkpoint_cost_s,
              res.machines.size(), res.skipped.size());
  std::printf("mean efficiency: %.3f +- %.3f (95%% CI)\n", ci.mean,
              ci.half_width);
  std::printf("mean network:    %.0f MB per machine\n",
              stats::mean_of(res.network_mbs()));
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = costs.checkpoint;
  auto model = core::Planner::fit_model(t->durations, family);
  const core::MarkovModel markov(model, costs);
  const core::CheckpointOptimizer opt(markov);
  const double t_opt = opt.optimize(0.0).work_time;
  const auto p = core::predict_steady_state(markov, t_opt, 0.0);
  std::printf("machine %s, model %s, C=R=%.0f s\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint);
  std::printf("T_opt:                 %.0f s\n", p.work_time);
  std::printf("expected efficiency:   %.3f\n", p.efficiency);
  std::printf("recovery visits/intvl: %.3f\n", p.recovery_visits);
  std::printf("transfers per hour:    %.2f\n", p.transfers_per_hour);
  std::printf("network (500 MB ea.):  %.0f MB/hour (upper bound)\n",
              p.mb_per_hour);
  return 0;
}

int cmd_makespan(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = costs.checkpoint;
  const double work_s = std::atof(argv[6]) * 3600.0;
  auto schedule = core::Planner::plan(t->durations, family, costs);
  const auto est = core::estimate_makespan(schedule, work_s);
  std::printf("machine %s, model %s, C=R=%.0f s, work %.1f h\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint,
              work_s / 3600.0);
  std::printf("expected completion:   %.1f h\n",
              est.expected_time_s / 3600.0);
  std::printf("expected efficiency:   %.3f\n", est.efficiency());
  std::printf("checkpoint intervals:  %zu\n", est.intervals);
  std::printf("expected network:      %.0f MB (upper bound)\n",
              est.expected_mb);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "summarize") return cmd_summarize(argc, argv);
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (cmd == "simulate") return cmd_simulate(argc, argv);
    if (cmd == "predict") return cmd_predict(argc, argv);
    if (cmd == "makespan") return cmd_makespan(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestctl: %s\n", e.what());
    return 1;
  }
  return usage();
}
