// harvestctl — command-line front end to the library's full pipeline.
//
//   harvestctl generate <out.csv> [machines] [durations] [seed]
//       Synthesize a Condor-like pool and write its monitor traces.
//   harvestctl summarize <traces.csv>
//       Pool-level availability statistics.
//   harvestctl fit <traces.csv> <machine_id>
//       Fit the full model menu to one machine and rank the fits.
//   harvestctl plan <traces.csv> <machine_id> <family> <C> [R]
//       Print the checkpoint schedule a placed job would follow.
//   harvestctl simulate <traces.csv> <family> <C>
//       Trace-driven simulation across the pool (efficiency + network).
//   harvestctl pool <traces.csv> <family> <jobs> <work_hours>
//       Whole-pool emulation (negotiation, placements, evictions). With any
//       --server-* / --fleet-* flag, every transfer contends for a fleet of
//       checkpoint servers (1 shard unless --fleet-shards says otherwise).
//       --timeline <out.csv> dumps the per-interval fleet telemetry
//       (cadence --snapshot-every seconds, default 600).
//       --trace-spans <out> dumps the causal span tree of every transfer
//       (JSONL when the path ends in .jsonl, Chrome trace otherwise).
//       --predict-p/--predict-r/--predict-window attach a fault-prediction
//       oracle (precision, recall, window seconds) and enable proactive
//       checkpointing on its alerts.
//
// Global flags (any subcommand):
//   --metrics-json <path>   write the default metrics registry snapshot
//                           (counters, gauges, histograms) after the command
//   --metrics-prom <path>   same snapshot in Prometheus text exposition
//                           format (node_exporter textfile collector style)
//   --trace-json <path>     write structured events from the default tracer
//                           in Chrome trace_event format (chrome://tracing)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/core/makespan.hpp"
#include "harvest/core/prediction.hpp"
#include "harvest/fit/model_select.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/cli_options.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/io.hpp"
#include "harvest/trace/statistics.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

/// Set when --metrics-json / --trace-json is present: subcommands that run
/// the pipeline attach the default registry/tracer to their configs.
bool g_observing = false;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  harvestctl generate <out.csv> [machines] [durations] [seed]\n"
      "  harvestctl summarize <traces.csv>\n"
      "  harvestctl fit <traces.csv> <machine_id>\n"
      "  harvestctl plan <traces.csv> <machine_id> <family> <C> [R]\n"
      "  harvestctl simulate <traces.csv> <family> <C>\n"
      "  harvestctl predict <traces.csv> <machine_id> <family> <C>\n"
      "  harvestctl makespan <traces.csv> <machine_id> <family> <C> "
      "<work_hours>\n"
      "  harvestctl pool <traces.csv> <family> <jobs> <work_hours>\n"
      "families: exponential weibull hyperexp2 hyperexp3 lognormal gamma "
      "auto\n"
      "global flags:\n"
      "  --metrics-json <path>  dump the metrics registry snapshot as JSON\n"
      "  --metrics-prom <path>  dump the snapshot as Prometheus text\n"
      "  --trace-json <path>    dump structured events as a Chrome trace\n"
      "pool flags:\n"
      "  --timeline <path>      write the per-interval fleet telemetry CSV\n"
      "  --snapshot-every <s>   telemetry cadence in simulated seconds\n"
      "                         (default 600 when --timeline is given)\n"
      "  --trace-spans <path>   write the causal transfer spans (JSONL when\n"
      "                         the path ends in .jsonl, Chrome trace else)\n"
      "  --predict-p <p>        fault-predictor precision in (0,1]\n"
      "  --predict-r <r>        fault-predictor recall in [0,1]\n"
      "  --predict-window <s>   prediction window in seconds (default 1800;\n"
      "                         any --predict-* flag enables the predictor)\n"
      "  --profile-json <path>  run under the phase profiler and write the\n"
      "                         phase tree (self times + quantiles) as JSON\n"
      "  --profile-trace <path> also capture per-scope events and write a\n"
      "                         Chrome-trace flame view of the run\n"
      "%s",
      server::CliOptions::help_text().c_str());
  return 2;
}

/// Strip `--<name> <path>` / `--<name>=<path>` from argv; "" if absent.
std::string strip_path_flag(int& argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  std::string path;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      path = argv[i] + eq.size();
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return path;
}

const trace::AvailabilityTrace* find_machine(
    const std::vector<trace::AvailabilityTrace>& traces,
    const std::string& id) {
  for (const auto& t : traces) {
    if (t.machine_id == id) return &t;
  }
  return nullptr;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) return usage();
  trace::PoolSpec spec;
  if (argc > 3) spec.machine_count = std::strtoul(argv[3], nullptr, 10);
  if (argc > 4) {
    spec.durations_per_machine = std::strtoul(argv[4], nullptr, 10);
  }
  if (argc > 5) spec.seed = std::strtoull(argv[5], nullptr, 10);
  std::vector<trace::AvailabilityTrace> traces;
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  trace::save_traces_csv(argv[2], traces);
  std::printf("wrote %zu machines x %zu durations to %s (seed %llu)\n",
              spec.machine_count, spec.durations_per_machine, argv[2],
              static_cast<unsigned long long>(spec.seed));
  return 0;
}

int cmd_summarize(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto pool = trace::summarize_pool(traces);
  std::printf("machines:              %zu\n", pool.machine_count);
  std::printf("total observations:    %zu\n", pool.total_observations);
  std::printf("mean availability:     %.0f s (median of machine means %.0f)\n",
              pool.mean_of_means_s, pool.median_of_means_s);
  std::printf("mean cv:               %.2f\n", pool.mean_cv);
  std::printf("heavy-tailed machines: %.0f%% (cv > 1)\n",
              100.0 * pool.heavy_tailed_fraction);
  return 0;
}

int cmd_fit(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  fit::ModelMenu menu;
  menu.lognormal = true;
  menu.gamma = true;
  const auto fits = fit::fit_all(t->durations, menu);
  util::TextTable table({"family", "parameters", "logLik", "AIC", "KS"});
  for (const auto& f : fits) {
    table.add_row({f.family, f.model->describe(),
                   util::format_fixed(f.log_likelihood, 1),
                   util::format_fixed(f.aic, 1),
                   util::format_fixed(f.ks_statistic, 3)});
  }
  std::printf("%s", table.render().c_str());
  if (!fits.empty()) {
    std::printf("best by AIC: %s\n", fit::best_by_aic(fits).family.c_str());
  }
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = argc > 6 ? std::atof(argv[6]) : costs.checkpoint;
  auto schedule = core::Planner::plan(t->durations, family, costs);
  std::printf("machine %s, model %s, C=%.0f R=%.0f\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint,
              costs.recovery);
  util::TextTable table({"interval", "uptime (s)", "T_opt (s)", "pred. eff"});
  for (std::size_t i = 0; i < 10; ++i) {
    const auto e = schedule.entry(i);
    table.add_row({std::to_string(i), util::format_fixed(e.age, 0),
                   util::format_fixed(e.work_time, 0),
                   util::format_fixed(e.efficiency, 3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto family = core::model_family_from_string(argv[3]);
  sim::ExperimentConfig cfg;
  cfg.checkpoint_cost_s = std::atof(argv[4]);
  if (g_observing) {
    cfg.metrics = &obs::default_registry();
    cfg.job.tracer = &obs::default_tracer();
  }
  const auto res = sim::run_trace_experiment(traces, family, cfg);
  if (res.machines.size() < 2) {
    std::fprintf(stderr, "not enough fittable machines\n");
    return 1;
  }
  const auto ci = stats::mean_confidence_interval(res.efficiencies());
  std::printf("model %s, C=R=%.0f s, %zu machines (%zu skipped)\n",
              core::to_string(family).c_str(), cfg.checkpoint_cost_s,
              res.machines.size(), res.skipped.size());
  std::printf("mean efficiency: %.3f +- %.3f (95%% CI)\n", ci.mean,
              ci.half_width);
  std::printf("mean network:    %.0f MB per machine\n",
              stats::mean_of(res.network_mbs()));
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = costs.checkpoint;
  auto model = core::Planner::fit_model(t->durations, family);
  const core::MarkovModel markov(model, costs);
  const core::CheckpointOptimizer opt(markov);
  const double t_opt = opt.optimize(0.0).work_time;
  const auto p = core::predict_steady_state(markov, t_opt, 0.0);
  std::printf("machine %s, model %s, C=R=%.0f s\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint);
  std::printf("T_opt:                 %.0f s\n", p.work_time);
  std::printf("expected efficiency:   %.3f\n", p.efficiency);
  std::printf("recovery visits/intvl: %.3f\n", p.recovery_visits);
  std::printf("transfers per hour:    %.2f\n", p.transfers_per_hour);
  std::printf("network (500 MB ea.):  %.0f MB/hour (upper bound)\n",
              p.mb_per_hour);
  return 0;
}

int cmd_pool(int argc, char** argv, const server::CliOptions& server_opts) {
  const std::string timeline_path = strip_path_flag(argc, argv, "timeline");
  const std::string every_str = strip_path_flag(argc, argv, "snapshot-every");
  const std::string spans_path = strip_path_flag(argc, argv, "trace-spans");
  const std::string predict_p = strip_path_flag(argc, argv, "predict-p");
  const std::string predict_r = strip_path_flag(argc, argv, "predict-r");
  const std::string predict_w = strip_path_flag(argc, argv, "predict-window");
  const std::string profile_path = strip_path_flag(argc, argv, "profile-json");
  const std::string profile_trace =
      strip_path_flag(argc, argv, "profile-trace");
  if (argc < 6) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto family = core::model_family_from_string(argv[3]);
  condor::PoolSimConfig cfg;
  cfg.job_count = std::strtoul(argv[4], nullptr, 10);
  cfg.work_per_job_s = std::atof(argv[5]) * 3600.0;
  cfg.family = family;
  cfg.seed = 31;
  if (!every_str.empty()) {
    cfg.hooks.snapshot_every_s = std::atof(every_str.c_str());
  } else if (!timeline_path.empty()) {
    cfg.hooks.snapshot_every_s = 600.0;  // --timeline implies a default cadence
  }
  if (!timeline_path.empty() && !(cfg.hooks.snapshot_every_s > 0.0)) {
    std::fprintf(stderr, "harvestctl: --timeline needs a positive "
                 "--snapshot-every\n");
    return 2;
  }
  if (!predict_p.empty() || !predict_r.empty() || !predict_w.empty()) {
    predict::PredictorConfig pc;
    if (!predict_p.empty()) pc.precision = std::atof(predict_p.c_str());
    if (!predict_r.empty()) pc.recall = std::atof(predict_r.c_str());
    if (!predict_w.empty()) pc.window_s = std::atof(predict_w.c_str());
    pc.validate();  // invalid values surface as a CLI error in main()
    cfg.scenario.predictor = pc;
  }
  obs::SpanStore span_store;
  if (!spans_path.empty()) cfg.hooks.spans = &span_store;
  std::unique_ptr<obs::prof::PhaseProfiler> profiler;
  if (!profile_path.empty() || !profile_trace.empty()) {
    obs::prof::PhaseProfilerOptions popts;
    popts.capture_events = !profile_trace.empty();
    profiler = std::make_unique<obs::prof::PhaseProfiler>(popts);
    cfg.hooks.profiler = profiler.get();
  }

  // The pool emulation needs a generating law per machine; fit one from
  // each machine's monitor history (Weibull captures the pool's shape).
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (const auto& t : traces) {
    condor::TimelinePool::MachineSpec s;
    s.id = t.machine_id;
    try {
      s.availability_law =
          core::Planner::fit_model(t.durations, core::ModelFamily::kWeibull);
    } catch (const std::exception&) {
      continue;  // too few observations to characterize this machine
    }
    machines.push_back(std::move(s));
  }
  if (machines.empty()) {
    std::fprintf(stderr, "no fittable machines in %s\n", argv[2]);
    return 1;
  }

  condor::apply_cli_options(cfg, server_opts);
  if (g_observing) cfg.hooks.tracer = &obs::default_tracer();
  // Resolve engine/scenario up front: surfaces every warning (deprecated
  // shorthands, ignored tuning, fleet adjustments) and the engine that will
  // actually run.
  const auto validation = cfg.validate();
  for (const auto& w : validation.warnings) {
    std::fprintf(stderr, "harvestctl: warning: %s\n", w.c_str());
  }

  const auto res = condor::run_pool_simulation(machines, cfg);
  std::printf("pool of %zu machines, %zu jobs x %.1f h, model %s, engine "
              "%s\n",
              machines.size(), cfg.job_count, cfg.work_per_job_s / 3600.0,
              core::to_string(family).c_str(),
              condor::to_string(res.engine).c_str());
  std::printf("finished:        %zu/%zu\n", res.finished_count(),
              res.jobs.size());
  std::printf("mean completion: %.1f h\n", res.mean_completion_s() / 3600.0);
  std::printf("makespan:        %.1f h\n", res.makespan_s / 3600.0);
  std::printf("network:         %.1f GB\n", res.total_moved_mb() / 1024.0);
  std::printf("evictions:       %zu\n", res.total_evictions());
  std::printf("lost work:       %.1f h\n", res.total_lost_work_s() / 3600.0);
  if (res.predictor_enabled) {
    std::printf("predictor:       %llu events, observed p %.2f / r %.2f "
                "(%llu false alerts, %llu missed)\n",
                static_cast<unsigned long long>(res.predictor.events),
                res.predictor.observed_precision(),
                res.predictor.observed_recall(),
                static_cast<unsigned long long>(res.predictor.false_alerts),
                static_cast<unsigned long long>(res.predictor.missed));
    std::printf("proactive ckpts: %zu\n", res.total_proactive_checkpoints());
  }
  if (res.server_enabled) {
    const auto& fc = *cfg.scenario.fleet;
    const auto effective = fc.validate().effective;
    std::printf("server fleet [%zu x %s, routing %s, %zu slots, %.0f MB/s "
                "each]:\n",
                fc.shards, server::to_string(effective.policy).c_str(),
                server::to_string(fc.routing).c_str(), effective.slots,
                effective.capacity_mbps);
    std::printf("  transfers:     %llu submitted, %llu completed, %llu "
                "interrupted, %llu rejected\n",
                static_cast<unsigned long long>(res.server.submitted),
                static_cast<unsigned long long>(res.server.completed),
                static_cast<unsigned long long>(res.server.interrupted),
                static_cast<unsigned long long>(res.server.rejected));
    std::printf("  mean wait:     %.1f s (peak queue %zu, peak active %zu)\n",
                res.server.mean_wait_s(), res.server.peak_queue_depth,
                res.server.peak_active);
    const auto& ckpt = res.server.of(server::TransferKind::kCheckpoint);
    const auto& rec = res.server.of(server::TransferKind::kRecovery);
    std::printf("  checkpoint:    %llu submitted, mean wait %.1f s\n",
                static_cast<unsigned long long>(ckpt.submitted),
                ckpt.mean_wait_s());
    std::printf("  recovery:      %llu submitted, mean wait %.1f s\n",
                static_cast<unsigned long long>(rec.submitted),
                rec.mean_wait_s());
    if (res.predictor_enabled) {
      const auto& pro = res.server.of(server::TransferKind::kProactive);
      std::printf("  proactive:     %llu submitted, mean wait %.1f s\n",
                  static_cast<unsigned long long>(pro.submitted),
                  pro.mean_wait_s());
    }
    if (fc.shards > 1) {
      std::printf("  imbalance:     %.2fx (max shard MB / mean shard MB)\n",
                  res.fleet.imbalance_ratio());
    }
  }
  if (!timeline_path.empty()) {
    condor::write_timeline_csv(timeline_path, res.timeline);
    std::printf("timeline:        %zu frames x %.0f s -> %s\n",
                res.timeline.size(), cfg.hooks.snapshot_every_s,
                timeline_path.c_str());
  }
  if (!spans_path.empty()) {
    const std::string suffix = ".jsonl";
    const bool jsonl =
        spans_path.size() >= suffix.size() &&
        spans_path.compare(spans_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0;
    if (jsonl) {
      span_store.write_jsonl(spans_path);
    } else {
      span_store.write_chrome_trace(spans_path);
    }
    std::printf("spans:           %llu recorded -> %s (%s)\n",
                static_cast<unsigned long long>(span_store.recorded()),
                spans_path.c_str(), jsonl ? "jsonl" : "chrome trace");
  }
  if (profiler != nullptr) {
    const auto report = profiler->report();
    if (!profile_path.empty()) {
      std::ofstream out(profile_path);
      out << report.to_json() << '\n';
      std::printf("profile:         %zu phase rows, conservation %s -> %s\n",
                  report.phases.size(), report.conservation_ok ? "ok" : "VIOLATED",
                  profile_path.c_str());
    }
    if (!profile_trace.empty()) {
      profiler->write_chrome_trace(profile_trace);
      std::printf("flame trace:     -> %s\n", profile_trace.c_str());
    }
  }
  return 0;
}

int cmd_makespan(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto traces = trace::load_traces_csv(argv[2]);
  const auto* t = find_machine(traces, argv[3]);
  if (t == nullptr) {
    std::fprintf(stderr, "no machine '%s' in %s\n", argv[3], argv[2]);
    return 1;
  }
  const auto family = core::model_family_from_string(argv[4]);
  core::IntervalCosts costs;
  costs.checkpoint = std::atof(argv[5]);
  costs.recovery = costs.checkpoint;
  const double work_s = std::atof(argv[6]) * 3600.0;
  auto schedule = core::Planner::plan(t->durations, family, costs);
  const auto est = core::estimate_makespan(schedule, work_s);
  std::printf("machine %s, model %s, C=R=%.0f s, work %.1f h\n", argv[3],
              core::to_string(family).c_str(), costs.checkpoint,
              work_s / 3600.0);
  std::printf("expected completion:   %.1f h\n",
              est.expected_time_s / 3600.0);
  std::printf("expected efficiency:   %.3f\n", est.efficiency());
  std::printf("checkpoint intervals:  %zu\n", est.intervals);
  std::printf("expected network:      %.0f MB (upper bound)\n",
              est.expected_mb);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = strip_path_flag(argc, argv, "metrics-json");
  const std::string prom_path = strip_path_flag(argc, argv, "metrics-prom");
  const std::string trace_path = strip_path_flag(argc, argv, "trace-json");
  server::CliOptions server_opts;
  try {
    server_opts = server::CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestctl: %s\n", e.what());
    return 2;
  }
  g_observing =
      !metrics_path.empty() || !prom_path.empty() || !trace_path.empty();
  if (g_observing) obs::set_timing_enabled(true);

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  int rc = 2;
  try {
    if (cmd == "generate") rc = cmd_generate(argc, argv);
    else if (cmd == "summarize") rc = cmd_summarize(argc, argv);
    else if (cmd == "fit") rc = cmd_fit(argc, argv);
    else if (cmd == "plan") rc = cmd_plan(argc, argv);
    else if (cmd == "simulate") rc = cmd_simulate(argc, argv);
    else if (cmd == "predict") rc = cmd_predict(argc, argv);
    else if (cmd == "makespan") rc = cmd_makespan(argc, argv);
    else if (cmd == "pool") {
      rc = cmd_pool(argc, argv, server_opts);
    }
    else return usage();

    // Library code instruments the default registry/tracer as it runs;
    // snapshot them once the command is done, whatever its outcome.
    if (!metrics_path.empty()) {
      obs::default_registry().write_json(metrics_path);
      std::fprintf(stderr, "harvestctl: metrics -> %s\n",
                   metrics_path.c_str());
    }
    if (!prom_path.empty()) {
      obs::default_registry().write_prometheus(prom_path);
      std::fprintf(stderr, "harvestctl: prometheus -> %s\n",
                   prom_path.c_str());
    }
    if (!trace_path.empty()) {
      obs::default_tracer().write_chrome_trace(trace_path);
      std::fprintf(stderr, "harvestctl: trace -> %s (%zu events, %llu "
                   "dropped)\n",
                   trace_path.c_str(), obs::default_tracer().size(),
                   static_cast<unsigned long long>(
                       obs::default_tracer().dropped()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "harvestctl: %s\n", e.what());
    return 1;
  }
  return rc;
}
