// Walkthrough: the contended checkpoint server, from a single transfer to
// a pool-wide simulation.
//
//   1. Drive a CheckpointServer by hand: submit a few transfers, watch them
//      share the pipe, interrupt one mid-flight (an eviction).
//   2. Compare the scheduling policies on the same burst of requests.
//   3. Flip the server on inside run_pool_simulation and see what a whole
//      pool of jobs contending for one server looks like, Chrome trace
//      included.
//
// Build & run:  cmake --build build --target checkpoint_server
//               ./build/examples/checkpoint_server [trace_out.json]
#include <cstdio>
#include <vector>

#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/server/checkpoint_server.hpp"
#include "harvest/trace/synthetic.hpp"

using namespace harvest;

namespace {

void part_one_manual_drive() {
  std::printf("--- 1. driving the server by hand ---\n");
  server::ServerConfig cfg;
  cfg.capacity_mbps = 10.0;
  cfg.slots = 2;
  server::CheckpointServer srv(cfg);

  // Two 500 MB checkpoints arrive together: both admitted, each gets half
  // the 10 MB/s pipe.
  (void)srv.submit({/*job_id=*/1, /*megabytes=*/500.0}, 0.0);
  const auto second = srv.submit({2, 500.0}, 0.0);
  // A third arrives 10 s later: both slots busy, it queues.
  const auto third = srv.submit({3, 500.0}, 10.0);
  std::printf("job 3 submit -> %s (queue depth %zu)\n",
              server::to_string(third.status).c_str(), srv.queued_count());

  // Job 2's machine is reclaimed at t = 30: pro-rated bytes are counted.
  // (Job 3 is still waiting, so job 2 shared with job 1 only: 5 MB/s for
  // 30 s = 150 of its 500 MB.)
  const auto removal = srv.remove(second.id, 30.0);
  std::printf("job 2 evicted at t=30: %.0f MB were already on the wire\n",
              removal.moved_mb);

  // Drain to completion.
  while (const auto next = srv.next_event_s()) {
    for (const auto& done : srv.advance_to(*next)) {
      std::printf(
          "job %llu finished at t=%.1f s (waited %.1f s, served %.1f s)\n",
          static_cast<unsigned long long>(done.job_id), done.finish_s,
          done.wait_s(), done.service_s());
    }
  }
  std::printf("server stats: %llu completed, %llu interrupted, %.0f MB "
              "moved\n\n",
              static_cast<unsigned long long>(srv.stats().completed),
              static_cast<unsigned long long>(srv.stats().interrupted),
              srv.stats().moved_mb);
}

void part_two_policies() {
  std::printf("--- 2. the same burst under each policy ---\n");
  for (const auto policy :
       {server::SchedulerPolicy::kFifo, server::SchedulerPolicy::kFair,
        server::SchedulerPolicy::kUrgency}) {
    server::ServerConfig cfg;
    cfg.capacity_mbps = 10.0;
    cfg.slots = 1;
    cfg.policy = policy;
    server::CheckpointServer srv(cfg);
    // Three machines checkpoint at once. Their fitted models predict very
    // different remaining availability: job 30's machine is about to die.
    (void)srv.submit({10, 200.0, /*predicted_remaining_s=*/8000.0}, 0.0);
    (void)srv.submit({20, 200.0, 3000.0}, 0.5);
    (void)srv.submit({30, 200.0, 120.0}, 1.0);
    std::printf("%-8s:", server::to_string(policy).c_str());
    while (const auto next = srv.next_event_s()) {
      for (const auto& done : srv.advance_to(*next)) {
        std::printf("  job %llu @ %.1fs",
                    static_cast<unsigned long long>(done.job_id),
                    done.finish_s);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(fifo serves in arrival order; fair shares the pipe so everyone\n"
      " finishes late together; urgency serves the dying machine first)\n\n");
}

void part_three_pool(const char* trace_path) {
  std::printf("--- 3. a pool contending for one server ---\n");
  trace::PoolSpec spec;
  spec.machine_count = 24;
  spec.durations_per_machine = 1;
  spec.seed = 20050917;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    machines.push_back(std::move(s));
  }

  obs::EventTracer tracer(0);
  condor::PoolSimConfig cfg;
  cfg.job_count = 12;
  cfg.work_per_job_s = 4.0 * 3600.0;
  cfg.seed = 7;
  cfg.hooks.tracer = &tracer;
  cfg.server = server::ServerConfig{};
  cfg.server->capacity_mbps = 12.0;
  cfg.server->slots = 3;
  cfg.server->policy = server::SchedulerPolicy::kUrgency;
  cfg.server->stagger_window_s = 20.0;
  const auto res = condor::run_pool_simulation(machines, cfg);

  std::printf("finished %zu/%zu jobs, makespan %.1f h\n",
              res.finished_count(), res.jobs.size(),
              res.makespan_s / 3600.0);
  std::printf("network: %.1f GB through the server\n",
              res.total_moved_mb() / 1024.0);
  std::printf("server: %llu transfers (%llu interrupted, %llu rejected), "
              "mean wait %.1f s, peak queue %zu\n",
              static_cast<unsigned long long>(res.server.submitted),
              static_cast<unsigned long long>(res.server.interrupted),
              static_cast<unsigned long long>(res.server.rejected),
              res.server.mean_wait_s(), res.server.peak_queue_depth);
  if (trace_path != nullptr) {
    tracer.write_chrome_trace(trace_path);
    std::printf("Chrome trace -> %s (open in chrome://tracing: one track\n"
                "per machine, plus the server's own transfer track)\n",
                trace_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  part_one_manual_drive();
  part_two_policies();
  part_three_pool(argc > 1 ? argv[1] : nullptr);
  return 0;
}
