// Quickstart: the core five-line workflow of the library.
//
//   1. You have a machine's availability history (seconds between
//      placements and evictions, e.g. from a Condor occupancy monitor).
//   2. Fit an availability model to it.
//   3. Tell the planner what a checkpoint and a recovery cost.
//   4. Get back an (aperiodic) checkpoint schedule.
//   5. Read off T_opt for each interval and the predicted efficiency.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <vector>

#include "harvest/core/planner.hpp"

int main() {
  using namespace harvest;

  // 1. Availability history: this machine usually dies fast, but sometimes
  //    survives for hours (a classic desktop pattern).
  const std::vector<double> history_s = {
      120,  340,  90,    2500, 180,  14000, 260,  75,   430,  9800,
      150,  3100, 22000, 310,  95,   1800,  640,  55,   7600, 210,
      1300, 480,  28000, 170,  880};

  // 2. Fit the model family of your choice (kAutoAic picks by AIC).
  const dist::DistributionPtr model =
      core::Planner::fit_model(history_s, core::ModelFamily::kWeibull);
  std::printf("fitted model: %s\n", model->describe().c_str());
  std::printf("mean availability: %.0f s\n\n", model->mean());

  // 3. Costs: a 500 MB checkpoint over a campus LAN takes ~110 s, and
  //    recovery reads the same data back.
  core::IntervalCosts costs;
  costs.checkpoint = 110.0;
  costs.recovery = 110.0;

  // 4. Plan.
  core::CheckpointSchedule schedule =
      core::Planner::make_schedule(model, costs);

  // 5. Use: after every committed checkpoint, work for the next entry's
  //    work_time, then checkpoint again. After an eviction, refit/replan.
  std::printf("%-8s %-12s %-12s %-10s\n", "interval", "uptime(s)",
              "T_opt(s)", "pred.eff");
  for (std::size_t i = 0; i < 8; ++i) {
    const auto e = schedule.entry(i);
    std::printf("%-8zu %-12.0f %-12.0f %-10.3f\n", i, e.age, e.work_time,
                e.efficiency);
  }
  std::printf(
      "\nNote the growing intervals: the longer the machine survives, the\n"
      "safer it looks (decreasing hazard), so checkpoints spread out.\n");
  return 0;
}
