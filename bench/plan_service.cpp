// Planner-as-a-service: what does the serving path cost, and what does the
// sharded plan cache buy at fleet scale?
//
// Three experiments:
//   1. Warm-start EM — grow one machine's stream in rounds; each round
//      refits warm (from the previous parameters) under a fixed small
//      iteration budget, then binary-searches the minimum number of
//      cold-EM iterations (quantile-block init over the same data) needed
//      to match the warm fit's log-likelihood. EM's log-likelihood is
//      nondecreasing in the iteration count, so the search is valid.
//   2. Streaming refit throughput — observations/s and refit latency for
//      each streaming fitter family, plus the streaming-vs-batch parameter
//      agreement on the same data.
//   3. Plan cache at fleet scale — a fleet of machines drawn from a few
//      hardware classes (machines in a class share a ground-truth law)
//      trains per-machine models on a prefix of observations, then serves
//      several steady-state rounds where each machine trickles in a few
//      fresh observations, refits, and asks the shared PlanCache for a
//      plan; sweeps fleet size x quantization step and reports hit ratio,
//      distinct plans, and the overhead inflation of serving the bucket-
//      representative plan instead of re-optimizing exactly.
//
// Gated checks:
//   (a) warm-start EM reaches its log-likelihood in >= 5x fewer
//       iterations than cold EM needs to match it (mean over rounds and
//       seeds), without degrading vs a full-budget cold fit — both modes;
//   (b) streaming fits match batch fits on identical data (rel. 1e-4
//       exponential/weibull) — both modes;
//   (c) cache hit ratio > 0.9 in the fleet-scale cell (the largest fleet
//       at the coarse 0.1 step) — full mode only (tiny prints info);
//   (d) mean overhead inflation of cached plans <= 1% at the default
//       0.025 step in every fleet cell — both modes.
//
// Flags:
//   --json <path>   machine-readable artifact (config + cells + checks)
//   --tiny          CI smoke: small fleet, fewer rounds
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/core/planner.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/plan/plan_cache.hpp"
#include "harvest/plan/streaming_fit.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20050917;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WarmEmRound {
  std::uint64_t seed = 0;
  std::size_t samples = 0;
  int warm_iterations = 0;
  int cold_to_match = 0;  ///< min cold-EM iterations reaching warm_ll
  double warm_ll = 0.0;
  double cold_full_ll = 0.0;  ///< cold fit at its default budget
};

/// Minimum number of cold-EM iterations whose fit reaches `target_ll` on
/// `data`, searched by bisection over the iteration cap. Valid because
/// EM's log-likelihood is nondecreasing in the iteration count (capping
/// earlier can only stop the ascent sooner). Returns `cap` when even the
/// full cap falls short — a conservative lower bound for the ratio.
int cold_iters_to_reach(const std::vector<double>& data, double target_ll,
                        int cap) {
  const auto ll_at = [&](int m) {
    fit::EmOptions opts;
    opts.max_iterations = m;
    return fit::fit_hyperexp_em(data, 2, opts).log_likelihood;
  };
  if (ll_at(cap) < target_ll) return cap;
  int lo = 1;
  int hi = cap;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (ll_at(mid) >= target_ll) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

struct FleetCell {
  std::size_t machines = 0;
  double log_step = 0.0;
  std::uint64_t lookups = 0;
  plan::PlanCacheStats stats;
  double mean_inflation = 0.0;
  double max_inflation = 0.0;
  double elapsed_s = 0.0;
};

/// Relative overhead inflation of serving the cached (bucket-
/// representative) first interval instead of re-optimizing exactly under
/// the machine's true fitted model.
double plan_inflation(const dist::DistributionPtr& fitted,
                      const core::IntervalCosts& costs,
                      const plan::Plan& cached) {
  core::MarkovModel model(fitted, costs);
  core::CheckpointOptimizer optimizer(model);
  const core::OptimalInterval exact = optimizer.optimize(cached.entries[0].age_s);
  const double served =
      model.overhead_ratio(cached.entries[0].work_s, cached.entries[0].age_s);
  const double best = exact.gamma / exact.work_time;
  return served / best - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  int failures = 0;

  std::printf("=== Planner-as-a-service: streaming fits + plan cache ===\n");
  std::printf("# repro: seed %llu, %s mode\n\n",
              static_cast<unsigned long long>(kSeed),
              tiny ? "tiny" : "full");

  // ------------------------------------------------------------------
  // 1. Warm-start EM vs cold EM on a growing stream.
  //
  // The mixture is deliberately overlapping (rates 1/200 and 1/500): on
  // well-separated mixtures cold EM converges in ~20 iterations from the
  // quantile-block init and leaves a warm start nothing to win. Overlap
  // is where EM crawls — and where the serving path leans on warm refits.
  //
  // Each round grows the stream, refits warm under a fixed `warm_budget`
  // iteration cap, and bisects for the minimum cold-EM iteration count
  // that matches the warm fit's log-likelihood (minus a tiny absolute
  // slack that breaks convergence-tolerance ties). Quality guard: the
  // warm fit must also not degrade vs a cold fit run to its full default
  // budget.
  const dist::Hyperexponential truth({0.30, 0.70}, {1.0 / 200.0, 1.0 / 500.0});
  const std::size_t em_initial = tiny ? 512 : 1024;
  const std::size_t em_growth = tiny ? 32 : 64;
  const std::size_t em_rounds = tiny ? 3 : 6;
  const std::size_t em_seeds = tiny ? 2 : 3;
  const int warm_budget = 25;
  const int cold_cap = 4000;
  const double ll_slack = 1e-3;

  std::vector<WarmEmRound> em_rounds_out;
  util::TextTable em_table({"seed", "round", "n", "warm iters",
                            "cold-to-match", "ratio", "dLL vs full cold"});
  double ratio_sum = 0.0;
  bool ll_matches = true;
  for (std::size_t s = 0; s < em_seeds; ++s) {
    const std::uint64_t seed = kSeed + s;
    numerics::Rng em_rng(seed);
    plan::StreamingHyperexpOptions warm_opts;
    warm_opts.warm_max_iterations = warm_budget;
    plan::StreamingHyperexpFit warm_fit(warm_opts);
    std::vector<double> em_data;
    for (std::size_t i = 0; i < em_initial; ++i) {
      const double x = truth.sample(em_rng);
      em_data.push_back(x);
      warm_fit.observe(x);
    }
    (void)warm_fit.fit();  // cold initial fit establishes the warm state
    for (std::size_t r = 0; r < em_rounds; ++r) {
      for (std::size_t i = 0; i < em_growth; ++i) {
        const double x = truth.sample(em_rng);
        em_data.push_back(x);
        warm_fit.observe(x);
      }
      WarmEmRound round;
      round.seed = seed;
      round.samples = em_data.size();
      (void)warm_fit.fit();
      round.warm_iterations = warm_fit.last_iterations();
      round.warm_ll = warm_fit.last_log_likelihood();
      round.cold_to_match = cold_iters_to_reach(
          em_data, round.warm_ll - ll_slack, cold_cap);
      // Quality guard: warm under its tight budget may not be worse than
      // cold at the full default budget by more than 1e-4 relative.
      const fit::EmResult cold_full = fit::fit_hyperexp_em(em_data, 2);
      round.cold_full_ll = cold_full.log_likelihood;
      const double rel_dll = (round.warm_ll - round.cold_full_ll) /
                             std::fabs(round.cold_full_ll);
      if (rel_dll < -1e-4) ll_matches = false;
      const double ratio = static_cast<double>(round.cold_to_match) /
                           static_cast<double>(round.warm_iterations);
      ratio_sum += ratio;
      em_table.add_row({std::to_string(seed), std::to_string(r + 1),
                        std::to_string(round.samples),
                        std::to_string(round.warm_iterations),
                        std::to_string(round.cold_to_match),
                        util::format_fixed(ratio, 1),
                        util::format_fixed(rel_dll, 6)});
      em_rounds_out.push_back(round);
    }
  }
  const double mean_ratio =
      ratio_sum / static_cast<double>(em_rounds * em_seeds);
  std::printf("--- warm-start EM (2-phase overlapping mixture, +%zu "
              "samples/round, warm budget %d iters, cold search cap %d) "
              "---\n%s\n",
              em_growth, warm_budget, cold_cap, em_table.render().c_str());
  const bool warm_ok = mean_ratio >= 5.0 && ll_matches;
  if (!warm_ok) ++failures;
  std::printf("  warm-start speedup: %.1fx fewer iterations, "
              "log-likelihood %s (need >= 5x at equal LL: %s)\n\n",
              mean_ratio, ll_matches ? "matches" : "DEGRADED",
              warm_ok ? "ok" : "FAIL");

  // ------------------------------------------------------------------
  // 2. Streaming refit throughput + streaming-vs-batch agreement.
  const std::size_t throughput_n = tiny ? 5000 : 50000;
  const dist::Weibull wb_truth(0.52, 2400.0);
  numerics::Rng tp_rng(kSeed + 1);
  std::vector<double> tp_data;
  tp_data.reserve(throughput_n);
  for (std::size_t i = 0; i < throughput_n; ++i) {
    tp_data.push_back(wb_truth.sample(tp_rng));
  }

  util::TextTable tp_table(
      {"fitter", "observe (obs/s)", "refit (ms)", "batch rel. diff"});
  double exp_rel = 0.0;
  double wb_rel = 0.0;
  {
    plan::StreamingExponentialFit f;
    const auto t0 = Clock::now();
    for (const double x : tp_data) f.observe(x);
    const double observe_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const dist::Exponential streaming = f.fit();
    const double fit_s = seconds_since(t1);
    const dist::Exponential batch = fit::fit_exponential_mle(tp_data);
    exp_rel = std::fabs(streaming.rate() / batch.rate() - 1.0);
    tp_table.add_row(
        {"exponential",
         util::format_fixed(static_cast<double>(throughput_n) / observe_s, 0),
         util::format_fixed(fit_s * 1e3, 3),
         util::format_fixed(exp_rel, 9)});
  }
  {
    plan::StreamingWeibullFit f;
    const auto t0 = Clock::now();
    for (const double x : tp_data) f.observe(x);
    const double observe_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const dist::Weibull streaming = f.fit();
    const double fit_s = seconds_since(t1);
    const dist::Weibull batch = fit::fit_weibull_mle(tp_data);
    wb_rel = std::max(std::fabs(streaming.shape() / batch.shape() - 1.0),
                      std::fabs(streaming.scale() / batch.scale() - 1.0));
    tp_table.add_row(
        {"weibull",
         util::format_fixed(static_cast<double>(throughput_n) / observe_s, 0),
         util::format_fixed(fit_s * 1e3, 3),
         util::format_fixed(wb_rel, 9)});
  }
  {
    // Hyperexp keeps the stream; throughput is the warm refit itself.
    plan::StreamingHyperexpFit f;
    const std::size_t hyper_n = std::min<std::size_t>(throughput_n, 4096);
    for (std::size_t i = 0; i < hyper_n; ++i) f.observe(tp_data[i]);
    (void)f.fit();
    for (std::size_t i = 0; i < 64; ++i) f.observe(tp_data[i]);
    const auto t1 = Clock::now();
    (void)f.fit();
    const double fit_s = seconds_since(t1);
    tp_table.add_row({"hyperexp2 (warm)", "-",
                      util::format_fixed(fit_s * 1e3, 3),
                      "- (see warm-start gate)"});
  }
  std::printf("--- streaming refit throughput (n = %zu) ---\n%s\n",
              throughput_n, tp_table.render().c_str());
  const bool match_ok = exp_rel < 1e-4 && wb_rel < 1e-4;
  if (!match_ok) ++failures;
  std::printf("  streaming vs batch agreement: exponential %.2e, weibull "
              "%.2e (need < 1e-4: %s)\n\n",
              exp_rel, wb_rel, match_ok ? "ok" : "FAIL");

  // ------------------------------------------------------------------
  // 3. Plan cache at fleet scale: classes x machines x rounds.
  const std::size_t n_classes = 8;
  const std::vector<std::size_t> fleet_sizes =
      tiny ? std::vector<std::size_t>{64}
           : std::vector<std::size_t>{128, 512};
  const std::vector<double> log_steps = {0.025, 0.05, 0.1};
  // Each machine trains on a prefix, then serves `serve_rounds` steady-
  // state rounds: trickle in a few fresh observations, refit, look up.
  // The training lookups are the cold-start misses; the serving rounds
  // are the regime the cache exists for, where a machine's fit has
  // stabilized and drifts within (mostly) one quantization bucket.
  const std::size_t train_obs = tiny ? 160 : 240;
  const std::size_t serve_rounds = tiny ? 7 : 11;
  const std::size_t trickle_obs = 4;
  const core::IntervalCosts costs{600.0, 600.0, -1.0};

  // Hardware classes: well-separated Weibull laws spanning the paper's
  // shape/scale ranges; every machine in a class shares its law exactly,
  // so fitted parameters cluster by sampling noise alone.
  std::vector<dist::Weibull> classes;
  for (std::size_t c = 0; c < n_classes; ++c) {
    const double frac =
        static_cast<double>(c) / static_cast<double>(n_classes - 1);
    classes.emplace_back(0.35 + 0.35 * frac, 600.0 * std::pow(8.0, frac));
  }

  std::vector<FleetCell> cells;
  util::TextTable fleet_table({"machines", "log_step", "lookups", "hits",
                               "misses", "hit ratio", "plans",
                               "mean infl", "max infl", "time (s)"});
  for (const std::size_t fleet : fleet_sizes) {
    for (const double log_step : log_steps) {
      const auto t0 = Clock::now();
      plan::PlanCacheOptions copts;
      copts.log_step = log_step;
      plan::PlanCache cache(copts);

      // Per-machine streaming fitters: one training round (the cold-start
      // misses), then steady-state serving rounds where each machine
      // trickles in fresh observations, refits, and looks up again.
      std::vector<plan::StreamingWeibullFit> fitters(fleet);
      std::vector<numerics::Rng> rngs;
      rngs.reserve(fleet);
      for (std::size_t m = 0; m < fleet; ++m) {
        rngs.emplace_back(kSeed + 101 * m + static_cast<std::uint64_t>(
                                                log_step * 1e4));
      }
      FleetCell cell;
      cell.machines = fleet;
      cell.log_step = log_step;
      double inflation_sum = 0.0;
      std::uint64_t inflation_n = 0;
      for (std::size_t round = 0; round <= serve_rounds; ++round) {
        const std::size_t n_obs = round == 0 ? train_obs : trickle_obs;
        for (std::size_t m = 0; m < fleet; ++m) {
          const dist::Weibull& law = classes[m % n_classes];
          for (std::size_t i = 0; i < n_obs; ++i) {
            fitters[m].observe(law.sample(rngs[m]));
          }
          const auto fitted =
              std::make_shared<dist::Weibull>(fitters[m].fit());
          const plan::PlanCache::Result got =
              cache.lookup_or_compute(*fitted, costs);
          ++cell.lookups;
          // ε measurement on the final round, on a machine sample (the
          // optimizer re-solve is the expensive part).
          if (round == serve_rounds && m % 16 == 0) {
            const double infl = plan_inflation(fitted, costs, *got.plan);
            inflation_sum += infl;
            cell.max_inflation = std::max(cell.max_inflation, infl);
            ++inflation_n;
          }
        }
      }
      cell.stats = cache.stats();
      cell.mean_inflation =
          inflation_n > 0 ? inflation_sum / static_cast<double>(inflation_n)
                          : 0.0;
      cell.elapsed_s = seconds_since(t0);
      fleet_table.add_row(
          {std::to_string(fleet), util::format_fixed(log_step, 3),
           std::to_string(cell.lookups), std::to_string(cell.stats.hits),
           std::to_string(cell.stats.misses),
           util::format_fixed(cell.stats.hit_ratio(), 3),
           std::to_string(cell.stats.size),
           util::format_fixed(cell.mean_inflation, 5),
           util::format_fixed(cell.max_inflation, 5),
           util::format_fixed(cell.elapsed_s, 2)});
      cells.push_back(cell);
      std::fprintf(stderr, "  [plan_service] fleet=%zu step=%.3f done\n",
                   fleet, log_step);
    }
  }
  std::printf("--- plan cache: fleet x quantization (%zu classes, %zu train "
              "obs + %zu serve rounds x %zu obs/machine, C=R=%.0f s) "
              "---\n%s\n",
              n_classes, train_obs, serve_rounds, trickle_obs,
              costs.checkpoint, fleet_table.render().c_str());

  std::printf("--- checks ---\n");
  // Gate (c): the fleet-scale cell — largest fleet, coarse step — must
  // serve > 0.9 of lookups from cache. Tiny fleets are info-only (too few
  // machines per bucket for the ratio to be meaningful).
  for (const auto& cell : cells) {
    const bool is_gate_cell = !tiny && cell.machines == fleet_sizes.back() &&
                              cell.log_step == log_steps.back();
    const bool ok = cell.stats.hit_ratio() > 0.9;
    if (is_gate_cell && !ok) ++failures;
    std::printf("  fleet=%-4zu step=%.3f  hit ratio %.3f, %zu plans for "
                "%llu lookups (%s)\n",
                cell.machines, cell.log_step, cell.stats.hit_ratio(),
                cell.stats.size,
                static_cast<unsigned long long>(cell.lookups),
                is_gate_cell ? (ok ? "ok" : "FAIL")
                             : (ok ? "ok, info" : "info"));
  }
  // Gate (d): at the default step, serving the bucket representative must
  // cost < 1% extra overhead vs exact re-optimization.
  for (const auto& cell : cells) {
    if (cell.log_step != 0.025) continue;
    const bool ok = cell.mean_inflation <= 0.01;
    if (!ok) ++failures;
    std::printf("  fleet=%-4zu step=%.3f  mean overhead inflation %.5f "
                "(need <= 0.01: %s)\n",
                cell.machines, cell.log_step, cell.mean_inflation,
                ok ? "ok" : "FAIL");
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "plan_service");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config").begin_object();
    w.field("seed", std::uint64_t{kSeed});
    w.field("tiny", tiny);
    w.field("em_initial", static_cast<std::uint64_t>(em_initial));
    w.field("em_growth", static_cast<std::uint64_t>(em_growth));
    w.field("em_seeds", static_cast<std::uint64_t>(em_seeds));
    w.field("warm_budget", warm_budget);
    w.field("cold_cap", cold_cap);
    w.field("classes", static_cast<std::uint64_t>(n_classes));
    w.field("train_obs", static_cast<std::uint64_t>(train_obs));
    w.field("serve_rounds", static_cast<std::uint64_t>(serve_rounds));
    w.field("trickle_obs", static_cast<std::uint64_t>(trickle_obs));
    w.end_object();
    w.key("warm_em").begin_object();
    w.field("mean_iteration_ratio", mean_ratio);
    w.field("ll_matches", ll_matches);
    w.key("rounds").begin_array();
    for (const auto& r : em_rounds_out) {
      w.begin_object();
      w.field("seed", r.seed);
      w.field("samples", static_cast<std::uint64_t>(r.samples));
      w.field("warm_iterations", r.warm_iterations);
      w.field("cold_to_match", r.cold_to_match);
      w.field("warm_ll", r.warm_ll);
      w.field("cold_full_ll", r.cold_full_ll);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("agreement").begin_object();
    w.field("exponential_rel", exp_rel);
    w.field("weibull_rel", wb_rel);
    w.end_object();
    w.key("cells").begin_array();
    for (const auto& c : cells) {
      w.begin_object();
      w.field("machines", static_cast<std::uint64_t>(c.machines));
      w.field("log_step", c.log_step);
      w.field("lookups", c.lookups);
      w.field("hits", c.stats.hits);
      w.field("misses", c.stats.misses);
      w.field("hit_ratio", c.stats.hit_ratio());
      w.field("plans", static_cast<std::uint64_t>(c.stats.size));
      w.field("mean_inflation", c.mean_inflation);
      w.field("max_inflation", c.max_inflation);
      w.field("elapsed_s", c.elapsed_s);
      w.end_object();
    }
    w.end_array();
    w.key("checks").begin_object();
    w.field("warm_em_speedup_ok", warm_ok);
    w.field("streaming_matches_batch", match_ok);
    w.field("failures", static_cast<std::uint64_t>(failures));
    w.end_object();
    w.end_object();
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot open " + json_path);
    out << w.str() << '\n';
    std::fprintf(stderr, "  [plan_service] artifact -> %s\n",
                 json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
