// Ablation: right-censored training data (the paper's §5.3 concern made
// end-to-end). A short monitoring window right-censors the availability
// tail: occupancies still running when the monitor stops are recorded at
// the window length. We compare, as the window shrinks:
//   * the naive Weibull fit (treats censored values as failures),
//   * the censoring-aware MLE (fit_weibull_censored),
// in fitted-scale bias and in the downstream simulation metrics.
//
// Expected shape: the naive fit's scale collapses toward the window, making
// it schedule like a pessimistic exponential (more checkpoints, more
// bandwidth); the censored fit stays near the uncensored baseline.
#include <cstdio>

#include "common.hpp"
#include "harvest/fit/censored.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/trace/trace.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: right-censored training windows (Weibull fits, C=250) "
      "===\n\n");

  const auto traces = bench::standard_traces(120, 120);
  constexpr double kCost = 250.0;

  util::TextTable table({"window", "fit", "mean scale ratio", "mean eff",
                         "mean MB"});
  const std::vector<double> windows = {1e18, 7200.0, 1800.0};
  for (double window : windows) {
    for (bool aware : {false, true}) {
      if (window > 1e17 && aware) continue;  // no censoring to correct
      double scale_ratio = 0.0;
      double eff = 0.0;
      double mb = 0.0;
      int n = 0;
      for (const auto& t : traces) {
        if (t.size() < 26) continue;
        const auto split = trace::split_train_test(t, 25);
        dist::DistributionPtr model;
        double fitted_scale = 0.0;
        double baseline_scale = 0.0;
        try {
          const auto baseline = fit::fit_weibull_mle(split.train);
          baseline_scale = baseline.scale();
          if (window > 1e17) {
            model = std::make_shared<dist::Weibull>(baseline);
            fitted_scale = baseline.scale();
          } else {
            const auto cens =
                fit::CensoredSample::censor_at(split.train, window);
            const dist::Weibull w =
                aware ? fit::fit_weibull_censored(cens)
                      : fit::fit_weibull_mle(cens.values);
            fitted_scale = w.scale();
            model = std::make_shared<dist::Weibull>(w);
          }
        } catch (const std::exception&) {
          continue;
        }
        core::IntervalCosts costs;
        costs.checkpoint = kCost;
        costs.recovery = kCost;
        auto schedule = core::Planner::make_schedule(model, costs);
        const auto sim = sim::simulate_job_on_trace(split.test, schedule);
        scale_ratio += fitted_scale / baseline_scale;
        eff += sim.efficiency();
        mb += sim.network_mb;
        ++n;
      }
      const std::string label =
          window > 1e17 ? "none" : util::format_fixed(window, 0) + " s";
      table.add_row({label, aware ? "censoring-aware" : "naive",
                     util::format_fixed(scale_ratio / n, 2),
                     util::format_fixed(eff / n, 3),
                     util::format_fixed(mb / n, 0)});
      std::fprintf(stderr, "  [censoring] window=%s aware=%d done (n=%d)\n",
                   label.c_str(), aware ? 1 : 0, n);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: naive fits under short windows shrink the fitted scale\n"
      "(ratio << 1) and burn extra bandwidth; the censoring-aware MLE keeps\n"
      "both near the uncensored baseline.\n");
  return 0;
}
