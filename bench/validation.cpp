// Reproduces the §5.3 validation: for each model family, run the live
// emulation, then replay the *post-mortem* availability periods it recorded
// through the offline trace simulator (constant C = mean measured transfer
// time, as the Markov model assumes) and compare.
//
// Expected shape (paper): small discrepancies only, explained by (a) the
// short live window right-censoring the data and (b) constant-vs-variable
// C and R in the simulator.
#include <cmath>
#include <cstdio>
#include <span>

#include "common.hpp"
#include "harvest/condor/live_experiment.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Section 5.3: validating the simulation against the live runs "
      "===\n\n");

  trace::PoolSpec spec;
  spec.machine_count = 48;
  spec.durations_per_machine = 30;
  spec.seed = 2005;
  std::vector<condor::Machine> machines;
  for (auto& m : trace::generate_pool(spec)) {
    machines.push_back(condor::Machine{m.trace.machine_id, m.ground_truth});
  }
  condor::Pool monitor_pool(machines, 7);
  const auto histories = monitor_pool.collect_traces(30);

  util::TextTable table({"Distribution", "Live eff.", "Sim eff.",
                         "abs diff", "Live MB/h", "Sim MB/h", "ratio"});
  const std::array<std::string, 4> names = {"Exponential", "Weibull",
                                            "2-phase Hyper.",
                                            "3-phase Hyper."};
  for (std::size_t f = 0; f < 4; ++f) {
    condor::Pool pool(machines, 100 + f);
    condor::LiveExperimentConfig cfg;
    cfg.placements = 120;
    cfg.seed = 900 + f;
    condor::LiveExperiment live(pool, histories,
                                net::BandwidthModel::campus(), cfg);
    const auto live_res = live.run(bench::families()[f]);

    // Post-mortem replay: the recorded periods, machine by machine, with
    // the same fitted model per machine and constant mean measured cost.
    core::IntervalCosts costs;
    costs.checkpoint = live_res.mean_transfer_s();
    costs.recovery = costs.checkpoint;
    double sim_total = 0.0;
    double sim_useful = 0.0;
    double sim_mb = 0.0;
    // Group the placements by machine so each replay can use that
    // machine's own fitted model (as the live run did).
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      std::vector<double> periods;
      for (const auto& p : live_res.placements) {
        if (p.machine_index == mi) periods.push_back(p.period_s);
      }
      if (periods.empty()) continue;
      std::span<const double> training(histories[mi].durations);
      if (training.size() > 25) training = training.subspan(0, 25);
      dist::DistributionPtr model;
      try {
        model = core::Planner::fit_model(training, bench::families()[f]);
      } catch (const std::exception&) {
        continue;
      }
      auto schedule = core::Planner::make_schedule(model, costs);
      const auto sim = sim::simulate_job_on_trace(periods, schedule);
      sim_total += sim.total_time;
      sim_useful += sim.useful_work;
      sim_mb += sim.network_mb;
    }
    const double sim_eff = sim_total > 0.0 ? sim_useful / sim_total : 0.0;
    const double sim_rate = sim_total > 0.0 ? sim_mb / (sim_total / 3600.0)
                                            : 0.0;
    table.add_row(
        {names[f], util::format_fixed(live_res.avg_efficiency(), 3),
         util::format_fixed(sim_eff, 3),
         util::format_fixed(
             std::fabs(live_res.avg_efficiency() - sim_eff), 3),
         util::format_fixed(live_res.megabytes_per_hour(), 0),
         util::format_fixed(sim_rate, 0),
         util::format_fixed(
             sim_rate > 0.0 ? live_res.megabytes_per_hour() / sim_rate : 0.0,
             2)});
    std::fprintf(stderr, "  [validation] %s done\n", names[f].c_str());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Discrepancy sources (paper §5.3): right-censored live window and\n"
      "variable (live) vs constant (sim) transfer costs.\n");
  return 0;
}
