// Shared harness for the paper-reproduction benches: the standard synthetic
// Condor pool (DESIGN.md §2 substitution for the Wisconsin traces), the
// paper's checkpoint-cost grid, per-row experiment execution for all four
// model families, and the table/significance formatting used by Tables 1
// and 3.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/net/bandwidth_model.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/trace.hpp"

namespace harvest::bench {

/// The checkpoint/recovery costs of the paper's Figures 3–4 / Tables 1 & 3.
[[nodiscard]] const std::vector<double>& paper_costs();

/// The standard synthetic pool (fixed seed ⇒ fully reproducible output).
/// `machines`/`durations` default to a size that keeps every bench binary
/// in the tens of seconds on one core while preserving the paper's shape.
[[nodiscard]] std::vector<trace::AvailabilityTrace> standard_traces(
    std::size_t machines = 160, std::size_t durations = 120,
    std::uint64_t seed = 20050917);

/// Paper column order and significance letters: e, w, 2, 3.
inline constexpr std::array<char, 4> kFamilyLetters = {'e', 'w', '2', '3'};
[[nodiscard]] const std::array<core::ModelFamily, 4>& families();
[[nodiscard]] std::string family_header(std::size_t i);

/// One table row: the four families' per-machine metric vectors, aligned by
/// machine (same index ⇒ same machine across families).
struct RowMetrics {
  double cost = 0.0;
  std::array<std::vector<double>, 4> efficiency;
  std::array<std::vector<double>, 4> network_mb;
};

/// Run all four families at one checkpoint cost over the traces. Machines
/// any family skipped are dropped from every family so columns stay paired.
[[nodiscard]] RowMetrics run_row(
    const std::vector<trace::AvailabilityTrace>& traces, double cost,
    const sim::ExperimentConfig& base_config);

/// Letters of the families whose metric mean is statistically significantly
/// SMALLER than family `self`'s (two-sided paired t at alpha) — the paper's
/// cell annotation convention for both Table 1 and Table 3.
[[nodiscard]] std::string beaten_letters(
    const std::array<std::vector<double>, 4>& metric, std::size_t self,
    double alpha = 0.05);

/// "0.754 +- 0.013 (e,2)" cell for one family/metric.
[[nodiscard]] std::string ci_cell(const std::vector<double>& values,
                                  int precision, const std::string& letters);

/// Emit a gnuplot-ready data block (one line per cost, one column per
/// family mean) under a "# FIGURE n" banner.
void print_figure_series(const std::string& banner,
                         const std::vector<RowMetrics>& rows,
                         bool efficiency_metric);

/// The live-experiment bench body shared by Tables 4 and 5: build the
/// emulated pool, collect monitor histories, run the instrumented test
/// process for each family over `link`, and print the paper's five-column
/// table. Returns the per-family results (used by the validation bench).
struct LiveTableOutcome {
  std::vector<std::string> family_names;
  std::vector<double> avg_efficiency;
  std::vector<double> total_time_s;
  std::vector<double> megabytes;
  std::vector<double> mb_per_hour;
  std::vector<std::size_t> samples;
  std::vector<double> mean_transfer_s;
};
[[nodiscard]] LiveTableOutcome run_live_table(const std::string& title,
                                              const net::BandwidthModel& link,
                                              std::size_t placements,
                                              std::uint64_t seed);

}  // namespace harvest::bench
