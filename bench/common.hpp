// Shared harness for the paper-reproduction benches: the standard synthetic
// Condor pool (DESIGN.md §2 substitution for the Wisconsin traces), the
// paper's checkpoint-cost grid, per-row experiment execution for all four
// model families, and the table/significance formatting used by Tables 1
// and 3.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/net/bandwidth_model.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/trace.hpp"

namespace harvest::bench {

/// The checkpoint/recovery costs of the paper's Figures 3–4 / Tables 1 & 3.
[[nodiscard]] const std::vector<double>& paper_costs();

/// Standard-pool defaults, public so benches can report the exact spec
/// they ran with (reproducibility: same sizes + seed ⇒ same bytes out).
inline constexpr std::size_t kStandardTraceMachines = 160;
inline constexpr std::size_t kStandardTraceDurations = 120;
inline constexpr std::uint64_t kStandardTraceSeed = 20050917;

/// The standard synthetic pool (fixed seed ⇒ fully reproducible output).
/// `machines`/`durations` default to a size that keeps every bench binary
/// in the tens of seconds on one core while preserving the paper's shape.
/// Prints a "# repro:" line to stdout recording the pool's RNG seed and
/// counts so every bench's output states how to regenerate it.
[[nodiscard]] std::vector<trace::AvailabilityTrace> standard_traces(
    std::size_t machines = kStandardTraceMachines,
    std::size_t durations = kStandardTraceDurations,
    std::uint64_t seed = kStandardTraceSeed);

/// Paper column order and significance letters: e, w, 2, 3.
inline constexpr std::array<char, 4> kFamilyLetters = {'e', 'w', '2', '3'};
[[nodiscard]] const std::array<core::ModelFamily, 4>& families();
[[nodiscard]] std::string family_header(std::size_t i);

/// One table row: the four families' per-machine metric vectors, aligned by
/// machine (same index ⇒ same machine across families).
struct RowMetrics {
  double cost = 0.0;
  std::array<std::vector<double>, 4> efficiency;
  std::array<std::vector<double>, 4> network_mb;
};

/// Run all four families at one checkpoint cost over the traces. Machines
/// any family skipped are dropped from every family so columns stay paired.
/// When `metrics` is set, per-family counters and phase-duration histograms
/// accumulate into it under "sim.<family letter>.*" (see
/// sim::ExperimentConfig::metrics).
[[nodiscard]] RowMetrics run_row(
    const std::vector<trace::AvailabilityTrace>& traces, double cost,
    const sim::ExperimentConfig& base_config,
    obs::MetricsRegistry* metrics = nullptr);

/// Letters of the families whose metric mean is statistically significantly
/// SMALLER than family `self`'s (two-sided paired t at alpha) — the paper's
/// cell annotation convention for both Table 1 and Table 3.
[[nodiscard]] std::string beaten_letters(
    const std::array<std::vector<double>, 4>& metric, std::size_t self,
    double alpha = 0.05);

/// "0.754 +- 0.013 (e,2)" cell for one family/metric.
[[nodiscard]] std::string ci_cell(const std::vector<double>& values,
                                  int precision, const std::string& letters);

/// Emit a gnuplot-ready data block (one line per cost, one column per
/// family mean) under a "# FIGURE n" banner.
void print_figure_series(const std::string& banner,
                         const std::vector<RowMetrics>& rows,
                         bool efficiency_metric);

/// The live-experiment bench body shared by Tables 4 and 5: build the
/// emulated pool, collect monitor histories, run the instrumented test
/// process for each family over `link`, and print the paper's five-column
/// table. Returns the per-family results (used by the validation bench).
struct LiveTableOutcome {
  std::vector<std::string> family_names;
  std::vector<double> avg_efficiency;
  std::vector<double> total_time_s;
  std::vector<double> megabytes;
  std::vector<double> mb_per_hour;
  std::vector<std::size_t> samples;
  std::vector<double> mean_transfer_s;
};
[[nodiscard]] LiveTableOutcome run_live_table(const std::string& title,
                                              const net::BandwidthModel& link,
                                              std::size_t placements,
                                              std::uint64_t seed);

/// Strip a `--json <path>` (or `--json=<path>`) flag from argv and return
/// the path ("" if absent). Lets every bench binary opt into machine-
/// readable BENCH_*.json artifacts without touching its table output.
[[nodiscard]] std::string parse_json_flag(int& argc, char** argv);

/// Write the machine-readable artifact for a row-style bench: the run
/// configuration (trace sizes + every RNG seed in play), per-cost
/// per-family summaries (machine count, mean efficiency and network MB
/// with 95 % CI half-widths), and — when `registry` is non-null — its full
/// snapshot (checkpoint/eviction counters, bytes moved, and p50/p90/p99
/// phase-duration histograms per family).
void write_bench_json(const std::string& path, const std::string& bench_name,
                      const sim::ExperimentConfig& base_config,
                      const std::vector<RowMetrics>& rows,
                      const obs::MetricsRegistry* registry);

}  // namespace harvest::bench
