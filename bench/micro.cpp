// google-benchmark microbenchmarks for the hot paths: distribution fitting
// (what runs when a job is placed), Γ evaluation and T_opt search (the
// planner's inner loop), schedule extension, and the trace simulator.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/dist/serialize.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/fit/censored.hpp"
#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/sim/parallel_sim.hpp"
#include "harvest/stats/kaplan_meier.hpp"

namespace {

using namespace harvest;

std::vector<double> weibull_data(std::size_t n) {
  numerics::Rng rng(1);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.weibull(0.43, 3409.0);
  return xs;
}

void BM_FitExponential(benchmark::State& state) {
  const auto xs = weibull_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_exponential_mle(xs));
  }
}
BENCHMARK(BM_FitExponential)->Arg(25)->Arg(1000);

void BM_FitWeibull(benchmark::State& state) {
  const auto xs = weibull_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_weibull_mle(xs));
  }
}
BENCHMARK(BM_FitWeibull)->Arg(25)->Arg(1000);

void BM_FitHyperexpEm(benchmark::State& state) {
  const auto xs = weibull_data(25);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_hyperexp_em(xs, k));
  }
}
BENCHMARK(BM_FitHyperexpEm)->Arg(2)->Arg(3);

core::MarkovModel paper_model(double cost) {
  core::IntervalCosts costs;
  costs.checkpoint = cost;
  costs.recovery = cost;
  return core::MarkovModel(std::make_shared<dist::Weibull>(0.43, 3409.0),
                           costs);
}

void BM_GammaEvaluation(benchmark::State& state) {
  const auto m = paper_model(100.0);
  double t = 500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.gamma(t, 1000.0));
    t += 1e-9;  // defeat value caching
  }
}
BENCHMARK(BM_GammaEvaluation);

void BM_OptimizeTopt(benchmark::State& state) {
  const core::CheckpointOptimizer opt(paper_model(100.0));
  double age = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize(age));
    age += 1.0;
  }
}
BENCHMARK(BM_OptimizeTopt);

void BM_ScheduleFirst20Entries(benchmark::State& state) {
  for (auto _ : state) {
    core::CheckpointSchedule s(paper_model(100.0));
    benchmark::DoNotOptimize(s.entry(19));
  }
}
BENCHMARK(BM_ScheduleFirst20Entries);

void BM_SimulateTrace(benchmark::State& state) {
  const auto periods = weibull_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::CheckpointSchedule s(paper_model(100.0));
    benchmark::DoNotOptimize(sim::simulate_job_on_trace(periods, s));
  }
}
BENCHMARK(BM_SimulateTrace)->Arg(100)->Arg(1000);

void BM_ConditionalSurvival(benchmark::State& state) {
  const dist::Weibull w(0.43, 3409.0);
  double age = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.conditional_survival(age, 500.0));
    age += 0.1;
  }
}
BENCHMARK(BM_ConditionalSurvival);

void BM_PartialExpectation(benchmark::State& state) {
  const dist::Weibull w(0.43, 3409.0);
  double x = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.partial_expectation(x));
    x += 0.1;
  }
}
BENCHMARK(BM_PartialExpectation);

void BM_FitWeibullCensored(benchmark::State& state) {
  auto xs = weibull_data(1000);
  const auto sample = fit::CensoredSample::censor_at(xs, 3000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_weibull_censored(sample));
  }
}
BENCHMARK(BM_FitWeibullCensored);

void BM_KaplanMeierBuild(benchmark::State& state) {
  const auto xs = weibull_data(static_cast<std::size_t>(state.range(0)));
  const std::vector<bool> obs(xs.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::KaplanMeier(xs, obs));
  }
}
BENCHMARK(BM_KaplanMeierBuild)->Arg(1000)->Arg(10000);

void BM_ParallelSim8Jobs(benchmark::State& state) {
  const std::vector<dist::DistributionPtr> laws = {
      std::make_shared<dist::Weibull>(0.5, 3000.0)};
  sim::ParallelSimConfig cfg;
  cfg.job_count = 8;
  cfg.horizon_s = 6.0 * 3600.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_parallel_simulation(laws, cfg));
  }
}
BENCHMARK(BM_ParallelSim8Jobs);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const dist::Weibull w(0.43, 3409.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::deserialize(dist::serialize(w)));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

}  // namespace
