// Extension: per-machine automatic model selection. The paper fixes one
// family for the whole pool; the library can instead pick, per machine, the
// smallest-AIC family from its 25 training observations
// (ModelFamily::kAutoAic). Does adaptive selection beat every fixed family?
//
// Expected shape: on a pool that genuinely mixes Weibull-like and
// bimodal machines, auto-AIC should match or beat the best fixed family on
// BOTH metrics at once — fixed families win one metric on "their" machines
// and lose on the others'.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Extension: per-machine AIC model selection vs fixed families "
      "===\n\n");

  const auto traces = bench::standard_traces(140, 110);
  util::TextTable table({"C", "family", "mean eff", "mean MB"});
  for (double cost : {100.0, 500.0}) {
    sim::ExperimentConfig cfg;
    cfg.checkpoint_cost_s = cost;
    std::vector<core::ModelFamily> menu(bench::families().begin(),
                                        bench::families().end());
    menu.push_back(core::ModelFamily::kAutoAic);
    for (core::ModelFamily f : menu) {
      const auto res = sim::run_trace_experiment(traces, f, cfg);
      table.add_row({util::format_fixed(cost, 0), core::to_string(f),
                     util::format_fixed(stats::mean_of(res.efficiencies()), 3),
                     util::format_fixed(stats::mean_of(res.network_mbs()), 0)});
      if (f == core::ModelFamily::kAutoAic) {
        std::map<std::string, int> chosen;
        for (const auto& m : res.machines) ++chosen[m.fitted_family];
        std::printf("auto-aic choices at C=%.0f:", cost);
        for (const auto& [name, n] : chosen) {
          std::printf("  %s=%d", name.c_str(), n);
        }
        std::printf("\n");
      }
      std::fprintf(stderr, "  [auto] C=%.0f %s done\n", cost,
                   core::to_string(f).c_str());
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Reading: AIC mostly recognizes each machine's true family from 25\n"
      "observations; the mixed pool rewards picking per machine instead of\n"
      "fixing one family pool-wide.\n");
  return 0;
}
