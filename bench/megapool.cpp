// Megapool scaling: does the SoA machine table + calendar event queues
// actually buy the fleet-scale pools the paper's cycle-harvesting story
// needs? Sweeps pool size x worker threads and reports the wall-clock
// scaling curve of the megapool engine, with the legacy engine as the
// correctness anchor: at equal seeds the megapool run must be bit-identical
// to the single-threaded legacy engine, at every thread count, with and
// without fleet contention and fault prediction in the scenario.
//
// Gated checks:
//   (a) megapool == legacy bit-identically on the identity cell (contended
//       fleet + predictor + model-ranked matchmaking) at EVERY thread count;
//   (b) every swept scale cell is bit-identical across all thread counts
//       (the deterministic-merge guarantee, measured not assumed);
//   (c) on hosts with >= 8 cores (full mode), the largest shared scale cell
//       must run >= 4x faster at 8 threads than at 1 — on smaller hosts the
//       ratio prints as info.
//
// Full mode finishes with the showcase cell: a million-machine park driven
// through a multi-month trace at hardware concurrency. --months scales the
// horizon (default 18 on multi-core hosts is the headline configuration;
// single-core CI boxes should pass --months 2 or use --tiny).
//
// Flags:
//   --json <path>   machine-readable artifact (config + cells + checks)
//   --tiny          CI smoke: small pools, threads {1,2}, no showcase
//   --months <m>    showcase horizon in 30-day months (default 18)
//   --no-showcase   skip the million-machine cell
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

constexpr std::uint64_t kSimSeed = 47;

std::vector<condor::TimelinePool::MachineSpec> build_park(std::size_t n) {
  trace::PoolSpec spec;
  spec.machine_count = n;
  spec.durations_per_machine = 1;
  spec.seed = bench::kStandardTraceSeed;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  machines.reserve(n);
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = std::move(m.ground_truth);
    machines.push_back(std::move(s));
  }
  return machines;
}

/// Exact equality across every field both engines report — the bench's
/// bit-identity gates compare with ==, never with a tolerance.
bool results_identical(const condor::PoolSimResult& a,
                       const condor::PoolSimResult& b) {
  if (a.makespan_s != b.makespan_s || a.jobs.size() != b.jobs.size() ||
      a.server.submitted != b.server.submitted ||
      a.server.completed != b.server.completed ||
      a.server.rejected != b.server.rejected ||
      a.server.interrupted != b.server.interrupted ||
      a.server.moved_mb != b.server.moved_mb ||
      a.server.total_wait_s != b.server.total_wait_s ||
      a.predictor.events != b.predictor.events ||
      a.predictor.true_alerts != b.predictor.true_alerts ||
      a.predictor.false_alerts != b.predictor.false_alerts) {
    return false;
  }
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].finished != b.jobs[j].finished ||
        a.jobs[j].completion_s != b.jobs[j].completion_s ||
        a.jobs[j].useful_work_s != b.jobs[j].useful_work_s ||
        a.jobs[j].lost_work_s != b.jobs[j].lost_work_s ||
        a.jobs[j].moved_mb != b.jobs[j].moved_mb ||
        a.jobs[j].placements != b.jobs[j].placements ||
        a.jobs[j].evictions != b.jobs[j].evictions ||
        a.jobs[j].proactive_checkpoints != b.jobs[j].proactive_checkpoints) {
      return false;
    }
  }
  return true;
}

struct TimedRun {
  condor::PoolSimResult result;
  double wall_s = 0.0;
};

TimedRun timed_run(const std::vector<condor::TimelinePool::MachineSpec>& park,
                   const condor::PoolSimConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun out;
  out.result = condor::run_pool_simulation(park, cfg);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return out;
}

/// Scale-cell configuration: a contended fleet with jobs sized to the
/// horizon, so the job queue stays busy for the whole run. The work must be
/// finite: the engines drain placed jobs past the horizon until eviction or
/// completion, and an unbounded job parked on one of the availability law's
/// heavy-tail spells (days to years) would stretch that drain without limit.
condor::PoolSimConfig scale_config(double horizon_s) {
  condor::PoolSimConfig cfg;
  cfg.engine = condor::PoolEngine::kMegapool;
  cfg.job_count = 64;
  cfg.work_per_job_s = horizon_s;
  cfg.horizon_s = horizon_s;
  cfg.seed = kSimSeed;
  server::FleetConfig fc;
  fc.shards = 4;
  fc.server.capacity_mbps = 24.0;
  fc.server.slots = 4;
  cfg.scenario.fleet = fc;
  return cfg;
}

std::string strip_value(int& argc, char** argv, const char* name) {
  const std::string bare = std::string("--") + name;
  const std::string eq = bare + "=";
  std::string value;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] && i + 1 < argc) {
      value = argv[++i];
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = argv[i] + eq.size();
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return value;
}

bool strip_switch(int& argc, char** argv, const char* name) {
  const std::string bare = std::string("--") + name;
  bool present = false;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      present = true;
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return present;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  const bool tiny = strip_switch(argc, argv, "tiny");
  const bool no_showcase = strip_switch(argc, argv, "no-showcase");
  const std::string months_s = strip_value(argc, argv, "months");
  const double months = months_s.empty() ? 18.0 : std::atof(months_s.c_str());
  if (!(months > 0.0)) {
    std::fprintf(stderr, "bench_megapool: --months must be > 0\n");
    return 2;
  }

  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_list =
      tiny ? std::vector<std::size_t>{1, 2}
           : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> scale_machines =
      tiny ? std::vector<std::size_t>{512, 2048}
           : std::vector<std::size_t>{10000, 100000};
  const double scale_horizon_s =
      tiny ? 7.0 * 86400.0 : 60.0 * 86400.0;  // full: two months per cell
  const std::size_t identity_machines = tiny ? 512 : 2048;
  const double identity_horizon_s = tiny ? 7.0 * 86400.0 : 14.0 * 86400.0;

  std::printf("=== Megapool scaling: machines x threads (host %u cores) "
              "===\n\n",
              hw);

  int failures = 0;

  // Gate (a): the identity cell exercises every scenario axis at once —
  // contended fleet, fault predictor, model-ranked matchmaking — and the
  // megapool engine must reproduce the legacy engine bit for bit at every
  // thread count.
  bool identity_ok = true;
  {
    const auto park = build_park(identity_machines);
    condor::PoolSimConfig cfg;
    cfg.job_count = 16;
    cfg.work_per_job_s = 6.0 * 3600.0;
    cfg.horizon_s = identity_horizon_s;
    cfg.policy = condor::MatchPolicy::kModelRanked;
    cfg.seed = kSimSeed;
    server::FleetConfig fc;
    fc.shards = 2;
    fc.server.capacity_mbps = 12.0;
    fc.server.slots = 2;
    cfg.scenario.fleet = fc;
    cfg.scenario.predictor = predict::PredictorConfig{0.9, 0.8, 900.0};
    std::fprintf(stderr, "  [megapool] identity cell: park built, running legacy...\n");
    const auto legacy = timed_run(park, cfg);
    std::printf("identity cell: %zu machines, contended + predictor, "
                "legacy %.2f s\n",
                identity_machines, legacy.wall_s);
    for (const std::size_t threads : thread_list) {
      condor::PoolSimConfig mcfg = cfg;
      mcfg.engine = condor::PoolEngine::kMegapool;
      mcfg.megapool.threads = threads;
      const auto mega = timed_run(park, mcfg);
      const bool ok = results_identical(legacy.result, mega.result);
      if (!ok) {
        identity_ok = false;
        ++failures;
      }
      std::printf("  megapool %zu thread%s: %.2f s, vs legacy %s\n", threads,
                  threads == 1 ? " " : "s", mega.wall_s,
                  ok ? "identical" : "MISMATCH");
    }
  }
  std::printf("\n");

  // Scaling curve + gate (b): one row per (machines, threads); every row of
  // a pool size must be bit-identical to that size's 1-thread row.
  struct Cell {
    std::size_t machines = 0;
    std::size_t threads = 0;
    double wall_s = 0.0;
    double makespan_s = 0.0;
    double moved_mb = 0.0;
    std::size_t evictions = 0;
    bool identical = true;
  };
  std::vector<Cell> cells;
  bool cross_thread_ok = true;
  double largest_wall_1t = 0.0;
  double largest_wall_maxt = 0.0;
  util::TextTable table({"machines", "threads", "wall (s)", "speedup",
                         "GB moved", "evictions", "identical"});
  for (const std::size_t n : scale_machines) {
    const auto park = build_park(n);
    condor::PoolSimResult reference;
    double wall_1t = 0.0;
    for (const std::size_t threads : thread_list) {
      condor::PoolSimConfig cfg = scale_config(scale_horizon_s);
      cfg.megapool.threads = threads;
      const auto run = timed_run(park, cfg);
      Cell cell;
      cell.machines = n;
      cell.threads = threads;
      cell.wall_s = run.wall_s;
      cell.makespan_s = run.result.makespan_s;
      cell.moved_mb = run.result.total_moved_mb();
      cell.evictions = run.result.total_evictions();
      if (threads == thread_list.front()) {
        reference = run.result;
        wall_1t = run.wall_s;
      } else {
        cell.identical = results_identical(reference, run.result);
        if (!cell.identical) {
          cross_thread_ok = false;
          ++failures;
        }
      }
      if (n == scale_machines.back()) {
        if (threads == 1) largest_wall_1t = run.wall_s;
        if (threads == thread_list.back()) largest_wall_maxt = run.wall_s;
      }
      table.add_row({std::to_string(n), std::to_string(threads),
                     util::format_fixed(run.wall_s, 2),
                     util::format_fixed(
                         run.wall_s > 0.0 ? wall_1t / run.wall_s : 0.0, 2),
                     util::format_fixed(cell.moved_mb / 1024.0, 1),
                     std::to_string(cell.evictions),
                     cell.identical ? "yes" : "NO"});
      std::fprintf(stderr, "  [megapool] %zu machines x %zu threads: %.2f s\n",
                   n, threads, run.wall_s);
      cells.push_back(cell);
    }
  }
  std::printf("--- scale cells: contended fleet, 64 horizon-sized jobs, "
              "%.0f-day horizon ---\n%s\n",
              scale_horizon_s / 86400.0, table.render().c_str());

  // Gate (c): parallelism must pay where there are cores to pay with.
  const std::size_t max_threads = thread_list.back();
  const double speedup = largest_wall_maxt > 0.0
                             ? largest_wall_1t / largest_wall_maxt
                             : 0.0;
  const bool gate_speedup = !tiny && hw >= max_threads && max_threads >= 8;
  const bool speedup_ok = speedup >= 4.0;
  if (gate_speedup && !speedup_ok) ++failures;
  std::printf("speedup on largest cell (%zu machines, %zu threads vs 1): "
              "%.2fx (%s)\n\n",
              scale_machines.back(), max_threads, speedup,
              gate_speedup ? (speedup_ok ? "ok, >= 4x" : "FAIL, < 4x")
                           : "info — host has too few cores to gate");

  // The showcase: a million machines through a multi-month trace at
  // hardware concurrency. Not gated on time — the point is that it
  // completes and prints its throughput.
  double showcase_wall_s = 0.0;
  std::size_t showcase_machines = 0;
  if (!tiny && !no_showcase) {
    showcase_machines = 1000000;
    const double horizon_s = months * 30.0 * 86400.0;
    std::printf("showcase: %zu machines x %.1f months at hardware "
                "concurrency...\n",
                showcase_machines, months);
    const auto park = build_park(showcase_machines);
    condor::PoolSimConfig cfg = scale_config(horizon_s);
    cfg.megapool.threads = 0;  // hardware
    const auto run = timed_run(park, cfg);
    showcase_wall_s = run.wall_s;
    std::printf("  wall %.1f s (%.1f min), makespan %.0f d, %.1f GB moved, "
                "%zu evictions\n\n",
                run.wall_s, run.wall_s / 60.0,
                run.result.makespan_s / 86400.0,
                run.result.total_moved_mb() / 1024.0,
                run.result.total_evictions());
  }

  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "megapool");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config").begin_object();
    w.field("pool_seed", std::uint64_t{bench::kStandardTraceSeed});
    w.field("sim_seed", std::uint64_t{kSimSeed});
    w.field("host_cores", static_cast<std::uint64_t>(hw));
    w.field("tiny", tiny);
    w.field("scale_horizon_s", scale_horizon_s);
    w.field("identity_machines",
            static_cast<std::uint64_t>(identity_machines));
    w.end_object();
    w.key("checks").begin_object();
    w.field("identity_vs_legacy", identity_ok);
    w.field("cross_thread_identity", cross_thread_ok);
    w.field("speedup_largest_cell", speedup);
    w.field("speedup_gated", gate_speedup);
    w.field("failures", static_cast<std::uint64_t>(failures));
    w.end_object();
    w.key("cells").begin_array();
    for (const auto& c : cells) {
      w.begin_object();
      w.field("machines", static_cast<std::uint64_t>(c.machines));
      w.field("threads", static_cast<std::uint64_t>(c.threads));
      w.field("wall_s", c.wall_s);
      w.field("makespan_s", c.makespan_s);
      w.field("moved_mb", c.moved_mb);
      w.field("evictions", static_cast<std::uint64_t>(c.evictions));
      w.field("identical", c.identical);
      w.end_object();
    }
    w.end_array();
    if (showcase_machines > 0) {
      w.key("showcase").begin_object();
      w.field("machines", static_cast<std::uint64_t>(showcase_machines));
      w.field("months", months);
      w.field("wall_s", showcase_wall_s);
      w.end_object();
    }
    w.end_object();
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot open " + json_path);
    out << w.str() << '\n';
    std::fprintf(stderr, "  [megapool] artifact -> %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
