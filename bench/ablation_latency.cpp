// Ablation: checkpoint latency L distinct from checkpoint overhead C.
// Vaidya's model (which the paper builds on) separates the time the
// application is BLOCKED by a checkpoint (C) from the time until the
// checkpoint is SAFE (L): with copy-on-write forking a process resumes
// after a short C while the image drains to storage for a longer L. The
// paper's sequential setting has L = C; this sweep varies L/C and shows
// how the optimizer reacts.
//
// Expected shape: larger L (longer vulnerable recovery path L+R+T) pushes
// T_opt up and predicted efficiency down, but far less than increasing C
// itself would — latency only matters through the failure path, so
// fork-style checkpointing (small C, large L) is still a big win.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "harvest/core/optimizer.hpp"
#include "harvest/core/prediction.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: checkpoint latency L vs overhead C (Vaidya's split) "
      "===\nWeibull(0.43, 3409) machine, R = 110 s.\n\n");

  const auto model = std::make_shared<dist::Weibull>(0.43, 3409.0);
  util::TextTable table({"C (s)", "L (s)", "T_opt (s)", "pred. eff",
                         "xfers/h"});
  for (double c : {25.0, 110.0}) {
    for (double ratio : {1.0, 2.0, 4.0, 8.0}) {
      core::IntervalCosts costs;
      costs.checkpoint = c;
      costs.recovery = 110.0;
      costs.latency = c * ratio;
      const core::MarkovModel markov(model, costs);
      const core::CheckpointOptimizer opt(markov);
      const auto r = opt.optimize(0.0);
      const auto p = core::predict_steady_state(markov, r.work_time, 0.0);
      table.add_row({util::format_fixed(c, 0),
                     util::format_fixed(costs.latency, 0),
                     util::format_fixed(r.work_time, 0),
                     util::format_fixed(r.efficiency, 3),
                     util::format_fixed(p.transfers_per_hour, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Compare the C=25, L=200 rows against C=110, L=110: shedding blocked\n"
      "time into latency keeps most of the efficiency of a fast checkpoint\n"
      "even though the data takes just as long to reach safety.\n");
  return 0;
}
