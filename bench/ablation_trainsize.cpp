// Ablation: training-prefix size. The paper trains every model on just the
// first 25 observations per machine and shows (Table 2) that this barely
// hurts on a known-Weibull trace. This sweep generalizes that: how do
// efficiency and bandwidth respond to training on 10 / 25 / 50 / 100
// observations across the whole heterogeneous pool?
//
// Expected shape: 10 is noisy (hyperexponential EM in particular can
// misplace its phases), 25 is already close to the asymptote — which is why
// the paper's choice is sensible — and gains beyond 50 are marginal.
#include <cstdio>

#include "common.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf("=== Ablation: training-set size (C = 250 s) ===\n\n");

  // Longer traces so even train=100 leaves a real experimental suffix.
  const auto traces = bench::standard_traces(100, 220);
  util::TextTable table({"train n", "family", "machines", "mean eff",
                         "mean MB"});
  for (std::size_t train : {10ul, 25ul, 50ul, 100ul}) {
    for (std::size_t f = 0; f < 4; ++f) {
      sim::ExperimentConfig cfg;
      cfg.checkpoint_cost_s = 250.0;
      cfg.train_count = train;
      const auto res =
          sim::run_trace_experiment(traces, bench::families()[f], cfg);
      table.add_row({std::to_string(train),
                     core::to_string(bench::families()[f]),
                     std::to_string(res.machines.size()),
                     util::format_fixed(stats::mean_of(res.efficiencies()), 3),
                     util::format_fixed(stats::mean_of(res.network_mbs()), 0)});
    }
    std::fprintf(stderr, "  [trainsize] n=%zu done\n", train);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Note: the experimental suffix shrinks as the training prefix grows,\n"
      "so compare across families within a row, and trends across rows only\n"
      "qualitatively.\n");
  return 0;
}
