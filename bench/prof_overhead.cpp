// Phase-profiler overhead and purity gate: run the pool simulation in all
// three engines with and without an obs::prof::PhaseProfiler attached and
// check that self-profiling is (a) free of behavioral side effects and
// (b) cheap enough to leave on.
//
// Experiments:
//   1. Contended mode (2-shard fleet) — repeated runs over fresh seeds,
//      profiler off vs on; compares makespan, every per-job stat, and the
//      fleet ledger field-by-field with exact floating-point equality.
//   2. Uncontended mode — same bit-identity comparison.
//   3. Megapool engine (multi-shard, inline) — same comparison, plus the
//      profiler report's own invariants: conservation (Σ phase self time
//      <= thread wall time on every thread) and byte-determinism of the
//      folded report across repeated report() calls.
//
// Gated checks:
//   (a) every engine bit-identical with the profiler attached;
//   (b) conservation_ok on every profiled run;
//   (c) report() is stable: folding the same slabs twice yields identical
//       JSON bytes;
//   (d) the expected phase taxonomy shows up (negotiate + drain in
//       contended runs, placement in uncontended, spell-advance/matchmake
//       in megapool runs);
//   (e) enabled-mode wall-clock overhead <= 1.5x baseline (full mode only;
//       tiny runs are too short to time meaningfully and print the ratio
//       as info).
//
// Also prints the per-phase self-time table of the last contended run —
// the EXPERIMENTS.md example.
//
// Flags:
//   --json <path>   machine-readable artifact (config + checks + report)
//   --tiny          CI smoke: smaller park, fewer reps
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20050917;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<condor::TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<condor::TimelinePool::MachineSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    condor::TimelinePool::MachineSpec s;
    s.id = "b" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Exact (bitwise double) equality of two runs' externally visible results.
bool identical(const condor::PoolSimResult& a,
               const condor::PoolSimResult& b) {
  if (a.makespan_s != b.makespan_s) return false;
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.finished != y.finished || x.completion_s != y.completion_s ||
        x.useful_work_s != y.useful_work_s ||
        x.lost_work_s != y.lost_work_s || x.moved_mb != y.moved_mb ||
        x.placements != y.placements || x.evictions != y.evictions ||
        x.server_wait_s != y.server_wait_s ||
        x.rejected_submits != y.rejected_submits) {
      return false;
    }
  }
  const auto& s = a.server;
  const auto& t = b.server;
  return s.submitted == t.submitted && s.started == t.started &&
         s.rejected == t.rejected && s.completed == t.completed &&
         s.interrupted == t.interrupted && s.moved_mb == t.moved_mb &&
         s.total_wait_s == t.total_wait_s;
}

enum class Mode { kContended, kUncontended, kMegapool };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kContended: return "contended";
    case Mode::kUncontended: return "uncontended";
    case Mode::kMegapool: return "megapool";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  int failures = 0;

  const std::size_t machines = tiny ? 16 : 32;
  const std::size_t jobs = tiny ? 4 : 8;
  const std::size_t reps = tiny ? 2 : 5;
  const auto specs = park(machines);

  std::printf("=== Phase profiler: bit-identity + overhead gate ===\n");
  std::printf("# repro: seed %llu, %zu machines, %zu jobs, %zu reps, %s\n\n",
              static_cast<unsigned long long>(kSeed), machines, jobs, reps,
              tiny ? "tiny" : "full");

  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  fc.server.stagger_window_s = 20.0;

  bool bit_identical = true;
  bool conservation_ok = true;
  bool report_stable = true;
  bool phases_present = true;
  double base_s = 0.0;
  double profiled_s = 0.0;
  double max_excess_s = 0.0;
  std::string last_contended_json;
  obs::prof::ProfileReport last_contended;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const Mode mode :
         {Mode::kContended, Mode::kUncontended, Mode::kMegapool}) {
      condor::PoolSimConfig cfg;
      cfg.job_count = jobs;
      cfg.work_per_job_s = 2.0 * 3600.0;
      cfg.seed = kSeed + rep;
      if (mode == Mode::kContended) cfg.scenario.fleet = fc;
      if (mode == Mode::kMegapool) {
        cfg.engine = condor::PoolEngine::kMegapool;
        cfg.megapool.shards = 4;
        cfg.megapool.threads = 1;  // inline: determinism pinned elsewhere
        // A scanning policy so the matchmake phase actually runs (kRandom
        // selects by rank without scoring shards).
        cfg.policy = condor::MatchPolicy::kLongestUptime;
      }

      const auto t0 = Clock::now();
      const auto plain = condor::run_pool_simulation(specs, cfg);
      base_s += seconds_since(t0);

      obs::prof::PhaseProfiler profiler;
      cfg.hooks.profiler = &profiler;
      const auto t1 = Clock::now();
      const auto profiled = condor::run_pool_simulation(specs, cfg);
      profiled_s += seconds_since(t1);

      if (!identical(plain, profiled)) {
        bit_identical = false;
        std::printf("MISMATCH: %s rep %zu differs with profiler on\n",
                    mode_name(mode), rep);
      }
      const auto report = profiler.report();
      if (!report.conservation_ok) conservation_ok = false;
      max_excess_s = std::max(max_excess_s, report.max_thread_excess_s);
      if (report.to_json() != profiler.report().to_json()) {
        report_stable = false;
      }
      const bool expected =
          mode == Mode::kContended
              ? report.scope_count("contended.negotiate") > 0 &&
                    report.scope_count("contended.drain") > 0 &&
                    report.scope_count("server.admission") > 0
          : mode == Mode::kUncontended
              ? report.scope_count("uncontended.placement") > 0 &&
                    report.scope_count("uncontended.negotiate") > 0
              : report.scope_count("megapool.spell-advance") > 0 &&
                    report.scope_count("megapool.matchmake") > 0;
      if (!expected) {
        phases_present = false;
        std::printf("MISSING PHASES: %s rep %zu\n", mode_name(mode), rep);
      }
      if (mode == Mode::kContended && rep + 1 == reps) {
        last_contended = report;
        last_contended_json = report.to_json();
      }
    }
  }

  util::TextTable table({"phase", "parent", "kind", "count", "self s",
                         "p50 ms", "p99 ms"});
  std::size_t rows = 0;
  for (const auto& p : last_contended.phases) {
    if (p.shard != obs::prof::kNoShard) continue;  // fold shards away here
    if (rows++ >= 12) break;
    char buf[32];
    const auto num = [&buf](double v, const char* f) {
      std::snprintf(buf, sizeof buf, f, v);
      return std::string(buf);
    };
    table.add_row({p.name, p.parent.empty() ? "-" : p.parent,
                   p.latency ? "latency" : "self", std::to_string(p.count),
                   num(p.self_s, "%.4f"), num(p.sketch.quantile(0.5) * 1e3, "%.3f"),
                   num(p.sketch.quantile(0.99) * 1e3, "%.3f")});
  }
  std::printf("phase self-times (last contended run):\n%s\n",
              table.render().c_str());

  const double ratio = base_s > 0.0 ? profiled_s / base_s : 1.0;
  std::printf("wall clock: baseline %.3f s, profiler on %.3f s, ratio %.3f\n\n",
              base_s, profiled_s, ratio);

  const auto check = [&failures](bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  check(bit_identical, "profiler attached => results bit-identical");
  check(conservation_ok, "conservation: sum(self) <= thread wall");
  check(report_stable, "report() byte-stable across folds");
  check(phases_present, "expected phase taxonomy present");
  if (tiny) {
    std::printf("%-52s info (%.3fx, tiny run not timed)\n",
                "enabled-mode overhead <= 1.5x", ratio);
  } else {
    check(ratio <= 1.5, "enabled-mode overhead <= 1.5x");
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "prof_overhead");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config")
        .begin_object()
        .field("seed", kSeed)
        .field("machines", static_cast<std::uint64_t>(machines))
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("tiny", tiny)
        .end_object();
    w.key("checks")
        .begin_object()
        .field("bit_identical", bit_identical)
        .field("conservation_ok", conservation_ok)
        .field("max_thread_excess_s", max_excess_s)
        .field("report_stable", report_stable)
        .field("phases_present", phases_present)
        .field("baseline_s", base_s)
        .field("profiled_s", profiled_s)
        .field("overhead_ratio", ratio)
        .field("failures", static_cast<std::uint64_t>(failures))
        .end_object();
    w.key("profile").raw(last_contended_json);
    w.end_object();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
  }
  return failures == 0 ? 0 : 1;
}
