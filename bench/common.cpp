#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "harvest/condor/live_experiment.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/sim/sweep.hpp"
#include "harvest/stats/ttest.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace harvest::bench {

const std::vector<double>& paper_costs() {
  static const std::vector<double> kCosts = {50,  100, 200,  250,  400,
                                             500, 750, 1000, 1250, 1500};
  return kCosts;
}

std::vector<trace::AvailabilityTrace> standard_traces(std::size_t machines,
                                                      std::size_t durations,
                                                      std::uint64_t seed) {
  // Every bench's output opens with the exact pool recipe it ran on.
  std::printf("# repro: standard_traces machines=%zu durations=%zu "
              "seed=%llu\n",
              machines, durations, static_cast<unsigned long long>(seed));
  trace::PoolSpec spec;
  spec.machine_count = machines;
  spec.durations_per_machine = durations;
  spec.seed = seed;
  std::vector<trace::AvailabilityTrace> traces;
  traces.reserve(machines);
  for (auto& m : trace::generate_pool(spec)) {
    traces.push_back(std::move(m.trace));
  }
  return traces;
}

const std::array<core::ModelFamily, 4>& families() {
  static const std::array<core::ModelFamily, 4> kFams = {
      core::ModelFamily::kExponential, core::ModelFamily::kWeibull,
      core::ModelFamily::kHyperexp2, core::ModelFamily::kHyperexp3};
  return kFams;
}

std::string family_header(std::size_t i) {
  static const std::array<std::string, 4> kHeaders = {
      "Exp.", "Weib.", "2-ph Hyper.", "3-ph Hyper."};
  return kHeaders.at(i);
}

RowMetrics run_row(const std::vector<trace::AvailabilityTrace>& traces,
                   double cost, const sim::ExperimentConfig& base_config,
                   obs::MetricsRegistry* metrics) {
  // Delegate to the library's sweep engine (one-cost grid, paper families).
  sim::SweepConfig sweep_cfg;
  sweep_cfg.costs = {cost};
  sweep_cfg.families.assign(families().begin(), families().end());
  sweep_cfg.experiment = base_config;
  if (metrics != nullptr) sweep_cfg.experiment.metrics = metrics;
  const auto sweep = sim::run_sweep(traces, sweep_cfg);

  RowMetrics row;
  row.cost = cost;
  for (std::size_t f = 0; f < 4; ++f) {
    row.efficiency[f] = sweep.rows[0].efficiency[f];
    row.network_mb[f] = sweep.rows[0].network_mb[f];
  }
  return row;
}

std::string beaten_letters(const std::array<std::vector<double>, 4>& metric,
                           std::size_t self, double alpha) {
  std::string letters;
  for (std::size_t other = 0; other < metric.size(); ++other) {
    if (other == self) continue;
    const auto t = stats::paired_t_test(metric[self], metric[other], alpha);
    if (t.significant && t.mean_diff > 0.0) {
      if (!letters.empty()) letters += ',';
      letters += kFamilyLetters[other];
    }
  }
  return letters;
}

std::string ci_cell(const std::vector<double>& values, int precision,
                    const std::string& letters) {
  const auto ci = stats::mean_confidence_interval(values);
  return util::format_ci_cell(ci.mean, ci.half_width, precision, letters);
}

void print_figure_series(const std::string& banner,
                         const std::vector<RowMetrics>& rows,
                         bool efficiency_metric) {
  std::printf("# %s\n", banner.c_str());
  std::printf("# cost  exp  weibull  hyperexp2  hyperexp3\n");
  for (const auto& row : rows) {
    std::printf("%6.0f", row.cost);
    for (std::size_t f = 0; f < 4; ++f) {
      const auto& values =
          efficiency_metric ? row.efficiency[f] : row.network_mb[f];
      std::printf("  %12.4f", stats::mean_of(values));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

LiveTableOutcome run_live_table(const std::string& title,
                                const net::BandwidthModel& link,
                                std::size_t placements, std::uint64_t seed) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "Emulated pool + checkpoint manager (DESIGN.md: substitution for the\n"
      "live Condor deployment); measured transfer times parameterize the\n"
      "planner at every checkpoint; 500 MB transfers.\n");
  std::printf("# repro: live_table placements=%zu seed=%llu machines=48 "
              "histories=30\n\n",
              placements, static_cast<unsigned long long>(seed));

  // Pool machines from the standard synthetic generator's ground truths.
  trace::PoolSpec spec;
  spec.machine_count = 48;
  spec.durations_per_machine = 30;  // histories come from collect_traces
  spec.seed = seed;
  std::vector<condor::Machine> machines;
  for (auto& m : trace::generate_pool(spec)) {
    machines.push_back(
        condor::Machine{m.trace.machine_id, m.ground_truth});
  }
  condor::Pool monitor_pool(machines, seed ^ 0xabcdefULL);
  const auto histories = monitor_pool.collect_traces(30);

  LiveTableOutcome out;
  util::TextTable table({"Distribution", "Avg.", "Total Time",
                         "Megabytes Used", "Megabytes/Hour", "Sample Size",
                         "Mean Transfer(s)"});
  const std::array<std::string, 4> names = {"Exponential", "Weibull",
                                            "2-phase Hyper.",
                                            "3-phase Hyper."};
  for (std::size_t f = 0; f < families().size(); ++f) {
    // Same pool seed for every family: each model faces the identical
    // placement sequence (machine, availability period), so differences in
    // the table are attributable to the model, not to sampling luck. (The
    // paper could not pair its live runs this way; we can, and it tightens
    // the comparison without changing any model's expected conditions.)
    condor::Pool pool(machines, seed + 1);
    condor::LiveExperimentConfig cfg;
    cfg.placements = placements;
    cfg.seed = seed * 31;
    condor::LiveExperiment live(pool, histories, link, cfg);
    const auto res = live.run(families()[f]);

    out.family_names.push_back(names[f]);
    out.avg_efficiency.push_back(res.avg_efficiency());
    out.total_time_s.push_back(res.total_time_s());
    out.megabytes.push_back(res.megabytes_used());
    out.mb_per_hour.push_back(res.megabytes_per_hour());
    out.samples.push_back(res.sample_size());
    out.mean_transfer_s.push_back(res.mean_transfer_s());

    table.add_row({names[f], util::format_fixed(res.avg_efficiency(), 3),
                   util::format_fixed(res.total_time_s(), 0),
                   util::format_fixed(res.megabytes_used(), 0),
                   util::format_fixed(res.megabytes_per_hour(), 0),
                   std::to_string(res.sample_size()),
                   util::format_fixed(res.mean_transfer_s(), 0)});
    std::fprintf(stderr, "  [live] %s done\n", names[f].c_str());
  }
  std::printf("%s\n", table.render().c_str());
  return out;
}

std::string parse_json_flag(int& argc, char** argv) {
  std::string path;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return path;
}

void write_bench_json(const std::string& path, const std::string& bench_name,
                      const sim::ExperimentConfig& base_config,
                      const std::vector<RowMetrics>& rows,
                      const obs::MetricsRegistry* registry) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", bench_name);
  w.field("schema_version", 1);
  w.key("buildinfo").raw(obs::build_info_json());

  // Everything needed to regenerate these numbers byte-for-byte.
  w.key("config").begin_object();
  w.field("trace_machines", std::uint64_t{kStandardTraceMachines});
  w.field("trace_durations", std::uint64_t{kStandardTraceDurations});
  w.field("trace_seed", std::uint64_t{kStandardTraceSeed});
  w.field("train_count", std::uint64_t{base_config.train_count});
  w.field("jitter_seed", std::uint64_t{base_config.job.jitter_seed});
  w.field("cost_jitter_sigma", base_config.job.cost_jitter_sigma);
  w.field("checkpoint_size_mb", base_config.job.checkpoint_size_mb);
  w.field("prorate_partial_transfers",
          base_config.job.prorate_partial_transfers);
  w.field("condition_on_age", base_config.condition_on_age);
  w.key("families").begin_array();
  for (std::size_t f = 0; f < families().size(); ++f) {
    w.value(std::string_view(family_header(f)));
  }
  w.end_array();
  w.end_object();

  w.key("rows").begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.field("cost_s", row.cost);
    w.key("families").begin_object();
    for (std::size_t f = 0; f < 4; ++f) {
      const auto eff = stats::mean_confidence_interval(row.efficiency[f]);
      const auto net = stats::mean_confidence_interval(row.network_mb[f]);
      w.key(std::string(1, kFamilyLetters[f])).begin_object();
      w.field("machines", std::uint64_t{row.efficiency[f].size()});
      w.field("efficiency_mean", eff.mean);
      w.field("efficiency_ci95", eff.half_width);
      w.field("network_mb_mean", net.mean);
      w.field("network_mb_ci95", net.half_width);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  if (registry != nullptr) {
    w.key("metrics").raw(registry->snapshot_json());
  }
  w.end_object();

  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_bench_json: cannot open " + path);
  }
  out << w.str() << '\n';
  if (!out) {
    throw std::runtime_error("write_bench_json: write failed: " + path);
  }
  std::fprintf(stderr, "  [json] wrote %s\n", path.c_str());
}

}  // namespace harvest::bench
