// The paper's future-work experiment, closed-loop: N jobs on volatile
// machines all checkpoint through ONE shared link; collisions stretch
// transfers, stretched transfers widen the eviction-vulnerability window,
// and the whole feedback is simulated (sim/parallel_sim). Sweeps job count
// per availability model.
//
// Expected shape: at 1 job all models behave like the single-job study; as
// jobs increase, the exponential's denser checkpoint traffic collides more
// (higher stretch) and its efficiency falls fastest — the
// bandwidth-parsimonious hyperexponentials degrade most gracefully, which
// is exactly the paper's closing argument.
#include <cstdio>

#include "common.hpp"
#include "harvest/sim/parallel_sim.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Parallel checkpointing over a shared link (paper future work) "
      "===\nCoupled discrete-event simulation; campus link (500 MB ~ 110 s "
      "dedicated).\n\n");

  // Machine laws from the standard pool's ground truths.
  trace::PoolSpec spec;
  spec.machine_count = 32;
  spec.durations_per_machine = 1;  // only the laws are needed
  spec.seed = 20050917;
  std::vector<dist::DistributionPtr> laws;
  for (auto& m : trace::generate_pool(spec)) laws.push_back(m.ground_truth);

  util::TextTable table({"jobs", "family", "efficiency", "mean stretch",
                         "GB moved", "evictions"});
  for (std::size_t jobs : {1ul, 4ul, 8ul, 16ul}) {
    for (std::size_t f = 0; f < 4; ++f) {
      sim::ParallelSimConfig cfg;
      cfg.job_count = jobs;
      cfg.horizon_s = 24.0 * 3600.0;
      cfg.family = bench::families()[f];
      cfg.seed = 71;
      const auto res = sim::run_parallel_simulation(laws, cfg);
      table.add_row({std::to_string(jobs),
                     core::to_string(bench::families()[f]),
                     util::format_fixed(res.efficiency(), 3),
                     util::format_fixed(res.mean_stretch(), 2),
                     util::format_fixed(res.total_moved_mb() / 1024.0, 1),
                     std::to_string(res.total_evictions())});
      std::fprintf(stderr, "  [parallel] jobs=%zu %s done\n", jobs,
                   core::to_string(bench::families()[f]).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Headline: efficiency retained under a 4x contention increase. (The
  // 1-job row uses a single machine and a single fit, so it is too noisy to
  // anchor a ratio.)
  std::printf("Efficiency retained when scaling 4 -> 16 jobs:\n");
  for (std::size_t f = 0; f < 4; ++f) {
    sim::ParallelSimConfig four;
    four.job_count = 4;
    four.family = bench::families()[f];
    four.seed = 71;
    sim::ParallelSimConfig sixteen = four;
    sixteen.job_count = 16;
    const double e4 = sim::run_parallel_simulation(laws, four).efficiency();
    const double e16 =
        sim::run_parallel_simulation(laws, sixteen).efficiency();
    std::printf("  %-12s %5.1f%%\n",
                core::to_string(bench::families()[f]).c_str(),
                100.0 * e16 / e4);
  }
  return 0;
}
