// Fleet sharding: does splitting the checkpoint server into K independent
// shards behind a routing policy actually buy back the queueing that a
// single contended server costs a large pool? Sweeps shard count x pool
// size x routing policy (x model family, since the paper's heavy-tailed
// fit is what decides how much traffic hits the fleet in the first place)
// and reports transfer waits, megabytes moved, and the fleet's load
// imbalance.
//
// Gated checks:
//   (a) a 1-shard fleet is bit-identical to the legacy single-server
//       config path (same makespan, bytes, per-job completions, ledger);
//   (b) on the large pool, K=4 strictly reduces mean transfer wait vs K=1
//       under EVERY routing policy;
//   (c) hyperexp2 moves fewer MB than exponential in every fleet cell
//       (checkpoint cost >= 200 s — the Fig. 4 regime);
//   (d) recovery-class mean wait <= checkpoint-class mean wait in every
//       cell with queueing (the traffic classes doing their job).
//
// Flags:
//   --json <path>   machine-readable artifact (config + cells + checks)
//   --tiny          CI smoke: small pool, shards {1,4}, two routings
//   plus the shared server/fleet flags (see server::CliOptions::help_text)
//   — note --fleet-shards/--fleet-routing are swept here, so only the
//   per-server knobs (capacity, slots, ...) are honoured.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/server/cli_options.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

constexpr std::uint64_t kSimSeed = 31;

struct Cell {
  std::size_t shards = 1;
  server::RoutingPolicy routing = server::RoutingPolicy::kStatic;
  core::ModelFamily family = core::ModelFamily::kExponential;
  std::size_t machines = 0;
  double cost_s = 0.0;
  condor::PoolSimResult result;
};

std::vector<condor::TimelinePool::MachineSpec> build_park(std::size_t n) {
  trace::PoolSpec spec;
  spec.machine_count = n;
  spec.durations_per_machine = 1;
  spec.seed = bench::kStandardTraceSeed;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    machines.push_back(std::move(s));
  }
  return machines;
}

const Cell& find_cell(const std::vector<Cell>& cells, std::size_t shards,
                      server::RoutingPolicy routing, core::ModelFamily family,
                      std::size_t machines, double cost) {
  for (const auto& c : cells) {
    if (c.shards == shards && c.routing == routing && c.family == family &&
        c.machines == machines && c.cost_s == cost) {
      return c;
    }
  }
  throw std::logic_error("fleet_sharding: missing swept cell");
}

/// Exact equality across every field the two engine paths report — the
/// one-shard fleet must be indistinguishable from the legacy single-server
/// configuration, byte for byte.
bool results_identical(const condor::PoolSimResult& a,
                       const condor::PoolSimResult& b) {
  if (a.makespan_s != b.makespan_s ||
      a.total_moved_mb() != b.total_moved_mb() ||
      a.jobs.size() != b.jobs.size() ||
      a.server.submitted != b.server.submitted ||
      a.server.completed != b.server.completed ||
      a.server.rejected != b.server.rejected ||
      a.server.interrupted != b.server.interrupted ||
      a.server.moved_mb != b.server.moved_mb ||
      a.server.total_wait_s != b.server.total_wait_s) {
    return false;
  }
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].finished != b.jobs[j].finished ||
        a.jobs[j].completion_s != b.jobs[j].completion_s ||
        a.jobs[j].moved_mb != b.jobs[j].moved_mb ||
        a.jobs[j].server_wait_s != b.jobs[j].server_wait_s) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  server::CliOptions opts;
  try {
    opts = server::CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fleet_sharding: %s\n", e.what());
    return 2;
  }
  bool tiny = false;
  std::string timeline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
    if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
      timeline_path = argv[i + 1];
    }
    if (std::strncmp(argv[i], "--timeline=", 11) == 0) {
      timeline_path = argv[i] + 11;
    }
  }

  server::ServerConfig base;
  base.capacity_mbps = 12.0;
  base.slots = 3;
  base = opts.server_config(base);

  const std::size_t pool = tiny ? 32 : 128;
  const std::vector<std::size_t> shard_counts = tiny
                                                    ? std::vector<std::size_t>{1, 4}
                                                    : std::vector<std::size_t>{1, 2, 4};
  const std::vector<server::RoutingPolicy> routings =
      tiny ? std::vector<server::RoutingPolicy>{
                 server::RoutingPolicy::kStatic,
                 server::RoutingPolicy::kLeastLoaded}
           : std::vector<server::RoutingPolicy>{
                 server::RoutingPolicy::kStatic,
                 server::RoutingPolicy::kHash,
                 server::RoutingPolicy::kLeastLoaded};
  const std::vector<core::ModelFamily> families = {
      core::ModelFamily::kExponential, core::ModelFamily::kHyperexp2};
  const std::vector<double> costs =
      tiny ? std::vector<double>{200.0} : std::vector<double>{200.0, 800.0};

  std::printf(
      "=== Fleet sharding: shards x routing x family "
      "(pool %zu, capacity %.0f MB/s x shard, %zu slots) ===\n\n",
      pool, base.capacity_mbps, base.slots);

  const auto machines = build_park(pool);
  const auto run_cell = [&](std::size_t shards,
                            server::RoutingPolicy routing,
                            core::ModelFamily family,
                            double cost) -> condor::PoolSimResult {
    condor::PoolSimConfig cfg;
    cfg.job_count = pool / 2;
    cfg.work_per_job_s = 4.0 * 3600.0;
    cfg.checkpoint_size_mb = cost * base.capacity_mbps;
    cfg.family = family;
    cfg.seed = kSimSeed;
    server::FleetConfig fc;
    fc.shards = shards;
    fc.routing = routing;
    fc.server = base;
    cfg.scenario.fleet = fc;
    // With --timeline every cell records per-interval telemetry; gate (a)
    // then also proves the timeline does not perturb the simulation (the
    // legacy run below never sets a cadence).
    if (!timeline_path.empty()) cfg.hooks.snapshot_every_s = 600.0;
    return condor::run_pool_simulation(machines, cfg);
  };

  // Gate (a): legacy single-server config vs explicit 1-shard fleet. Same
  // seed, same pool — the results must be indistinguishable.
  bool one_shard_matches = true;
  {
    condor::PoolSimConfig legacy;
    legacy.job_count = pool / 2;
    legacy.work_per_job_s = 4.0 * 3600.0;
    legacy.checkpoint_size_mb = costs.front() * base.capacity_mbps;
    legacy.family = core::ModelFamily::kHyperexp2;
    legacy.seed = kSimSeed;
    legacy.server = base;
    const auto legacy_result = condor::run_pool_simulation(machines, legacy);
    const auto fleet_result =
        run_cell(1, server::RoutingPolicy::kStatic,
                 core::ModelFamily::kHyperexp2, costs.front());
    one_shard_matches = results_identical(legacy_result, fleet_result);
    std::printf("1-shard fleet vs legacy single-server path: %s\n\n",
                one_shard_matches ? "identical" : "MISMATCH");
  }
  int failures = one_shard_matches ? 0 : 1;

  std::vector<Cell> cells;
  util::TextTable table({"shards", "routing", "family", "cost (s)",
                         "finished", "makespan (h)", "GB moved", "wait (s)",
                         "rec wait", "ckpt wait", "imbalance"});
  for (const std::size_t shards : shard_counts) {
    // K=1 routes everything to shard 0, so sweeping routing there would
    // triplicate identical cells; pin it to static.
    const auto cell_routings =
        shards == 1
            ? std::vector<server::RoutingPolicy>{server::RoutingPolicy::kStatic}
            : routings;
    for (const auto routing : cell_routings) {
      for (const auto family : families) {
        for (const double cost : costs) {
          Cell cell;
          cell.shards = shards;
          cell.routing = routing;
          cell.family = family;
          cell.machines = pool;
          cell.cost_s = cost;
          cell.result = run_cell(shards, routing, family, cost);
          const auto& r = cell.result;
          const auto& rec =
              r.server.of(server::TransferKind::kRecovery);
          const auto& ckpt =
              r.server.of(server::TransferKind::kCheckpoint);
          table.add_row(
              {std::to_string(shards),
               shards == 1 ? "-" : server::to_string(routing),
               core::to_string(family), util::format_fixed(cost, 0),
               std::to_string(r.finished_count()) + "/" +
                   std::to_string(r.jobs.size()),
               util::format_fixed(r.makespan_s / 3600.0, 1),
               util::format_fixed(r.total_moved_mb() / 1024.0, 1),
               util::format_fixed(r.server.mean_wait_s(), 1),
               util::format_fixed(rec.mean_wait_s(), 1),
               util::format_fixed(ckpt.mean_wait_s(), 1),
               util::format_fixed(r.fleet.imbalance_ratio(), 2)});
          std::fprintf(stderr,
                       "  [fleet_sharding] K=%zu %s %s C=%.0f\n", shards,
                       server::to_string(routing).c_str(),
                       core::to_string(family).c_str(), cost);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  std::printf("--- pool of %zu machines, %zu jobs x 4 h ---\n%s\n", pool,
              pool / 2, table.render().c_str());

  std::printf("--- checks ---\n");
  // Gate (b): sharding must pay — on the large pool, K=4 strictly cuts the
  // mean transfer wait vs K=1 under every routing policy. The tiny pool is
  // too small to gate (waits can be ~0 either way); it prints as info.
  const bool gate_waits = pool >= 128;
  for (const auto routing : routings) {
    for (const auto family : families) {
      for (const double cost : costs) {
        const auto& k1 = find_cell(cells, 1, server::RoutingPolicy::kStatic,
                                   family, pool, cost);
        const auto& k4 = find_cell(cells, 4, routing, family, pool, cost);
        const double w1 = k1.result.server.mean_wait_s();
        const double w4 = k4.result.server.mean_wait_s();
        const bool ok = w4 < w1;
        if (gate_waits && !ok) ++failures;
        std::printf("  %-12s %-11s C=%-3.0f  wait K=4 %.1f s vs K=1 %.1f s "
                    "(%s)\n",
                    server::to_string(routing).c_str(),
                    core::to_string(family).c_str(), cost, w4, w1,
                    gate_waits ? (ok ? "ok" : "FAIL")
                               : (ok ? "ok, info" : "info"));
      }
    }
  }
  // Gate (c): the paper's model-choice claim must survive sharding — in
  // every fleet cell (same shards/routing/cost), hyperexp2 moves fewer MB.
  for (const auto& c : cells) {
    if (c.family != core::ModelFamily::kHyperexp2 || c.cost_s < 200.0) {
      continue;
    }
    const auto& e = find_cell(cells, c.shards, c.routing,
                              core::ModelFamily::kExponential, c.machines,
                              c.cost_s);
    const bool ok =
        c.result.total_moved_mb() < e.result.total_moved_mb();
    if (!ok) ++failures;
    std::printf("  K=%zu %-12s C=%-3.0f  hyperexp2 %.0f MB vs exponential "
                "%.0f MB (%s)\n",
                c.shards, server::to_string(c.routing).c_str(), c.cost_s,
                c.result.total_moved_mb(), e.result.total_moved_mb(),
                ok ? "ok" : "FAIL");
  }
  // Gate (d): traffic classes — wherever transfers actually queued, the
  // recovery class must not wait longer than the checkpoint class.
  for (const auto& c : cells) {
    const auto& rec = c.result.server.of(server::TransferKind::kRecovery);
    const auto& ckpt =
        c.result.server.of(server::TransferKind::kCheckpoint);
    if (rec.started == 0 || c.result.server.queued == 0) continue;
    const bool ok = rec.mean_wait_s() <= ckpt.mean_wait_s() + 1e-9;
    if (!ok) ++failures;
    std::printf("  K=%zu %-12s %-11s C=%-3.0f  recovery wait %.1f s <= "
                "checkpoint %.1f s (%s)\n",
                c.shards, server::to_string(c.routing).c_str(),
                core::to_string(c.family).c_str(), c.cost_s,
                rec.mean_wait_s(), ckpt.mean_wait_s(), ok ? "ok" : "FAIL");
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!timeline_path.empty()) {
    // Representative cell: the widest fleet under static routing with the
    // first family/cost — the configuration the README's storm walkthrough
    // plots.
    const auto& rep = find_cell(cells, shard_counts.back(),
                                server::RoutingPolicy::kStatic,
                                families.front(), pool, costs.front());
    condor::write_timeline_csv(timeline_path, rep.result.timeline);
    std::printf("timeline: K=%zu %s %s C=%.0f, %zu frames -> %s\n",
                rep.shards, server::to_string(rep.routing).c_str(),
                core::to_string(rep.family).c_str(), rep.cost_s,
                rep.result.timeline.size(), timeline_path.c_str());
  }

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "fleet_sharding");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config").begin_object();
    w.field("pool_seed", std::uint64_t{bench::kStandardTraceSeed});
    w.field("sim_seed", std::uint64_t{kSimSeed});
    w.field("machines", static_cast<std::uint64_t>(pool));
    w.field("server_capacity_mbps", base.capacity_mbps);
    w.field("server_slots", static_cast<std::uint64_t>(base.slots));
    w.end_object();
    w.key("checks").begin_object();
    w.field("one_shard_matches_legacy", one_shard_matches);
    w.field("failures", static_cast<std::uint64_t>(failures));
    w.end_object();
    w.key("cells").begin_array();
    for (const auto& c : cells) {
      const auto& r = c.result;
      w.begin_object();
      w.field("shards", static_cast<std::uint64_t>(c.shards));
      w.field("routing", server::to_string(c.routing));
      w.field("family", core::to_string(c.family));
      w.field("machines", static_cast<std::uint64_t>(c.machines));
      w.field("checkpoint_cost_s", c.cost_s);
      w.field("finished", static_cast<std::uint64_t>(r.finished_count()));
      w.field("jobs", static_cast<std::uint64_t>(r.jobs.size()));
      w.field("makespan_s", r.makespan_s);
      w.field("moved_mb", r.total_moved_mb());
      w.field("mean_wait_s", r.server.mean_wait_s());
      w.field("recovery_mean_wait_s",
              r.server.of(server::TransferKind::kRecovery).mean_wait_s());
      w.field("checkpoint_mean_wait_s",
              r.server.of(server::TransferKind::kCheckpoint).mean_wait_s());
      w.field("imbalance_ratio", r.fleet.imbalance_ratio());
      w.key("shard_moved_mb").begin_array();
      for (const auto& s : r.fleet.shards) w.value(s.moved_mb);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot open " + json_path);
    out << w.str() << '\n';
    std::fprintf(stderr, "  [fleet_sharding] artifact -> %s\n",
                 json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
