// Extension bench: age-aware matchmaking. The paper conditions the
// checkpoint schedule on a machine's uptime; the same future-lifetime logic
// can steer PLACEMENT: prefer the idle machine with the largest expected
// residual availability. This bench compares the three policies on the
// standard pool:
//   random          — uptime-blind (baseline; what most matchmakers do),
//   longest-uptime  — pick the machine that has been idle-available longest,
//   model-ranked    — max E[residual | uptime] under each machine's fitted
//                     model (25-observation training, like the paper).
//
// Expected shape: under decreasing hazards both age-aware policies deliver
// substantially longer availability periods than random, and the delivered
// periods translate into higher job efficiency and less recovery traffic.
#include <cstdio>

#include "common.hpp"
#include "harvest/condor/matchmaker.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Extension: age-aware matchmaking via future-lifetime models "
      "===\n\n");

  // Machines + 25-point fitted models from monitor histories.
  trace::PoolSpec spec;
  spec.machine_count = 64;
  spec.durations_per_machine = 25;
  spec.seed = 20050917;
  std::vector<condor::TimelinePool::MachineSpec> specs;
  std::vector<dist::DistributionPtr> fitted;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    specs.push_back(std::move(s));
    dist::DistributionPtr model;
    try {
      model = core::Planner::fit_model(m.trace.durations,
                                       core::ModelFamily::kWeibull);
    } catch (const std::exception&) {
      model = m.ground_truth;  // degenerate history: fall back
    }
    fitted.push_back(std::move(model));
  }

  constexpr std::size_t kPlacements = 400;
  constexpr double kSpacing = 1800.0;  // a placement every 30 min
  constexpr double kCost = 110.0;

  util::TextTable table({"policy", "mean avail (s)", "median avail (s)",
                         "job efficiency", "recoveries/h"});
  for (condor::MatchPolicy policy :
       {condor::MatchPolicy::kRandom, condor::MatchPolicy::kLongestUptime,
        condor::MatchPolicy::kModelRanked}) {
    condor::TimelinePool pool(specs, 99);  // same timelines per policy
    condor::Matchmaker mm(pool, fitted, policy, 7);
    std::vector<double> delivered;
    delivered.reserve(kPlacements);
    for (std::size_t i = 0; i < kPlacements; ++i) {
      const auto match = mm.place(3600.0 + kSpacing * i);
      if (match) delivered.push_back(match->remaining_s);
    }
    // Run the paper's job cycle over the delivered periods.
    core::IntervalCosts costs;
    costs.checkpoint = kCost;
    costs.recovery = kCost;
    auto model = std::make_shared<dist::Weibull>(0.43, 3409.0);
    auto schedule = core::Planner::make_schedule(model, costs);
    const auto sim = sim::simulate_job_on_trace(delivered, schedule);
    table.add_row(
        {condor::to_string(policy),
         util::format_fixed(stats::mean_of(delivered), 0),
         util::format_fixed(stats::median_of(delivered), 0),
         util::format_fixed(sim.efficiency(), 3),
         util::format_fixed(
             (sim.recoveries_completed + sim.recoveries_interrupted) /
                 (sim.total_time / 3600.0),
             2)});
    std::fprintf(stderr, "  [matchmaking] %s done (%zu placements)\n",
                 condor::to_string(policy).c_str(), delivered.size());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: conditioning placement on uptime (not just the schedule)\n"
      "lengthens delivered availability and cuts recovery traffic — the\n"
      "paper's future-lifetime machinery applied one layer up the stack.\n");
  return 0;
}
