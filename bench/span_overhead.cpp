// Span-tracing overhead and correctness gate: run the pool simulation in
// both engines with and without an obs::SpanStore attached and check that
// the tracing layer is (a) free of behavioral side effects and (b) cheap
// enough to leave on.
//
// Experiments:
//   1. Contended mode (2-shard fleet) — repeated runs over fresh seeds,
//      spans off vs on; compares makespan, every per-job stat, and the
//      fleet ledger field-by-field with exact floating-point equality.
//   2. Uncontended mode — same bit-identity comparison.
//   3. Attribution quality — on the spanned runs, the wait-partition
//      defect max |stagger + admission + scheduler - wait| and the span
//      tree's well-formedness (no orphans, inversions, or overlapping
//      phase siblings).
//
// Gated checks:
//   (a) both engines bit-identical with spans attached — both modes;
//   (b) max partition error <= 1e-9 over every spanned run — both modes;
//   (c) span tree verify() clean — both modes;
//   (d) enabled-mode wall-clock overhead <= 1.5x baseline (full mode
//       only; tiny runs are too short to time meaningfully and print the
//       ratio as info).
//
// Also prints the top-5 slowest-transfer attribution table from the last
// contended run — the EXPERIMENTS.md example.
//
// Flags:
//   --json <path>   machine-readable artifact (config + checks + report)
//   --tiny          CI smoke: smaller park, fewer reps
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20050917;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<condor::TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<condor::TimelinePool::MachineSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    condor::TimelinePool::MachineSpec s;
    s.id = "b" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Exact (bitwise double) equality of two runs' externally visible results.
bool identical(const condor::PoolSimResult& a,
               const condor::PoolSimResult& b) {
  if (a.makespan_s != b.makespan_s) return false;
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.finished != y.finished || x.completion_s != y.completion_s ||
        x.useful_work_s != y.useful_work_s ||
        x.lost_work_s != y.lost_work_s || x.moved_mb != y.moved_mb ||
        x.placements != y.placements || x.evictions != y.evictions ||
        x.server_wait_s != y.server_wait_s ||
        x.rejected_submits != y.rejected_submits) {
      return false;
    }
  }
  const auto& s = a.server;
  const auto& t = b.server;
  return s.submitted == t.submitted && s.started == t.started &&
         s.rejected == t.rejected && s.completed == t.completed &&
         s.interrupted == t.interrupted && s.moved_mb == t.moved_mb &&
         s.total_wait_s == t.total_wait_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  int failures = 0;

  const std::size_t machines = tiny ? 16 : 32;
  const std::size_t jobs = tiny ? 4 : 8;
  const std::size_t reps = tiny ? 2 : 5;
  const auto specs = park(machines);

  std::printf("=== Span tracing: bit-identity + wait-partition gate ===\n");
  std::printf("# repro: seed %llu, %zu machines, %zu jobs, %zu reps, %s\n\n",
              static_cast<unsigned long long>(kSeed), machines, jobs, reps,
              tiny ? "tiny" : "full");

  condor::PoolSimConfig contended;
  contended.job_count = jobs;
  contended.work_per_job_s = 2.0 * 3600.0;
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  fc.server.stagger_window_s = 20.0;
  contended.scenario.fleet = fc;

  condor::PoolSimConfig uncontended;
  uncontended.job_count = jobs;
  uncontended.work_per_job_s = 2.0 * 3600.0;

  bool bit_identical = true;
  double max_partition_error = 0.0;
  bool tree_ok = true;
  double base_s = 0.0;
  double spanned_s = 0.0;
  obs::SpanStore last_report_store;
  std::uint64_t attributed = 0;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const bool server_mode : {true, false}) {
      condor::PoolSimConfig cfg = server_mode ? contended : uncontended;
      cfg.seed = kSeed + rep;
      cfg.hooks.spans = nullptr;
      const auto t0 = Clock::now();
      const auto plain = condor::run_pool_simulation(specs, cfg);
      base_s += seconds_since(t0);

      obs::SpanStore store;
      cfg.hooks.spans = &store;
      const auto t1 = Clock::now();
      const auto spanned = condor::run_pool_simulation(specs, cfg);
      spanned_s += seconds_since(t1);

      if (!identical(plain, spanned)) bit_identical = false;
      max_partition_error =
          std::max(max_partition_error, store.max_partition_error_s());
      if (!store.verify().ok()) tree_ok = false;
      attributed += store.report().total.transfers;
      if (server_mode && rep + 1 == reps) {
        // Keep the last contended run's spans for the attribution table.
        cfg.hooks.spans = &last_report_store;
        (void)condor::run_pool_simulation(specs, cfg);
      }
    }
  }

  const obs::AttributionReport report = last_report_store.report();
  util::TextTable table({"transfer", "job", "shard", "kind", "MB",
                         "slowness s", "stagger s", "admission s",
                         "scheduler s", "dilation s"});
  const std::size_t top = std::min<std::size_t>(5, report.slowest.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& s = report.slowest[i];
    char buf[32];
    const auto num = [&buf](double v) {
      std::snprintf(buf, sizeof buf, "%.2f", v);
      return std::string(buf);
    };
    table.add_row({std::to_string(s.transfer_id), std::to_string(s.job_id),
                   std::to_string(s.shard),
                   s.kind == 1   ? "recovery"
                   : s.kind == 2 ? "proactive"
                                 : "checkpoint",
                   num(s.megabytes), num(s.slowness_s()), num(s.w.stagger_s),
                   num(s.w.admission_queue_s), num(s.w.scheduler_queue_s),
                   num(s.w.dilation_s)});
  }
  std::printf("top-%zu slowest transfers (last contended run):\n%s\n",
              top, table.render().c_str());
  std::printf("attributed transfers over all spanned runs: %llu\n",
              static_cast<unsigned long long>(attributed));

  const double ratio = base_s > 0.0 ? spanned_s / base_s : 1.0;
  std::printf("wall clock: baseline %.3f s, spans on %.3f s, ratio %.3f\n\n",
              base_s, spanned_s, ratio);

  const auto check = [&failures](bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  check(bit_identical, "spans attached => results bit-identical");
  check(max_partition_error <= 1e-9,
        "wait partition exact (max error <= 1e-9)");
  check(tree_ok, "span tree well-formed (verify() clean)");
  check(attributed > 0, "spanned runs attributed transfers");
  if (tiny) {
    std::printf("%-52s info (%.3fx, tiny run not timed)\n",
                "enabled-mode overhead <= 1.5x", ratio);
  } else {
    check(ratio <= 1.5, "enabled-mode overhead <= 1.5x");
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "span_overhead");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config")
        .begin_object()
        .field("seed", kSeed)
        .field("machines", static_cast<std::uint64_t>(machines))
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("reps", static_cast<std::uint64_t>(reps))
        .field("tiny", tiny)
        .end_object();
    w.key("checks")
        .begin_object()
        .field("bit_identical", bit_identical)
        .field("max_partition_error_s", max_partition_error)
        .field("tree_ok", tree_ok)
        .field("attributed_transfers", attributed)
        .field("baseline_s", base_s)
        .field("spanned_s", spanned_s)
        .field("overhead_ratio", ratio)
        .field("failures", static_cast<std::uint64_t>(failures))
        .end_object();
    w.key("attribution").raw(report.to_json());
    w.end_object();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
  }
  return failures == 0 ? 0 : 1;
}
