// Reproduces Table 4: the live experiment with the checkpoint manager on
// the campus network (mean 500 MB transfer ≈ 110 s). Columns: average
// application efficiency, total execution time, megabytes used, MB/hour,
// sample size.
//
// Expected shape (paper): efficiencies clustered around 0.68–0.73 with the
// 2-phase hyperexponential using far fewer megabytes (and MB/h) than the
// exponential; efficiency comparable to Table 1's C=100 row.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace harvest;
  const auto out = bench::run_live_table(
      "=== Table 4: live emulation, checkpoint manager on campus LAN ===",
      net::BandwidthModel::campus(), /*placements=*/85, /*seed=*/2005);

  // Paper cross-reference: efficiency column comparable to Table 1 row
  // C=100; bandwidth column comparable to Table 3 row C=100.
  std::printf("Mean measured transfer across models: ");
  double mean = 0.0;
  for (double t : out.mean_transfer_s) mean += t;
  std::printf("%.0f s (paper: ~110 s)\n", mean / out.mean_transfer_s.size());
  return 0;
}
