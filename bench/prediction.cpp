// Fault-prediction windows as a planning scenario (harvest/predict): sweep
// predictor quality (precision, recall, window) against the model-family
// menu on the standard heavy-tailed park and gate the two properties the
// subsystem promises.
//
// Experiments:
//   1. Bit-identity — the legacy engines must be unperturbed: a run with no
//      predictor and a run with a recall-0 predictor (which can never emit
//      an alert) are compared field-by-field with exact floating-point
//      equality, in BOTH the contended (2-shard fleet) and uncontended
//      engines.
//   2. Quality sweep — families {exponential, weibull, hyperexp2} x
//      predictor {off, poor (p=0.5 r=0.5), good (p=0.9 r=0.8)} over fresh
//      seeds in contended mode; per-cell network MB and lost work.
//   3. Proactive visibility — on a spanned good-predictor run the proactive
//      class must show up as its own traffic class end to end: fleet
//      per-kind ledger, span attribution report, and committed
//      proactive-checkpoint counts.
//
// Gated checks:
//   (a) predictor unset == recall-0 predictor, bit-identical (both engines);
//   (b) proactive transfers visible in the fleet ledger AND the span
//       attribution report on the good-predictor run;
//   (c) good-predictor runs emit alerts and commit proactive checkpoints;
//   (d) full mode only: the good predictor (p 0.9, r 0.8) beats the best
//       reactive family on network MB (paired t over seeds, alpha 0.05)
//       without losing more work (mean lost work <= baseline's). Tiny runs
//       print the comparison as info — two seeds cannot power the test.
//
// Flags:
//   --json <path>   machine-readable artifact (config + checks + cells)
//   --tiny          CI smoke: smaller park, fewer seeds
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/fleet.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/stats/ttest.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

constexpr std::uint64_t kSeed = 20050917;

std::vector<condor::TimelinePool::MachineSpec> park(std::size_t n) {
  std::vector<condor::TimelinePool::MachineSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    condor::TimelinePool::MachineSpec s;
    s.id = "b" + std::to_string(i);
    s.availability_law = std::make_shared<dist::Weibull>(
        0.5, 2500.0 + 300.0 * static_cast<double>(i % 7));
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Exact (bitwise double) equality of two runs' externally visible results.
bool identical(const condor::PoolSimResult& a,
               const condor::PoolSimResult& b) {
  if (a.makespan_s != b.makespan_s) return false;
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.finished != y.finished || x.completion_s != y.completion_s ||
        x.useful_work_s != y.useful_work_s ||
        x.lost_work_s != y.lost_work_s || x.moved_mb != y.moved_mb ||
        x.placements != y.placements || x.evictions != y.evictions ||
        x.server_wait_s != y.server_wait_s ||
        x.rejected_submits != y.rejected_submits ||
        x.proactive_checkpoints != y.proactive_checkpoints) {
      return false;
    }
  }
  const auto& s = a.server;
  const auto& t = b.server;
  return s.submitted == t.submitted && s.started == t.started &&
         s.rejected == t.rejected && s.completed == t.completed &&
         s.interrupted == t.interrupted && s.moved_mb == t.moved_mb &&
         s.total_wait_s == t.total_wait_s;
}

struct Scenario {
  const char* name;
  std::optional<predict::PredictorConfig> predictor;
};

struct Cell {
  std::vector<double> network_mb;  ///< per seed
  std::vector<double> lost_h;
  std::uint64_t proactive = 0;
  std::uint64_t alerts = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  int failures = 0;

  const std::size_t machines = tiny ? 12 : 24;
  const std::size_t jobs = tiny ? 3 : 6;
  const std::size_t seeds = tiny ? 2 : 5;
  const auto specs = park(machines);

  std::printf("=== Fault-prediction windows: quality sweep + gates ===\n");
  std::printf("# repro: seed %llu, %zu machines, %zu jobs, %zu seeds, %s\n\n",
              static_cast<unsigned long long>(kSeed), machines, jobs, seeds,
              tiny ? "tiny" : "full");

  condor::PoolSimConfig base;
  base.job_count = jobs;
  base.work_per_job_s = 2.0 * 3600.0;
  server::FleetConfig fc;
  fc.shards = 2;
  fc.server.capacity_mbps = 12.0;
  fc.server.slots = 2;
  fc.server.stagger_window_s = 20.0;
  base.scenario.fleet = fc;

  // Window sized so an alert's optimal placement d* = (I - C - W)/2 can land
  // before the reactive period ends (C ~ 42 s at 12 MB/s, T_opt ~ 460 s on
  // this park) — a window much longer than T_opt is always covered by the
  // periodic cadence and the policy correctly never fires.
  const predict::PredictorConfig poor{0.5, 0.5, 600.0};
  const predict::PredictorConfig good{0.9, 0.8, 600.0};
  const std::vector<Scenario> scenarios = {
      {"off", std::nullopt},
      {"poor", poor},
      {"good", good},
  };
  const std::vector<std::pair<const char*, core::ModelFamily>> fams = {
      {"exponential", core::ModelFamily::kExponential},
      {"weibull", core::ModelFamily::kWeibull},
      {"hyperexp2", core::ModelFamily::kHyperexp2},
  };

  // --- Experiment 1: predictor unset == recall-0 predictor, bit-exact. ---
  bool bit_identical = true;
  for (const bool contended : {true, false}) {
    for (std::size_t rep = 0; rep < seeds; ++rep) {
      condor::PoolSimConfig cfg = base;
      if (!contended) cfg.scenario.fleet.reset();
      cfg.seed = kSeed + rep;
      const auto plain = condor::run_pool_simulation(specs, cfg);
      predict::PredictorConfig r0 = good;
      r0.recall = 0.0;
      cfg.scenario.predictor = r0;
      const auto silenced = condor::run_pool_simulation(specs, cfg);
      if (!identical(plain, silenced)) bit_identical = false;
      if (silenced.predictor.true_alerts + silenced.predictor.false_alerts !=
          0) {
        bit_identical = false;  // recall 0 must never emit an alert
      }
    }
  }

  // --- Experiment 2: family x predictor-quality sweep (contended). ---
  std::vector<std::vector<Cell>> cells(
      fams.size(), std::vector<Cell>(scenarios.size()));
  std::uint64_t fleet_proactive = 0;
  std::uint64_t span_proactive = 0;
  for (std::size_t f = 0; f < fams.size(); ++f) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      Cell& cell = cells[f][s];
      for (std::size_t rep = 0; rep < seeds; ++rep) {
        condor::PoolSimConfig cfg = base;
        cfg.family = fams[f].second;
        cfg.seed = kSeed + rep;
        cfg.scenario.predictor = scenarios[s].predictor;
        // --- Experiment 3 rides along on one good-predictor run. ---
        obs::SpanStore store;
        const bool spanned = s + 1 == scenarios.size() && rep == 0;
        if (spanned) cfg.hooks.spans = &store;
        const auto res = condor::run_pool_simulation(specs, cfg);
        cell.network_mb.push_back(res.total_moved_mb());
        cell.lost_h.push_back(res.total_lost_work_s() / 3600.0);
        cell.proactive += res.total_proactive_checkpoints();
        cell.alerts +=
            res.predictor.true_alerts + res.predictor.false_alerts;
        if (spanned) {
          fleet_proactive +=
              res.server.of(server::TransferKind::kProactive).submitted;
          span_proactive += store.report().by_kind[2].transfers;
        }
      }
    }
  }

  util::TextTable table({"family", "predictor", "network MB", "lost h",
                         "proactive", "alerts"});
  for (std::size_t f = 0; f < fams.size(); ++f) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const Cell& cell = cells[f][s];
      const auto net = stats::mean_confidence_interval(cell.network_mb);
      const auto lost = stats::mean_confidence_interval(cell.lost_h);
      char net_buf[64];
      std::snprintf(net_buf, sizeof net_buf, "%.0f +- %.0f", net.mean,
                    net.half_width);
      char lost_buf[64];
      std::snprintf(lost_buf, sizeof lost_buf, "%.2f +- %.2f", lost.mean,
                    lost.half_width);
      table.add_row({fams[f].first, scenarios[s].name, net_buf, lost_buf,
                     std::to_string(cell.proactive),
                     std::to_string(cell.alerts)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Best reactive baseline = the family with the lowest mean network MB
  // under "off"; the prediction win must beat that, not a strawman.
  std::size_t best_f = 0;
  for (std::size_t f = 1; f < fams.size(); ++f) {
    if (stats::mean_of(cells[f][0].network_mb) <
        stats::mean_of(cells[best_f][0].network_mb)) {
      best_f = f;
    }
  }
  const Cell& baseline = cells[best_f][0];
  const Cell& predicted = cells[best_f][scenarios.size() - 1];
  const double base_net = stats::mean_of(baseline.network_mb);
  const double pred_net = stats::mean_of(predicted.network_mb);
  const double base_lost = stats::mean_of(baseline.lost_h);
  const double pred_lost = stats::mean_of(predicted.lost_h);
  const auto ttest =
      stats::paired_t_test(baseline.network_mb, predicted.network_mb, 0.05);
  std::printf("baseline: %s off (%.0f MB, %.2f h lost); with good predictor "
              "%.0f MB, %.2f h lost (paired t p=%.4f)\n\n",
              fams[best_f].first, base_net, base_lost, pred_net, pred_lost,
              ttest.p_value);

  std::uint64_t good_proactive = 0;
  std::uint64_t good_alerts = 0;
  for (std::size_t f = 0; f < fams.size(); ++f) {
    good_proactive += cells[f][scenarios.size() - 1].proactive;
    good_alerts += cells[f][scenarios.size() - 1].alerts;
  }

  const auto check = [&failures](bool ok, const char* what) {
    std::printf("%-52s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  check(bit_identical, "no predictor == recall-0 predictor, bit-exact");
  check(fleet_proactive > 0 && span_proactive > 0,
        "proactive class visible (fleet ledger + spans)");
  check(good_alerts > 0 && good_proactive > 0,
        "good predictor alerts and commits proactively");
  const bool network_win = ttest.significant && ttest.mean_diff > 0.0;
  const bool lost_ok = pred_lost <= base_lost;
  if (tiny) {
    std::printf("%-52s info (%.0f -> %.0f MB, lost %.2f -> %.2f h; tiny "
                "run unpowered)\n",
                "good predictor beats best reactive baseline", base_net,
                pred_net, base_lost, pred_lost);
  } else {
    check(network_win && lost_ok,
          "good predictor beats best reactive baseline");
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "prediction");
    w.key("buildinfo").raw(obs::build_info_json());
    w.key("config")
        .begin_object()
        .field("seed", kSeed)
        .field("machines", static_cast<std::uint64_t>(machines))
        .field("jobs", static_cast<std::uint64_t>(jobs))
        .field("seeds", static_cast<std::uint64_t>(seeds))
        .field("tiny", tiny)
        .end_object();
    w.key("cells").begin_array();
    for (std::size_t f = 0; f < fams.size(); ++f) {
      for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const Cell& cell = cells[f][s];
        w.begin_object()
            .field("family", fams[f].first)
            .field("predictor", scenarios[s].name)
            .field("network_mb", stats::mean_of(cell.network_mb))
            .field("lost_h", stats::mean_of(cell.lost_h))
            .field("proactive", cell.proactive)
            .field("alerts", cell.alerts)
            .end_object();
      }
    }
    w.end_array();
    w.key("checks")
        .begin_object()
        .field("bit_identical", bit_identical)
        .field("proactive_visible",
               fleet_proactive > 0 && span_proactive > 0)
        .field("good_predictor_active",
               good_alerts > 0 && good_proactive > 0)
        .field("baseline_family", fams[best_f].first)
        .field("baseline_network_mb", base_net)
        .field("predicted_network_mb", pred_net)
        .field("baseline_lost_h", base_lost)
        .field("predicted_lost_h", pred_lost)
        .field("t_p_value", ttest.p_value)
        .field("network_win", network_win)
        .field("lost_ok", lost_ok)
        .field("failures", static_cast<std::uint64_t>(failures))
        .end_object();
    w.end_object();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
  }
  return failures == 0 ? 0 : 1;
}
