// Reproduces Figure 3 and Table 1: average machine utilization (fraction of
// time in useful work) versus checkpoint/recovery cost, for checkpoint
// schedules computed from exponential, Weibull, 2-phase and 3-phase
// hyperexponential availability models, with 95 % confidence intervals and
// paired-t significance letters.
//
// Expected shape (paper §5.1): all four models land within a few points of
// one another; Weibull leads at small C, the 3-phase hyperexponential at
// large C; efficiency decays from ~0.75 (C=50) to ~0.35–0.45 (C=1500).
#include <cstdio>
#include <exception>

#include "common.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  std::printf(
      "=== Figure 3 / Table 1: mean efficiency vs checkpoint cost ===\n"
      "Synthetic Condor pool (see DESIGN.md: substitution for the UW "
      "traces);\ntrain = first 25 durations per machine, C == R, 500 MB "
      "checkpoints.\n\n");

  const auto traces = bench::standard_traces();
  sim::ExperimentConfig base;

  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics = json_path.empty() ? nullptr : &registry;
  if (metrics != nullptr) obs::set_timing_enabled(true);

  std::vector<bench::RowMetrics> rows;
  rows.reserve(bench::paper_costs().size());
  for (double cost : bench::paper_costs()) {
    rows.push_back(bench::run_row(traces, cost, base, metrics));
    std::fprintf(stderr, "  [fig3] cost %.0f done (%zu paired machines)\n",
                 cost, rows.back().efficiency[0].size());
  }

  bench::print_figure_series("FIGURE 3: mean efficiency per model", rows,
                             /*efficiency_metric=*/true);

  util::TextTable table({"CTime", "Exp.", "Weib.", "2-ph Hyper.",
                         "3-ph Hyper."});
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.push_back(util::format_fixed(row.cost, 0));
    for (std::size_t f = 0; f < 4; ++f) {
      cells.push_back(bench::ci_cell(
          row.efficiency[f], 3, bench::beaten_letters(row.efficiency, f)));
    }
    table.add_row(std::move(cells));
  }
  std::printf(
      "Table 1: 95%% CIs for mean efficiency; letters mark models whose\n"
      "efficiency is statistically significantly smaller (paired t, .05).\n\n"
      "%s\n",
      table.render().c_str());

  if (!json_path.empty()) {
    try {
      bench::write_bench_json(json_path, "fig3_table1_efficiency", base, rows,
                              metrics);
    } catch (const std::exception& e) {
      // Exit normally so the tables above still flush to a redirected
      // stdout; only the artifact is lost.
      std::fprintf(stderr, "fig3: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
