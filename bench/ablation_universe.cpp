// Ablation: Condor execution universes. The paper runs in the Vanilla
// universe (terminate-on-eviction); the Standard universe instead grants an
// evicted job a grace window to push a final checkpoint. This bench sweeps
// the grace window in the live emulation and reports the efficiency gained
// and the extra network traffic paid.
//
// Expected shape: even a grace of one mean transfer time (~110 s) rescues
// most in-flight work (efficiency up several points), at the price of more
// bytes on the wire — and the exponential model, which keeps intervals
// short, benefits least because it had less unsaved work at stake.
#include <cstdio>

#include "common.hpp"
#include "harvest/condor/live_experiment.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: Vanilla (grace 0) vs Standard-universe eviction grace "
      "===\n\n");

  trace::PoolSpec spec;
  spec.machine_count = 48;
  spec.durations_per_machine = 30;
  spec.seed = 2005;
  std::vector<condor::Machine> machines;
  for (auto& m : trace::generate_pool(spec)) {
    machines.push_back(condor::Machine{m.trace.machine_id, m.ground_truth});
  }
  condor::Pool monitor_pool(machines, 3);
  const auto histories = monitor_pool.collect_traces(30);

  util::TextTable table({"grace (s)", "family", "efficiency", "MB used",
                         "saved by grace"});
  for (double grace : {0.0, 110.0, 300.0}) {
    for (std::size_t f : {0ul, 1ul, 2ul}) {
      condor::Pool pool(machines, 50);  // identical placements everywhere
      condor::LiveExperimentConfig cfg;
      cfg.placements = 100;
      cfg.seed = 1234;
      cfg.eviction_grace_s = grace;
      condor::LiveExperiment live(pool, histories,
                                  net::BandwidthModel::campus(), cfg);
      const auto res = live.run(bench::families()[f]);
      std::size_t saved = 0;
      for (const auto& p : res.placements) {
        if (p.saved_by_grace) ++saved;
      }
      table.add_row({util::format_fixed(grace, 0),
                     core::to_string(bench::families()[f]),
                     util::format_fixed(res.avg_efficiency(), 3),
                     util::format_fixed(res.megabytes_used(), 0),
                     std::to_string(saved)});
      std::fprintf(stderr, "  [universe] grace=%.0f %s done\n", grace,
                   core::to_string(bench::families()[f]).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
