// Ablation: hyperexponential phase count. The paper fits 2- and 3-phase
// models; this sweep runs k = 1..4 (k = 1 is the exponential) to show where
// additional phases stop paying — in fit quality (AIC), in efficiency, and
// in network load.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/trace/trace.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: hyperexponential phase count k = 1..4 (C = 500 s) "
      "===\n\n");

  const auto traces = bench::standard_traces(120, 100);

  // Mean AIC of the k-phase EM fit across machines (training prefixes).
  std::map<int, double> mean_aic;
  std::map<int, int> fit_count;
  for (const auto& t : traces) {
    if (t.size() < 26) continue;
    const auto split = trace::split_train_test(t, 25);
    for (int k = 1; k <= 4; ++k) {
      try {
        const auto r = fit::fit_hyperexp_em(split.train, k);
        const double params = 2.0 * k - 1.0;
        mean_aic[k] += 2.0 * params - 2.0 * r.log_likelihood;
        fit_count[k] += 1;
      } catch (const std::exception&) {
      }
    }
  }

  util::TextTable table({"k", "mean AIC (train)", "mean eff", "mean MB"});
  for (int k = 1; k <= 4; ++k) {
    // Simulate with a k-phase model via the experiment engine: reuse the
    // planner for k in {2,3}; handle 1 and 4 through the EM fitter
    // directly.
    sim::ExperimentConfig cfg;
    cfg.checkpoint_cost_s = 500.0;

    double mean_eff = 0.0;
    double mean_mb = 0.0;
    int n = 0;
    for (const auto& t : traces) {
      if (t.size() < 26) continue;
      const auto split = trace::split_train_test(t, 25);
      dist::DistributionPtr model;
      try {
        model = std::make_shared<dist::Hyperexponential>(
            fit::fit_hyperexp_em(split.train, k).model);
      } catch (const std::exception&) {
        continue;
      }
      core::IntervalCosts costs;
      costs.checkpoint = 500.0;
      costs.recovery = 500.0;
      auto schedule = core::Planner::make_schedule(model, costs);
      const auto sim = sim::simulate_job_on_trace(split.test, schedule);
      mean_eff += sim.efficiency();
      mean_mb += sim.network_mb;
      ++n;
    }
    mean_eff /= n;
    mean_mb /= n;
    table.add_row({std::to_string(k),
                   util::format_fixed(mean_aic[k] / fit_count[k], 1),
                   util::format_fixed(mean_eff, 3),
                   util::format_fixed(mean_mb, 0)});
    std::fprintf(stderr, "  [ablation-phases] k=%d done (n=%d)\n", k, n);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: k=2 captures the bimodal structure; k=3 buys little; k=4\n"
      "overfits 25-point training sets (AIC grows with no sim benefit).\n");
  return 0;
}
