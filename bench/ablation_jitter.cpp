// Ablation: variable transfer costs. The paper's Markov model holds C and R
// constant while the live network varies per transfer; §5.3 asserts this
// explains only "small discrepancies". This bench quantifies that: the
// schedule still plans with the constant cost, but the simulated wire time
// of every transfer gets a mean-one lognormal multiplier of growing sigma.
//
// Expected shape: efficiency and bandwidth drift only slightly even at
// WAN-like sigma (~0.35), vindicating the constant-cost Markov model;
// extreme sigma (>= 0.6) starts to visibly hurt (long transfers are the
// ones evictions catch — Jensen works against you in the loss term).
#include <cstdio>

#include "common.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: per-transfer cost variability (schedule plans with the "
      "constant) ===\n\n");

  const auto traces = bench::standard_traces(120, 100);
  util::TextTable table({"sigma", "family", "mean eff", "eff vs const",
                         "mean MB", "MB vs const"});
  for (std::size_t f : {0ul, 2ul}) {  // exponential and hyperexp2
    double base_eff = 0.0;
    double base_mb = 0.0;
    for (double sigma : {0.0, 0.15, 0.35, 0.6}) {
      sim::ExperimentConfig cfg;
      cfg.checkpoint_cost_s = 250.0;
      cfg.job.cost_jitter_sigma = sigma;
      const auto res =
          sim::run_trace_experiment(traces, bench::families()[f], cfg);
      const double eff = stats::mean_of(res.efficiencies());
      const double mb = stats::mean_of(res.network_mbs());
      if (sigma == 0.0) {
        base_eff = eff;
        base_mb = mb;
      }
      table.add_row({util::format_fixed(sigma, 2),
                     core::to_string(bench::families()[f]),
                     util::format_fixed(eff, 3),
                     util::format_fixed(100.0 * (eff / base_eff - 1.0), 1) +
                         "%",
                     util::format_fixed(mb, 0),
                     util::format_fixed(100.0 * (mb / base_mb - 1.0), 1) +
                         "%"});
      std::fprintf(stderr, "  [jitter] sigma=%.2f %s done\n", sigma,
                   core::to_string(bench::families()[f]).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: WAN-like variability (sigma ~ 0.35) moves the metrics only\n"
      "a few percent — the constant-C Markov model is a sound abstraction,\n"
      "as the paper's validation (§5.3) claims.\n");
  return 0;
}
