// Checkpoint-server contention: the paper's flagged future work made
// measurable. Every job in the emulated pool pushes its recovery and
// checkpoint transfers through ONE contended CheckpointServer; this bench
// sweeps scheduling policy x pool size x checkpoint cost and reports what
// the site pays (network GB, server queueing) and what the user feels
// (makespan, lost work).
//
// Expected shape, mirroring the paper's central claim under contention:
// the heavy-tailed hyperexp2 fit checkpoints less often than the
// exponential fit, so at equal cost it moves fewer megabytes AND queues
// less at the server — the model choice compounds through the shared pipe.
// The urgency policy spends its queue-jumping on transfers racing imminent
// evictions, so it should lose no more committed work than FIFO.
//
// Flags:
//   --json <path>   machine-readable artifact (config + every swept cell)
//   --tiny          CI smoke: one small pool, two policies, one cost
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/server/checkpoint_server.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

struct Cell {
  server::SchedulerPolicy policy = server::SchedulerPolicy::kFifo;
  core::ModelFamily family = core::ModelFamily::kExponential;
  std::size_t machines = 0;
  double cost_s = 0.0;  ///< checkpoint_size_mb / server capacity
  condor::PoolSimResult result;
};

std::vector<condor::TimelinePool::MachineSpec> build_park(std::size_t n) {
  trace::PoolSpec spec;
  spec.machine_count = n;
  spec.durations_per_machine = 1;
  spec.seed = bench::kStandardTraceSeed;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    machines.push_back(std::move(s));
  }
  return machines;
}

double lost_work_s(const condor::PoolSimResult& r) {
  return r.total_lost_work_s();
}

void write_artifact(const std::string& path, const std::vector<Cell>& cells,
                    double capacity_mbps, std::size_t slots) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "server_contention");
  w.key("config").begin_object();
  w.field("pool_seed", std::uint64_t{bench::kStandardTraceSeed});
  w.field("sim_seed", std::uint64_t{31});
  w.field("server_capacity_mbps", capacity_mbps);
  w.field("server_slots", std::uint64_t{slots});
  w.end_object();
  w.key("cells").begin_array();
  for (const auto& c : cells) {
    const auto& r = c.result;
    w.begin_object();
    w.field("policy", server::to_string(c.policy));
    w.field("family", core::to_string(c.family));
    w.field("machines", static_cast<std::uint64_t>(c.machines));
    w.field("checkpoint_cost_s", c.cost_s);
    w.field("finished", static_cast<std::uint64_t>(r.finished_count()));
    w.field("jobs", static_cast<std::uint64_t>(r.jobs.size()));
    w.field("makespan_s", r.makespan_s);
    w.field("mean_completion_s", r.mean_completion_s());
    w.field("moved_mb", r.total_moved_mb());
    w.field("lost_work_s", lost_work_s(r));
    w.field("evictions", static_cast<std::uint64_t>(r.total_evictions()));
    w.key("server").begin_object();
    w.field("submitted", r.server.submitted);
    w.field("completed", r.server.completed);
    w.field("interrupted", r.server.interrupted);
    w.field("rejected", r.server.rejected);
    w.field("mean_wait_s", r.server.mean_wait_s());
    w.field("mean_service_s", r.server.mean_service_s());
    w.field("peak_queue_depth",
            static_cast<std::uint64_t>(r.server.peak_queue_depth));
    w.field("peak_active", static_cast<std::uint64_t>(r.server.peak_active));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << w.str() << '\n';
  std::fprintf(stderr, "  [server_contention] artifact -> %s\n", path.c_str());
}

const Cell& find_cell(const std::vector<Cell>& cells,
                      server::SchedulerPolicy policy, core::ModelFamily family,
                      std::size_t machines, double cost) {
  for (const auto& c : cells) {
    if (c.policy == policy && c.family == family && c.machines == machines &&
        c.cost_s == cost) {
      return c;
    }
  }
  throw std::logic_error("server_contention: missing swept cell");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  const double capacity_mbps = 12.0;
  const std::size_t slots = 3;
  const std::vector<std::size_t> pools =
      tiny ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 48};
  const std::vector<double> costs =
      tiny ? std::vector<double>{200.0}
           : std::vector<double>{50.0, 200.0, 800.0};
  const std::vector<server::SchedulerPolicy> policies =
      tiny ? std::vector<server::SchedulerPolicy>{
                 server::SchedulerPolicy::kFifo,
                 server::SchedulerPolicy::kFair}
           : std::vector<server::SchedulerPolicy>{
                 server::SchedulerPolicy::kFifo,
                 server::SchedulerPolicy::kFair,
                 server::SchedulerPolicy::kUrgency};
  const std::vector<core::ModelFamily> families = {
      core::ModelFamily::kExponential, core::ModelFamily::kHyperexp2};

  std::printf(
      "=== Checkpoint-server contention: policy x pool x cost "
      "(capacity %.0f MB/s, %zu slots) ===\n\n",
      capacity_mbps, slots);

  std::vector<Cell> cells;
  for (const std::size_t pool : pools) {
    const auto machines = build_park(pool);
    util::TextTable table({"policy", "family", "cost (s)", "finished",
                           "makespan (h)", "GB moved", "wait (s)",
                           "lost (h)", "evict", "reject"});
    for (const auto policy : policies) {
      for (const auto family : families) {
        for (const double cost : costs) {
          condor::PoolSimConfig cfg;
          cfg.job_count = pool / 2;
          cfg.work_per_job_s = 4.0 * 3600.0;
          cfg.checkpoint_size_mb = cost * capacity_mbps;
          cfg.family = family;
          cfg.seed = 31;
          cfg.server = server::ServerConfig{};
          cfg.server->capacity_mbps = capacity_mbps;
          cfg.server->slots =
              policy == server::SchedulerPolicy::kFair ? 0 : slots;
          cfg.server->policy = policy;
          Cell cell;
          cell.policy = policy;
          cell.family = family;
          cell.machines = pool;
          cell.cost_s = cost;
          cell.result = condor::run_pool_simulation(machines, cfg);
          const auto& r = cell.result;
          table.add_row(
              {server::to_string(policy), core::to_string(family),
               util::format_fixed(cost, 0),
               std::to_string(r.finished_count()) + "/" +
                   std::to_string(r.jobs.size()),
               util::format_fixed(r.makespan_s / 3600.0, 1),
               util::format_fixed(r.total_moved_mb() / 1024.0, 1),
               util::format_fixed(r.server.mean_wait_s(), 1),
               util::format_fixed(lost_work_s(r) / 3600.0, 1),
               std::to_string(r.total_evictions()),
               std::to_string(static_cast<unsigned long>(r.server.rejected))});
          cells.push_back(std::move(cell));
          std::fprintf(stderr, "  [server_contention] pool=%zu %s %s C=%.0f\n",
                       pool, server::to_string(policy).c_str(),
                       core::to_string(family).c_str(), cost);
        }
      }
    }
    std::printf("--- pool of %zu machines, %zu jobs x 4 h ---\n%s\n", pool,
                pool / 2, table.render().c_str());
  }

  // The paper's claim, compounded through the shared pipe: at checkpoint
  // costs >= 200 s (the Fig. 4 regime) the heavy-tailed fit should move
  // fewer megabytes AND queue less than the exponential fit, and urgency
  // should lose no more committed work than FIFO. Below 200 s checkpoints
  // are cheap, absolute losses are small, and single-seed cell differences
  // are noise — those rows print for context but are not gated.
  std::printf("--- checks ---\n");
  int failures = 0;
  for (const std::size_t pool : pools) {
    for (const auto policy : policies) {
      for (const double cost : costs) {
        if (cost < 200.0) continue;
        const auto& exp_cell = find_cell(
            cells, policy, core::ModelFamily::kExponential, pool, cost);
        const auto& hyp_cell = find_cell(
            cells, policy, core::ModelFamily::kHyperexp2, pool, cost);
        const bool less_mb = hyp_cell.result.total_moved_mb() <
                             exp_cell.result.total_moved_mb();
        const bool less_wait = hyp_cell.result.server.mean_wait_s() <=
                               exp_cell.result.server.mean_wait_s();
        if (!less_mb || !less_wait) ++failures;
        std::printf(
            "  pool=%-2zu %-7s C=%-3.0f  hyperexp2 vs exponential: "
            "MB %.0f vs %.0f (%s), wait %.1f vs %.1f s (%s)\n",
            pool, server::to_string(policy).c_str(), cost,
            hyp_cell.result.total_moved_mb(),
            exp_cell.result.total_moved_mb(), less_mb ? "ok" : "FAIL",
            hyp_cell.result.server.mean_wait_s(),
            exp_cell.result.server.mean_wait_s(), less_wait ? "ok" : "FAIL");
      }
    }
  }
  if (!tiny) {
    for (const std::size_t pool : pools) {
      for (const auto family : families) {
        for (const double cost : costs) {
          const auto& fifo = find_cell(
              cells, server::SchedulerPolicy::kFifo, family, pool, cost);
          const auto& urgency = find_cell(
              cells, server::SchedulerPolicy::kUrgency, family, pool, cost);
          const bool gated = cost >= 200.0;
          const double slack = 1e-9 + 0.05 * lost_work_s(fifo.result);
          const bool ok = lost_work_s(urgency.result) <=
                          lost_work_s(fifo.result) + slack;
          if (gated && !ok) ++failures;
          std::printf(
              "  pool=%-2zu %-11s C=%-3.0f  urgency lost %.2f h vs fifo "
              "%.2f h (%s)\n",
              pool, core::to_string(family).c_str(), cost,
              lost_work_s(urgency.result) / 3600.0,
              lost_work_s(fifo.result) / 3600.0,
              gated ? (ok ? "ok" : "FAIL") : (ok ? "ok, info" : "info"));
        }
      }
    }
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    write_artifact(json_path, cells, capacity_mbps, slots);
  }
  return failures == 0 ? 0 : 1;
}
