// Checkpoint-server contention: the paper's flagged future work made
// measurable. Every job in the emulated pool pushes its recovery and
// checkpoint transfers through a contended checkpoint server (a 1-shard
// fleet unless --fleet-shards says otherwise); this bench sweeps scheduling
// policy x pool size x checkpoint cost and reports what the site pays
// (network GB, server queueing) and what the user feels (makespan, lost
// work).
//
// Expected shape, mirroring the paper's central claim under contention:
// the heavy-tailed hyperexp2 fit checkpoints less often than the
// exponential fit, so at equal cost it moves fewer megabytes AND queues
// less at the server — the model choice compounds through the shared pipe.
// The urgency policy spends its queue-jumping on transfers racing imminent
// evictions, so it should lose no more committed work than FIFO.
//
// Every cell is replicated over several simulation seeds and the gated
// comparisons are PAIRED: the per-seed difference (same seed, same pool,
// different model/policy) is what gets a 95 % confidence interval, so one
// lucky seed cannot pass or fail a gate on its own.
//
// Flags:
//   --json <path>   machine-readable artifact (config + every swept cell)
//   --tiny          CI smoke: one small pool, two policies, one cost, 1 seed
//   --seeds <n>     replications per cell (default 3; 1 skips the CIs)
//   plus the shared server/fleet flags (see server::CliOptions::help_text).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "harvest/obs/buildinfo.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/obs/json.hpp"
#include "harvest/server/cli_options.hpp"
#include "harvest/stats/summary.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

using namespace harvest;

constexpr std::uint64_t kBaseSimSeed = 31;

struct Cell {
  server::SchedulerPolicy policy = server::SchedulerPolicy::kFifo;
  core::ModelFamily family = core::ModelFamily::kExponential;
  std::size_t machines = 0;
  double cost_s = 0.0;  ///< checkpoint_size_mb / server capacity
  // One entry per replication seed, index-aligned across cells (same index
  // ⇒ same seed, which is what makes the gate comparisons paired).
  std::vector<double> moved_mb;
  std::vector<double> mean_wait_s;
  std::vector<double> ckpt_wait_s;  ///< checkpoint-class mean wait
  std::vector<double> lost_work_s;
  std::vector<double> makespan_s;
  std::vector<double> finished;
  std::vector<double> rejected;
  std::vector<double> evictions;
  std::size_t jobs = 0;
  condor::PoolSimResult last;  ///< last seed's full result (for detail fields)
};

double mean_of(const std::vector<double>& xs) { return stats::mean_of(xs); }

/// "x.x ± y.y" when replicated, plain mean otherwise.
std::string pm_cell(const std::vector<double>& xs, int precision,
                    double scale = 1.0) {
  std::vector<double> scaled;
  scaled.reserve(xs.size());
  for (double x : xs) scaled.push_back(x * scale);
  if (scaled.size() < 2) return util::format_fixed(scaled.front(), precision);
  const auto ci = stats::mean_confidence_interval(scaled);
  return util::format_fixed(ci.mean, precision) + "±" +
         util::format_fixed(ci.half_width, precision);
}

std::vector<condor::TimelinePool::MachineSpec> build_park(std::size_t n) {
  trace::PoolSpec spec;
  spec.machine_count = n;
  spec.durations_per_machine = 1;
  spec.seed = bench::kStandardTraceSeed;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    machines.push_back(std::move(s));
  }
  return machines;
}

/// Paired per-seed difference a - b for one metric.
std::vector<double> paired_diff(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::logic_error("server_contention: unpaired replication vectors");
  }
  std::vector<double> d(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) d[i] = a[i] - b[i];
  return d;
}

/// "mean [±hw]" for a paired difference, CI only when replicated.
std::string diff_str(const std::vector<double>& d, int precision) {
  if (d.size() < 2) return util::format_fixed(d.front(), precision);
  const auto ci = stats::mean_confidence_interval(d);
  return util::format_fixed(ci.mean, precision) + " ±" +
         util::format_fixed(ci.half_width, precision);
}

/// Gate rule for "a should be no worse than b by more than slack": with a
/// single seed, the point estimate decides; with replications, fail only
/// when the regression is SIGNIFICANT — the whole 95 % CI of the paired
/// per-seed difference sits above the slack.
bool not_significantly_worse(const std::vector<double>& diff, double slack) {
  if (mean_of(diff) <= slack) return true;
  if (diff.size() < 2) return false;
  return stats::mean_confidence_interval(diff).lo() <= slack;
}

void write_artifact(const std::string& path, const std::vector<Cell>& cells,
                    const server::FleetConfig& fleet, std::size_t seeds) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "server_contention");
  w.key("buildinfo").raw(obs::build_info_json());
  w.key("config").begin_object();
  w.field("pool_seed", std::uint64_t{bench::kStandardTraceSeed});
  w.field("sim_seed_base", std::uint64_t{kBaseSimSeed});
  w.field("seeds", static_cast<std::uint64_t>(seeds));
  w.field("server_capacity_mbps", fleet.server.capacity_mbps);
  w.field("server_slots", static_cast<std::uint64_t>(fleet.server.slots));
  w.field("fleet_shards", static_cast<std::uint64_t>(fleet.shards));
  w.field("fleet_routing", server::to_string(fleet.routing));
  w.end_object();
  w.key("cells").begin_array();
  for (const auto& c : cells) {
    const auto& r = c.last;
    w.begin_object();
    w.field("policy", server::to_string(c.policy));
    w.field("family", core::to_string(c.family));
    w.field("machines", static_cast<std::uint64_t>(c.machines));
    w.field("checkpoint_cost_s", c.cost_s);
    // Seed-mean headline metrics (what the gates compare).
    w.field("finished", mean_of(c.finished));
    w.field("jobs", static_cast<std::uint64_t>(c.jobs));
    w.field("makespan_s", mean_of(c.makespan_s));
    w.field("moved_mb", mean_of(c.moved_mb));
    w.field("lost_work_s", mean_of(c.lost_work_s));
    w.field("evictions", mean_of(c.evictions));
    w.key("server").begin_object();
    w.field("submitted", r.server.submitted);
    w.field("completed", r.server.completed);
    w.field("interrupted", r.server.interrupted);
    w.field("rejected", mean_of(c.rejected));
    w.field("mean_wait_s", mean_of(c.mean_wait_s));
    w.field("mean_service_s", r.server.mean_service_s());
    w.field("peak_queue_depth",
            static_cast<std::uint64_t>(r.server.peak_queue_depth));
    w.field("peak_active", static_cast<std::uint64_t>(r.server.peak_active));
    w.field("checkpoint_mean_wait_s",
            r.server.of(server::TransferKind::kCheckpoint).mean_wait_s());
    w.field("recovery_mean_wait_s",
            r.server.of(server::TransferKind::kRecovery).mean_wait_s());
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << w.str() << '\n';
  std::fprintf(stderr, "  [server_contention] artifact -> %s\n", path.c_str());
}

const Cell& find_cell(const std::vector<Cell>& cells,
                      server::SchedulerPolicy policy, core::ModelFamily family,
                      std::size_t machines, double cost) {
  for (const auto& c : cells) {
    if (c.policy == policy && c.family == family && c.machines == machines &&
        c.cost_s == cost) {
      return c;
    }
  }
  throw std::logic_error("server_contention: missing swept cell");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  server::CliOptions opts;
  try {
    opts = server::CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_server_contention: %s\n", e.what());
    return 2;
  }
  bool tiny = false;
  std::size_t seeds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoul(argv[i + 1], nullptr, 10);
    }
  }
  if (seeds == 0) seeds = tiny ? 1 : 3;

  // Bench defaults, overridable through the shared server/fleet flags.
  server::ServerConfig base;
  base.capacity_mbps = 12.0;
  base.slots = 3;
  base = opts.server_config(base);
  server::FleetConfig fleet_base = opts.fleet_config(base);

  const std::vector<std::size_t> pools =
      tiny ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 48};
  const std::vector<double> costs =
      tiny ? std::vector<double>{200.0}
           : std::vector<double>{50.0, 200.0, 800.0};
  const std::vector<server::SchedulerPolicy> policies =
      tiny ? std::vector<server::SchedulerPolicy>{
                 server::SchedulerPolicy::kFifo,
                 server::SchedulerPolicy::kFair}
           : std::vector<server::SchedulerPolicy>{
                 server::SchedulerPolicy::kFifo,
                 server::SchedulerPolicy::kFair,
                 server::SchedulerPolicy::kUrgency};
  const std::vector<core::ModelFamily> families = {
      core::ModelFamily::kExponential, core::ModelFamily::kHyperexp2};

  std::printf(
      "=== Checkpoint-server contention: policy x pool x cost "
      "(capacity %.0f MB/s, %zu slots, %zu shard%s, %zu seed%s) ===\n\n",
      base.capacity_mbps, base.slots, fleet_base.shards,
      fleet_base.shards == 1 ? "" : "s", seeds, seeds == 1 ? "" : "s");

  // Surface the config self-validation once per swept policy (e.g. fair
  // ignoring the slot pool) instead of silently adjusting.
  for (const auto policy : policies) {
    server::FleetConfig fc = fleet_base;
    fc.server.policy = policy;
    for (const auto& warning : fc.validate().warnings) {
      std::fprintf(stderr, "  [server_contention] warning (%s): %s\n",
                   server::to_string(policy).c_str(), warning.c_str());
    }
  }

  std::vector<Cell> cells;
  for (const std::size_t pool : pools) {
    const auto machines = build_park(pool);
    util::TextTable table({"policy", "family", "cost (s)", "finished",
                           "makespan (h)", "GB moved", "wait (s)",
                           "lost (h)", "evict", "reject"});
    for (const auto policy : policies) {
      for (const auto family : families) {
        for (const double cost : costs) {
          Cell cell;
          cell.policy = policy;
          cell.family = family;
          cell.machines = pool;
          cell.cost_s = cost;
          cell.jobs = pool / 2;
          for (std::size_t k = 0; k < seeds; ++k) {
            condor::PoolSimConfig cfg;
            cfg.job_count = pool / 2;
            cfg.work_per_job_s = 4.0 * 3600.0;
            cfg.checkpoint_size_mb = cost * base.capacity_mbps;
            cfg.family = family;
            cfg.seed = kBaseSimSeed + k;
            cfg.scenario.fleet = fleet_base;
            cfg.scenario.fleet->server.policy = policy;
            auto r = condor::run_pool_simulation(machines, cfg);
            cell.moved_mb.push_back(r.total_moved_mb());
            cell.mean_wait_s.push_back(r.server.mean_wait_s());
            cell.ckpt_wait_s.push_back(
                r.server.of(server::TransferKind::kCheckpoint)
                    .mean_wait_s());
            cell.lost_work_s.push_back(r.total_lost_work_s());
            cell.makespan_s.push_back(r.makespan_s);
            cell.finished.push_back(
                static_cast<double>(r.finished_count()));
            cell.rejected.push_back(static_cast<double>(r.server.rejected));
            cell.evictions.push_back(
                static_cast<double>(r.total_evictions()));
            cell.last = std::move(r);
          }
          table.add_row(
              {server::to_string(policy), core::to_string(family),
               util::format_fixed(cost, 0),
               util::format_fixed(mean_of(cell.finished), 1) + "/" +
                   std::to_string(cell.jobs),
               pm_cell(cell.makespan_s, 1, 1.0 / 3600.0),
               pm_cell(cell.moved_mb, 1, 1.0 / 1024.0),
               pm_cell(cell.mean_wait_s, 1),
               pm_cell(cell.lost_work_s, 1, 1.0 / 3600.0),
               util::format_fixed(mean_of(cell.evictions), 1),
               util::format_fixed(mean_of(cell.rejected), 1)});
          std::fprintf(stderr,
                       "  [server_contention] pool=%zu %s %s C=%.0f "
                       "(%zu seeds)\n",
                       pool, server::to_string(policy).c_str(),
                       core::to_string(family).c_str(), cost, seeds);
          cells.push_back(std::move(cell));
        }
      }
    }
    std::printf("--- pool of %zu machines, %zu jobs x 4 h ---\n%s\n", pool,
                pool / 2, table.render().c_str());
  }

  // The paper's claim, compounded through the shared pipe: at checkpoint
  // costs >= 200 s (the Fig. 4 regime) the heavy-tailed fit should move
  // fewer megabytes AND queue less than the exponential fit, and urgency
  // should lose no more committed work than FIFO. The comparisons are
  // paired per seed; with --seeds >= 2 the printed ± is the 95 % CI of the
  // per-seed difference. Below 200 s checkpoints are cheap, absolute
  // losses are small, and cell differences are noise — those rows print
  // for context but are not gated.
  std::printf("--- checks (paired per-seed differences, %zu seed%s) ---\n",
              seeds, seeds == 1 ? "" : "s");
  int failures = 0;
  for (const std::size_t pool : pools) {
    for (const auto policy : policies) {
      for (const double cost : costs) {
        if (cost < 200.0) continue;
        const auto& exp_cell = find_cell(
            cells, policy, core::ModelFamily::kExponential, pool, cost);
        const auto& hyp_cell = find_cell(
            cells, policy, core::ModelFamily::kHyperexp2, pool, cost);
        const auto d_mb = paired_diff(hyp_cell.moved_mb, exp_cell.moved_mb);
        // The wait comparison is class-pure: with recovery traffic
        // outranking checkpoints, the BLENDED mean wait mixes two service
        // orders whose shares differ across families (Simpson's paradox —
        // hyperexp2 can beat exponential within each class yet lose the
        // blend), so the gate compares the checkpoint class against
        // itself.
        const auto d_wait =
            paired_diff(hyp_cell.ckpt_wait_s, exp_cell.ckpt_wait_s);
        const bool less_mb = mean_of(d_mb) < 0.0;
        const bool less_wait = not_significantly_worse(d_wait, 0.0);
        if (!less_mb || !less_wait) ++failures;
        std::printf(
            "  pool=%-2zu %-7s C=%-3.0f  hyperexp2 - exponential: "
            "MB %s (%s), ckpt wait %s s (%s)\n",
            pool, server::to_string(policy).c_str(), cost,
            diff_str(d_mb, 0).c_str(), less_mb ? "ok" : "FAIL",
            diff_str(d_wait, 1).c_str(), less_wait ? "ok" : "FAIL");
      }
    }
  }
  if (!tiny) {
    for (const std::size_t pool : pools) {
      for (const auto family : families) {
        for (const double cost : costs) {
          const auto& fifo = find_cell(
              cells, server::SchedulerPolicy::kFifo, family, pool, cost);
          const auto& urgency = find_cell(
              cells, server::SchedulerPolicy::kUrgency, family, pool, cost);
          const bool gated = cost >= 200.0;
          const auto d_lost =
              paired_diff(urgency.lost_work_s, fifo.lost_work_s);
          const double slack = 1e-9 + 0.05 * mean_of(fifo.lost_work_s);
          const bool ok = not_significantly_worse(d_lost, slack);
          if (gated && !ok) ++failures;
          std::vector<double> d_lost_h(d_lost);
          for (auto& x : d_lost_h) x /= 3600.0;
          std::printf(
              "  pool=%-2zu %-11s C=%-3.0f  urgency - fifo lost work: "
              "%s h (%s)\n",
              pool, core::to_string(family).c_str(), cost,
              diff_str(d_lost_h, 2).c_str(),
              gated ? (ok ? "ok" : "FAIL") : (ok ? "ok, info" : "info"));
        }
      }
    }
  }
  std::printf("%s\n", failures == 0 ? "all checks passed"
                                    : "SOME CHECKS FAILED");

  if (!json_path.empty()) {
    write_artifact(json_path, cells, fleet_base, seeds);
  }
  return failures == 0 ? 0 : 1;
}
