// Reproduces Table 2: application efficiency when machine availability
// really is Weibull(shape = 0.43, scale = 3409) — a 5000-value synthetic
// trace — comparing schedules computed from each model family fitted on
// (a) all 5000 values and (b) only the first 25, at C = 50 and C = 500.
//
// Expected shape: the Weibull fit is optimal by construction and every
// other family (and the 25-point fits) loses only slightly — the paper
// reads this as "an exponential model … can be used to develop a
// checkpoint schedule that is close to optimal" in *time* (not network).
#include <cstdio>
#include <span>

#include "common.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

namespace {

double run_case(const std::vector<double>& durations,
                std::span<const double> training,
                harvest::core::ModelFamily family, double cost) {
  using namespace harvest;
  auto model = core::Planner::fit_model(training, family);
  core::IntervalCosts costs;
  costs.checkpoint = cost;
  costs.recovery = cost;
  auto schedule = core::Planner::make_schedule(model, costs);
  return sim::simulate_job_on_trace(durations, schedule).efficiency();
}

}  // namespace

int main() {
  using namespace harvest;
  std::printf(
      "=== Table 2: efficiency on a known-Weibull synthetic trace ===\n"
      "Ground truth Weibull(shape=0.43, scale=3409), 5000 draws; the\n"
      "Weibull row is optimal, others are approximations.\n\n");

  const dist::Weibull truth(0.43, 3409.0);
  const auto trace = trace::sample_trace(truth, 5000, /*seed=*/424242,
                                         "table2-synthetic");
  const std::span<const double> all(trace.durations);
  const std::span<const double> first25 = all.subspan(0, 25);

  util::TextTable table({"Distribution", "C=50 All", "C=50 First25",
                         "C=500 All", "C=500 First25"});
  const std::array<std::string, 4> names = {"Exponential", "Weibull",
                                            "2-Phase Hyper", "3-Phase Hyper"};
  for (std::size_t f = 0; f < 4; ++f) {
    const auto family = bench::families()[f];
    std::vector<std::string> cells = {names[f]};
    for (double cost : {50.0, 500.0}) {
      cells.push_back(util::format_fixed(
          run_case(trace.durations, all, family, cost), 3));
      cells.push_back(util::format_fixed(
          run_case(trace.durations, first25, family, cost), 3));
    }
    // Reorder to match the header (C=50 All, C=50 First25, C=500 All, ...).
    table.add_row({cells[0], cells[1], cells[2], cells[3], cells[4]});
    std::fprintf(stderr, "  [table2] %s done\n", names[f].c_str());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (Table 2): all entries within ~0.03 of the optimal\n"
      "Weibull row at both costs; 25-point fits barely degrade accuracy.\n");
  return 0;
}
