// The paper's future-work experiment: parallel jobs checkpointing over one
// shared link. "The network load savings are likely to improve application
// efficiency since network collisions will lengthen the amount of time
// necessary for a checkpoint" (§5.2). We quantify that: N jobs each emit
// checkpoint transfers at the per-model rate measured in the trace
// simulation; a processor-sharing link then stretches colliding transfers.
//
// Expected shape: the exponential's higher checkpoint rate causes more
// collisions and a larger mean slowdown; the 2-phase hyperexponential's
// sparser traffic keeps transfers near their dedicated duration.
#include <cstdio>

#include "common.hpp"
#include "harvest/net/shared_link.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation (paper future work): N jobs sharing one checkpoint link "
      "===\n\n");

  const auto traces = bench::standard_traces(120, 100);
  constexpr double kCost = 250.0;       // dedicated 500 MB transfer time, s
  constexpr double kSizeMb = 500.0;
  // 5 jobs keep the link's offered load below capacity for every model
// (exponential ≈ 0.7, hyperexponential ≈ 0.5): the regime where collision
// stretch is finite and the models can be compared meaningfully.
constexpr int kJobs = 5;
  const double capacity = kSizeMb / kCost;  // one dedicated transfer at a time

  util::TextTable table({"Family", "xfers/job/day", "mean xfer (s)",
                         "slowdown", "p95 xfer (s)"});
  for (std::size_t f = 0; f < 4; ++f) {
    // Measure the model's transfer rate from the single-job simulation.
    sim::ExperimentConfig cfg;
    cfg.checkpoint_cost_s = kCost;
    const auto res = sim::run_trace_experiment(traces, bench::families()[f], cfg);
    double transfers = 0.0;
    double machine_time = 0.0;
    for (const auto& m : res.machines) {
      transfers += static_cast<double>(m.sim.checkpoints_completed +
                                       m.sim.recoveries_completed);
      machine_time += m.sim.total_time;
    }
    const double rate_per_s = transfers / machine_time;  // per job

    // N jobs, Poisson arrivals at the aggregate rate, 6 simulated hours.
    numerics::Rng rng(515 + f);
    std::vector<net::TransferRequest> requests;
    double t = 0.0;
    const double horizon = 6.0 * 3600.0;
    while (true) {
      t += rng.exponential(rate_per_s * kJobs);
      if (t > horizon) break;
      requests.push_back({t, kSizeMb});
    }
    const net::SharedLink link(capacity);
    const auto outcomes = link.resolve(requests);
    std::vector<double> durations;
    durations.reserve(outcomes.size());
    double mean = 0.0;
    for (const auto& o : outcomes) {
      durations.push_back(o.duration());
      mean += o.duration();
    }
    mean /= durations.empty() ? 1.0 : static_cast<double>(durations.size());
    const double p95 =
        durations.empty() ? 0.0 : stats::quantile_of(durations, 0.95);

    table.add_row({core::to_string(bench::families()[f]),
                   util::format_fixed(rate_per_s * 86400.0, 1),
                   util::format_fixed(mean, 0),
                   util::format_fixed(mean / kCost, 2),
                   util::format_fixed(p95, 0)});
    std::fprintf(stderr, "  [ablation-link] %s done (%zu transfers)\n",
                 core::to_string(bench::families()[f]).c_str(),
                 requests.size());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: with %d jobs on one link, the bandwidth-parsimonious models\n"
      "suffer less collision stretch — exactly why the paper argues network\n"
      "frugality compounds for parallel workloads.\n",
      kJobs);
  return 0;
}
