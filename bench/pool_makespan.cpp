// Whole-pool, user-visible metric: completion time of a batch of jobs on
// the emulated virtual cluster, by availability model and matchmaking
// policy. Ties the paper's per-machine scheduling result to what a Condor
// user actually experiences (makespan) and what the site pays (megabytes).
//
// Expected shape: model choice moves makespan only mildly (the paper's
// efficiency result) but network load substantially; age-aware matchmaking
// shortens completion for every model by cutting eviction churn.
#include <cstdio>

#include "common.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/trace/synthetic.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Pool makespan: 16 jobs x 8 h of work on 48 volatile machines "
      "===\n\n");

  trace::PoolSpec spec;
  spec.machine_count = 48;
  spec.durations_per_machine = 1;
  spec.seed = 20050917;
  std::vector<condor::TimelinePool::MachineSpec> machines;
  for (auto& m : trace::generate_pool(spec)) {
    condor::TimelinePool::MachineSpec s;
    s.id = m.trace.machine_id;
    s.availability_law = m.ground_truth;
    machines.push_back(std::move(s));
  }

  util::TextTable table({"policy", "family", "finished", "mean compl. (h)",
                         "makespan (h)", "GB moved", "evictions"});
  for (condor::MatchPolicy policy :
       {condor::MatchPolicy::kRandom, condor::MatchPolicy::kModelRanked}) {
    for (std::size_t f : {0ul, 1ul, 2ul}) {
      condor::PoolSimConfig cfg;
      cfg.job_count = 16;
      cfg.work_per_job_s = 8.0 * 3600.0;
      cfg.family = bench::families()[f];
      cfg.policy = policy;
      cfg.seed = 31;
      const auto res = condor::run_pool_simulation(machines, cfg);
      table.add_row(
          {condor::to_string(policy),
           core::to_string(bench::families()[f]),
           std::to_string(res.finished_count()) + "/" +
               std::to_string(res.jobs.size()),
           util::format_fixed(res.mean_completion_s() / 3600.0, 1),
           util::format_fixed(res.makespan_s / 3600.0, 1),
           util::format_fixed(res.total_moved_mb() / 1024.0, 1),
           std::to_string(res.total_evictions())});
      std::fprintf(stderr, "  [makespan] %s %s done\n",
                   condor::to_string(policy).c_str(),
                   core::to_string(bench::families()[f]).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
