// Ablation: what does the future-lifetime conditioning (paper §3.3, Eq. 8)
// actually buy? The paper's schedules recompute T_opt from the machine's
// current uptime; this bench disables that (every interval computed as if
// uptime were zero → a periodic schedule from the same fitted model) and
// compares efficiency and network load for the non-memoryless families.
//
// Observed shape: conditioning is an efficiency/bandwidth trade. For the
// hyperexponentials at small C it buys 1–2 efficiency points (early
// intervals are kept short while the machine might still be short-phase,
// protecting work) at the cost of extra checkpoints; for the Weibull at
// small C it *saves* bandwidth (later intervals stretch as uptime grows).
// At large C the conditioned and unconditioned schedules converge.
#include <cstdio>

#include "common.hpp"
#include "harvest/util/table.hpp"

int main() {
  using namespace harvest;
  std::printf(
      "=== Ablation: future-lifetime conditioning on vs off ===\n"
      "\"off\" recomputes every interval at uptime 0 (periodic schedule).\n\n");

  const auto traces = bench::standard_traces(120, 100);
  util::TextTable table({"Family", "C", "eff (cond)", "eff (no cond)",
                         "MB (cond)", "MB (no cond)", "MB saved"});

  for (std::size_t f : {1ul, 2ul, 3ul}) {  // weibull, hyper2, hyper3
    for (double cost : {100.0, 500.0, 1000.0}) {
      sim::ExperimentConfig with;
      with.checkpoint_cost_s = cost;
      sim::ExperimentConfig without = with;
      without.condition_on_age = false;

      const auto a =
          sim::run_trace_experiment(traces, bench::families()[f], with);
      const auto b =
          sim::run_trace_experiment(traces, bench::families()[f], without);
      const double eff_a = stats::mean_of(a.efficiencies());
      const double eff_b = stats::mean_of(b.efficiencies());
      const double mb_a = stats::mean_of(a.network_mbs());
      const double mb_b = stats::mean_of(b.network_mbs());
      table.add_row({core::to_string(bench::families()[f]),
                     util::format_fixed(cost, 0),
                     util::format_fixed(eff_a, 3),
                     util::format_fixed(eff_b, 3),
                     util::format_fixed(mb_a, 0),
                     util::format_fixed(mb_b, 0),
                     util::format_fixed(100.0 * (1.0 - mb_a / mb_b), 1) +
                         "%"});
      std::fprintf(stderr, "  [ablation-cond] %s C=%.0f done\n",
                   core::to_string(bench::families()[f]).c_str(), cost);
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
