// Reproduces Figure 4 and Table 3: average network load (megabytes
// transferred; 500 MB per checkpoint/recovery) versus checkpoint cost, per
// availability model, with 95 % confidence intervals and significance
// letters.
//
// Expected shape (paper §5.1): the exponential-based schedule consumes
// significantly more bandwidth than every heavy-tailed model; the 2-phase
// hyperexponential is the most parsimonious, using >= 30 % less than the
// exponential for C >= 200 s; the gap widens as C grows.
#include <cstdio>
#include <exception>

#include "common.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/util/table.hpp"

int main(int argc, char** argv) {
  using namespace harvest;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  std::printf(
      "=== Figure 4 / Table 3: network load vs checkpoint cost ===\n"
      "Megabytes moved per machine over its experimental trace; 500 MB per\n"
      "full transfer, interrupted transfers pro-rated.\n\n");

  const auto traces = bench::standard_traces();
  sim::ExperimentConfig base;

  // --json additionally collects the registry: per-family checkpoint and
  // byte counters plus phase-duration histograms (p50/p99 in the artifact).
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics = json_path.empty() ? nullptr : &registry;
  if (metrics != nullptr) obs::set_timing_enabled(true);

  std::vector<bench::RowMetrics> rows;
  rows.reserve(bench::paper_costs().size());
  for (double cost : bench::paper_costs()) {
    rows.push_back(bench::run_row(traces, cost, base, metrics));
    std::fprintf(stderr, "  [fig4] cost %.0f done\n", cost);
  }

  bench::print_figure_series("FIGURE 4: mean megabytes per model", rows,
                             /*efficiency_metric=*/false);

  util::TextTable table({"CTime", "Exp.", "Weib.", "2-ph Hyper.",
                         "3-ph Hyper."});
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.push_back(util::format_fixed(row.cost, 0));
    for (std::size_t f = 0; f < 4; ++f) {
      cells.push_back(bench::ci_cell(
          row.network_mb[f], 0, bench::beaten_letters(row.network_mb, f)));
    }
    table.add_row(std::move(cells));
  }
  std::printf(
      "Table 3: 95%% CIs for mean megabytes; letters mark models whose load\n"
      "is statistically significantly smaller (smaller = better here).\n\n"
      "%s\n",
      table.render().c_str());

  // The paper's headline: 2-phase hyperexponential saving vs exponential.
  std::printf("2-phase hyperexponential bandwidth saving vs exponential:\n");
  for (const auto& row : rows) {
    const double exp_mb = stats::mean_of(row.network_mb[0]);
    const double h2_mb = stats::mean_of(row.network_mb[2]);
    std::printf("  C=%5.0f: %5.1f%%\n", row.cost,
                100.0 * (1.0 - h2_mb / exp_mb));
  }

  if (!json_path.empty()) {
    try {
      bench::write_bench_json(json_path, "fig4_table3_bandwidth", base, rows,
                              metrics);
    } catch (const std::exception& e) {
      // Exit normally so the tables above still flush to a redirected
      // stdout; only the artifact is lost.
      std::fprintf(stderr, "fig4: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
