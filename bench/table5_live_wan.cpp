// Reproduces Table 5: the live experiment with the checkpoint manager
// across the wide area (mean 500 MB transfer ≈ 475 s), i.e. checkpoints
// traverse the Internet back to the researchers' home institution.
//
// Expected shape (paper): lower efficiencies than Table 4 (0.59–0.66), the
// 2-phase hyperexponential again the most bandwidth-parsimonious;
// comparable to Table 1/3 rows with C≈500.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace harvest;
  const auto out = bench::run_live_table(
      "=== Table 5: live emulation, checkpoint manager across the WAN ===",
      net::BandwidthModel::wan(), /*placements=*/50, /*seed=*/2006);

  std::printf("Mean measured transfer across models: ");
  double mean = 0.0;
  for (double t : out.mean_transfer_s) mean += t;
  std::printf("%.0f s (paper: ~475 s)\n", mean / out.mean_transfer_s.size());
  return 0;
}
