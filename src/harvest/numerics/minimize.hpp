// One-dimensional minimization. The paper minimizes the checkpoint overhead
// ratio Γ(T)/T with the Golden Section Search of Numerical Recipes; we
// provide that, a Brent refinement, and a log-space scan that brackets the
// minimum first (Γ/T is unimodal-in-practice but its scale is unknown a
// priori, spanning seconds to days).
#pragma once

#include <functional>

namespace harvest::numerics {

using Objective = std::function<double(double)>;

struct MinimizeResult {
  double x = 0.0;        ///< argmin
  double value = 0.0;    ///< f(argmin)
  int evaluations = 0;   ///< number of objective evaluations
  bool converged = false;
};

/// Golden-section search on the bracket [lo, hi]; assumes `f` is unimodal
/// there. Stops when the bracket width falls below `tol * |x| + tiny`.
[[nodiscard]] MinimizeResult minimize_golden_section(const Objective& f,
                                                     double lo, double hi,
                                                     double tol = 1e-6,
                                                     int max_iter = 200);

/// Brent's method (golden section + parabolic interpolation) on [lo, hi].
[[nodiscard]] MinimizeResult minimize_brent(const Objective& f, double lo,
                                            double hi, double tol = 1e-8,
                                            int max_iter = 200);

/// Scan `points` log-spaced abscissae over [lo, hi], pick the best, and
/// return a bracket (one grid step either side) suitable for golden-section
/// refinement. `f` must be finite over [lo, hi].
struct Bracket {
  double lo = 0.0;
  double hi = 0.0;
  double best = 0.0;  ///< grid argmin inside the bracket
};
[[nodiscard]] Bracket bracket_log_scan(const Objective& f, double lo,
                                       double hi, int points = 48);

/// Convenience: bracket with a log scan, then refine with golden section.
[[nodiscard]] MinimizeResult minimize_log_bracketed(const Objective& f,
                                                    double lo, double hi,
                                                    int scan_points = 48,
                                                    double tol = 1e-6);

}  // namespace harvest::numerics
