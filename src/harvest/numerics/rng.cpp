#include "harvest/numerics/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace harvest::numerics {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda > 0");
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::weibull(double alpha, double beta) {
  if (alpha <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("weibull: alpha, beta > 0");
  }
  double u = uniform();
  while (u == 0.0) u = uniform();
  return beta * std::pow(-std::log(u), 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero total");
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng{next_u64() ^ 0xdeadbeefcafef00dULL}; }

}  // namespace harvest::numerics
