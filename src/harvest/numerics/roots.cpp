#include "harvest/numerics/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::numerics {

RootResult find_root_bisection(const RealFn& f, double lo, double hi,
                               double tol, int max_iter) {
  if (!(hi > lo)) throw std::invalid_argument("bisection: hi <= lo");
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  r.evaluations = 2;
  if (flo == 0.0) {
    r.x = lo;
    r.converged = true;
    return r;
  }
  if (fhi == 0.0) {
    r.x = hi;
    r.converged = true;
    return r;
  }
  if (flo * fhi > 0.0) {
    throw std::invalid_argument("bisection: f(lo) and f(hi) same sign");
  }
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    ++r.evaluations;
    if (fm == 0.0 || hi - lo < tol * (std::fabs(mid) + 1.0)) {
      r.x = mid;
      r.converged = true;
      return r;
    }
    if (flo * fm < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  r.x = 0.5 * (lo + hi);
  return r;
}

RootResult find_root_newton(const RealFn& f, const RealFn& df, double lo,
                            double hi, double x0, double tol, int max_iter) {
  if (!(hi > lo)) throw std::invalid_argument("newton: hi <= lo");
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  r.evaluations = 2;
  if (flo * fhi > 0.0) {
    throw std::invalid_argument("newton: f(lo) and f(hi) same sign");
  }
  double x = (x0 > lo && x0 < hi) ? x0 : 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    ++r.evaluations;
    if (std::fabs(fx) == 0.0) {
      r.x = x;
      r.converged = true;
      return r;
    }
    // Shrink the bracket around the root.
    if (flo * fx < 0.0) {
      hi = x;
    } else {
      lo = x;
      flo = fx;
    }
    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < tol * (std::fabs(x) + 1.0)) {
      r.x = next;
      r.converged = true;
      return r;
    }
    x = next;
  }
  r.x = x;
  return r;
}

bool expand_bracket_upward(const RealFn& f, double& lo, double& hi,
                           int max_expand) {
  if (!(hi > lo)) throw std::invalid_argument("expand_bracket: hi <= lo");
  double flo = f(lo);
  double fhi = f(hi);
  for (int i = 0; i < max_expand; ++i) {
    if (flo * fhi <= 0.0) return true;
    lo = hi;
    flo = fhi;
    hi *= 2.0;
    fhi = f(hi);
  }
  return flo * fhi <= 0.0;
}

}  // namespace harvest::numerics
