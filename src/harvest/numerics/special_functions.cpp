#include "harvest/numerics/special_functions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace harvest::numerics {
namespace {

constexpr int kMaxIter = 300;
constexpr double kEps = 3.0e-14;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Series representation of P(a,x), valid (fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw std::runtime_error("gamma_p_series: no convergence (a too large?)");
}

// Continued fraction for Q(a,x) (modified Lentz), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
    }
  }
  throw std::runtime_error("gamma_q_cf: no convergence");
}

// Continued fraction for incomplete beta (modified Lentz).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = static_cast<double>(m);
    const int m2 = 2 * m;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  throw std::runtime_error("beta_cf: no convergence (a or b too big?)");
}

}  // namespace

double gamma_fn(double x) {
  if (x <= 0.0) throw std::invalid_argument("gamma_fn: requires x > 0");
  return std::exp(std::lgamma(x));
}

double log_gamma(double x) {
  if (x <= 0.0) throw std::invalid_argument("log_gamma: requires x > 0");
  return std::lgamma(x);
}

double gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("gamma_p: requires a > 0");
  if (x < 0.0) throw std::invalid_argument("gamma_p: requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("gamma_q: requires a > 0");
  if (x < 0.0) throw std::invalid_argument("gamma_q: requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double lower_incomplete_gamma(double a, double x) {
  return gamma_p(a, x) * std::exp(std::lgamma(a));
}

double digamma(double x) {
  if (x <= 0.0) throw std::invalid_argument("digamma: requires x > 0");
  // Recurse upward until the asymptotic series is accurate (x >= 6), using
  // psi(x) = psi(x+1) - 1/x.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ln x − 1/(2x) − Σ B_{2k} / (2k x^{2k}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result +=
      std::log(x) - 0.5 * inv -
      inv2 * (1.0 / 12.0 -
              inv2 * (1.0 / 120.0 -
                      inv2 * (1.0 / 252.0 -
                              inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton step against the true CDF polishes to ~1e-13.
  const double e = normal_cdf(x) - p;
  const double pdf =
      std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
  if (pdf > 0.0) x -= e / pdf;
  return x;
}

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("incomplete_beta: requires a, b > 0");
  }
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("incomplete_beta: requires 0 <= x <= 1");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction on whichever side converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double incomplete_beta_inv(double a, double b, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Bisection with Newton acceleration; I_x(a,b) is monotone in x.
  double lo = 0.0;
  double hi = 1.0;
  double x = 0.5;
  for (int i = 0; i < 200; ++i) {
    const double v = incomplete_beta(a, b, x);
    if (v > p) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the beta density; fall back to bisection midpoint
    // when the step leaves the bracket.
    const double ln_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) +
                          std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
    const double pdf = std::exp(ln_pdf);
    double next = (pdf > 0.0) ? x - (v - p) / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-14) return next;
    x = next;
  }
  return x;
}

}  // namespace harvest::numerics
