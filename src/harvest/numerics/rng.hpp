// Deterministic, seedable random number generation. Every stochastic
// component of the library (synthetic traces, network jitter, pool
// emulation) takes an explicit Rng so that experiments are reproducible
// bit-for-bit from a seed printed in their output.
//
// The generator is xoshiro256++ seeded through splitmix64, a standard
// high-quality non-cryptographic PRNG pairing.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace harvest::numerics {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Exponential variate with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Weibull variate with shape alpha, scale beta.
  double weibull(double alpha, double beta);

  /// Standard normal via Box–Muller (no state cached; two uniforms/draw).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal with given log-space mu/sigma.
  double lognormal(double mu, double sigma);

  /// Index i with probability weights[i] / sum(weights).
  std::size_t categorical(const std::vector<double>& weights);

  /// Split off an independent child stream (jump-free: reseeds a fresh
  /// generator from this stream's output; adequate for simulation fan-out).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace harvest::numerics
