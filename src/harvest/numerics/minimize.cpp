#include "harvest/numerics/minimize.hpp"

#include <cmath>
#include <stdexcept>

#include "harvest/obs/metrics.hpp"

namespace harvest::numerics {
namespace {
constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio
constexpr double kTiny = 1e-11;

// Objective-evaluation metrics answer the perf question every optimizer
// PR starts with: how many Γ(T)/T evaluations does one T_opt cost? Handles
// are cached as function-local statics (minimizers sit on the planner's
// hot path), so steady-state cost is a few relaxed atomic adds.
struct MinimizeMetrics {
  obs::Counter& calls;
  obs::Counter& evaluations;
  obs::Histogram& evaluations_per_call;

  explicit MinimizeMetrics(const std::string& prefix)
      : calls(obs::default_registry().counter(prefix + ".calls")),
        evaluations(obs::default_registry().counter(prefix + ".evaluations")),
        evaluations_per_call(obs::default_registry().histogram(
            prefix + ".evaluations_per_call",
            obs::Histogram::exponential_bounds(1.0, 4096.0, 13))) {}

  void observe(int evals) const {
    calls.add();
    evaluations.add(static_cast<std::uint64_t>(evals));
    evaluations_per_call.observe(static_cast<double>(evals));
  }
};
}  // namespace

MinimizeResult minimize_golden_section(const Objective& f, double lo,
                                       double hi, double tol, int max_iter) {
  if (!(hi > lo)) throw std::invalid_argument("golden_section: hi <= lo");
  MinimizeResult r;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  r.evaluations = 2;
  for (int i = 0; i < max_iter; ++i) {
    if (b - a < tol * (std::fabs(x1) + std::fabs(x2)) + kTiny) {
      r.converged = true;
      break;
    }
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++r.evaluations;
  }
  if (f1 < f2) {
    r.x = x1;
    r.value = f1;
  } else {
    r.x = x2;
    r.value = f2;
  }
  static const MinimizeMetrics metrics("numerics.minimize.golden");
  metrics.observe(r.evaluations);
  return r;
}

MinimizeResult minimize_brent(const Objective& f, double lo, double hi,
                              double tol, int max_iter) {
  if (!(hi > lo)) throw std::invalid_argument("brent: hi <= lo");
  MinimizeResult r;
  double a = lo, b = hi;
  double x = a + kInvPhi * (b - a);
  double w = x, v = x;
  double fx = f(x);
  double fw = fx, fv = fx;
  r.evaluations = 1;
  double d = 0.0, e = 0.0;
  for (int i = 0; i < max_iter; ++i) {
    const double m = 0.5 * (a + b);
    const double tol1 = tol * std::fabs(x) + kTiny;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) {
      r.converged = true;
      break;
    }
    bool take_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through (x, fx), (w, fw), (v, fv).
      const double rr = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * rr;
      q = 2.0 * (q - rr);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (m > x) ? tol1 : -tol1;
        take_golden = false;
      }
    }
    if (take_golden) {
      e = (x < m) ? b - x : a - x;
      d = (1.0 - kInvPhi) * e;
    }
    const double u =
        (std::fabs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++r.evaluations;
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  r.x = x;
  r.value = fx;
  static const MinimizeMetrics metrics("numerics.minimize.brent");
  metrics.observe(r.evaluations);
  return r;
}

Bracket bracket_log_scan(const Objective& f, double lo, double hi,
                         int points) {
  if (!(hi > lo) || lo <= 0.0) {
    throw std::invalid_argument("bracket_log_scan: requires 0 < lo < hi");
  }
  if (points < 3) throw std::invalid_argument("bracket_log_scan: points >= 3");
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  const double step = (lhi - llo) / (points - 1);
  double best_x = lo;
  double best_f = f(lo);
  int best_i = 0;
  for (int i = 1; i < points; ++i) {
    const double x = std::exp(llo + i * step);
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
      best_i = i;
    }
  }
  Bracket b;
  b.best = best_x;
  b.lo = (best_i == 0) ? lo : std::exp(llo + (best_i - 1) * step);
  b.hi = (best_i == points - 1) ? hi : std::exp(llo + (best_i + 1) * step);
  static const MinimizeMetrics metrics("numerics.minimize.bracket_scan");
  metrics.observe(points);
  return b;
}

MinimizeResult minimize_log_bracketed(const Objective& f, double lo, double hi,
                                      int scan_points, double tol) {
  const Bracket b = bracket_log_scan(f, lo, hi, scan_points);
  MinimizeResult r = minimize_golden_section(f, b.lo, b.hi, tol);
  r.evaluations += scan_points;
  return r;
}

}  // namespace harvest::numerics
