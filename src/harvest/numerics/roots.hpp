// Scalar root finding, used by the Weibull profile-likelihood MLE and the
// distribution quantile fallbacks.
#pragma once

#include <functional>

namespace harvest::numerics {

using RealFn = std::function<double(double)>;

struct RootResult {
  double x = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs.
[[nodiscard]] RootResult find_root_bisection(const RealFn& f, double lo,
                                             double hi, double tol = 1e-12,
                                             int max_iter = 200);

/// Newton's method with a bisection safeguard: the iterate is kept inside a
/// sign-changing bracket, falling back to its midpoint when a Newton step
/// would escape. `df` is the derivative.
[[nodiscard]] RootResult find_root_newton(const RealFn& f, const RealFn& df,
                                          double lo, double hi, double x0,
                                          double tol = 1e-12,
                                          int max_iter = 100);

/// Expand [lo, hi] geometrically (upward) until f changes sign on it.
/// Returns false if no sign change is found within `max_expand` doublings.
[[nodiscard]] bool expand_bracket_upward(const RealFn& f, double& lo,
                                         double& hi, int max_expand = 60);

}  // namespace harvest::numerics
