// Special functions needed by the distribution and statistics layers:
// regularized incomplete gamma (Weibull partial expectations), regularized
// incomplete beta (Student-t CDF for confidence intervals and paired
// t-tests), and the complete gamma function (Weibull moments).
//
// Implementations follow the classical series / continued-fraction splits
// (Abramowitz & Stegun 6.5, 26.5; the same scheme as Numerical Recipes,
// which the paper itself relies on), hand-rolled here so the library has no
// external numeric dependencies.
#pragma once

namespace harvest::numerics {

/// True gamma function Γ(x) for x > 0.
[[nodiscard]] double gamma_fn(double x);

/// Natural log of Γ(x) for x > 0.
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a), a > 0, x ≥ 0.
/// P is a CDF in x: P(a, 0) = 0 and P(a, ∞) = 1.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Lower incomplete gamma γ(a, x) = ∫₀ˣ t^{a−1} e^{−t} dt (unregularized).
[[nodiscard]] double lower_incomplete_gamma(double a, double x);

/// Digamma ψ(x) = d/dx ln Γ(x), x > 0 (asymptotic series with upward
/// recurrence). Needed by the gamma-distribution MLE.
[[nodiscard]] double digamma(double x);

/// Error function complement of the standard normal CDF:
/// Φ(x) = (1 + erf(x/√2)) / 2.
[[nodiscard]] double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam-style rational approximation with a
/// Newton polish step; |error| < 1e-13).
[[nodiscard]] double normal_quantile(double p);

/// Regularized incomplete beta I_x(a, b), a, b > 0, x ∈ [0, 1].
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Inverse of the regularized incomplete beta: find x with I_x(a,b) = p.
[[nodiscard]] double incomplete_beta_inv(double a, double b, double p);

}  // namespace harvest::numerics
