// Numerical integration used as the generic fallback for partial
// expectations ∫₀ˣ t f(t) dt when a distribution family has no closed form,
// and in tests to cross-check the closed forms each family provides.
#pragma once

#include <functional>

namespace harvest::numerics {

/// Real-valued integrand on an interval.
using Integrand = std::function<double(double)>;

/// Adaptive Simpson quadrature of `f` on [a, b] to absolute tolerance `tol`.
/// Recursion depth is capped; the cap is generous enough for the smooth
/// densities used in this library.
[[nodiscard]] double integrate_adaptive_simpson(const Integrand& f, double a,
                                                double b, double tol = 1e-9,
                                                int max_depth = 40);

/// Composite fixed-order Gauss–Legendre quadrature on [a, b] with
/// `panels` panels of a 16-point rule. Non-adaptive but very fast; used by
/// performance-sensitive callers that know their integrand is smooth.
[[nodiscard]] double integrate_gauss_legendre(const Integrand& f, double a,
                                              double b, int panels = 4);

}  // namespace harvest::numerics
