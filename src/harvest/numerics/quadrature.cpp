#include "harvest/numerics/quadrature.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace harvest::numerics {
namespace {

struct SimpsonPanel {
  double fa, fm, fb;  // f at left, midpoint, right
  double estimate;    // Simpson estimate over the panel
};

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const Integrand& f, double a, double b,
                const SimpsonPanel& whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const SimpsonPanel left{whole.fa, flm, whole.fm,
                          simpson(whole.fa, flm, whole.fm, m - a)};
  const SimpsonPanel right{whole.fm, frm, whole.fb,
                           simpson(whole.fm, frm, whole.fb, b - m)};
  const double two_panel = left.estimate + right.estimate;
  const double err = (two_panel - whole.estimate) / 15.0;
  if (depth <= 0 || std::fabs(err) <= tol) return two_panel + err;
  return adaptive(f, a, m, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, right, 0.5 * tol, depth - 1);
}

// 16-point Gauss–Legendre nodes/weights on [-1, 1] (positive half; the rule
// is symmetric).
constexpr std::array<double, 8> kGlNodes = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kGlWeights = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

}  // namespace

double integrate_adaptive_simpson(const Integrand& f, double a, double b,
                                  double tol, int max_depth) {
  if (!(b >= a)) throw std::invalid_argument("integrate: requires b >= a");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const SimpsonPanel whole{fa, fm, fb, simpson(fa, fm, fb, b - a)};
  return adaptive(f, a, b, whole, tol, max_depth);
}

double integrate_gauss_legendre(const Integrand& f, double a, double b,
                                int panels) {
  if (!(b >= a)) throw std::invalid_argument("integrate: requires b >= a");
  if (panels < 1) throw std::invalid_argument("integrate: panels >= 1");
  if (a == b) return 0.0;
  const double panel_w = (b - a) / panels;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double lo = a + p * panel_w;
    const double mid = lo + 0.5 * panel_w;
    const double half = 0.5 * panel_w;
    double acc = 0.0;
    for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
      const double dx = half * kGlNodes[i];
      acc += kGlWeights[i] * (f(mid - dx) + f(mid + dx));
    }
    total += acc * half;
  }
  return total;
}

}  // namespace harvest::numerics
