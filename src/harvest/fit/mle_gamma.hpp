// Gamma MLE via Newton on the shape equation
//     ln k − ψ(k) = ln(mean x) − mean(ln x)
// (the right side s > 0 for any non-degenerate sample; the left side is
// strictly decreasing in k), then scale = mean / k.
#pragma once

#include <span>

#include "harvest/dist/gamma.hpp"

namespace harvest::fit {

/// Requires >= 2 observations with >= 2 distinct positive values. Zeros are
/// clamped up to `zero_floor`.
[[nodiscard]] dist::GammaDist fit_gamma_mle(std::span<const double> xs,
                                            double zero_floor = 1e-9);

}  // namespace harvest::fit
