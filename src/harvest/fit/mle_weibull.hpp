// Maximum-likelihood Weibull fit via the profile likelihood. The shape α̂
// solves
//     Σ xᵢ^α ln xᵢ / Σ xᵢ^α  −  1/α  −  (1/n) Σ ln xᵢ  =  0
// (strictly increasing in α, so a safeguarded Newton/bisection always
// converges), after which the scale is β̂ = (Σ xᵢ^α̂ / n)^{1/α̂}.
// This matches what Matlab's `wblfit` computes in the paper.
#pragma once

#include <span>

#include "harvest/dist/weibull.hpp"

namespace harvest::fit {

struct WeibullFitOptions {
  /// Zero observations make ln x blow up; availability durations of exactly
  /// zero are measurement artifacts and are clamped up to this floor.
  double zero_floor = 1e-9;
  /// Shape search range; the availability data this library targets has
  /// shapes well inside [0.05, 50].
  double shape_min = 1e-3;
  double shape_max = 1e3;
  double tol = 1e-12;
};

/// Requires at least 2 observations and at least 2 distinct values (a
/// degenerate point mass has no Weibull MLE: α → ∞). Throws
/// std::invalid_argument on bad input.
[[nodiscard]] dist::Weibull fit_weibull_mle(
    std::span<const double> xs, const WeibullFitOptions& opts = {});

}  // namespace harvest::fit
