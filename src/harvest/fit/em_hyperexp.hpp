// Expectation–Maximization fit of a k-phase hyperexponential (mixture of
// exponentials). This replaces the EMPht package the paper used: for the
// hyperexponential subclass of phase-type distributions, EMPht's algorithm
// reduces to exactly this mixture EM.
//
//   E-step: responsibility γᵢⱼ = pⱼ λⱼ e^{−λⱼxᵢ} / Σₗ pₗ λₗ e^{−λₗxᵢ}
//   M-step: pⱼ = (1/n) Σᵢ γᵢⱼ,   λⱼ = Σᵢ γᵢⱼ / Σᵢ γᵢⱼ xᵢ
//
// The log-likelihood is non-decreasing across iterations (a property the
// test suite asserts). Initialization splits the sorted sample into k
// contiguous quantile blocks and seeds each phase with that block's rate,
// which separates time scales well for availability data.
#pragma once

#include <span>
#include <vector>

#include "harvest/dist/hyperexponential.hpp"

namespace harvest::fit {

struct EmOptions {
  int max_iterations = 500;
  /// Stop when the log-likelihood improves by less than this.
  double loglik_tol = 1e-8;
  /// Independent EM runs: the first uses the deterministic quantile-block
  /// initialization, the rest perturb it randomly; the best final
  /// log-likelihood wins. EM on mixtures is multimodal, so restarts guard
  /// against a bad basin (mostly relevant for k >= 3 on small samples).
  int restarts = 1;
  std::uint64_t restart_seed = 7;
  /// Phases whose weight collapses below this are pinned to it (keeps the
  /// mixture valid; EM cannot recover a dead phase anyway).
  double min_weight = 1e-8;
  /// Clamp for rates to keep them finite when a phase collapses onto a
  /// single tiny observation.
  double max_rate = 1e9;
  double zero_floor = 1e-9;
};

struct EmResult {
  dist::Hyperexponential model;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;
  /// Log-likelihood after every iteration (for diagnostics/tests).
  std::vector<double> loglik_trace;
};

/// Fit a k-phase hyperexponential by EM. Requires k >= 1 and at least k
/// observations. For k == 1 this is the exponential MLE.
[[nodiscard]] EmResult fit_hyperexp_em(std::span<const double> xs, int phases,
                                       const EmOptions& opts = {});

/// Warm-started EM: one run from the caller-supplied starting point
/// (typically the previous refit's parameters) instead of the
/// quantile-block initialization, and no restarts. When only a few new
/// observations were appended since the last fit, the old parameters are
/// already near the new optimum and EM converges in a handful of
/// iterations instead of from scratch — this is the serving path of
/// plan::StreamingHyperexpFit. `weights` must be positive (renormalized
/// exactly) and `rates` positive, with matching sizes.
[[nodiscard]] EmResult fit_hyperexp_em_warm(std::span<const double> xs,
                                            std::vector<double> weights,
                                            std::vector<double> rates,
                                            const EmOptions& opts = {});

}  // namespace harvest::fit
