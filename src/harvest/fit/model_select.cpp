#include "harvest/fit/model_select.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/fit/goodness_of_fit.hpp"
#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_gamma.hpp"
#include "harvest/fit/mle_lognormal.hpp"
#include "harvest/fit/mle_weibull.hpp"

namespace harvest::fit {
namespace {

FittedModel make_entry(dist::DistributionPtr model,
                       std::span<const double> xs) {
  FittedModel fm;
  fm.family = model->name();
  fm.log_likelihood = model->log_likelihood(xs);
  const double k = model->parameter_count();
  const double n = static_cast<double>(xs.size());
  fm.aic = 2.0 * k - 2.0 * fm.log_likelihood;
  fm.bic = k * std::log(n) - 2.0 * fm.log_likelihood;
  fm.ks_statistic = ks_test(xs, *model).statistic;
  fm.anderson_darling = anderson_darling(xs, *model);
  fm.model = std::move(model);
  return fm;
}

}  // namespace

std::vector<FittedModel> fit_all(std::span<const double> xs,
                                 const ModelMenu& menu) {
  std::vector<FittedModel> out;
  if (menu.exponential) {
    try {
      auto m = std::make_shared<dist::Exponential>(fit_exponential_mle(xs));
      out.push_back(make_entry(std::move(m), xs));
    } catch (const std::exception&) {
      // Degenerate sample for this family; skip it.
    }
  }
  if (menu.weibull) {
    try {
      auto m = std::make_shared<dist::Weibull>(fit_weibull_mle(xs));
      out.push_back(make_entry(std::move(m), xs));
    } catch (const std::exception&) {
    }
  }
  for (int k : menu.hyperexp_phases) {
    try {
      auto r = fit_hyperexp_em(xs, k);
      auto m = std::make_shared<dist::Hyperexponential>(std::move(r.model));
      out.push_back(make_entry(std::move(m), xs));
    } catch (const std::exception&) {
    }
  }
  if (menu.lognormal) {
    try {
      auto m = std::make_shared<dist::Lognormal>(fit_lognormal_mle(xs));
      out.push_back(make_entry(std::move(m), xs));
    } catch (const std::exception&) {
    }
  }
  if (menu.gamma) {
    try {
      auto m = std::make_shared<dist::GammaDist>(fit_gamma_mle(xs));
      out.push_back(make_entry(std::move(m), xs));
    } catch (const std::exception&) {
    }
  }
  return out;
}

const FittedModel& best_by_aic(const std::vector<FittedModel>& fits) {
  if (fits.empty()) throw std::invalid_argument("best_by_aic: no fits");
  const FittedModel* best = &fits.front();
  for (const auto& f : fits) {
    if (f.aic < best->aic) best = &f;
  }
  return *best;
}

const FittedModel& best_by_bic(const std::vector<FittedModel>& fits) {
  if (fits.empty()) throw std::invalid_argument("best_by_bic: no fits");
  const FittedModel* best = &fits.front();
  for (const auto& f : fits) {
    if (f.bic < best->bic) best = &f;
  }
  return *best;
}

const FittedModel* find_family(const std::vector<FittedModel>& fits,
                               const std::string& family) {
  for (const auto& f : fits) {
    if (f.family == family) return &f;
  }
  return nullptr;
}

}  // namespace harvest::fit
