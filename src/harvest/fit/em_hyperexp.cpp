#include "harvest/fit/em_hyperexp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::fit {
namespace {

// Initial (weights, rates) from k contiguous quantile blocks of the sorted
// sample: each phase starts as the exponential MLE of its block.
void quantile_block_init(const std::vector<double>& sorted, int k,
                         std::vector<double>& weights,
                         std::vector<double>& rates, double max_rate) {
  const std::size_t n = sorted.size();
  weights.assign(k, 0.0);
  rates.assign(k, 0.0);
  for (int j = 0; j < k; ++j) {
    const std::size_t lo = n * j / k;
    const std::size_t hi = std::max(n * (j + 1) / k, lo + 1);
    double sum = 0.0;
    for (std::size_t i = lo; i < std::min(hi, n); ++i) sum += sorted[i];
    const auto count = static_cast<double>(std::min(hi, n) - lo);
    weights[j] = count / static_cast<double>(n);
    const double mean = sum / count;
    rates[j] = (mean > 0.0) ? std::min(1.0 / mean, max_rate) : max_rate;
  }
  // Rates must be distinct for identifiability; nudge collisions apart.
  for (int j = 1; j < k; ++j) {
    if (rates[j] >= rates[j - 1]) rates[j] = rates[j - 1] * 0.5;
  }
}

// One EM run from the given starting point.
EmResult run_em(const std::vector<double>& data, std::vector<double> weights,
                std::vector<double> rates, const EmOptions& opts) {
  static auto& runs = obs::default_registry().counter("fit.em.runs");
  static auto& total_iterations =
      obs::default_registry().counter("fit.em.iterations");
  static auto& converged_runs =
      obs::default_registry().counter("fit.em.converged");
  static auto& iterations_hist = obs::default_registry().histogram(
      "fit.em.iterations_per_run",
      obs::Histogram::exponential_bounds(1.0, 1024.0, 11));
  runs.add();
  obs::default_tracer().record_instant(
      "fit.em.start", "fit", 0.0, static_cast<std::uint64_t>(weights.size()),
      static_cast<double>(data.size()));

  const std::size_t n = data.size();
  const int k = static_cast<int>(weights.size());
  std::vector<double> resp(static_cast<std::size_t>(k));
  std::vector<double> sum_resp(static_cast<std::size_t>(k));
  std::vector<double> sum_resp_x(static_cast<std::size_t>(k));

  EmResult out{dist::Hyperexponential(weights, rates), 0.0, 0, false, {}};
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    std::fill(sum_resp.begin(), sum_resp.end(), 0.0);
    std::fill(sum_resp_x.begin(), sum_resp_x.end(), 0.0);
    double ll = 0.0;
    for (double x : data) {
      // E-step for one observation, in a log-safe way: component log
      // densities can underflow for large x, so subtract the max first.
      double max_lc = -std::numeric_limits<double>::infinity();
      for (int j = 0; j < k; ++j) {
        const double lc =
            std::log(weights[j]) + std::log(rates[j]) - rates[j] * x;
        resp[j] = lc;
        max_lc = std::max(max_lc, lc);
      }
      double denom = 0.0;
      for (int j = 0; j < k; ++j) {
        resp[j] = std::exp(resp[j] - max_lc);
        denom += resp[j];
      }
      ll += max_lc + std::log(denom);
      for (int j = 0; j < k; ++j) {
        const double g = resp[j] / denom;
        sum_resp[j] += g;
        sum_resp_x[j] += g * x;
      }
    }
    out.loglik_trace.push_back(ll);
    out.iterations = iter + 1;

    // M-step.
    for (int j = 0; j < k; ++j) {
      const double w =
          std::max(sum_resp[j] / static_cast<double>(n), opts.min_weight);
      weights[j] = w;
      rates[j] = (sum_resp_x[j] > 0.0)
                     ? std::min(sum_resp[j] / sum_resp_x[j], opts.max_rate)
                     : opts.max_rate;
    }
    double wsum = 0.0;
    for (double w : weights) wsum += w;
    for (double& w : weights) w /= wsum;

    if (ll - prev_ll < opts.loglik_tol && iter > 0) {
      out.converged = true;
      prev_ll = ll;
      break;
    }
    prev_ll = ll;
  }

  out.model = dist::Hyperexponential(weights, rates);
  out.log_likelihood = prev_ll;

  total_iterations.add(static_cast<std::uint64_t>(out.iterations));
  iterations_hist.observe(static_cast<double>(out.iterations));
  if (out.converged) converged_runs.add();
  const auto& trace = out.loglik_trace;
  const double final_delta =
      trace.size() >= 2 ? trace.back() - trace[trace.size() - 2] : 0.0;
  obs::default_tracer().record_instant(
      out.converged ? "fit.em.converged" : "fit.em.max_iterations", "fit",
      0.0, static_cast<std::uint64_t>(out.iterations), final_delta);
  return out;
}

}  // namespace

namespace {

// Shared input validation + zero-floor clamp for both entry points.
std::vector<double> clean_data(std::span<const double> xs,
                               const EmOptions& opts, const char* who) {
  std::vector<double> data(xs.begin(), xs.end());
  for (double& x : data) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(std::string(who) +
                                  ": values must be finite and >= 0");
    }
    x = std::max(x, opts.zero_floor);
  }
  return data;
}

}  // namespace

EmResult fit_hyperexp_em_warm(std::span<const double> xs,
                              std::vector<double> weights,
                              std::vector<double> rates,
                              const EmOptions& opts) {
  if (weights.empty() || weights.size() != rates.size()) {
    throw std::invalid_argument(
        "fit_hyperexp_em_warm: weights/rates must match and be non-empty");
  }
  if (xs.size() < weights.size()) {
    throw std::invalid_argument(
        "fit_hyperexp_em_warm: need at least k samples");
  }
  double wsum = 0.0;
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "fit_hyperexp_em_warm: weights must be positive and finite");
    }
    wsum += w;
  }
  for (double& w : weights) w /= wsum;
  for (double& r : rates) {
    if (!(r > 0.0) || !std::isfinite(r)) {
      throw std::invalid_argument(
          "fit_hyperexp_em_warm: rates must be positive and finite");
    }
    r = std::min(r, opts.max_rate);
  }
  const std::vector<double> data =
      clean_data(xs, opts, "fit_hyperexp_em_warm");
  return run_em(data, std::move(weights), std::move(rates), opts);
}

EmResult fit_hyperexp_em(std::span<const double> xs, int phases,
                         const EmOptions& opts) {
  if (phases < 1) throw std::invalid_argument("fit_hyperexp_em: phases >= 1");
  if (xs.size() < static_cast<std::size_t>(phases)) {
    throw std::invalid_argument("fit_hyperexp_em: need at least k samples");
  }
  if (opts.restarts < 1) {
    throw std::invalid_argument("fit_hyperexp_em: restarts >= 1");
  }
  const std::vector<double> data = clean_data(xs, opts, "fit_hyperexp_em");
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> weights;
  std::vector<double> rates;
  quantile_block_init(sorted, phases, weights, rates, opts.max_rate);

  EmResult best = run_em(data, weights, rates, opts);
  numerics::Rng rng(opts.restart_seed);
  for (int r = 1; r < opts.restarts; ++r) {
    // Perturb the deterministic init: jitter rates by a lognormal factor,
    // weights toward uniform mixed with uniform noise.
    std::vector<double> w(weights.size());
    std::vector<double> rt(rates.size());
    double wsum = 0.0;
    for (std::size_t j = 0; j < w.size(); ++j) {
      w[j] = weights[j] * rng.uniform(0.3, 1.7) + 0.05;
      wsum += w[j];
      rt[j] = std::min(rates[j] * rng.lognormal(0.0, 0.8), opts.max_rate);
    }
    for (double& v : w) v /= wsum;
    EmResult candidate = run_em(data, std::move(w), std::move(rt), opts);
    if (candidate.log_likelihood > best.log_likelihood) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace harvest::fit
