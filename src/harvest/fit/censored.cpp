#include "harvest/fit/censored.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harvest/numerics/roots.hpp"

namespace harvest::fit {

std::size_t CensoredSample::event_count() const {
  std::size_t n = 0;
  for (bool o : observed) {
    if (o) ++n;
  }
  return n;
}

void CensoredSample::validate() const {
  if (values.size() != observed.size()) {
    throw std::invalid_argument(
        "CensoredSample: values/observed length mismatch");
  }
  for (double v : values) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument(
          "CensoredSample: values must be finite and >= 0");
    }
  }
}

CensoredSample CensoredSample::fully_observed(std::span<const double> xs) {
  CensoredSample s;
  s.values.assign(xs.begin(), xs.end());
  s.observed.assign(xs.size(), true);
  s.validate();
  return s;
}

CensoredSample CensoredSample::censor_at(std::span<const double> xs,
                                         double horizon) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("censor_at: horizon must be > 0");
  }
  CensoredSample s;
  s.values.reserve(xs.size());
  s.observed.reserve(xs.size());
  for (double x : xs) {
    if (x > horizon) {
      s.values.push_back(horizon);
      s.observed.push_back(false);
    } else {
      s.values.push_back(x);
      s.observed.push_back(true);
    }
  }
  s.validate();
  return s;
}

dist::Exponential fit_exponential_censored(const CensoredSample& sample) {
  sample.validate();
  const std::size_t events = sample.event_count();
  if (events == 0) {
    throw std::invalid_argument(
        "fit_exponential_censored: need at least one observed failure");
  }
  double total = 0.0;
  for (double v : sample.values) total += v;
  if (!(total > 0.0)) {
    throw std::invalid_argument(
        "fit_exponential_censored: total time on test must be > 0");
  }
  return dist::Exponential(static_cast<double>(events) / total);
}

dist::Weibull fit_weibull_censored(const CensoredSample& sample,
                                   const CensoredWeibullOptions& opts) {
  sample.validate();
  const std::size_t r = sample.event_count();
  if (r < 2) {
    throw std::invalid_argument(
        "fit_weibull_censored: need at least two observed failures");
  }
  std::vector<double> v = sample.values;
  for (double& x : v) x = std::max(x, opts.zero_floor);

  // Distinctness among events (identical event times with no censoring
  // information drive the shape to infinity).
  double first_event = -1.0;
  bool distinct = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!sample.observed[i]) continue;
    if (first_event < 0.0) {
      first_event = v[i];
    } else if (v[i] != first_event) {
      distinct = true;
    }
  }
  if (!distinct) {
    throw std::invalid_argument(
        "fit_weibull_censored: observed failures are all identical");
  }

  // Rescale by the geometric mean of all values (stability; shape is
  // scale-invariant).
  double mean_log_all = 0.0;
  for (double x : v) mean_log_all += std::log(x);
  mean_log_all /= static_cast<double>(v.size());
  const double gm = std::exp(mean_log_all);
  std::vector<double> logs(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] /= gm;
    logs[i] = std::log(v[i]);
  }
  double mean_log_events = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (sample.observed[i]) mean_log_events += logs[i];
  }
  mean_log_events /= static_cast<double>(r);

  const auto g = [&](double alpha) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double xa = std::exp(alpha * logs[i]);
      num += xa * logs[i];
      den += xa;
    }
    return num / den - 1.0 / alpha - mean_log_events;
  };
  // Cap the shape so exp(alpha * log) cannot overflow to inf (which would
  // poison the bracket with NaNs). Values are GM-normalized, so the largest
  // |log| is modest unless the sample is near-degenerate.
  double max_abs_log = 0.0;
  for (double lg : logs) max_abs_log = std::max(max_abs_log, std::fabs(lg));
  double lo = opts.shape_min;
  double hi = std::min(opts.shape_max,
                       600.0 / std::max(max_abs_log, 1e-12));
  if (!(hi > lo) || g(lo) > 0.0 || g(hi) < 0.0) {
    throw std::runtime_error(
        "fit_weibull_censored: shape root outside search range");
  }
  const auto root = numerics::find_root_bisection(g, lo, hi, opts.tol);
  const double alpha = root.x;
  double sum_xa = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum_xa += std::exp(alpha * logs[i]);
  }
  const double beta =
      gm * std::pow(sum_xa / static_cast<double>(r), 1.0 / alpha);
  return dist::Weibull(alpha, beta);
}

double censored_log_likelihood(const dist::Distribution& d,
                               const CensoredSample& sample) {
  sample.validate();
  double ll = 0.0;
  for (std::size_t i = 0; i < sample.values.size(); ++i) {
    if (sample.observed[i]) {
      ll += d.log_pdf(sample.values[i]);
    } else {
      const double s = d.survival(sample.values[i]);
      ll += (s > 0.0) ? std::log(s)
                      : -std::numeric_limits<double>::infinity();
    }
  }
  return ll;
}

}  // namespace harvest::fit
