// Weibull probability-plot (least-squares) estimation: the graphical method
// practitioners use to eyeball Weibull-ness, made numeric. On Weibull data
// the points (ln x₍ᵢ₎, ln(−ln(1 − F̂(x₍ᵢ₎)))) lie on a line with slope =
// shape and intercept = −shape·ln(scale); the R² of that line doubles as a
// quantitative "how Weibull is this?" score (the goodness-of-fit measure
// the paper notes its predecessors lacked).
//
// Less efficient than the MLE but robust and closed-form; also a good MLE
// starting point.
#pragma once

#include <span>

#include "harvest/dist/weibull.hpp"

namespace harvest::fit {

struct WeibullPlotFit {
  dist::Weibull model;
  /// R² of the probability-plot regression in [0, 1]; near 1 means the
  /// sample is well described by SOME Weibull.
  double r_squared = 0.0;
};

/// Least-squares fit on the Weibull plot using median ranks
/// (F̂(x₍ᵢ₎) = (i − 0.3)/(n + 0.4)). Requires >= 3 observations with >= 2
/// distinct positive values; zeros are clamped up to `zero_floor`.
[[nodiscard]] WeibullPlotFit fit_weibull_plot(std::span<const double> xs,
                                              double zero_floor = 1e-9);

}  // namespace harvest::fit
