#include "harvest/fit/weibull_plot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace harvest::fit {

WeibullPlotFit fit_weibull_plot(std::span<const double> xs,
                                double zero_floor) {
  if (xs.size() < 3) {
    throw std::invalid_argument("fit_weibull_plot: need n >= 3");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  for (double& x : sorted) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(
          "fit_weibull_plot: values must be finite and >= 0");
    }
    x = std::max(x, zero_floor);
  }
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) {
    throw std::invalid_argument(
        "fit_weibull_plot: all observations identical");
  }

  const double n = static_cast<double>(sorted.size());
  // Regression of y = ln(−ln(1 − F̂)) on u = ln x with median ranks.
  double su = 0.0, sy = 0.0, suu = 0.0, suy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double rank = (static_cast<double>(i) + 1.0 - 0.3) / (n + 0.4);
    const double u = std::log(sorted[i]);
    const double y = std::log(-std::log1p(-rank));
    su += u;
    sy += y;
    suu += u * u;
    suy += u * y;
    syy += y * y;
  }
  const double duu = suu - su * su / n;
  const double duy = suy - su * sy / n;
  const double dyy = syy - sy * sy / n;
  if (!(duu > 0.0)) {
    throw std::invalid_argument("fit_weibull_plot: degenerate abscissae");
  }
  const double slope = duy / duu;          // = shape
  const double intercept = (sy - slope * su) / n;
  if (!(slope > 0.0)) {
    throw std::runtime_error(
        "fit_weibull_plot: non-positive slope (data not Weibull-orderable)");
  }
  const double scale = std::exp(-intercept / slope);
  WeibullPlotFit fit{dist::Weibull(slope, scale), 0.0};
  fit.r_squared = (dyy > 0.0) ? (duy * duy) / (duu * dyy) : 1.0;
  return fit;
}

}  // namespace harvest::fit
