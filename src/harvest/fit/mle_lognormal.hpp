// Lognormal MLE: closed form on the log-transformed sample
// (μ̂ = mean(ln x), σ̂² = biased MLE variance of ln x).
#pragma once

#include <span>

#include "harvest/dist/lognormal.hpp"

namespace harvest::fit {

/// Requires >= 2 observations with >= 2 distinct positive values (σ̂ > 0).
/// Values of exactly zero are clamped up to `zero_floor`.
[[nodiscard]] dist::Lognormal fit_lognormal_mle(std::span<const double> xs,
                                                double zero_floor = 1e-9);

}  // namespace harvest::fit
