// Goodness-of-fit measures. The paper's antecedents ([9, 28]) proposed
// availability models "with no quantitative measure of goodness-of-fit";
// this module provides the quantitative measures: the Kolmogorov–Smirnov
// distance (with asymptotic p-value) and the Anderson–Darling statistic
// (more sensitive in the tails, which is where heavy-tailed availability
// models differ).
#pragma once

#include <span>

#include "harvest/dist/distribution.hpp"

namespace harvest::fit {

struct KsResult {
  double statistic = 0.0;  ///< sup |F_n(x) − F(x)|
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
};

/// One-sample KS test of `xs` against the hypothesized distribution.
/// Note: the asymptotic p-value assumes the parameters were NOT fitted from
/// `xs`; with fitted parameters it is optimistic (use it comparatively).
[[nodiscard]] KsResult ks_test(std::span<const double> xs,
                               const dist::Distribution& hypothesized);

/// Anderson–Darling statistic A² of `xs` against the hypothesized
/// distribution (no p-value; used comparatively).
[[nodiscard]] double anderson_darling(std::span<const double> xs,
                                      const dist::Distribution& hypothesized);

/// Asymptotic Kolmogorov distribution complement: P(D_n > d) ≈ Q_KS(√n·d).
[[nodiscard]] double kolmogorov_tail(double t);

/// Two-sample KS test: are two machines' availability samples drawn from
/// the same law? Useful for deciding whether machines can share a fitted
/// model (pooling 25-observation histories across identical hardware).
[[nodiscard]] KsResult ks_two_sample(std::span<const double> xs,
                                     std::span<const double> ys);

}  // namespace harvest::fit
