// Nonparametric bootstrap confidence intervals for fitted availability
// models. 25-observation training sets (the paper's operating point) make
// parameter uncertainty substantial; the bootstrap quantifies it without
// asymptotic formulas, for any fitter.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace harvest::fit {

/// A fitter maps a sample to a parameter vector (e.g. {shape, scale}).
/// Throwing fitters are fine: failed replicates are skipped (and counted).
using ParameterFitter =
    std::function<std::vector<double>(std::span<const double>)>;

struct BootstrapOptions {
  int replicates = 500;
  double confidence = 0.95;
  std::uint64_t seed = 1;
  /// Give up if more than this fraction of replicates fail to fit.
  double max_failure_fraction = 0.5;
};

struct ParameterInterval {
  double estimate = 0.0;  ///< fit on the original sample
  double lo = 0.0;        ///< percentile CI lower bound
  double hi = 0.0;        ///< percentile CI upper bound
};

struct BootstrapResult {
  std::vector<ParameterInterval> parameters;
  int replicates_used = 0;
  int replicates_failed = 0;
};

/// Percentile-method bootstrap: resample `xs` with replacement, refit,
/// take the (1±confidence)/2 quantiles per parameter.
[[nodiscard]] BootstrapResult bootstrap_parameters(
    std::span<const double> xs, const ParameterFitter& fitter,
    const BootstrapOptions& opts = {});

}  // namespace harvest::fit
