#include "harvest/fit/mle_weibull.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "harvest/numerics/roots.hpp"

namespace harvest::fit {

dist::Weibull fit_weibull_mle(std::span<const double> xs,
                              const WeibullFitOptions& opts) {
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_weibull_mle: need n >= 2");
  }
  std::vector<double> v(xs.begin(), xs.end());
  for (double& x : v) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(
          "fit_weibull_mle: values must be finite and >= 0");
    }
    x = std::max(x, opts.zero_floor);
  }
  const bool degenerate =
      std::all_of(v.begin(), v.end(), [&](double x) { return x == v[0]; });
  if (degenerate) {
    throw std::invalid_argument(
        "fit_weibull_mle: all observations identical; shape MLE diverges");
  }

  const double n = static_cast<double>(v.size());
  // Rescale by the geometric mean so x^alpha stays in range for extreme
  // shapes; the shape estimate is scale-invariant.
  double mean_log = 0.0;
  for (double x : v) mean_log += std::log(x);
  mean_log /= n;
  const double gm = std::exp(mean_log);
  std::vector<double> logs(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] /= gm;
    logs[i] = std::log(v[i]);
  }
  // After rescaling, (1/n) Σ ln xᵢ == 0, so the profile equation becomes
  // g(α) = Σ xᵢ^α ln xᵢ / Σ xᵢ^α − 1/α.
  const auto g = [&](double alpha) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double xa = std::exp(alpha * logs[i]);
      num += xa * logs[i];
      den += xa;
    }
    return num / den - 1.0 / alpha;
  };
  const auto dg = [&](double alpha) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double xa = std::exp(alpha * logs[i]);
      s0 += xa;
      s1 += xa * logs[i];
      s2 += xa * logs[i] * logs[i];
    }
    const double ratio = s1 / s0;
    return (s2 / s0 - ratio * ratio) + 1.0 / (alpha * alpha);
  };

  // Cap the shape so exp(alpha * log) cannot overflow to inf and poison the
  // bracket with NaNs (values are GM-normalized, so |log| is modest for any
  // non-degenerate sample).
  double max_abs_log = 0.0;
  for (double lg : logs) max_abs_log = std::max(max_abs_log, std::fabs(lg));
  double lo = opts.shape_min;
  double hi = std::min(opts.shape_max,
                       600.0 / std::max(max_abs_log, 1e-12));
  if (!(hi > lo) || g(lo) > 0.0 || g(hi) < 0.0) {
    throw std::runtime_error(
        "fit_weibull_mle: shape root outside configured search range");
  }
  // Moment-style starting guess: α ≈ 1.2 / stddev(ln x).
  double var_log = 0.0;
  for (double lg : logs) var_log += lg * lg;
  var_log /= (n - 1.0);
  const double x0 = std::clamp(
      var_log > 0.0 ? 1.2 / std::sqrt(var_log) : 1.0, lo * 2.0, hi / 2.0);
  const auto root = numerics::find_root_newton(g, dg, lo, hi, x0, opts.tol);
  const double alpha = root.x;

  double sum_xa = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sum_xa += std::exp(alpha * logs[i]);
  }
  const double beta = gm * std::pow(sum_xa / n, 1.0 / alpha);
  return dist::Weibull(alpha, beta);
}

}  // namespace harvest::fit
