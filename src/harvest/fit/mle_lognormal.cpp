#include "harvest/fit/mle_lognormal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace harvest::fit {

dist::Lognormal fit_lognormal_mle(std::span<const double> xs,
                                  double zero_floor) {
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_lognormal_mle: need n >= 2");
  }
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(
          "fit_lognormal_mle: values must be finite and >= 0");
    }
    logs.push_back(std::log(std::max(x, zero_floor)));
  }
  const double n = static_cast<double>(logs.size());
  double mu = 0.0;
  for (double l : logs) mu += l;
  mu /= n;
  double var = 0.0;
  for (double l : logs) var += (l - mu) * (l - mu);
  var /= n;  // MLE uses the biased (1/n) variance
  if (!(var > 0.0)) {
    throw std::invalid_argument(
        "fit_lognormal_mle: all observations identical; sigma MLE is 0");
  }
  return dist::Lognormal(mu, std::sqrt(var));
}

}  // namespace harvest::fit
