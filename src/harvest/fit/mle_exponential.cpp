#include "harvest/fit/mle_exponential.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::fit {

dist::Exponential fit_exponential_mle(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("fit_exponential_mle: empty");
  double sum = 0.0;
  for (double x : xs) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(
          "fit_exponential_mle: values must be finite and >= 0");
    }
    sum += x;
  }
  if (!(sum > 0.0)) {
    throw std::invalid_argument("fit_exponential_mle: sample mean must be > 0");
  }
  return dist::Exponential(static_cast<double>(xs.size()) / sum);
}

}  // namespace harvest::fit
