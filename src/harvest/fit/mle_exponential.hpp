// Maximum-likelihood fit of an exponential distribution: the paper's
// baseline availability model (fitted with Matlab there; closed form here).
#pragma once

#include <span>

#include "harvest/dist/exponential.hpp"

namespace harvest::fit {

/// MLE for the exponential rate: λ̂ = n / Σxᵢ. Requires a non-empty sample
/// with positive mean; non-negative values only.
[[nodiscard]] dist::Exponential fit_exponential_mle(
    std::span<const double> xs);

}  // namespace harvest::fit
