#include "harvest/fit/mle_gamma.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "harvest/numerics/roots.hpp"
#include "harvest/numerics/special_functions.hpp"

namespace harvest::fit {

dist::GammaDist fit_gamma_mle(std::span<const double> xs, double zero_floor) {
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_gamma_mle: need n >= 2");
  }
  std::vector<double> v(xs.begin(), xs.end());
  double mean = 0.0;
  double mean_log = 0.0;
  for (double& x : v) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(
          "fit_gamma_mle: values must be finite and >= 0");
    }
    x = std::max(x, zero_floor);
    mean += x;
    mean_log += std::log(x);
  }
  const double n = static_cast<double>(v.size());
  mean /= n;
  mean_log /= n;
  const double s = std::log(mean) - mean_log;  // >= 0 by Jensen
  if (!(s > 0.0)) {
    throw std::invalid_argument(
        "fit_gamma_mle: all observations identical; shape MLE diverges");
  }
  // g(k) = ln k − ψ(k) − s, strictly decreasing; start from the standard
  // closed-form approximation.
  const auto g = [&](double k) {
    return std::log(k) - numerics::digamma(k) - s;
  };
  double k0 = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
              (12.0 * s);
  k0 = std::clamp(k0, 1e-6, 1e6);
  double lo = k0;
  double hi = k0;
  while (g(lo) < 0.0 && lo > 1e-9) lo *= 0.5;
  while (g(hi) > 0.0 && hi < 1e9) hi *= 2.0;
  const auto root = numerics::find_root_bisection(g, lo, hi, 1e-12);
  const double shape = root.x;
  return dist::GammaDist(shape, mean / shape);
}

}  // namespace harvest::fit
