// Fit the paper's full model menu (exponential, Weibull, 2- and 3-phase
// hyperexponential) to one availability sample and compare the fits.
// This is the "software system that takes a set of measurements as inputs
// and computes Weibull, exponential, and hyperexponential parameters
// automatically" described in §3.4.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "harvest/dist/distribution.hpp"

namespace harvest::fit {

/// Which model families to fit. Defaults to the paper's set; lognormal and
/// gamma are opt-in extras from the wider availability literature.
struct ModelMenu {
  bool exponential = true;
  bool weibull = true;
  std::vector<int> hyperexp_phases = {2, 3};
  bool lognormal = false;
  bool gamma = false;
};

struct FittedModel {
  dist::DistributionPtr model;
  std::string family;       ///< "exponential", "weibull", "hyperexp2", ...
  double log_likelihood = 0.0;
  double aic = 0.0;
  double bic = 0.0;
  double ks_statistic = 0.0;
  double anderson_darling = 0.0;
};

/// Fit every family in the menu to `xs`. Families whose fit fails (e.g.
/// Weibull on a degenerate sample) are skipped. Result is non-empty for any
/// sample with >= 2 distinct positive values.
[[nodiscard]] std::vector<FittedModel> fit_all(std::span<const double> xs,
                                               const ModelMenu& menu = {});

/// Smallest-AIC entry; throws std::invalid_argument if `fits` is empty.
[[nodiscard]] const FittedModel& best_by_aic(
    const std::vector<FittedModel>& fits);

/// Smallest-BIC entry; throws std::invalid_argument if `fits` is empty.
[[nodiscard]] const FittedModel& best_by_bic(
    const std::vector<FittedModel>& fits);

/// Entry whose family name matches, or nullptr.
[[nodiscard]] const FittedModel* find_family(
    const std::vector<FittedModel>& fits, const std::string& family);

}  // namespace harvest::fit
