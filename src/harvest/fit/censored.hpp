// Right-censored availability fitting. The paper's §5.3 notes that a short
// measurement window "tends to right censor the data": a monitor job still
// running when measurement stops yields a duration known only to EXCEED the
// recorded value. Ignoring that biases every fitted model toward shorter
// lifetimes (and therefore toward over-checkpointing).
//
// This module provides censoring-aware maximum-likelihood fits: a censored
// observation contributes its survival S(x) to the likelihood instead of
// the density f(x).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::fit {

/// A lifetime sample with right-censoring flags. `observed[i]` is true when
/// values[i] is an actual failure time; false when the item was still alive
/// at values[i] (censored).
struct CensoredSample {
  std::vector<double> values;
  std::vector<bool> observed;

  [[nodiscard]] std::size_t size() const { return values.size(); }
  [[nodiscard]] std::size_t event_count() const;
  void validate() const;

  /// All-observed wrapper for plain samples.
  [[nodiscard]] static CensoredSample fully_observed(
      std::span<const double> xs);

  /// Right-censor every value above the horizon at the horizon — what a
  /// measurement window of that length does to a trace.
  [[nodiscard]] static CensoredSample censor_at(std::span<const double> xs,
                                                double horizon);
};

/// Censored exponential MLE: λ̂ = (#events) / Σ values (total time on test).
/// Requires >= 1 event and positive total time.
[[nodiscard]] dist::Exponential fit_exponential_censored(
    const CensoredSample& sample);

struct CensoredWeibullOptions {
  double zero_floor = 1e-9;
  double shape_min = 1e-3;
  double shape_max = 1e3;
  double tol = 1e-12;
};

/// Censored Weibull MLE (profile likelihood). The shape solves
///   Σ_all xᵢ^α ln xᵢ / Σ_all xᵢ^α − 1/α − (1/r) Σ_events ln xᵢ = 0
/// with r = number of events; then β̂ = (Σ_all xᵢ^α / r)^{1/α}.
/// Requires >= 2 events with at least 2 distinct values.
[[nodiscard]] dist::Weibull fit_weibull_censored(
    const CensoredSample& sample, const CensoredWeibullOptions& opts = {});

/// Censored log-likelihood of any distribution: Σ_events ln f(xᵢ) +
/// Σ_censored ln S(xᵢ).
[[nodiscard]] double censored_log_likelihood(const dist::Distribution& d,
                                             const CensoredSample& sample);

}  // namespace harvest::fit
