#include "harvest/fit/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "harvest/numerics/rng.hpp"
#include "harvest/stats/summary.hpp"

namespace harvest::fit {

BootstrapResult bootstrap_parameters(std::span<const double> xs,
                                     const ParameterFitter& fitter,
                                     const BootstrapOptions& opts) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty sample");
  if (opts.replicates < 10) {
    throw std::invalid_argument("bootstrap: need >= 10 replicates");
  }
  if (!(opts.confidence > 0.0 && opts.confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence in (0,1)");
  }

  const std::vector<double> point = fitter(xs);
  if (point.empty()) {
    throw std::invalid_argument("bootstrap: fitter returned no parameters");
  }

  numerics::Rng rng(opts.seed);
  std::vector<std::vector<double>> replicates;  // [param][replicate]
  replicates.resize(point.size());
  std::vector<double> resample(xs.size());
  int failed = 0;
  for (int b = 0; b < opts.replicates; ++b) {
    for (auto& r : resample) {
      r = xs[rng.uniform_index(xs.size())];
    }
    try {
      const std::vector<double> params = fitter(resample);
      if (params.size() != point.size()) {
        throw std::runtime_error("bootstrap: fitter arity changed");
      }
      for (std::size_t p = 0; p < params.size(); ++p) {
        replicates[p].push_back(params[p]);
      }
    } catch (const std::exception&) {
      ++failed;
    }
  }
  const int used = opts.replicates - failed;
  if (used <
      static_cast<int>((1.0 - opts.max_failure_fraction) * opts.replicates)) {
    throw std::runtime_error(
        "bootstrap: too many replicates failed to fit");
  }

  BootstrapResult result;
  result.replicates_used = used;
  result.replicates_failed = failed;
  const double alpha = 1.0 - opts.confidence;
  for (std::size_t p = 0; p < point.size(); ++p) {
    ParameterInterval ci;
    ci.estimate = point[p];
    ci.lo = stats::quantile_of(replicates[p], 0.5 * alpha);
    ci.hi = stats::quantile_of(replicates[p], 1.0 - 0.5 * alpha);
    result.parameters.push_back(ci);
  }
  return result;
}

}  // namespace harvest::fit
