#include "harvest/fit/goodness_of_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace harvest::fit {

double kolmogorov_tail(double t) {
  if (t <= 0.0) return 1.0;
  // Q_KS(t) = 2 Σ_{j>=1} (−1)^{j−1} e^{−2 j² t²}; converges very fast.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * t * t);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs,
                 const dist::Distribution& hypothesized) {
  if (xs.empty()) throw std::invalid_argument("ks_test: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double fx = hypothesized.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(fx - lo), std::fabs(hi - fx)});
  }
  KsResult r;
  r.statistic = d;
  const double sqrt_n = std::sqrt(n);
  // Stephens' small-sample correction.
  r.p_value = kolmogorov_tail((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return r;
}

KsResult ks_two_sample(std::span<const double> xs,
                       std::span<const double> ys) {
  if (xs.empty() || ys.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::vector<double> a(xs.begin(), xs.end());
  std::vector<double> b(ys.begin(), ys.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  KsResult r;
  r.statistic = d;
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  r.p_value = kolmogorov_tail((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return r;
}

double anderson_darling(std::span<const double> xs,
                        const dist::Distribution& hypothesized) {
  if (xs.empty()) throw std::invalid_argument("anderson_darling: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double dn = static_cast<double>(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double fi = hypothesized.cdf(sorted[i]);
    double fj = hypothesized.cdf(sorted[n - 1 - i]);
    // Clamp away from {0,1} so the logs stay finite.
    fi = std::clamp(fi, 1e-12, 1.0 - 1e-12);
    fj = std::clamp(fj, 1e-12, 1.0 - 1e-12);
    s += (2.0 * static_cast<double>(i) + 1.0) *
         (std::log(fi) + std::log1p(-fj));
  }
  return -dn - s / dn;
}

}  // namespace harvest::fit
