#include "harvest/stats/autocorrelation.hpp"

#include <cmath>
#include <stdexcept>

#include "harvest/numerics/special_functions.hpp"

namespace harvest::stats {

double autocorrelation(std::span<const double> xs, int lag) {
  if (lag < 1) throw std::invalid_argument("autocorrelation: lag >= 1");
  const std::size_t n = xs.size();
  if (n <= static_cast<std::size_t>(lag) + 1) {
    throw std::invalid_argument("autocorrelation: need n > lag + 1");
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double denom = 0.0;
  for (double x : xs) denom += (x - mean) * (x - mean);
  if (denom == 0.0) {
    throw std::invalid_argument("autocorrelation: constant series");
  }
  double num = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return num / denom;
}

IidDiagnostic iid_diagnostic(std::span<const double> xs, int max_lag,
                             double alpha) {
  if (max_lag < 1) throw std::invalid_argument("iid_diagnostic: max_lag >= 1");
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("iid_diagnostic: alpha in (0,1)");
  }
  const double n = static_cast<double>(xs.size());
  if (xs.size() <= static_cast<std::size_t>(max_lag) + 1) {
    throw std::invalid_argument("iid_diagnostic: need n > max_lag + 1");
  }
  IidDiagnostic d;
  d.lags = max_lag;
  double q = 0.0;
  for (int k = 1; k <= max_lag; ++k) {
    const double rho = autocorrelation(xs, k);
    if (k == 1) d.lag1 = rho;
    q += rho * rho / (n - static_cast<double>(k));
  }
  d.ljung_box_q = n * (n + 2.0) * q;
  // P(χ²(h) > Q) = Q_gamma(h/2, Q/2).
  d.p_value = numerics::gamma_q(0.5 * max_lag, 0.5 * d.ljung_box_q);
  d.iid_plausible = d.p_value >= alpha;
  return d;
}

}  // namespace harvest::stats
