// Fixed-width histogram used by the examples and the goodness-of-fit
// reporting to visualize availability-duration distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace harvest::stats {

class Histogram {
 public:
  /// Build `bins` equal-width bins over [lo, hi]; values outside the range
  /// are clamped into the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Empirical density (count / total / width) for a bin.
  [[nodiscard]] double density(std::size_t bin) const;

  /// Simple ASCII rendering (one row per bin) for terminal output.
  [[nodiscard]] std::string render_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace harvest::stats
