#include "harvest/stats/student_t.hpp"

#include <cmath>
#include <stdexcept>

#include "harvest/numerics/special_functions.hpp"

namespace harvest::stats {

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_cdf: df > 0");
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail =
      0.5 * numerics::incomplete_beta(0.5 * df, 0.5, x);
  return (t > 0.0) ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_quantile: df > 0");
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("student_t_quantile: p in (0,1)");
  }
  if (p == 0.5) return 0.0;
  // Work with the upper half by symmetry.
  const bool upper = p > 0.5;
  const double tail = upper ? 2.0 * (1.0 - p) : 2.0 * p;
  // t^2 = df (1/x - 1) where I_x(df/2, 1/2) = tail.
  const double x = numerics::incomplete_beta_inv(0.5 * df, 0.5, tail);
  const double t = std::sqrt(df * (1.0 / x - 1.0));
  return upper ? t : -t;
}

double student_t_two_sided_p(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_two_sided_p: df > 0");
  const double x = df / (df + t * t);
  return numerics::incomplete_beta(0.5 * df, 0.5, x);
}

}  // namespace harvest::stats
