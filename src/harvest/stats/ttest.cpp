#include "harvest/stats/ttest.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "harvest/stats/student_t.hpp"
#include "harvest/stats/summary.hpp"

namespace harvest::stats {
namespace {

TTestResult finish(double t, double df, double mean_diff, double alpha) {
  TTestResult r;
  r.t_statistic = t;
  r.df = df;
  r.mean_diff = mean_diff;
  r.p_value = student_t_two_sided_p(t, df);
  r.significant = r.p_value < alpha;
  return r;
}

}  // namespace

TTestResult paired_t_test(std::span<const double> a, std::span<const double> b,
                          double alpha) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_t_test: unequal lengths");
  }
  if (a.size() < 2) throw std::invalid_argument("paired_t_test: need n >= 2");
  std::vector<double> diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double n = static_cast<double>(diff.size());
  const double md = mean_of(diff);
  const double sd = std::sqrt(variance_of(diff));
  if (sd == 0.0) {
    // All pairs identical: t is degenerate. Treat zero mean difference as
    // "no evidence", nonzero (impossible here since sd==0 => all diffs equal
    // md) as maximally significant when md != 0.
    TTestResult r;
    r.mean_diff = md;
    r.df = n - 1.0;
    r.t_statistic = (md == 0.0) ? 0.0 : std::numeric_limits<double>::infinity();
    r.p_value = (md == 0.0) ? 1.0 : 0.0;
    r.significant = md != 0.0 && r.p_value < alpha;
    return r;
  }
  const double t = md / (sd / std::sqrt(n));
  return finish(t, n - 1.0, md, alpha);
}

TTestResult one_sample_t_test(std::span<const double> xs, double mu0,
                              double alpha) {
  if (xs.size() < 2) {
    throw std::invalid_argument("one_sample_t_test: need n >= 2");
  }
  const double n = static_cast<double>(xs.size());
  const double m = mean_of(xs);
  const double sd = std::sqrt(variance_of(xs));
  if (sd == 0.0) {
    TTestResult r;
    r.mean_diff = m - mu0;
    r.df = n - 1.0;
    r.p_value = (r.mean_diff == 0.0) ? 1.0 : 0.0;
    r.significant = r.p_value < alpha;
    return r;
  }
  const double t = (m - mu0) / (sd / std::sqrt(n));
  return finish(t, n - 1.0, m - mu0, alpha);
}

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b,
                         double alpha) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need n >= 2 in both samples");
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  const double va = variance_of(a) / na;
  const double vb = variance_of(b) / nb;
  const double se2 = va + vb;
  if (se2 == 0.0) {
    TTestResult r;
    r.mean_diff = ma - mb;
    r.df = na + nb - 2.0;
    r.p_value = (r.mean_diff == 0.0) ? 1.0 : 0.0;
    r.significant = r.p_value < alpha;
    return r;
  }
  const double t = (ma - mb) / std::sqrt(se2);
  const double df =
      se2 * se2 / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  return finish(t, df, ma - mb, alpha);
}

}  // namespace harvest::stats
