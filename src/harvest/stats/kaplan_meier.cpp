#include "harvest/stats/kaplan_meier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harvest::stats {

KaplanMeier::KaplanMeier(const std::vector<double>& times,
                         const std::vector<bool>& observed) {
  if (times.empty() || times.size() != observed.size()) {
    throw std::invalid_argument(
        "KaplanMeier: need non-empty, equal-length times/observed");
  }
  struct Item {
    double time;
    bool event;
  };
  std::vector<Item> items;
  items.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!(times[i] >= 0.0) || !std::isfinite(times[i])) {
      throw std::invalid_argument(
          "KaplanMeier: times must be finite and >= 0");
    }
    items.push_back({times[i], observed[i]});
    max_time_ = std::max(max_time_, times[i]);
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.time < b.time; });

  double s = 1.0;
  std::size_t at_risk = items.size();
  std::size_t i = 0;
  while (i < items.size()) {
    const double t = items[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < items.size() && items[i].time == t) {
      if (items[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      s *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      points_.push_back(KaplanMeierPoint{t, s, at_risk, events});
    }
    at_risk -= leaving;
  }
}

double KaplanMeier::survival(double t) const {
  double s = 1.0;
  for (const auto& p : points_) {
    if (p.time > t) break;
    s = p.survival;
  }
  return s;
}

double KaplanMeier::median() const {
  for (const auto& p : points_) {
    if (p.survival <= 0.5) return p.time;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double KaplanMeier::restricted_mean(double tau) const {
  if (tau < 0.0) tau = max_time_;
  double area = 0.0;
  double prev_time = 0.0;
  double prev_s = 1.0;
  for (const auto& p : points_) {
    if (p.time >= tau) break;
    area += prev_s * (p.time - prev_time);
    prev_time = p.time;
    prev_s = p.survival;
  }
  area += prev_s * (tau - prev_time);
  return area;
}

NelsonAalen::NelsonAalen(const std::vector<double>& times,
                         const std::vector<bool>& observed) {
  if (times.empty() || times.size() != observed.size()) {
    throw std::invalid_argument(
        "NelsonAalen: need non-empty, equal-length times/observed");
  }
  struct Item {
    double time;
    bool event;
  };
  std::vector<Item> items;
  items.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!(times[i] >= 0.0) || !std::isfinite(times[i])) {
      throw std::invalid_argument(
          "NelsonAalen: times must be finite and >= 0");
    }
    items.push_back({times[i], observed[i]});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.time < b.time; });

  double h = 0.0;
  std::size_t at_risk = items.size();
  std::size_t i = 0;
  while (i < items.size()) {
    const double t = items[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < items.size() && items[i].time == t) {
      if (items[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      h += static_cast<double>(events) / static_cast<double>(at_risk);
      points_.push_back(Point{t, h});
    }
    at_risk -= leaving;
  }
}

double NelsonAalen::cumulative_hazard(double t) const {
  double h = 0.0;
  for (const auto& p : points_) {
    if (p.time > t) break;
    h = p.hazard;
  }
  return h;
}

double NelsonAalen::survival(double t) const {
  return std::exp(-cumulative_hazard(t));
}

}  // namespace harvest::stats
