// Sample summaries and confidence intervals. The paper reports, for every
// (distribution, checkpoint-cost) cell, the across-machine mean with a 95 %
// Student-t confidence interval (Tables 1 and 3).
#pragma once

#include <cstddef>
#include <span>

namespace harvest::stats {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long runs; merging supported for parallel reduction.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n−1 denominator). Requires count() >= 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< mean ± half_width
  std::size_t n = 0;

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
};

/// Two-sided Student-t confidence interval for the mean of `xs` at the given
/// confidence level (default 95 %). Requires xs.size() >= 2.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    std::span<const double> xs, double confidence = 0.95);

/// Sample mean (requires non-empty input).
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Unbiased sample variance (requires >= 2 values).
[[nodiscard]] double variance_of(std::span<const double> xs);

/// Median (copies and partially sorts; requires non-empty input).
[[nodiscard]] double median_of(std::span<const double> xs);

/// p-quantile by linear interpolation of the order statistics, p in [0, 1].
[[nodiscard]] double quantile_of(std::span<const double> xs, double p);

}  // namespace harvest::stats
