// I.i.d. diagnostics for availability traces. The whole fitting pipeline
// (§3.4) assumes a machine's availability durations are independent and
// identically distributed; these helpers let an operator check that before
// trusting a fit: sample autocorrelations and the Ljung–Box portmanteau
// test (Q ~ χ²(h) under the i.i.d. null).
#pragma once

#include <span>

namespace harvest::stats {

/// Sample autocorrelation ρ̂(lag); requires n > lag and non-constant data.
[[nodiscard]] double autocorrelation(std::span<const double> xs, int lag);

struct IidDiagnostic {
  double lag1 = 0.0;          ///< ρ̂(1)
  double ljung_box_q = 0.0;   ///< Q statistic over `lags` lags
  double p_value = 1.0;       ///< P(χ²(lags) > Q)
  int lags = 0;
  /// p_value >= alpha: no evidence against independence.
  bool iid_plausible = true;
};

/// Ljung–Box test over lags 1..max_lag at significance `alpha`.
/// Requires n > max_lag + 1.
[[nodiscard]] IidDiagnostic iid_diagnostic(std::span<const double> xs,
                                           int max_lag = 10,
                                           double alpha = 0.05);

}  // namespace harvest::stats
