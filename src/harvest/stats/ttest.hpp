// Paired t-tests. The paper compares, per checkpoint cost, every pair of
// distribution models across the same machine set, and marks a model's cell
// with the letters of the models it beats at significance level 0.05
// (two-sided paired t-test). `paired_t_test` implements exactly that test.
#pragma once

#include <span>

namespace harvest::stats {

struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;   ///< two-sided
  double mean_diff = 0.0; ///< mean(a − b)
  double df = 0.0;
  /// True when p_value < alpha (set by the caller-chosen alpha).
  bool significant = false;
};

/// Two-sided paired t-test of H0: mean(a − b) == 0. `a` and `b` must be the
/// same length (pairs share an index, e.g. the same machine under two
/// models). `alpha` sets the `significant` flag.
[[nodiscard]] TTestResult paired_t_test(std::span<const double> a,
                                        std::span<const double> b,
                                        double alpha = 0.05);

/// Two-sided one-sample t-test of H0: mean(xs) == mu0.
[[nodiscard]] TTestResult one_sample_t_test(std::span<const double> xs,
                                            double mu0, double alpha = 0.05);

/// Welch's two-sided unpaired t-test (unequal variances) of
/// H0: mean(a) == mean(b).
[[nodiscard]] TTestResult welch_t_test(std::span<const double> a,
                                       std::span<const double> b,
                                       double alpha = 0.05);

}  // namespace harvest::stats
