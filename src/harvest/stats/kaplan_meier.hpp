// Kaplan–Meier product-limit estimator: the nonparametric survival curve
// for right-censored lifetime data. Used to sanity-check parametric fits on
// censored availability traces (§5.3's right-censoring concern) without
// assuming any family.
#pragma once

#include <vector>

namespace harvest::stats {

struct KaplanMeierPoint {
  double time = 0.0;      ///< an observed failure time
  double survival = 1.0;  ///< Ŝ(time), after the drop at `time`
  std::size_t at_risk = 0;
  std::size_t events = 0;
};

class KaplanMeier {
 public:
  /// `times[i]` with `observed[i]` false is right-censored at that time.
  /// (std::vector<bool> rather than a span: the packed vector has no
  /// contiguous bool storage to view.)
  KaplanMeier(const std::vector<double>& times,
              const std::vector<bool>& observed);

  /// Step-function value Ŝ(t); 1 before the first event.
  [[nodiscard]] double survival(double t) const;

  /// Smallest time with Ŝ(t) <= 0.5, or NaN if the curve never reaches 0.5
  /// (heavy censoring).
  [[nodiscard]] double median() const;

  /// The curve's steps, one per distinct event time.
  [[nodiscard]] const std::vector<KaplanMeierPoint>& points() const {
    return points_;
  }

  /// Restricted mean survival time: ∫₀^τ Ŝ(t) dt (exact for the step
  /// function). τ defaults to the largest time in the data.
  [[nodiscard]] double restricted_mean(double tau = -1.0) const;

 private:
  std::vector<KaplanMeierPoint> points_;
  double max_time_ = 0.0;
};

/// Nelson–Aalen cumulative-hazard estimator Ĥ(t) = Σ_{tᵢ ≤ t} dᵢ/nᵢ for
/// right-censored data — the hazard-side companion of Kaplan–Meier. A
/// concave Ĥ is the model-free signature of the decreasing hazard the
/// paper's heavy-tailed models encode.
class NelsonAalen {
 public:
  NelsonAalen(const std::vector<double>& times,
              const std::vector<bool>& observed);

  /// Step-function Ĥ(t); 0 before the first event.
  [[nodiscard]] double cumulative_hazard(double t) const;

  /// exp(−Ĥ(t)): the Fleming–Harrington survival estimate (close to
  /// Kaplan–Meier, slightly above it).
  [[nodiscard]] double survival(double t) const;

  struct Point {
    double time = 0.0;
    double hazard = 0.0;  ///< Ĥ after the jump at `time`
  };
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace harvest::stats
