#include "harvest/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace harvest::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins >= 1");
}

void Histogram::add(double x) {
  const double pos = (x - lo_) / bin_width_;
  std::size_t bin;
  if (pos < 0.0) {
    bin = 0;
  } else {
    bin = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + static_cast<double>(bin + 1) * bin_width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) /
         (static_cast<double>(total_) * bin_width_);
}

std::string Histogram::render_ascii(std::size_t width) const {
  std::size_t max_count = 0;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        (max_count == 0)
            ? 0
            : counts_[b] * width / max_count;
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace harvest::stats
