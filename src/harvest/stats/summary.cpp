#include "harvest/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "harvest/stats/student_t.hpp"

namespace harvest::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: empty");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw std::logic_error("RunningStats::variance: need n >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: empty");
  return max_;
}

ConfidenceInterval mean_confidence_interval(std::span<const double> xs,
                                            double confidence) {
  if (xs.size() < 2) {
    throw std::invalid_argument("mean_confidence_interval: need n >= 2");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("mean_confidence_interval: confidence in (0,1)");
  }
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double n = static_cast<double>(rs.count());
  const double se = rs.stddev() / std::sqrt(n);
  const double t =
      student_t_quantile(0.5 + 0.5 * confidence, n - 1.0);
  return ConfidenceInterval{rs.mean(), t * se, rs.count()};
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean_of: empty");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance_of: need n >= 2");
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double median_of(std::span<const double> xs) { return quantile_of(xs, 0.5); }

double quantile_of(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile_of: empty");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("quantile_of: p in [0,1]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace harvest::stats
