// Student's t distribution, implemented on top of the regularized
// incomplete beta function. Needed for confidence intervals and the paired
// t-tests whose significance letters annotate Tables 1 and 3.
#pragma once

namespace harvest::stats {

/// CDF of Student's t with `df` degrees of freedom at `t`.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Quantile (inverse CDF) of Student's t: returns t with CDF(t) = p.
[[nodiscard]] double student_t_quantile(double p, double df);

/// Two-sided tail probability P(|T| >= |t|) for df degrees of freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double df);

}  // namespace harvest::stats
