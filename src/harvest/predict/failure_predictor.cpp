#include "harvest/predict/failure_predictor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace harvest::predict {

namespace {

/// splitmix64 finalizer: the spell-hash mixer behind reclaim_hint.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void PredictorConfig::validate() const {
  if (!(precision > 0.0) || !(precision <= 1.0) || !std::isfinite(precision)) {
    throw std::invalid_argument(
        "PredictorConfig: precision must be in (0, 1]");
  }
  if (!(recall >= 0.0) || !(recall <= 1.0) || !std::isfinite(recall)) {
    throw std::invalid_argument("PredictorConfig: recall must be in [0, 1]");
  }
  if (!(window_s > 0.0) || !std::isfinite(window_s)) {
    throw std::invalid_argument("PredictorConfig: window_s must be > 0");
  }
}

PredictorStats& PredictorStats::operator+=(const PredictorStats& other) {
  events += other.events;
  true_alerts += other.true_alerts;
  false_alerts += other.false_alerts;
  missed += other.missed;
  return *this;
}

FailurePredictor::FailurePredictor(const PredictorConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      false_rate_(config.recall * (1.0 - config.precision) /
                  config.precision),
      salt_(mix64(seed)),
      rng_(seed) {
  config_.validate();
}

std::optional<double> FailurePredictor::reclaim_hint(double spell_start_s,
                                                     double spell_end_s,
                                                     double now_s) const {
  if (!(config_.recall > 0.0)) return std::nullopt;
  // A realistic predictor only speaks within its window: before
  // spell_end - I no alert for this reclamation can have fired yet.
  if (spell_end_s - now_s > config_.window_s) return std::nullopt;
  // Coverage is a recall-weighted coin keyed on the spell itself (hashed
  // bounds, salted by the seed): the same spell always answers the same
  // way, and across the pool a fraction `recall` of spells are covered.
  std::uint64_t h = mix64(salt_ ^ std::bit_cast<std::uint64_t>(spell_start_s));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(spell_end_s));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config_.recall) return std::nullopt;
  return std::max(spell_end_s - now_s, 0.0);
}

std::vector<Alert> FailurePredictor::alerts_for_spell(double start_s,
                                                      double event_s,
                                                      std::size_t machine) {
  if (!(event_s > start_s)) {
    throw std::invalid_argument(
        "FailurePredictor: spell must end after it starts");
  }
  PredictorStats* per_machine = nullptr;
  if (machine != kNoMachine) {
    if (machine >= machine_stats_.size()) machine_stats_.resize(machine + 1);
    per_machine = &machine_stats_[machine];
  }
  ++stats_.events;
  if (per_machine != nullptr) ++per_machine->events;
  std::vector<Alert> alerts;

  // True alert: recall-sampled, uniform inside the window of length I
  // ending at the event (clipped to the spell for spells shorter than I).
  if (rng_.uniform() < config_.recall) {
    const double lo = std::max(start_s, event_s - config_.window_s);
    Alert a;
    a.time_s = rng_.uniform(lo, event_s);
    a.truth = true;
    alerts.push_back(a);
    ++stats_.true_alerts;
    if (per_machine != nullptr) ++per_machine->true_alerts;
  } else {
    ++stats_.missed;
    if (per_machine != nullptr) ++per_machine->missed;
  }

  // False alerts: expected false_rate_ per spell, each placed strictly more
  // than a window before the event so its forward window cannot contain it.
  // Spells with no such room emit none.
  const double false_hi = event_s - config_.window_s;
  if (false_rate_ > 0.0 && false_hi > start_s) {
    const double frac = false_rate_ - std::floor(false_rate_);
    auto count = static_cast<std::uint64_t>(std::floor(false_rate_));
    if (frac > 0.0 && rng_.uniform() < frac) ++count;
    for (std::uint64_t i = 0; i < count; ++i) {
      Alert a;
      a.time_s = rng_.uniform(start_s, false_hi);
      a.truth = false;
      alerts.push_back(a);
      ++stats_.false_alerts;
      if (per_machine != nullptr) ++per_machine->false_alerts;
    }
  }

  std::sort(alerts.begin(), alerts.end(),
            [](const Alert& a, const Alert& b) { return a.time_s < b.time_s; });
  return alerts;
}

}  // namespace harvest::predict
