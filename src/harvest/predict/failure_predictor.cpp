#include "harvest/predict/failure_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harvest::predict {

void PredictorConfig::validate() const {
  if (!(precision > 0.0) || !(precision <= 1.0) || !std::isfinite(precision)) {
    throw std::invalid_argument(
        "PredictorConfig: precision must be in (0, 1]");
  }
  if (!(recall >= 0.0) || !(recall <= 1.0) || !std::isfinite(recall)) {
    throw std::invalid_argument("PredictorConfig: recall must be in [0, 1]");
  }
  if (!(window_s > 0.0) || !std::isfinite(window_s)) {
    throw std::invalid_argument("PredictorConfig: window_s must be > 0");
  }
}

PredictorStats& PredictorStats::operator+=(const PredictorStats& other) {
  events += other.events;
  true_alerts += other.true_alerts;
  false_alerts += other.false_alerts;
  missed += other.missed;
  return *this;
}

FailurePredictor::FailurePredictor(const PredictorConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      false_rate_(config.recall * (1.0 - config.precision) /
                  config.precision),
      rng_(seed) {
  config_.validate();
}

std::vector<Alert> FailurePredictor::alerts_for_spell(double start_s,
                                                      double event_s) {
  if (!(event_s > start_s)) {
    throw std::invalid_argument(
        "FailurePredictor: spell must end after it starts");
  }
  ++stats_.events;
  std::vector<Alert> alerts;

  // True alert: recall-sampled, uniform inside the window of length I
  // ending at the event (clipped to the spell for spells shorter than I).
  if (rng_.uniform() < config_.recall) {
    const double lo = std::max(start_s, event_s - config_.window_s);
    Alert a;
    a.time_s = rng_.uniform(lo, event_s);
    a.truth = true;
    alerts.push_back(a);
    ++stats_.true_alerts;
  } else {
    ++stats_.missed;
  }

  // False alerts: expected false_rate_ per spell, each placed strictly more
  // than a window before the event so its forward window cannot contain it.
  // Spells with no such room emit none.
  const double false_hi = event_s - config_.window_s;
  if (false_rate_ > 0.0 && false_hi > start_s) {
    const double frac = false_rate_ - std::floor(false_rate_);
    auto count = static_cast<std::uint64_t>(std::floor(false_rate_));
    if (frac > 0.0 && rng_.uniform() < frac) ++count;
    for (std::uint64_t i = 0; i < count; ++i) {
      Alert a;
      a.time_s = rng_.uniform(start_s, false_hi);
      a.truth = false;
      alerts.push_back(a);
      ++stats_.false_alerts;
    }
  }

  std::sort(alerts.begin(), alerts.end(),
            [](const Alert& a, const Alert& b) { return a.time_s < b.time_s; });
  return alerts;
}

}  // namespace harvest::predict
