#include "harvest/predict/proactive_policy.hpp"

#include <algorithm>
#include <cmath>

namespace harvest::predict {

std::string_view to_string(ProactiveAction action) {
  switch (action) {
    case ProactiveAction::kSkip:
      return "skip";
    case ProactiveAction::kCheckpointNow:
      return "checkpoint_now";
    case ProactiveAction::kCheckpointDelayed:
      return "checkpoint_delayed";
  }
  return "invalid";
}

ProactivePolicy::ProactivePolicy(const PredictorConfig& predictor,
                                 ProactivePolicyConfig config)
    : predictor_(predictor), config_(config) {
  predictor_.validate();
}

ProactiveDecision ProactivePolicy::decide(double work_at_risk_s,
                                          double checkpoint_cost_s) const {
  ProactiveDecision out;
  const double I = predictor_.window_s;
  const double C = std::max(checkpoint_cost_s, 0.0);
  const double W = std::max(work_at_risk_s, 0.0);
  const double slack = I - C;
  if (!(slack > 0.0)) return out;  // no delay lets the checkpoint commit

  const double d = std::clamp((slack - W) / 2.0, 0.0, slack);
  const double commit_prob = (slack - d) / I;  // event past a+d+C
  out.expected_benefit_s =
      predictor_.precision * commit_prob * (W + d) - C;
  if (!(out.expected_benefit_s > config_.min_benefit_s)) return out;
  out.delay_s = d;
  out.action = d > 0.0 ? ProactiveAction::kCheckpointDelayed
                       : ProactiveAction::kCheckpointNow;
  return out;
}

double effective_recall(const PredictorConfig& predictor,
                        double checkpoint_cost_s) {
  const double slack = predictor.window_s - std::max(checkpoint_cost_s, 0.0);
  if (!(slack > 0.0)) return 0.0;
  return predictor.recall * slack / predictor.window_s;
}

double prediction_period_factor(const PredictorConfig& predictor,
                                double checkpoint_cost_s) {
  const double r =
      std::min(effective_recall(predictor, checkpoint_cost_s),
               kMaxEffectiveRecall);
  return 1.0 / std::sqrt(1.0 - r);
}

}  // namespace harvest::predict
