// Window-aware proactive-checkpoint placement and the prediction-aware
// period correction, after Aupy/Robert/Vivien/Zaidouni's prediction-window
// analysis ("Checkpointing strategies with prediction windows").
//
// On an alert at time a, the predictor asserts "failure within (a, a+I]"
// with probability p (the precision). A proactive checkpoint of duration C
// started after a delay d completes at a+d+C; under a uniform event
// position inside the window it commits in time with probability
// (I-d-C)/I, saving the W seconds of uncommitted work at the alert plus
// the d seconds accrued during the delay. The expected benefit
//
//   B(d) = p · max(0, I-d-C)/I · (W+d) - C
//
// is a downward parabola in d with unconstrained maximum at
// d* = ((I-C) - W)/2; clamping to [0, I-C] yields the window rule:
//
//   * I <= C               -> skip (no delay can fit the checkpoint);
//   * W >= I-C             -> checkpoint now (d* = 0: every second of
//                             delay risks more than it accrues);
//   * otherwise            -> checkpoint at the window fraction d*/I
//                             (accrue a little more work first);
// and in every case act only when B(d*) clears the configured margin.
//
// The same paper's first-order period correction: a predictor with
// effective recall r̃ removes a fraction r̃ of unpredicted failures, so the
// reactive (periodic) checkpoint interval stretches by 1/sqrt(1-r̃) — the
// Young/Daly-style square-root law applied to the surviving failure rate.
// The window discounts recall by the fraction of alerts whose window can
// fit a checkpoint at all: r̃ = r · max(0, I-C)/I.
#pragma once

#include <cstdint>
#include <string_view>

#include "harvest/predict/failure_predictor.hpp"

namespace harvest::predict {

enum class ProactiveAction : std::uint8_t {
  kSkip = 0,            ///< ignore the alert
  kCheckpointNow,       ///< start the proactive checkpoint immediately
  kCheckpointDelayed,   ///< start it delay_s into the window
};

[[nodiscard]] std::string_view to_string(ProactiveAction action);

struct ProactiveDecision {
  ProactiveAction action = ProactiveAction::kSkip;
  /// Seconds after the alert at which to start the checkpoint (0 for
  /// kCheckpointNow, the window-fraction delay for kCheckpointDelayed).
  double delay_s = 0.0;
  /// B(d*): expected seconds of work saved net of the checkpoint cost.
  double expected_benefit_s = 0.0;
};

struct ProactivePolicyConfig {
  /// Act only when the expected net benefit clears this margin (seconds of
  /// work). 0 acts on any positive expected benefit.
  double min_benefit_s = 0.0;
};

/// Pure decision function (no RNG, no state beyond the configs): both pool
/// engines and the tests call the same rule.
class ProactivePolicy {
 public:
  explicit ProactivePolicy(const PredictorConfig& predictor,
                           ProactivePolicyConfig config = {});

  /// Decide at an alert, given the uncommitted work W (seconds since the
  /// last committed checkpoint) and the checkpoint cost C the job currently
  /// measures.
  [[nodiscard]] ProactiveDecision decide(double work_at_risk_s,
                                         double checkpoint_cost_s) const;

  [[nodiscard]] const PredictorConfig& predictor() const {
    return predictor_;
  }
  [[nodiscard]] const ProactivePolicyConfig& config() const {
    return config_;
  }

 private:
  PredictorConfig predictor_;
  ProactivePolicyConfig config_;
};

/// Effective recall r̃ = r · max(0, I-C)/I: an alert whose window cannot
/// fit a checkpoint saves nothing.
[[nodiscard]] double effective_recall(const PredictorConfig& predictor,
                                      double checkpoint_cost_s);

/// Aupy et al. first-order period stretch 1/sqrt(1 - r̃), the factor a
/// prediction-aware planner applies to the reactive T_opt. r̃ is capped
/// just below 1 so a perfect predictor yields a large finite stretch
/// instead of an unbounded interval.
[[nodiscard]] double prediction_period_factor(const PredictorConfig& predictor,
                                              double checkpoint_cost_s);

/// Cap applied to the effective recall inside prediction_period_factor.
inline constexpr double kMaxEffectiveRecall = 0.99;

}  // namespace harvest::predict
