// Seeded fault-prediction oracle for the pool simulation, after
// Aupy/Robert/Vivien/Zaidouni ("Impact of fault prediction on checkpointing
// strategies" and the prediction-windows follow-up): a real-world predictor
// is characterized by its precision p (fraction of alerts that precede a
// real event), recall r (fraction of events that get an alert), and a
// prediction window I (the alert says "failure within the next I seconds",
// not "failure at time t").
//
// The oracle sees the HIDDEN reclamation trace — each availability spell
// [start, event) as the simulation samples it — and emits alerts per spell:
//
//   * a true alert with probability r, placed uniformly inside the window
//     of length I ending at the true event, i.e. in
//     [max(start, event - I), event), so the event always falls inside the
//     alert's forward window (alert, alert + I];
//   * false alerts at a per-spell rate of r·(1-p)/p, placed uniformly in
//     [start, event - I) — strictly more than I before the event, so their
//     forward window provably does NOT contain it. With TP per spell = r
//     and FP per spell = r·(1-p)/p the observed precision
//     TP/(TP+FP) = r/(r + r·(1-p)/p) = p converges to the configured
//     precision. Spells shorter than I have no room for a provably false
//     alert and emit none (the observed precision then converges from
//     above — every alert the oracle can place is true).
//
// Everything is deterministic given the seed and the spell sequence: the
// oracle owns a private Rng, so attaching it never perturbs any other
// random stream in the simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "harvest/numerics/rng.hpp"

namespace harvest::predict {

struct PredictorConfig {
  /// Precision p ∈ (0, 1]: fraction of alerts that are true.
  double precision = 0.8;
  /// Recall r ∈ [0, 1]: fraction of reclamations that get an alert.
  double recall = 0.7;
  /// Prediction window I > 0 (seconds): a true alert fires inside the
  /// window of length I ending at the event.
  double window_s = 1800.0;

  /// Throws std::invalid_argument when a field is outside its domain.
  void validate() const;
};

/// One emitted alert. `truth` is ground truth the simulation may use for
/// accounting ONLY — a policy reacting to an alert must not peek at it
/// (a real predictor does not know which of its alerts are false).
struct Alert {
  double time_s = 0.0;
  bool truth = false;
};

/// Per-pool tallies of the oracle's behavior; observed_precision() /
/// observed_recall() converge to the configured (p, r) as spells accumulate
/// (precision from above when many spells are shorter than the window).
struct PredictorStats {
  std::uint64_t events = 0;       ///< spells observed (each ends in an event)
  std::uint64_t true_alerts = 0;  ///< events that got their alert
  std::uint64_t false_alerts = 0;
  std::uint64_t missed = 0;  ///< events with no alert (= events - true)

  [[nodiscard]] double observed_precision() const {
    const std::uint64_t alerts = true_alerts + false_alerts;
    return alerts > 0
               ? static_cast<double>(true_alerts) / static_cast<double>(alerts)
               : 0.0;
  }
  [[nodiscard]] double observed_recall() const {
    return events > 0
               ? static_cast<double>(true_alerts) / static_cast<double>(events)
               : 0.0;
  }

  PredictorStats& operator+=(const PredictorStats& other);
};

class FailurePredictor {
 public:
  /// Sentinel for "spell not attributed to a machine".
  static constexpr std::size_t kNoMachine =
      static_cast<std::size_t>(-1);

  /// Throws std::invalid_argument when `config` fails validate().
  FailurePredictor(const PredictorConfig& config, std::uint64_t seed);

  /// Alerts for one availability spell [start_s, event_s) whose hidden
  /// reclamation happens at event_s. Returned sorted by time, each alert
  /// strictly inside [start_s, event_s). Consumes this oracle's private
  /// RNG in call order, so a fixed seed and spell sequence reproduce the
  /// alert stream bit-for-bit. `machine` (when not kNoMachine) attributes
  /// the spell's tallies to that machine in machine_stats() — pure
  /// bookkeeping, the alert stream is machine-agnostic.
  [[nodiscard]] std::vector<Alert> alerts_for_spell(
      double start_s, double event_s, std::size_t machine = kNoMachine);

  /// The matchmaker's view of the oracle: does it foresee the reclamation
  /// ending the availability spell [spell_start_s, spell_end_s) of a machine
  /// being considered at now_s, and if so, how long until it? Returns the
  /// residual spell_end_s - now_s when (a) the oracle covers this spell —
  /// decided with probability `recall` by a hash of the spell bounds, so the
  /// answer is stable across repeated queries — and (b) the reclamation is
  /// within the prediction window (an alert for it could have fired by now).
  /// Deterministic, side-effect free, and RNG-free: querying it any number
  /// of times (or not at all) never perturbs the alert stream, and with
  /// recall 0 it never fires — both properties the engines' bit-identity
  /// guarantees rely on.
  [[nodiscard]] std::optional<double> reclaim_hint(double spell_start_s,
                                                   double spell_end_s,
                                                   double now_s) const;

  [[nodiscard]] const PredictorStats& stats() const { return stats_; }
  /// Per-machine tallies, indexed by machine; sized to the largest machine
  /// index attributed so far (empty if no call passed one). Summing every
  /// entry reproduces the machine-attributed share of stats().
  [[nodiscard]] const std::vector<PredictorStats>& machine_stats() const {
    return machine_stats_;
  }
  [[nodiscard]] const PredictorConfig& config() const { return config_; }

 private:
  PredictorConfig config_;
  double false_rate_;  ///< expected false alerts per spell: r·(1-p)/p
  std::uint64_t salt_;  ///< seed-derived; keys reclaim_hint's spell hash
  numerics::Rng rng_;
  PredictorStats stats_;
  std::vector<PredictorStats> machine_stats_;
};

}  // namespace harvest::predict
