#include "harvest/plan/streaming_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harvest::plan {
namespace {

void check_duration(double x, const char* who) {
  if (!(x >= 0.0) || !std::isfinite(x)) {
    throw std::invalid_argument(std::string(who) +
                                ": durations must be finite and >= 0");
  }
}

/// Cubic Hermite interpolant of f on [0, 1] from endpoint values/slopes
/// (slopes already scaled by the interval length).
double hermite(double t, double f0, double f1, double d0, double d1) {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return f0 * (2.0 * t3 - 3.0 * t2 + 1.0) + d0 * (t3 - 2.0 * t2 + t) +
         f1 * (-2.0 * t3 + 3.0 * t2) + d1 * (t3 - t2);
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingExponentialFit

void StreamingExponentialFit::observe(double duration_s) {
  check_duration(duration_s, "StreamingExponentialFit::observe");
  ++events_;
  total_time_s_ += duration_s;
}

void StreamingExponentialFit::observe_censored(double duration_s) {
  check_duration(duration_s, "StreamingExponentialFit::observe_censored");
  ++censored_;
  total_time_s_ += duration_s;
}

dist::Exponential StreamingExponentialFit::fit() const {
  if (events_ == 0) {
    throw std::invalid_argument(
        "StreamingExponentialFit: need at least one observed event");
  }
  if (!(total_time_s_ > 0.0)) {
    throw std::invalid_argument(
        "StreamingExponentialFit: total time on test must be > 0");
  }
  return dist::Exponential(static_cast<double>(events_) / total_time_s_);
}

// ---------------------------------------------------------------------------
// StreamingWeibullFit

StreamingWeibullFit::StreamingWeibullFit(const StreamingWeibullOptions& opts)
    : opts_(opts) {
  if (!(opts_.shape_min > 0.0) || !(opts_.shape_max > opts_.shape_min)) {
    throw std::invalid_argument(
        "StreamingWeibullFit: need 0 < shape_min < shape_max");
  }
  if (opts_.grid_points < 8) {
    throw std::invalid_argument("StreamingWeibullFit: grid_points >= 8");
  }
  if (!(opts_.zero_floor > 0.0)) {
    throw std::invalid_argument("StreamingWeibullFit: zero_floor must be > 0");
  }
  alphas_.resize(opts_.grid_points);
  const double du = std::log(opts_.shape_max / opts_.shape_min) /
                    static_cast<double>(opts_.grid_points - 1);
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    alphas_[i] = opts_.shape_min * std::exp(static_cast<double>(i) * du);
  }
  offset_.assign(alphas_.size(), -std::numeric_limits<double>::infinity());
  s0_.assign(alphas_.size(), 0.0);
  s1_.assign(alphas_.size(), 0.0);
  s2_.assign(alphas_.size(), 0.0);
}

void StreamingWeibullFit::observe(double duration_s) {
  check_duration(duration_s, "StreamingWeibullFit::observe");
  add(duration_s, /*event=*/true);
}

void StreamingWeibullFit::observe_censored(double duration_s) {
  check_duration(duration_s, "StreamingWeibullFit::observe_censored");
  add(duration_s, /*event=*/false);
}

void StreamingWeibullFit::add(double duration_s, bool event) {
  const double x = std::max(duration_s, opts_.zero_floor);
  const double l = std::log(x);
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    const double a = alphas_[i] * l;
    double w;
    if (a > offset_[i]) {
      // New running max: rescale the stored sums so the largest term is
      // always exp(0) = 1 — streaming log-sum-exp, immune to overflow for
      // any shape x duration combination.
      const double f = std::exp(offset_[i] - a);
      s0_[i] *= f;
      s1_[i] *= f;
      s2_[i] *= f;
      offset_[i] = a;
      w = 1.0;
    } else {
      w = std::exp(a - offset_[i]);
    }
    s0_[i] += w;
    s1_[i] += w * l;
    s2_[i] += w * l * l;
  }
  ++total_;
  if (event) {
    ++events_;
    sum_log_events_ += l;
    if (first_event_ < 0.0) {
      first_event_ = x;
    } else if (x != first_event_) {
      distinct_events_ = true;
    }
  }
}

double StreamingWeibullFit::score(std::size_t i) const {
  const double mean_log_events =
      sum_log_events_ / static_cast<double>(events_);
  return s1_[i] / s0_[i] - 1.0 / alphas_[i] - mean_log_events;
}

double StreamingWeibullFit::score_dlog(std::size_t i) const {
  const double h = s1_[i] / s0_[i];
  const double dg = (s2_[i] / s0_[i] - h * h) + 1.0 / (alphas_[i] * alphas_[i]);
  return alphas_[i] * dg;  // d/d ln α
}

dist::Weibull StreamingWeibullFit::fit() const {
  if (events_ < 2) {
    throw std::invalid_argument("StreamingWeibullFit: need >= 2 events");
  }
  if (!distinct_events_) {
    throw std::invalid_argument(
        "StreamingWeibullFit: all observed events identical; shape MLE "
        "diverges");
  }
  // The profile score is strictly increasing in α; bracket its sign change
  // on the grid.
  if (score(0) > 0.0) {
    throw std::runtime_error(
        "StreamingWeibullFit: shape root below grid range");
  }
  std::size_t hi = alphas_.size();
  for (std::size_t i = 1; i < alphas_.size(); ++i) {
    if (score(i) >= 0.0) {
      hi = i;
      break;
    }
  }
  if (hi == alphas_.size()) {
    throw std::runtime_error(
        "StreamingWeibullFit: shape root above grid range");
  }
  const std::size_t lo = hi - 1;
  const double u0 = std::log(alphas_[lo]);
  const double u1 = std::log(alphas_[hi]);
  const double h = u1 - u0;
  const double g0 = score(lo);
  const double g1 = score(hi);
  // Refine inside the bracket on the cubic Hermite interpolant of g(ln α)
  // built from the EXACT endpoint scores and slopes. The interpolation
  // error is O(h^4), far below the batch fitter's own tolerance at the
  // default grid resolution.
  const double d0 = score_dlog(lo) * h;
  const double d1 = score_dlog(hi) * h;
  double ta = 0.0;
  double tb = 1.0;
  for (int it = 0; it < 80; ++it) {
    const double tm = 0.5 * (ta + tb);
    if (hermite(tm, g0, g1, d0, d1) < 0.0) {
      ta = tm;
    } else {
      tb = tm;
    }
  }
  const double t = 0.5 * (ta + tb);
  const double alpha = std::exp(u0 + t * h);

  // Scale: β = (S0(α̂)/r)^{1/α̂} with r = events. ln S0 is interpolated the
  // same way (values offset + ln s0, slope α·S1/S0 per grid point).
  const double L0 = offset_[lo] + std::log(s0_[lo]);
  const double L1 = offset_[hi] + std::log(s0_[hi]);
  const double dL0 = alphas_[lo] * (s1_[lo] / s0_[lo]) * h;
  const double dL1 = alphas_[hi] * (s1_[hi] / s0_[hi]) * h;
  const double log_s0 = hermite(t, L0, L1, dL0, dL1);
  const double log_beta =
      (log_s0 - std::log(static_cast<double>(events_))) / alpha;
  return dist::Weibull(alpha, std::exp(log_beta));
}

// ---------------------------------------------------------------------------
// StreamingHyperexpFit

StreamingHyperexpFit::StreamingHyperexpFit(
    const StreamingHyperexpOptions& opts)
    : opts_(opts) {
  if (opts_.phases < 1) {
    throw std::invalid_argument("StreamingHyperexpFit: phases >= 1");
  }
  if (opts_.warm_max_iterations < 1) {
    throw std::invalid_argument(
        "StreamingHyperexpFit: warm_max_iterations >= 1");
  }
}

void StreamingHyperexpFit::observe(double duration_s) {
  check_duration(duration_s, "StreamingHyperexpFit::observe");
  data_.push_back(duration_s);
}

dist::Hyperexponential StreamingHyperexpFit::fit() {
  fit::EmResult result = [&] {
    if (have_warm_) {
      fit::EmOptions warm = opts_.em;
      warm.max_iterations = opts_.warm_max_iterations;
      return fit::fit_hyperexp_em_warm(data_, warm_weights_, warm_rates_,
                                       warm);
    }
    return fit::fit_hyperexp_em(data_, opts_.phases, opts_.em);
  }();
  warm_weights_ = result.model.weights();
  warm_rates_ = result.model.rates();
  have_warm_ = true;
  last_iterations_ = result.iterations;
  last_converged_ = result.converged;
  last_loglik_ = result.log_likelihood;
  ++refits_;
  return result.model;
}

void StreamingHyperexpFit::reset_warm_state() {
  have_warm_ = false;
  warm_weights_.clear();
  warm_rates_.clear();
}

}  // namespace harvest::plan
