#include "harvest/plan/service.hpp"

#include <chrono>
#include <functional>
#include <stdexcept>
#include <utility>

#include "harvest/obs/prof.hpp"

namespace harvest::plan {

std::string_view to_string(PlanStatus status) {
  switch (status) {
    case PlanStatus::kOk:
      return "ok";
    case PlanStatus::kUnknownMachine:
      return "unknown_machine";
    case PlanStatus::kInsufficientData:
      return "insufficient_data";
  }
  return "invalid";
}

PlannerService::PlannerService(PlannerServiceOptions opts,
                               obs::MetricsRegistry* registry)
    : opts_(std::move(opts)), cache_(opts_.cache, registry) {
  switch (opts_.family) {
    case core::ModelFamily::kExponential:
    case core::ModelFamily::kWeibull:
      break;
    case core::ModelFamily::kHyperexp2:
      opts_.hyperexp.phases = 2;
      break;
    case core::ModelFamily::kHyperexp3:
      opts_.hyperexp.phases = 3;
      break;
    default:
      throw std::invalid_argument(
          "PlannerService: family has no streaming fitter (supported: "
          "exponential, weibull, hyperexp2, hyperexp3)");
  }
  if (opts_.refit_every == 0) {
    throw std::invalid_argument("PlannerService: refit_every must be >= 1");
  }
  if (opts_.machine_shards == 0) {
    throw std::invalid_argument("PlannerService: machine_shards must be >= 1");
  }
  if (opts_.idle_ttl_reports > 0 && opts_.evict_sweep_every == 0) {
    throw std::invalid_argument(
        "PlannerService: evict_sweep_every must be >= 1 when "
        "idle_ttl_reports is set");
  }
  shards_.reserve(opts_.machine_shards);
  for (std::size_t i = 0; i < opts_.machine_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (registry != nullptr) {
    registry->describe("plan.reports",
                       "Occupancy durations reported to the planner service.");
    registry->describe("plan.refits",
                       "Per-machine model refits performed by the planner "
                       "service.");
    registry->describe("plan.refit_failures",
                       "Refit attempts rejected for insufficient or "
                       "degenerate data.");
    registry->describe("plan.machines",
                       "Machines with planner-service fitter state.");
    registry->describe("plan.evicted",
                       "Idle machine fitter states dropped by the planner "
                       "service's idle-TTL sweep.");
    registry->describe("plan.refit_latency_s",
                       "Wall time of one streaming refit (seconds).");
    reports_ = &registry->counter("plan.reports");
    evicted_ = &registry->counter("plan.evicted");
    refits_ = &registry->counter("plan.refits");
    refit_failures_ = &registry->counter("plan.refit_failures");
    machines_gauge_ = &registry->gauge("plan.machines");
    refit_latency_ = &registry->histogram(
        "plan.refit_latency_s",
        obs::Histogram::exponential_bounds(1e-7, 10.0, 33));
  }
}

PlannerService::Shard& PlannerService::shard_for(
    const std::string& machine_id) {
  return *shards_[std::hash<std::string>{}(machine_id) % shards_.size()];
}

PlannerService::Machine PlannerService::make_machine() const {
  Machine m;
  switch (opts_.family) {
    case core::ModelFamily::kExponential:
      m.exp.emplace();
      break;
    case core::ModelFamily::kWeibull:
      m.weibull.emplace(opts_.weibull);
      break;
    default:  // hyperexp2 / hyperexp3, validated in the constructor
      m.hyperexp.emplace(opts_.hyperexp);
      break;
  }
  return m;
}

void PlannerService::report(const std::string& machine_id, double duration_s,
                            bool censored) {
  const std::uint64_t seq =
      reports_n_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    Shard& shard = shard_for(machine_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.machines.try_emplace(machine_id);
    if (inserted) {
      it->second = make_machine();
      machines_n_.fetch_add(1, std::memory_order_relaxed);
      if (machines_gauge_ != nullptr) {
        machines_gauge_->set(
            static_cast<double>(machines_n_.load(std::memory_order_relaxed)));
      }
    }
    Machine& m = it->second;
    if (m.exp) {
      censored ? m.exp->observe_censored(duration_s)
               : m.exp->observe(duration_s);
    } else if (m.weibull) {
      censored ? m.weibull->observe_censored(duration_s)
               : m.weibull->observe(duration_s);
    } else {
      censored ? m.hyperexp->observe_censored(duration_s)
               : m.hyperexp->observe(duration_s);
    }
    ++m.observations;
    ++m.pending;
    m.last_report_seq = seq;
  }
  if (reports_ != nullptr) reports_->add();
  if (opts_.idle_ttl_reports > 0 && seq % opts_.evict_sweep_every == 0) {
    sweep_idle(seq);
  }
}

void PlannerService::sweep_idle(std::uint64_t seq) {
  // One shard per sweep, chosen by rotation, so every shard is eventually
  // visited while each report pays at most one shard scan.
  Shard& shard = *shards_[(seq / opts_.evict_sweep_every) % shards_.size()];
  std::size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.machines.begin(); it != shard.machines.end();) {
      if (seq - it->second.last_report_seq > opts_.idle_ttl_reports) {
        it = shard.machines.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  if (erased == 0) return;
  evicted_n_.fetch_add(erased, std::memory_order_relaxed);
  machines_n_.fetch_sub(erased, std::memory_order_relaxed);
  if (machines_gauge_ != nullptr) {
    machines_gauge_->set(
        static_cast<double>(machines_n_.load(std::memory_order_relaxed)));
  }
  if (evicted_ != nullptr) evicted_->add(erased);
}

bool PlannerService::refit(Machine& m) {
  PROF_PHASE("plan.fit");
  const auto start = std::chrono::steady_clock::now();
  try {
    if (m.exp) {
      auto fitted = m.exp->fit();
      m.model = std::make_shared<dist::Exponential>(fitted);
    } else if (m.weibull) {
      auto fitted = m.weibull->fit();
      m.model = std::make_shared<dist::Weibull>(fitted);
    } else {
      auto fitted = m.hyperexp->fit();
      m.model = std::make_shared<dist::Hyperexponential>(std::move(fitted));
    }
  } catch (const std::invalid_argument&) {
    if (refit_failures_ != nullptr) refit_failures_->add();
    return false;
  } catch (const std::runtime_error&) {
    // e.g. Weibull shape root outside the grid — degenerate data.
    if (refit_failures_ != nullptr) refit_failures_->add();
    return false;
  }
  m.model_description = m.model->describe();
  m.pending = 0;
  refits_n_.fetch_add(1, std::memory_order_relaxed);
  if (refits_ != nullptr) refits_->add();
  if (refit_latency_ != nullptr) {
    refit_latency_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return true;
}

GetPlanResult PlannerService::get_plan(const std::string& machine_id) {
  return get_plan(machine_id, std::nullopt);
}

GetPlanResult PlannerService::get_plan(
    const std::string& machine_id,
    const std::optional<predict::PredictorConfig>& predictor) {
  if (predictor.has_value()) predictor->validate();
  Shard& shard = shard_for(machine_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.machines.find(machine_id);
  if (it == shard.machines.end()) {
    return {};
  }
  Machine& m = it->second;
  GetPlanResult out;
  out.observations = m.observations;
  const bool due = m.model == nullptr || m.pending >= opts_.refit_every;
  if (due) {
    if (refit(m)) {
      out.refitted = true;
      const PlanCache::Result cached = [&] {
        PROF_PHASE("plan.cache");
        return cache_.lookup_or_compute(*m.model, opts_.costs);
      }();
      m.plan = cached.plan;
      m.last_hit = cached.hit;
    } else if (m.model == nullptr) {
      out.status = PlanStatus::kInsufficientData;
      return out;
    }
    // refit failed but an older model exists: keep serving its plan.
  }
  out.status = PlanStatus::kOk;
  if (predictor.has_value()) {
    // Per-query scenario: serve from the predictor-keyed bucket without
    // disturbing the machine's cached reactive plan (the next plain
    // get_plan must not see prediction-stretched intervals).
    const PlanCache::Result cached = [&] {
      PROF_PHASE("plan.cache");
      return cache_.lookup_or_compute(*m.model, opts_.costs, predictor);
    }();
    out.plan = cached.plan;
    out.cache_hit = cached.hit;
  } else {
    out.plan = m.plan;
    out.cache_hit = m.last_hit;
  }
  out.fitted_description = m.model_description;
  return out;
}

PlannerServiceStats PlannerService::stats() const {
  PlannerServiceStats out;
  out.reports = reports_n_.load(std::memory_order_relaxed);
  out.refits = refits_n_.load(std::memory_order_relaxed);
  out.machines = machines_n_.load(std::memory_order_relaxed);
  out.evictions = evicted_n_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  return out;
}

}  // namespace harvest::plan
