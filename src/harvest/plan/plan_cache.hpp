// Sharded, LRU-bounded cache of checkpoint plans keyed by QUANTIZED fitted
// parameters. At fleet scale, machines with near-identical fitted
// availability laws keep re-deriving near-identical golden-section
// schedules; the cache collapses each quantization bucket onto ONE schedule
// optimized at the bucket's representative parameters, so a fleet of a
// million machines whose fits cluster into a few hundred buckets pays a few
// hundred optimizations, not a million.
//
// Key = family tag + quantized parameter vector + interval costs:
//  * positive parameters (rates, shapes, scales) quantize on a relative
//    grid: q = round(ln p / log_step), representative exp(q·log_step) — a
//    bucket spans ±log_step/2 in log space (±1.25 % at the default);
//  * hyperexponential mixture weights quantize on an absolute grid of
//    weight_step (weights live in [0, 1]; relative error near 0 is
//    meaningless) and are renormalized to sum to one;
//  * the C/R/L link costs enter the key bit-exact — they are deployment
//    constants, not estimates, so two different cost configurations never
//    share a plan.
//
// ε-closeness: the cached plan is optimal for the representative
// parameters, which differ from the true fit by at most half a quantization
// step per parameter. Because the overhead ratio Γ(T)/T is flat (zero
// derivative) at its minimum and Γ varies smoothly with the availability
// parameters, evaluating the cached schedule under the TRUE fitted model
// costs within ε of the exactly re-optimized schedule — property-tested
// across the quantization grid in tests/plan/plan_cache_test.cpp and
// measured per cell by bench_plan_service.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/dist/distribution.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/predict/failure_predictor.hpp"

namespace harvest::plan {

struct PlanCacheOptions {
  /// Mutex stripes. Each shard owns an independent LRU map; a key's shard
  /// is a pure function of its hash.
  std::size_t shards = 16;
  /// LRU bound per shard (0 = unbounded).
  std::size_t capacity_per_shard = 4096;
  /// Relative quantization step for positive parameters (ln-space grid).
  double log_step = 0.025;
  /// Absolute quantization step for hyperexponential mixture weights.
  double weight_step = 0.02;
  /// Schedule entries materialized per cached plan (the aperiodic
  /// T_opt(0..horizon-1) sequence a machine needs until its next failure).
  std::size_t horizon = 8;
  core::ScheduleOptions schedule;
};

struct PlanEntryView {
  double work_s = 0.0;        ///< T_opt(i)
  double age_s = 0.0;         ///< machine uptime at interval i's start
  double efficiency = 0.0;    ///< model-predicted T/Γ
  bool at_upper_bound = false;
};

/// One cached, fully materialized plan. Immutable after construction and
/// shared by every machine in the quantization bucket.
struct Plan {
  std::string family;                 ///< model family tag, e.g. "weibull"
  std::vector<double> params;         ///< representative (bucket) parameters
  std::string model_description;      ///< human-readable representative model
  core::IntervalCosts costs;
  std::vector<PlanEntryView> entries;
  /// Prediction-aware plans only: the (quantized, bucket-representative)
  /// predictor the schedule was blended with, and the Aupy et al.
  /// 1/sqrt(1 - r̃) stretch already applied to every entry's work_s.
  bool predictor_enabled = false;
  predict::PredictorConfig predictor{};
  double period_factor = 1.0;
};
using PlanPtr = std::shared_ptr<const Plan>;

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;  ///< cached plans across all shards

  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PlanCache {
 public:
  struct Result {
    PlanPtr plan;
    bool hit = false;  ///< served from cache (false = optimized this call)
  };

  /// `registry` receives the `plan.cache.*` counters; pass an isolated
  /// registry in tests. Throws std::invalid_argument on bad options.
  explicit PlanCache(PlanCacheOptions opts = {},
                     obs::MetricsRegistry* registry = nullptr);

  /// The serving path: quantize the fitted model's parameters, return the
  /// bucket's plan, optimizing it first iff this is the bucket's first
  /// visit. Supported families: exponential, weibull, hyperexponential
  /// (throws std::invalid_argument otherwise).
  Result lookup_or_compute(const dist::Distribution& fitted,
                           const core::IntervalCosts& costs);

  /// Prediction-aware serving path: the predictor's (p, r, I) joins the
  /// quantized key — p and r on the absolute weight grid, the window on the
  /// relative log grid — so prediction-aware and reactive plans for the
  /// same fit never collide, and every entry's work_s carries the
  /// 1/sqrt(1 - r̃) period stretch for the bucket-representative predictor.
  /// nullopt behaves exactly like the two-argument overload.
  Result lookup_or_compute(
      const dist::Distribution& fitted, const core::IntervalCosts& costs,
      const std::optional<predict::PredictorConfig>& predictor);

  /// Representative (bucket-center) model for a fitted model — what the
  /// cached plan is optimized for. Exposed for the ε property tests.
  [[nodiscard]] dist::DistributionPtr representative(
      const dist::Distribution& fitted) const;

  /// Representative (bucket-center) predictor parameters, mirroring
  /// `representative`. Precision stays >= one weight step (it must remain
  /// positive) and both fractions are clamped to their valid ranges.
  [[nodiscard]] predict::PredictorConfig representative_predictor(
      const predict::PredictorConfig& predictor) const;

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] const PlanCacheOptions& options() const { return opts_; }
  void clear();

 private:
  struct Key {
    int family_tag = 0;
    std::vector<std::int64_t> qparams;
    std::uint64_t cost_bits[3] = {0, 0, 0};
    /// Prediction-aware keys append quantized (p, r, window) to qparams;
    /// the flag keeps them disjoint from reactive keys whose qparams
    /// coincide by accident.
    bool has_predictor = false;

    bool operator==(const Key& other) const;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard {
    std::mutex mutex;
    /// Most-recently-used at the front.
    std::list<std::pair<Key, PlanPtr>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, PlanPtr>>::iterator,
                       KeyHash>
        map;
  };

  [[nodiscard]] Key make_key(
      const dist::Distribution& fitted, const core::IntervalCosts& costs,
      const std::optional<predict::PredictorConfig>& predictor) const;
  [[nodiscard]] PlanPtr compute(
      const dist::Distribution& fitted, const core::IntervalCosts& costs,
      const std::optional<predict::PredictorConfig>& predictor) const;

  PlanCacheOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Instance-local tallies (stats()); the registry counters — when a
  /// registry was supplied — mirror them for scraping.
  std::atomic<std::uint64_t> hits_n_{0};
  std::atomic<std::uint64_t> misses_n_{0};
  std::atomic<std::uint64_t> evictions_n_{0};
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace harvest::plan
