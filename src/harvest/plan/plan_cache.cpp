#include "harvest/plan/plan_cache.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/predict/proactive_policy.hpp"

namespace harvest::plan {
namespace {

// Family tags inside the key (never serialized; ordering is arbitrary).
constexpr int kTagExponential = 1;
constexpr int kTagWeibull = 2;
constexpr int kTagHyperexp = 3;

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Relative (log-grid) quantization for a strictly positive parameter.
std::int64_t quantize_log(double p, double log_step) {
  if (!(p > 0.0) || !std::isfinite(p)) {
    throw std::invalid_argument("PlanCache: parameters must be > 0");
  }
  return std::llround(std::log(p) / log_step);
}

double representative_log(std::int64_t q, double log_step) {
  return std::exp(static_cast<double>(q) * log_step);
}

/// Absolute quantization for a mixture weight, floored at one step so a
/// tiny-but-alive phase never collapses to weight zero.
std::int64_t quantize_weight(double w, double weight_step) {
  if (!(w >= 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument("PlanCache: weights must be >= 0");
  }
  return std::max<std::int64_t>(1, std::llround(w / weight_step));
}

}  // namespace

bool PlanCache::Key::operator==(const Key& other) const {
  return family_tag == other.family_tag && qparams == other.qparams &&
         cost_bits[0] == other.cost_bits[0] &&
         cost_bits[1] == other.cost_bits[1] &&
         cost_bits[2] == other.cost_bits[2] &&
         has_predictor == other.has_predictor;
}

std::size_t PlanCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(k.family_tag));
  for (const std::int64_t q : k.qparams) {
    h = mix64(h ^ static_cast<std::uint64_t>(q));
  }
  for (const std::uint64_t c : k.cost_bits) h = mix64(h ^ c);
  h = mix64(h ^ static_cast<std::uint64_t>(k.has_predictor));
  return static_cast<std::size_t>(h);
}

PlanCache::PlanCache(PlanCacheOptions opts, obs::MetricsRegistry* registry)
    : opts_(std::move(opts)) {
  if (opts_.shards == 0) {
    throw std::invalid_argument("PlanCache: shards must be >= 1");
  }
  if (!(opts_.log_step > 0.0) || !(opts_.weight_step > 0.0)) {
    throw std::invalid_argument("PlanCache: quantization steps must be > 0");
  }
  if (opts_.horizon == 0) {
    throw std::invalid_argument("PlanCache: horizon must be >= 1");
  }
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (registry != nullptr) {
    registry->describe("plan.cache.hits",
                       "Plan lookups served from the sharded plan cache.");
    registry->describe("plan.cache.misses",
                       "Plan lookups that had to optimize a new schedule.");
    registry->describe("plan.cache.evictions",
                       "Plans evicted by the per-shard LRU bound.");
    hits_ = &registry->counter("plan.cache.hits");
    misses_ = &registry->counter("plan.cache.misses");
    evictions_ = &registry->counter("plan.cache.evictions");
  }
}

PlanCache::Key PlanCache::make_key(
    const dist::Distribution& fitted, const core::IntervalCosts& costs,
    const std::optional<predict::PredictorConfig>& predictor) const {
  Key key;
  if (const auto* e = dynamic_cast<const dist::Exponential*>(&fitted)) {
    key.family_tag = kTagExponential;
    key.qparams = {quantize_log(e->rate(), opts_.log_step)};
  } else if (const auto* w = dynamic_cast<const dist::Weibull*>(&fitted)) {
    key.family_tag = kTagWeibull;
    key.qparams = {quantize_log(w->shape(), opts_.log_step),
                   quantize_log(w->scale(), opts_.log_step)};
  } else if (const auto* h =
                 dynamic_cast<const dist::Hyperexponential*>(&fitted)) {
    key.family_tag = kTagHyperexp;
    key.qparams.reserve(2 * h->phases());
    for (const double weight : h->weights()) {
      key.qparams.push_back(quantize_weight(weight, opts_.weight_step));
    }
    for (const double rate : h->rates()) {
      key.qparams.push_back(quantize_log(rate, opts_.log_step));
    }
  } else {
    throw std::invalid_argument("PlanCache: unsupported model family '" +
                                fitted.name() + "'");
  }
  key.cost_bits[0] = std::bit_cast<std::uint64_t>(costs.checkpoint);
  key.cost_bits[1] = std::bit_cast<std::uint64_t>(costs.recovery);
  key.cost_bits[2] = std::bit_cast<std::uint64_t>(costs.latency);
  if (predictor.has_value()) {
    predictor->validate();
    key.has_predictor = true;
    // Precision and recall live in [0, 1] like mixture weights, so they
    // take the absolute grid (precision floored at one step — it must stay
    // positive; recall 0 must stay exactly 0 so the bucket keeps the
    // identity period factor). The window is a positive duration and takes
    // the relative log grid.
    key.qparams.push_back(std::max<std::int64_t>(
        1, std::llround(predictor->precision / opts_.weight_step)));
    key.qparams.push_back(
        std::llround(predictor->recall / opts_.weight_step));
    key.qparams.push_back(quantize_log(predictor->window_s, opts_.log_step));
  }
  return key;
}

predict::PredictorConfig PlanCache::representative_predictor(
    const predict::PredictorConfig& predictor) const {
  predictor.validate();
  predict::PredictorConfig rep;
  rep.precision = std::min(
      1.0, static_cast<double>(std::max<std::int64_t>(
               1, std::llround(predictor.precision / opts_.weight_step))) *
               opts_.weight_step);
  rep.recall = std::min(
      1.0, static_cast<double>(
               std::llround(predictor.recall / opts_.weight_step)) *
               opts_.weight_step);
  rep.window_s = representative_log(
      quantize_log(predictor.window_s, opts_.log_step), opts_.log_step);
  return rep;
}

dist::DistributionPtr PlanCache::representative(
    const dist::Distribution& fitted) const {
  if (const auto* e = dynamic_cast<const dist::Exponential*>(&fitted)) {
    return std::make_shared<dist::Exponential>(representative_log(
        quantize_log(e->rate(), opts_.log_step), opts_.log_step));
  }
  if (const auto* w = dynamic_cast<const dist::Weibull*>(&fitted)) {
    return std::make_shared<dist::Weibull>(
        representative_log(quantize_log(w->shape(), opts_.log_step),
                           opts_.log_step),
        representative_log(quantize_log(w->scale(), opts_.log_step),
                           opts_.log_step));
  }
  if (const auto* h = dynamic_cast<const dist::Hyperexponential*>(&fitted)) {
    std::vector<double> weights;
    std::vector<double> rates;
    weights.reserve(h->phases());
    rates.reserve(h->phases());
    double wsum = 0.0;
    for (const double weight : h->weights()) {
      const double rep = static_cast<double>(quantize_weight(
                             weight, opts_.weight_step)) *
                         opts_.weight_step;
      weights.push_back(rep);
      wsum += rep;
    }
    for (double& weight : weights) weight /= wsum;
    for (const double rate : h->rates()) {
      rates.push_back(representative_log(
          quantize_log(rate, opts_.log_step), opts_.log_step));
    }
    return std::make_shared<dist::Hyperexponential>(std::move(weights),
                                                    std::move(rates));
  }
  throw std::invalid_argument("PlanCache: unsupported model family '" +
                              fitted.name() + "'");
}

PlanPtr PlanCache::compute(
    const dist::Distribution& fitted, const core::IntervalCosts& costs,
    const std::optional<predict::PredictorConfig>& predictor) const {
  const dist::DistributionPtr rep = representative(fitted);
  core::CheckpointSchedule schedule =
      core::Planner::make_schedule(rep, costs, opts_.schedule);
  auto plan = std::make_shared<Plan>();
  plan->family = rep->name();
  plan->model_description = rep->describe();
  plan->costs = costs;
  if (const auto* e = dynamic_cast<const dist::Exponential*>(rep.get())) {
    plan->params = {e->rate()};
  } else if (const auto* w = dynamic_cast<const dist::Weibull*>(rep.get())) {
    plan->params = {w->shape(), w->scale()};
  } else if (const auto* h =
                 dynamic_cast<const dist::Hyperexponential*>(rep.get())) {
    plan->params = h->weights();
    plan->params.insert(plan->params.end(), h->rates().begin(),
                        h->rates().end());
  }
  plan->entries.reserve(opts_.horizon);
  for (std::size_t i = 0; i < opts_.horizon; ++i) {
    const core::ScheduleEntry e = schedule.entry(i);
    plan->entries.push_back(
        {e.work_time, e.age, e.efficiency, e.at_upper_bound});
  }
  if (predictor.has_value()) {
    // Blend the prediction scenario in: stretch every interval by the Aupy
    // et al. factor for the bucket-representative predictor (the same
    // factor both pool engines apply to T_opt, evaluated at the plan's
    // checkpoint cost). Ages and efficiencies keep the reactive model's
    // values — efficiency is the model-predicted T/Γ at the unstretched
    // optimum, the honest reactive baseline the stretch is relative to.
    const predict::PredictorConfig rep_pred =
        representative_predictor(*predictor);
    const double factor =
        predict::prediction_period_factor(rep_pred, costs.checkpoint);
    for (auto& entry : plan->entries) entry.work_s *= factor;
    plan->predictor_enabled = true;
    plan->predictor = rep_pred;
    plan->period_factor = factor;
  }
  return plan;
}

PlanCache::Result PlanCache::lookup_or_compute(
    const dist::Distribution& fitted, const core::IntervalCosts& costs) {
  return lookup_or_compute(fitted, costs, std::nullopt);
}

PlanCache::Result PlanCache::lookup_or_compute(
    const dist::Distribution& fitted, const core::IntervalCosts& costs,
    const std::optional<predict::PredictorConfig>& predictor) {
  Key key = make_key(fitted, costs, predictor);
  Shard& shard =
      *shards_[KeyHash{}(key) % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_n_.fetch_add(1, std::memory_order_relaxed);
      if (hits_ != nullptr) hits_->add();
      return {it->second->second, true};
    }
  }
  // Optimize outside the shard lock: a golden-section solve is the slow
  // path, and two racing computes of the same bucket are harmless (the
  // second insert finds the first's plan and drops its own).
  misses_n_.fetch_add(1, std::memory_order_relaxed);
  if (misses_ != nullptr) misses_->add();
  PlanPtr plan = compute(fitted, costs, predictor);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return {it->second->second, false};
  }
  shard.lru.emplace_front(key, plan);
  shard.map.emplace(std::move(key), shard.lru.begin());
  if (opts_.capacity_per_shard > 0 &&
      shard.lru.size() > opts_.capacity_per_shard) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_n_.fetch_add(1, std::memory_order_relaxed);
    if (evictions_ != nullptr) evictions_->add();
  }
  return {std::move(plan), false};
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  out.hits = hits_n_.load(std::memory_order_relaxed);
  out.misses = misses_n_.load(std::memory_order_relaxed);
  out.evictions = evictions_n_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.size += shard->lru.size();
  }
  return out;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
  }
}

}  // namespace harvest::plan
