// Streaming availability-model fitters — the refit half of the
// planner-as-a-service path. The paper fits each machine's model once over
// 25 recorded occupancy durations; a production service refits continuously
// as machines report new occupancies, so the fitters here accept one
// duration at a time (`observe` / `observe_censored`) and re-solve on
// demand, with state that is O(1) in the length of the stream:
//
//  * StreamingExponentialFit — the exponential MLE is a ratio of two
//    sufficient statistics (#events / total time on test), so the
//    streaming fit is EXACTLY the batch fit, censoring included.
//
//  * StreamingWeibullFit — the Weibull profile likelihood has no
//    finite-dimensional sufficient statistic (the score needs Σ xᵢ^α at
//    the unknown shape α), so the fitter maintains the three power sums
//    S0(α)=Σxᵢ^α, S1(α)=Σxᵢ^α ln xᵢ, S2(α)=Σxᵢ^α ln²xᵢ EXACTLY on a fixed
//    log-spaced grid of shapes (numerically stabilized with a per-grid-point
//    running-max offset, the streaming form of log-sum-exp). The profile
//    score g(α) and its derivative are then exact at every grid point;
//    solve() brackets the root on the grid (g is strictly increasing) and
//    refines it with a cubic Hermite interpolant of g in ln α, whose
//    O(Δ⁴) interpolation error puts the recovered shape within ~1e-6
//    relative of the batch MLE at the default grid resolution. Censored
//    observations enter the power sums but not the event-only log mean,
//    exactly mirroring fit::fit_weibull_censored.
//
//  * StreamingHyperexpFit — EM has no small sufficient statistic either,
//    but it has something better for a serving path: warm starts. The
//    fitter keeps the stream and the previous fit's (weights, rates); a
//    refit after k new samples runs fit::fit_hyperexp_em_warm from the old
//    parameters and converges in a few iterations instead of the hundreds
//    a cold quantile-block start needs (gated >= 5x in bench_plan_service).
//
// Every fitter is verified against its batch counterpart in src/harvest/fit
// on identical data by tests/plan/streaming_fit_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/fit/em_hyperexp.hpp"

namespace harvest::plan {

/// Exact streaming exponential MLE: λ̂ = events / Σ values (total time on
/// test). With no censored observations this is fit::fit_exponential_mle;
/// with them it is fit::fit_exponential_censored.
class StreamingExponentialFit {
 public:
  void observe(double duration_s);
  void observe_censored(double duration_s);

  [[nodiscard]] std::size_t observations() const { return events_ + censored_; }
  [[nodiscard]] std::size_t events() const { return events_; }
  [[nodiscard]] std::size_t censored() const { return censored_; }

  /// Throws std::invalid_argument until at least one event with positive
  /// total time has been observed.
  [[nodiscard]] dist::Exponential fit() const;

 private:
  std::size_t events_ = 0;
  std::size_t censored_ = 0;
  double total_time_s_ = 0.0;
};

struct StreamingWeibullOptions {
  /// Shape grid range; matches fit::WeibullFitOptions' search range.
  double shape_min = 1e-3;
  double shape_max = 1e3;
  /// Log-spaced grid points. 193 points over six decades put the Hermite
  /// root refinement's interpolation error around 1e-7 relative; memory is
  /// 4 doubles per point (~6 KB per machine).
  std::size_t grid_points = 193;
  /// Same zero clamp as the batch fitters.
  double zero_floor = 1e-9;
};

/// Streaming Weibull MLE on a fixed shape grid (see file comment).
class StreamingWeibullFit {
 public:
  explicit StreamingWeibullFit(const StreamingWeibullOptions& opts = {});

  void observe(double duration_s);
  void observe_censored(double duration_s);

  [[nodiscard]] std::size_t observations() const { return total_; }
  [[nodiscard]] std::size_t events() const { return events_; }

  /// Profile-likelihood MLE from the grid statistics. Throws
  /// std::invalid_argument with fewer than 2 distinct observed events
  /// (same preconditions as the batch fitters) and std::runtime_error when
  /// the shape root lies outside the grid range.
  [[nodiscard]] dist::Weibull fit() const;

 private:
  void add(double duration_s, bool event);
  /// Exact profile score g(αᵢ) and d g/d ln α at grid index i.
  [[nodiscard]] double score(std::size_t i) const;
  [[nodiscard]] double score_dlog(std::size_t i) const;

  StreamingWeibullOptions opts_;
  std::vector<double> alphas_;  ///< log-spaced shape grid
  /// Per grid point: running-max offset m and sums scaled by e^{-m}, so
  /// s0·e^{m} = Σ xᵢ^α etc. without overflow for any α·ln x.
  std::vector<double> offset_;
  std::vector<double> s0_;
  std::vector<double> s1_;
  std::vector<double> s2_;
  std::size_t total_ = 0;
  std::size_t events_ = 0;
  double sum_log_events_ = 0.0;
  /// Degeneracy detection: the shape MLE diverges when every observed
  /// event is the same value.
  double first_event_ = -1.0;
  bool distinct_events_ = false;
};

struct StreamingHyperexpOptions {
  int phases = 2;
  fit::EmOptions em;
  /// Warm refits cap iterations here instead of em.max_iterations (a warm
  /// start that has not converged this fast is effectively cold; letting it
  /// run longer only hides a bad previous fit).
  int warm_max_iterations = 100;
};

/// Warm-start EM for hyperexponentials. Keeps the stream (EM's E-step
/// needs every observation) and the previous fit's parameters; refits run
/// from those parameters and converge in a few iterations. Censored
/// durations are folded in as observed values — the batch EM pipeline has
/// no censoring-aware variant either, and dropping them would bias the fit
/// further (paper §5.3).
class StreamingHyperexpFit {
 public:
  explicit StreamingHyperexpFit(const StreamingHyperexpOptions& opts = {});

  void observe(double duration_s);
  void observe_censored(double duration_s) { observe(duration_s); }

  [[nodiscard]] std::size_t observations() const { return data_.size(); }

  /// Refit over the full stream: cold (quantile-block init, identical to
  /// fit::fit_hyperexp_em) on the first call, warm from the previous
  /// parameters afterwards. Throws std::invalid_argument with fewer than
  /// `phases` observations.
  [[nodiscard]] dist::Hyperexponential fit();

  /// Iterations the most recent fit() took (0 before the first).
  [[nodiscard]] int last_iterations() const { return last_iterations_; }
  [[nodiscard]] bool last_converged() const { return last_converged_; }
  [[nodiscard]] double last_log_likelihood() const { return last_loglik_; }
  [[nodiscard]] std::uint64_t refits() const { return refits_; }

  /// Drop the warm-start state so the next fit() is cold again (tests and
  /// the bench use this to compare the two paths on identical data).
  void reset_warm_state();

 private:
  StreamingHyperexpOptions opts_;
  std::vector<double> data_;
  std::vector<double> warm_weights_;
  std::vector<double> warm_rates_;
  bool have_warm_ = false;
  int last_iterations_ = 0;
  bool last_converged_ = false;
  double last_loglik_ = 0.0;
  std::uint64_t refits_ = 0;
};

}  // namespace harvest::plan
