// Planner-as-a-service facade: the piece a harvesting scheduler actually
// talks to. Machines report occupancy durations as they happen
// (`report`); the service folds each into the machine's streaming fitter
// (streaming_fit.hpp), refits on a configurable cadence, and serves the
// fitted model's checkpoint schedule out of the shared sharded PlanCache
// (plan_cache.hpp) — so a fleet whose fits cluster pays one golden-section
// optimization per quantization bucket, not per machine.
//
// Refits are LAZY: report() only appends to O(1)-state fitters (or the
// stream, for EM); the actual re-solve happens on the next get_plan() once
// `refit_every` new observations have accumulated. A machine that reports
// but is never asked for a plan costs nothing beyond its fitter state.
//
// Exposed over HTTP by examples/harvestd as /plan?machine=<id>.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/plan/plan_cache.hpp"
#include "harvest/plan/streaming_fit.hpp"

namespace harvest::plan {

struct PlannerServiceOptions {
  /// Availability model fitted per machine. Supported: kExponential,
  /// kWeibull, kHyperexp2, kHyperexp3 (the streaming-fittable families).
  core::ModelFamily family = core::ModelFamily::kWeibull;
  /// C/R/L costs shared by the fleet (deployment constants).
  core::IntervalCosts costs;
  /// Refit once this many new observations arrive since the last fit (1 =
  /// refit on every get_plan after any new data).
  std::size_t refit_every = 8;
  /// Mutex stripes over the machine map.
  std::size_t machine_shards = 16;
  /// Idle TTL in fleet-wide report sequence numbers: a machine whose last
  /// report is more than this many reports old is evicted (fitter state,
  /// model, and plan pointer dropped) by the next sweep — bounding memory
  /// for a long-lived daemon watching a churning park. 0 (default) keeps
  /// state forever. An evicted machine answers kUnknownMachine until it
  /// reports again, then starts a fresh fitter.
  std::uint64_t idle_ttl_reports = 0;
  /// Sweep cadence when idle_ttl_reports > 0: every this many reports one
  /// rotation-selected shard is scanned for idle machines, so the scan cost
  /// is amortized across reports and each shard is visited in turn. Must be
  /// >= 1 when eviction is enabled.
  std::uint64_t evict_sweep_every = 1024;
  PlanCacheOptions cache;
  StreamingWeibullOptions weibull;
  StreamingHyperexpOptions hyperexp;  ///< phases overridden by `family`
};

enum class PlanStatus {
  kOk,
  kUnknownMachine,     ///< no report() ever seen for this machine id
  kInsufficientData,   ///< too few (or degenerate) observations to fit
};

[[nodiscard]] std::string_view to_string(PlanStatus status);

struct GetPlanResult {
  PlanStatus status = PlanStatus::kUnknownMachine;
  PlanPtr plan;                   ///< non-null iff status == kOk
  bool cache_hit = false;         ///< plan came from the cache this call
  bool refitted = false;          ///< this call re-solved the model
  std::size_t observations = 0;   ///< total reports for the machine
  std::string fitted_description; ///< exact (pre-quantization) fitted model
};

struct PlannerServiceStats {
  std::uint64_t reports = 0;
  std::uint64_t refits = 0;
  std::size_t machines = 0;
  std::uint64_t evictions = 0;  ///< idle fitter states dropped (idle TTL)
  PlanCacheStats cache;
};

class PlannerService {
 public:
  /// `registry` receives the `plan.*` metrics group (reports, refits,
  /// refit latency, machine count, cache counters); nullptr disables.
  /// Throws std::invalid_argument for an unsupported family or bad options.
  explicit PlannerService(PlannerServiceOptions opts = {},
                          obs::MetricsRegistry* registry = nullptr);

  /// Record one occupancy duration (seconds) for a machine, creating its
  /// fitter state on first sight. Censored = the occupancy was still in
  /// progress when recorded (machine not yet reclaimed).
  void report(const std::string& machine_id, double duration_s,
              bool censored = false);

  /// Fit (if due) and return the machine's current plan. Never throws for
  /// data-quality problems — they map to the status enum.
  [[nodiscard]] GetPlanResult get_plan(const std::string& machine_id);

  /// Prediction-aware variant: same refit-if-due protocol, but the served
  /// plan is looked up under the (fit, costs, quantized predictor) key and
  /// its entries carry the 1/sqrt(1 - r̃) period stretch. The machine's
  /// cached reactive plan pointer is left untouched — the PlanCache is the
  /// dedup layer for per-query predictor parameters. nullopt behaves like
  /// the plain overload. Throws std::invalid_argument for an invalid
  /// predictor config (a caller input error, unlike data-quality problems).
  [[nodiscard]] GetPlanResult get_plan(
      const std::string& machine_id,
      const std::optional<predict::PredictorConfig>& predictor);

  [[nodiscard]] PlannerServiceStats stats() const;
  [[nodiscard]] const PlannerServiceOptions& options() const { return opts_; }
  [[nodiscard]] PlanCache& cache() { return cache_; }

 private:
  struct Machine {
    // Exactly one engaged, per opts_.family.
    std::optional<StreamingExponentialFit> exp;
    std::optional<StreamingWeibullFit> weibull;
    std::optional<StreamingHyperexpFit> hyperexp;
    std::size_t observations = 0;
    std::size_t pending = 0;  ///< observations since the last successful fit
    dist::DistributionPtr model;
    std::string model_description;
    PlanPtr plan;
    bool last_hit = false;
    std::uint64_t last_report_seq = 0;  ///< fleet-wide seq of latest report
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Machine> machines;
  };

  [[nodiscard]] Shard& shard_for(const std::string& machine_id);
  [[nodiscard]] Machine make_machine() const;
  /// Evict idle machines from the rotation-selected shard for report `seq`.
  /// Called outside any shard lock.
  void sweep_idle(std::uint64_t seq);
  /// Refit `m` from its fitter. Returns false (and leaves m.model null or
  /// stale) when the data cannot support the family yet.
  bool refit(Machine& m);

  PlannerServiceOptions opts_;
  PlanCache cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> reports_n_{0};
  std::atomic<std::uint64_t> refits_n_{0};
  std::atomic<std::uint64_t> machines_n_{0};
  std::atomic<std::uint64_t> evicted_n_{0};
  obs::Counter* reports_ = nullptr;
  obs::Counter* evicted_ = nullptr;
  obs::Counter* refits_ = nullptr;
  obs::Counter* refit_failures_ = nullptr;
  obs::Gauge* machines_gauge_ = nullptr;
  obs::Histogram* refit_latency_ = nullptr;
};

}  // namespace harvest::plan
