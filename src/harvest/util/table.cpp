#include "harvest/util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace harvest::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_ci_cell(double mean, double half_width, int precision,
                           const std::string& beats) {
  std::string cell = format_fixed(mean, precision) + " +- " +
                     format_fixed(half_width, precision);
  if (!beats.empty()) cell += " (" + beats + ")";
  return cell;
}

}  // namespace harvest::util
