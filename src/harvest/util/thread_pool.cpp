#include "harvest/util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/prof.hpp"

namespace harvest::util {

namespace {

obs::Gauge& queue_depth_gauge() {
  static auto& g = []() -> obs::Gauge& {
    auto& reg = obs::default_registry();
    reg.describe("util.thread_pool.queue_depth",
                 "Jobs waiting in the shared thread pool queue (sampled at "
                 "every submit and dequeue).");
    return reg.gauge("util.thread_pool.queue_depth");
  }();
  return g;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  // Queue wait is a latency, not self-time: concurrent waiters overlap, so
  // the profiler files it under a latency slot (excluded from the wall-clock
  // conservation check). The clock is read only while a profiler is active —
  // the common inert path pays one atomic load.
  const bool profiled = obs::prof::active() != nullptr;
  const double enqueued_s = profiled ? now_s() : 0.0;
  {
    std::lock_guard lock(mutex_);
    jobs_.push(Queued{std::move(job), enqueued_s, profiled});
    queue_depth_gauge().set(static_cast<double>(jobs_.size()));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  static const std::uint16_t kQueueWait =
      obs::prof::phase_id("pool.queue-wait");
  for (;;) {
    Queued item;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      item = std::move(jobs_.front());
      jobs_.pop();
      queue_depth_gauge().set(static_cast<double>(jobs_.size()));
      ++in_flight_;
    }
    if (item.profiled) {
      obs::prof::record(kQueueWait, std::max(0.0, now_s() - item.enqueued_s));
      PROF_PHASE("pool.run");
      item.job();  // jobs are expected to catch their own exceptions
    } else {
      item.job();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t workers =
      std::min<std::size_t>(pool.thread_count(), count);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_blocks(
    ThreadPool& pool, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t blocks = (count + grain - 1) / grain;
  const std::size_t workers =
      std::min<std::size_t>(pool.thread_count(), blocks);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&, grain] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count) return;
        try {
          body(begin, std::min(begin + grain, count));
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace harvest::util
