// Minimal fixed-size thread pool used to fan the per-machine simulations of
// the experiment harness across cores. Tasks are type-erased void() jobs;
// callers who need results use parallel_for_each, which partitions an index
// range and rethrows the first exception raised by any worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace harvest::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a job; runs on some worker eventually.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

 private:
  /// A queued job plus its profiler stamp: `enqueued_s` is read only when a
  /// phase profiler was active at submit time, so the inert path never
  /// touches the clock.
  struct Queued {
    std::function<void()> job;
    double enqueued_s = 0.0;
    bool profiled = false;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Queued> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, count) on the pool; blocks until done and
/// rethrows the first exception any invocation produced. `body` must be
/// safe to call concurrently for distinct indices.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body);

/// Block-grained variant for cheap per-index bodies: workers claim
/// contiguous blocks of up to `grain` indices (one atomic fetch per block,
/// not per index) and call body(begin, end) once per block. Same blocking
/// and first-exception-rethrow contract as parallel_for_each. `grain == 0`
/// is treated as 1.
void parallel_for_blocks(
    ThreadPool& pool, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace harvest::util
