// Fixed-width text tables for the benchmark harness. Every reproduced table
// in EXPERIMENTS.md is printed through this formatter so the output lines up
// with the paper's layout (one row per checkpoint cost, one column per
// model, "mean ± ci (letters)" cells).
#pragma once

#include <string>
#include <vector>

namespace harvest::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing, a header separator, and 2-space gutters.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "123.4" style fixed-precision formatting.
[[nodiscard]] std::string format_fixed(double value, int precision);

/// "0.754 ± 0.013" confidence-interval cell, with optional "(e,w)" suffix.
[[nodiscard]] std::string format_ci_cell(double mean, double half_width,
                                         int precision,
                                         const std::string& beats = "");

}  // namespace harvest::util
