// Internal engine layer behind run_pool_simulation: the shared job spines
// (uncontended synchronous walk, contended fleet walk) parametrized over a
// MachinePark — the abstraction that owns machine availability timelines,
// occupancy, and policy-driven selection. Two parks implement it:
//
//   * LegacyPark  — TimelinePool + Matchmaker + occupancy vectors, the
//                   original per-machine-object path, moved here verbatim;
//   * MegaPark    — the flat SoA machine table with per-shard calendar
//                   queues (condor/megapool.hpp), bit-identical to
//                   LegacyPark at equal seeds at any shard/thread count.
//
// Everything in harvest::condor::engine is an implementation detail of
// run_pool_simulation; the public API lives in pool_simulation.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "harvest/condor/matchmaker.hpp"
#include "harvest/condor/pool_simulation.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/fleet.hpp"
#include "harvest/util/thread_pool.hpp"

namespace harvest::condor::engine {

struct PoolMetrics {
  obs::Counter& runs;
  obs::Counter& placements;
  obs::Counter& evictions;
  obs::Counter& finished;
  obs::Gauge& mb_moved;
  obs::Histogram& wall_s;
};

PoolMetrics& pool_metrics();

/// What both spines need from the pool of machines: advance the availability
/// timelines, track guest-job occupancy, and pick a machine under the
/// matchmaking policy. The spines drive a park single-threaded, in
/// nondecreasing `now` order; a park may parallelize internally as long as
/// its observable behavior is deterministic.
class MachinePark {
 public:
  virtual ~MachinePark() = default;

  /// Advance timelines to `now`, free occupations whose release time has
  /// passed (release <= now), and pick an available unoccupied machine
  /// under the policy; nullopt when none is available.
  [[nodiscard]] virtual std::optional<Matchmaker::Match> place(double now) = 0;

  /// Mark `machine` (just returned by place()) occupied until `until`.
  virtual void occupy(std::size_t machine, double until) = 0;

  /// Move machine's pending release earlier (its job finished at `t`).
  virtual void release_at(std::size_t machine, double t) = 0;

  /// Attach the fault-prediction oracle: kModelRanked selection then ranks
  /// by min(fitted residual mean, predicted time-to-reclaim).
  virtual void set_predictor(const predict::FailurePredictor* predictor) = 0;
};

/// The original per-machine-object park: TimelinePool timelines, Matchmaker
/// selection, dense occupancy vectors scanned on every negotiation.
class LegacyPark final : public MachinePark {
 public:
  LegacyPark(const std::vector<TimelinePool::MachineSpec>& specs,
             std::uint64_t pool_seed, std::vector<dist::DistributionPtr> models,
             MatchPolicy policy, std::uint64_t matchmaker_seed);

  [[nodiscard]] std::optional<Matchmaker::Match> place(double now) override;
  void occupy(std::size_t machine, double until) override;
  void release_at(std::size_t machine, double t) override;
  void set_predictor(const predict::FailurePredictor* predictor) override;

 private:
  TimelinePool pool_;
  Matchmaker matchmaker_;
  std::vector<bool> occupied_;
  std::vector<double> occupied_until_;
};

struct JobState {
  double remaining_work = 0.0;
  bool has_checkpoint = false;
  PoolSimJobStats stats;
};

struct PlacementOutcome {
  double end_time = 0.0;  ///< when the machine frees (eviction or finish)
  bool job_finished = false;
};

/// Simulate one whole placement synchronously: the eviction instant is known
/// (spell end), so the recovery/work/checkpoint walk inside it is
/// deterministic given the sampled transfer times. `machine_index` only
/// attributes predictor tallies (FailurePredictor::machine_stats).
PlacementOutcome run_placement(std::size_t job_id, std::size_t machine_index,
                               double start, double eviction_time,
                               double uptime_at_start, double remaining_work,
                               bool has_checkpoint,
                               const dist::DistributionPtr& model,
                               const PoolSimConfig& cfg, numerics::Rng& rng,
                               predict::FailurePredictor* predictor,
                               PoolSimJobStats& stats,
                               double& remaining_work_out,
                               bool& has_checkpoint_out);

/// Uncontended mode records (time, megabytes) per placement and job-finish
/// instants during the run, then buckets them into cadence frames after the
/// fact (the synchronous placement walk does not process events in global
/// time order, so live cutting would misattribute).
struct UncontendedTimelineLog {
  std::vector<std::pair<double, double>> placement_mb;  ///< (end time, MB)
  std::vector<double> job_finish_s;
};

std::vector<PoolTimelineFrame> build_uncontended_timeline(
    const UncontendedTimelineLog& log, double every_s);

/// The per-placement synchronous spine: each transfer samples an independent
/// BandwidthModel duration (no cross-job network interaction).
void run_uncontended_engine(const PoolSimConfig& config,
                            const std::vector<dist::DistributionPtr>& fitted,
                            MachinePark& park, numerics::Rng& transfer_rng,
                            predict::FailurePredictor* predictor,
                            std::vector<JobState>& jobs, double& last_finish,
                            UncontendedTimelineLog* tl);

struct ContendedOutputs {
  server::FleetStats fleet;
  std::vector<PoolTimelineFrame> timeline;  ///< empty when cadence is 0
};

/// The contended spine: a global discrete-event walk where every recovery
/// and checkpoint transfer is a request against a server::ServerFleet.
ContendedOutputs run_contended_engine(
    const PoolSimConfig& config,
    const std::vector<dist::DistributionPtr>& fitted, MachinePark& park,
    const server::FleetConfig& fleet_config, std::uint64_t server_seed,
    predict::FailurePredictor* predictor, std::vector<JobState>& jobs,
    double& last_finish);

/// Monitor histories → fitted models (what the planner is allowed to see).
/// Consumes one master.split() per machine in index order, then samples and
/// fits from each machine's own child stream — so the result is
/// bit-identical whether the fits run inline (`workers == nullptr`) or
/// fanned across the pool.
std::vector<dist::DistributionPtr> fit_pool_models(
    const std::vector<TimelinePool::MachineSpec>& specs, numerics::Rng& master,
    core::ModelFamily family, std::size_t train_count,
    util::ThreadPool* workers);

}  // namespace harvest::condor::engine
