// The paper's live experiment (§5.2), emulated end-to-end: an instrumented
// test process is repeatedly submitted to the pool; on each placement it
//
//   1. opens a connection to the checkpoint manager and performs the 500 MB
//      initial recovery transfer, *timing it* — that measured duration
//      becomes the current estimate of C and R;
//   2. fits the requested model family to the machine's recorded
//      availability history and computes T_opt for the machine's current
//      uptime (the measured costs, not constants, parameterize the model);
//   3. emulates computation for T_opt seconds, then transfers a 500 MB
//      checkpoint back, re-times it, updates C/R, and repeats;
//   4. whenever the owner reclaims the machine mid-phase, the manager logs
//      the interrupted transfer / lost work, and the job returns to the
//      queue for its next placement.
//
// The per-placement logs are kept (post-mortem trace data) so the §5.3
// validation can replay the same availability periods through the offline
// trace simulator and compare.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harvest/condor/checkpoint_manager.hpp"
#include "harvest/condor/pool.hpp"
#include "harvest/core/planner.hpp"

namespace harvest::condor {

struct LiveExperimentConfig {
  /// Placements (submissions) per experiment — the paper's per-model sample
  /// sizes range from 40 to 89.
  std::size_t placements = 85;
  double checkpoint_size_mb = 500.0;
  /// Training prefix of each machine's history used to fit its model.
  std::size_t train_count = 25;
  /// Condor-universe semantics. The paper uses the Vanilla universe
  /// (terminate-on-eviction, grace 0). A positive grace emulates the
  /// Standard universe: when the owner reclaims the machine mid-phase, the
  /// job gets up to this many seconds to push a final checkpoint before it
  /// is killed (committing the in-progress work if the transfer finishes).
  double eviction_grace_s = 0.0;
  core::OptimizerOptions optimizer;
  std::uint64_t seed = 1;
};

struct PlacementLog {
  std::size_t machine_index = 0;
  double period_s = 0.0;          ///< availability duration (post-mortem)
  double useful_work_s = 0.0;     ///< committed work
  double checkpoint_time_s = 0.0;
  double recovery_time_s = 0.0;
  double lost_work_s = 0.0;
  double moved_mb = 0.0;
  std::size_t intervals_completed = 0;
  double first_measured_cost_s = 0.0;  ///< duration of the initial recovery
  /// Standard-universe accounting: wire time spent past the eviction inside
  /// the grace window, and whether a grace checkpoint saved the work.
  double grace_transfer_s = 0.0;
  bool saved_by_grace = false;
};

struct LiveResult {
  std::string family;
  std::vector<PlacementLog> placements;

  /// Paper Tables 4–5 columns.
  [[nodiscard]] double avg_efficiency() const;     ///< total useful / total time
  [[nodiscard]] double total_time_s() const;
  [[nodiscard]] double megabytes_used() const;
  [[nodiscard]] double megabytes_per_hour() const;
  [[nodiscard]] std::size_t sample_size() const { return placements.size(); }
  /// Mean duration of *completed* transfers (the paper reports ~110 s on
  /// campus, ~475 s over the WAN).
  [[nodiscard]] double mean_transfer_s() const;

 private:
  friend class LiveExperiment;
  double completed_transfer_time_total_ = 0.0;
  std::size_t completed_transfers_ = 0;
};

class LiveExperiment {
 public:
  /// `histories` are the availability traces previously recorded for the
  /// pool's machines by the occupancy monitor (same order as pool machines);
  /// the experiment fits models to these, never to the live periods.
  LiveExperiment(Pool& pool,
                 std::vector<trace::AvailabilityTrace> histories,
                 net::BandwidthModel link, LiveExperimentConfig config);

  /// Run the full experiment for one model family.
  [[nodiscard]] LiveResult run(core::ModelFamily family);

  [[nodiscard]] const CheckpointManager& manager() const { return manager_; }

 private:
  dist::DistributionPtr model_for(std::size_t machine_index,
                                  core::ModelFamily family);

  Pool& pool_;
  std::vector<trace::AvailabilityTrace> histories_;
  CheckpointManager manager_;
  LiveExperimentConfig config_;
  /// Fit cache: (machine, family) → model.
  std::map<std::pair<std::size_t, int>, dist::DistributionPtr> fits_;
};

}  // namespace harvest::condor
