// MegaPark: the million-machine machine park. The per-machine Timeline
// objects of TimelinePool become a flat structure-of-arrays table — RNG
// cursors, spell clocks, availability/occupancy flags, law and fitted-model
// handles in parallel vectors — and the implicit "advance every machine on
// every negotiation" walk becomes per-shard calendar queues of spell-end
// transitions: only machines whose spell actually ends get touched, so a
// negotiation at time t costs O(transitions due) instead of O(machines).
//
// The table is split into contiguous, cacheline-aligned shards fanned across
// a util::ThreadPool. Determinism at any shard/thread count is by
// construction, not by luck:
//   * every machine owns an independent RNG stream (split off the pool seed
//     in index order, exactly as TimelinePool does), so shard advancement
//     order cannot change any draw;
//   * candidate selection merges per-shard results in shard order with the
//     same strict-inequality tie-breaks as the sequential scan, so the
//     winner is the machine the single-threaded Matchmaker would pick,
//     bit for bit;
//   * the matchmaker RNG is consumed only on the (single-threaded) spine.
// Consequently MegaPark is bit-identical to LegacyPark at equal seeds — the
// property bench_megapool and the megapool tests gate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "harvest/condor/pool_engine.hpp"
#include "harvest/sim/calendar_queue.hpp"

namespace harvest::condor::engine {

class MegaPark final : public MachinePark {
 public:
  /// `models` are the fitted per-machine availability models (used by
  /// kModelRanked exactly like Matchmaker). Reproduces TimelinePool's
  /// construction draws from `pool_seed` and Matchmaker's selection stream
  /// from `matchmaker_seed`.
  MegaPark(const std::vector<TimelinePool::MachineSpec>& specs,
           std::uint64_t pool_seed, std::vector<dist::DistributionPtr> models,
           MatchPolicy policy, std::uint64_t matchmaker_seed,
           const MegapoolOptions& options, util::ThreadPool* workers);

  [[nodiscard]] std::optional<Matchmaker::Match> place(double now) override;
  void occupy(std::size_t machine, double until) override;
  void release_at(std::size_t machine, double t) override;
  void set_predictor(const predict::FailurePredictor* predictor) override;

  /// Default shard count for a pool of `machines`: one shard per 256
  /// machines, clamped to [1, 1024]. A pure function of the machine count —
  /// never of the thread count — so the partition (and therefore the run)
  /// is reproducible across hosts.
  [[nodiscard]] static std::size_t auto_shard_count(std::size_t machines);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::size_t begin = 0;  ///< first machine (multiple of 64)
    std::size_t end = 0;    ///< one past last machine
    /// Pending spell-end transitions: (spell end, machine index).
    sim::CalendarQueue<std::uint32_t> transitions;
    /// Pending occupation releases: (release time, machine), min-heap.
    /// Lazy — stale entries are skipped against occupied_until_.
    std::priority_queue<std::pair<double, std::uint32_t>,
                        std::vector<std::pair<double, std::uint32_t>>,
                        std::greater<>>
        releases;
    std::size_t avail_count = 0;  ///< set bits in this shard's mask words
  };

  /// Per-shard best candidate under a scanning policy.
  struct ShardBest {
    double score = -1.0;
    std::size_t machine = 0;
    double uptime = 0.0;
    bool found = false;
  };

  void advance_to(double now);
  void advance_shard(Shard& shard, double now);
  void step_machine(std::uint32_t m, Shard& shard);
  [[nodiscard]] ShardBest scan_shard(const Shard& shard, double now) const;
  [[nodiscard]] std::size_t select_nth_available(std::uint64_t target) const;
  [[nodiscard]] Shard& shard_of(std::size_t machine) {
    return shards_[machine / machines_per_shard_];
  }

  void set_avail_bit(std::uint32_t m) {
    mask_[m >> 6] |= (std::uint64_t{1} << (m & 63));
  }
  void clear_avail_bit(std::uint32_t m) {
    mask_[m >> 6] &= ~(std::uint64_t{1} << (m & 63));
  }

  // SoA machine table. `laws_`/`busy_mean_` mirror what TimelinePool reads
  // off each spec; busy_mean_ is precomputed once (the mean is a pure
  // function of the law's parameters, so the value is bitwise the same as
  // the legacy per-transition recomputation).
  std::vector<dist::DistributionPtr> laws_;
  std::vector<dist::DistributionPtr> models_;  ///< fitted, for kModelRanked
  std::vector<double> busy_mean_;
  std::vector<numerics::Rng> rngs_;
  std::vector<double> spell_start_;
  std::vector<double> spell_end_;
  std::vector<std::uint8_t> timeline_avail_;  ///< availability-law state
  std::vector<std::uint8_t> occupied_;
  std::vector<double> occupied_until_;
  /// Candidate bitset: bit m set ⇔ timeline_avail_[m] && !occupied_[m].
  /// Shard ranges are 64-aligned, so shards never share a word.
  std::vector<std::uint64_t> mask_;

  std::vector<Shard> shards_;
  std::size_t machines_per_shard_ = 1;

  MatchPolicy policy_;
  numerics::Rng match_rng_;
  const predict::FailurePredictor* predictor_ = nullptr;
  util::ThreadPool* workers_;  ///< null or 1-thread → run inline

  // Spine-owned scratch (reused across place() calls to avoid allocation
  // churn; the spine is single-threaded by the MachinePark contract).
  std::vector<std::size_t> due_;
  std::vector<ShardBest> scan_best_;
};

}  // namespace harvest::condor::engine
