#include "harvest/condor/matchmaker.hpp"

#include <algorithm>
#include <stdexcept>

#include "harvest/dist/conditional.hpp"
#include "harvest/predict/failure_predictor.hpp"

namespace harvest::condor {

std::string to_string(MatchPolicy policy) {
  switch (policy) {
    case MatchPolicy::kRandom: return "random";
    case MatchPolicy::kLongestUptime: return "longest-uptime";
    case MatchPolicy::kModelRanked: return "model-ranked";
  }
  throw std::invalid_argument("to_string: unknown MatchPolicy");
}

void TimelinePool::Timeline::advance_to(double now) {
  while (spell_end <= now) {
    spell_start = spell_end;
    if (available) {
      // Owner reclaims: busy spell.
      const double busy_mean = spec.busy_mean_s > 0.0
                                   ? spec.busy_mean_s
                                   : 0.5 * spec.availability_law->mean();
      spell_end = spell_start + rng.exponential(1.0 / busy_mean);
      available = false;
    } else {
      spell_end = spell_start + spec.availability_law->sample(rng);
      available = true;
    }
  }
}

TimelinePool::TimelinePool(std::vector<MachineSpec> specs, std::uint64_t seed)
    : machines_() {
  if (specs.empty()) throw std::invalid_argument("TimelinePool: no machines");
  numerics::Rng master(seed);
  machines_.reserve(specs.size());
  for (auto& spec : specs) {
    if (!spec.availability_law) {
      throw std::invalid_argument("TimelinePool: machine without law");
    }
    Timeline tl;
    tl.spec = std::move(spec);
    tl.rng = master.split();
    // Start each machine in a random phase: available with the long-run
    // probability mean_avail / (mean_avail + mean_busy).
    const double ma = tl.spec.availability_law->mean();
    const double mb =
        tl.spec.busy_mean_s > 0.0 ? tl.spec.busy_mean_s : 0.5 * ma;
    tl.available = tl.rng.uniform() < ma / (ma + mb);
    tl.spell_start = 0.0;
    tl.spell_end = tl.available
                       ? tl.spec.availability_law->sample(tl.rng)
                       : tl.rng.exponential(1.0 / mb);
    machines_.push_back(std::move(tl));
  }
}

std::vector<TimelinePool::Candidate> TimelinePool::available_at(double now) {
  if (!(now >= 0.0)) throw std::invalid_argument("available_at: now >= 0");
  std::vector<Candidate> out;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    machines_[i].advance_to(now);
    if (machines_[i].available) {
      out.push_back(Candidate{i, now - machines_[i].spell_start});
    }
  }
  return out;
}

double TimelinePool::remaining_availability(std::size_t i, double now) {
  if (i >= machines_.size()) {
    throw std::out_of_range("remaining_availability: machine index");
  }
  machines_[i].advance_to(now);
  if (!machines_[i].available) {
    throw std::logic_error("remaining_availability: machine is busy");
  }
  return machines_[i].spell_end - now;
}

std::pair<double, double> TimelinePool::spell(std::size_t i, double now) {
  if (i >= machines_.size()) {
    throw std::out_of_range("TimelinePool::spell: machine index");
  }
  machines_[i].advance_to(now);
  return {machines_[i].spell_start, machines_[i].spell_end};
}

const TimelinePool::MachineSpec& TimelinePool::spec(std::size_t i) const {
  if (i >= machines_.size()) throw std::out_of_range("TimelinePool::spec");
  return machines_[i].spec;
}

Matchmaker::Matchmaker(TimelinePool& pool,
                       std::vector<dist::DistributionPtr> models,
                       MatchPolicy policy, std::uint64_t seed)
    : pool_(pool), models_(std::move(models)), policy_(policy), rng_(seed) {
  if (policy_ == MatchPolicy::kModelRanked &&
      models_.size() != pool_.size()) {
    throw std::invalid_argument(
        "Matchmaker: kModelRanked needs one fitted model per machine");
  }
}

std::optional<Matchmaker::Match> Matchmaker::place(
    double now, const std::vector<bool>& occupied) {
  if (!occupied.empty() && occupied.size() != pool_.size()) {
    throw std::invalid_argument(
        "Matchmaker::place: occupancy mask size mismatch");
  }
  auto candidates = pool_.available_at(now);
  if (!occupied.empty()) {
    std::erase_if(candidates, [&](const TimelinePool::Candidate& c) {
      return occupied[c.machine_index];
    });
  }
  if (candidates.empty()) return std::nullopt;

  std::size_t pick = 0;
  switch (policy_) {
    case MatchPolicy::kRandom:
      pick = rng_.uniform_index(candidates.size());
      break;
    case MatchPolicy::kLongestUptime: {
      double best = -1.0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (candidates[c].uptime_s > best) {
          best = candidates[c].uptime_s;
          pick = c;
        }
      }
      break;
    }
    case MatchPolicy::kModelRanked: {
      double best = -1.0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const auto& model = models_[candidates[c].machine_index];
        double expected;
        try {
          expected =
              dist::Conditional(model, candidates[c].uptime_s).mean();
        } catch (const std::exception&) {
          expected = model->mean();  // survival underflow at extreme age
        }
        if (predictor_ != nullptr) {
          // The oracle's view of this machine's current spell: when it
          // foresees the reclamation, the machine is worth no more than the
          // residual the prediction gives it. The hint keys on the exact
          // stored spell bounds, so every engine computes the same score.
          const auto [ss, se] =
              pool_.spell(candidates[c].machine_index, now);
          const auto hint = predictor_->reclaim_hint(ss, se, now);
          if (hint.has_value() && *hint < expected) expected = *hint;
        }
        if (expected > best) {
          best = expected;
          pick = c;
        }
      }
      break;
    }
  }

  Match match;
  match.machine_index = candidates[pick].machine_index;
  match.uptime_s = candidates[pick].uptime_s;
  match.remaining_s = pool_.remaining_availability(match.machine_index, now);
  return match;
}

void Matchmaker::set_predictor(const predict::FailurePredictor* predictor) {
  predictor_ = predictor;
}

}  // namespace harvest::condor
