#include "harvest/condor/live_experiment.hpp"

#include <stdexcept>

#include "harvest/core/adaptive_planner.hpp"
#include "harvest/trace/trace.hpp"

namespace harvest::condor {

double LiveResult::avg_efficiency() const {
  const double total = total_time_s();
  if (total <= 0.0) return 0.0;
  double useful = 0.0;
  for (const auto& p : placements) useful += p.useful_work_s;
  return useful / total;
}

double LiveResult::total_time_s() const {
  double total = 0.0;
  for (const auto& p : placements) total += p.period_s;
  return total;
}

double LiveResult::megabytes_used() const {
  double mb = 0.0;
  for (const auto& p : placements) mb += p.moved_mb;
  return mb;
}

double LiveResult::megabytes_per_hour() const {
  const double total = total_time_s();
  return total > 0.0 ? megabytes_used() / (total / 3600.0) : 0.0;
}

double LiveResult::mean_transfer_s() const {
  return completed_transfers_ > 0
             ? completed_transfer_time_total_ /
                   static_cast<double>(completed_transfers_)
             : 0.0;
}

LiveExperiment::LiveExperiment(Pool& pool,
                               std::vector<trace::AvailabilityTrace> histories,
                               net::BandwidthModel link,
                               LiveExperimentConfig config)
    : pool_(pool),
      histories_(std::move(histories)),
      manager_(link, config.seed ^ 0x9d2c5680aad2f13bULL),
      config_(config) {
  if (histories_.size() != pool_.size()) {
    throw std::invalid_argument(
        "LiveExperiment: one history per pool machine required");
  }
  if (config_.placements == 0) {
    throw std::invalid_argument("LiveExperiment: placements >= 1");
  }
}

dist::DistributionPtr LiveExperiment::model_for(std::size_t machine_index,
                                                core::ModelFamily family) {
  const auto key = std::make_pair(machine_index, static_cast<int>(family));
  const auto it = fits_.find(key);
  if (it != fits_.end()) return it->second;
  const trace::AvailabilityTrace& history = histories_[machine_index];
  std::span<const double> training(history.durations);
  if (training.size() > config_.train_count) {
    training = training.subspan(0, config_.train_count);
  }
  dist::DistributionPtr model = core::Planner::fit_model(training, family);
  fits_.emplace(key, model);
  return model;
}

LiveResult LiveExperiment::run(core::ModelFamily family) {
  LiveResult result;
  result.family = to_string(family);
  result.placements.reserve(config_.placements);

  for (std::size_t job = 0; job < config_.placements; ++job) {
    const Placement placement = pool_.next_placement();
    PlacementLog log;
    log.machine_index = placement.machine_index;
    log.period_s = placement.available_for_s;
    double pos = 0.0;  // uptime consumed on this machine

    // Initial recovery transfer; its measured duration seeds C and R.
    const TransferOutcome recovery =
        manager_.transfer(job, TransferKind::kRecovery,
                          config_.checkpoint_size_mb, log.period_s);
    log.recovery_time_s = recovery.duration_s;
    log.moved_mb += recovery.moved_mb;
    log.first_measured_cost_s = recovery.duration_s;
    pos += recovery.duration_s;
    if (!recovery.completed) {
      result.placements.push_back(log);
      continue;  // evicted during recovery; back to the queue
    }
    result.completed_transfer_time_total_ += recovery.duration_s;
    ++result.completed_transfers_;

    dist::DistributionPtr model;
    try {
      model = model_for(placement.machine_index, family);
    } catch (const std::exception&) {
      // Cannot fit this family to this machine's history; the test process
      // falls back to its last placement's behavior — here we simply skip.
      result.placements.push_back(log);
      continue;
    }

    // The instrumented test process's control loop.
    core::AdaptivePlannerOptions planner_opts;
    planner_opts.optimizer = config_.optimizer;
    core::AdaptivePlanner planner(model, planner_opts);
    planner.on_placement(0.0);
    planner.on_transfer_measured(recovery.duration_s);
    for (;;) {
      const double t_opt = planner.next_interval();

      // Emulated computation (the real process spins and heartbeats).
      if (pos + t_opt > log.period_s) {
        // Evicted mid-computation. Vanilla universe: the work is gone.
        // Standard universe (grace > 0): the job gets a final window to
        // push a checkpoint of the partial work before it is killed.
        const double partial_work = log.period_s - pos;
        if (config_.eviction_grace_s > 0.0) {
          const TransferOutcome last_gasp = manager_.transfer(
              job, TransferKind::kCheckpoint, config_.checkpoint_size_mb,
              config_.eviction_grace_s);
          log.grace_transfer_s += last_gasp.duration_s;
          log.moved_mb += last_gasp.moved_mb;
          if (last_gasp.completed) {
            log.useful_work_s += partial_work;
            log.saved_by_grace = true;
            result.completed_transfer_time_total_ += last_gasp.duration_s;
            ++result.completed_transfers_;
          } else {
            log.lost_work_s += partial_work;
          }
        } else {
          log.lost_work_s += partial_work;
        }
        break;
      }
      pos += t_opt;
      planner.on_work_completed(t_opt);

      // Checkpoint transfer back to the manager; re-measure the cost. In
      // the Standard universe an eviction arriving mid-transfer extends the
      // window by the grace period instead of cutting it dead.
      const TransferOutcome ckpt =
          manager_.transfer(job, TransferKind::kCheckpoint,
                            config_.checkpoint_size_mb,
                            log.period_s - pos + config_.eviction_grace_s);
      log.checkpoint_time_s += ckpt.duration_s;
      log.moved_mb += ckpt.moved_mb;
      pos += ckpt.duration_s;
      if (!ckpt.completed) {
        log.lost_work_s += t_opt;  // work was never committed
        break;
      }
      log.useful_work_s += t_opt;
      ++log.intervals_completed;
      result.completed_transfer_time_total_ += ckpt.duration_s;
      ++result.completed_transfers_;
      planner.on_transfer_measured(ckpt.duration_s);
      if (pos >= log.period_s) {
        // The transfer only finished thanks to the grace window; the
        // machine is reclaimed, so the placement ends here.
        break;
      }
    }
    result.placements.push_back(log);
  }
  return result;
}

}  // namespace harvest::condor
