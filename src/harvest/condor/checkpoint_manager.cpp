#include "harvest/condor/checkpoint_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::condor {

CheckpointManager::CheckpointManager(net::BandwidthModel link,
                                     std::uint64_t seed)
    : link_(link), rng_(seed) {}

TransferOutcome CheckpointManager::transfer(std::size_t job_id,
                                            TransferKind kind,
                                            double megabytes,
                                            double available_s) {
  if (!(megabytes >= 0.0)) {
    throw std::invalid_argument("CheckpointManager::transfer: megabytes >= 0");
  }
  if (!(available_s >= 0.0)) {
    throw std::invalid_argument("CheckpointManager::transfer: available >= 0");
  }
  const double full_duration = link_.sample_transfer_seconds(megabytes, rng_);

  TransferRecord rec;
  rec.job_id = job_id;
  rec.kind = kind;
  rec.requested_mb = megabytes;
  if (full_duration <= available_s) {
    rec.duration_s = full_duration;
    rec.moved_mb = megabytes;
    rec.completed = true;
  } else {
    rec.duration_s = available_s;
    rec.moved_mb = (full_duration > 0.0)
                       ? megabytes * available_s / full_duration
                       : 0.0;
    rec.completed = false;
  }
  log_.push_back(rec);

  // What a byte counter next to the manager would report.
  static auto& completed =
      obs::default_registry().counter("condor.manager.transfers_completed");
  static auto& cut_off =
      obs::default_registry().counter("condor.manager.transfers_cut_off");
  static auto& mb_moved =
      obs::default_registry().gauge("condor.manager.mb_moved");
  static auto& transfer_s = obs::default_registry().histogram(
      "condor.manager.transfer_s",
      obs::Histogram::exponential_bounds(1.0, 1e5, 26));
  (rec.completed ? completed : cut_off).add();
  mb_moved.add(rec.moved_mb);
  transfer_s.observe(rec.duration_s);
  obs::default_tracer().record_instant(
      rec.completed ? (kind == TransferKind::kRecovery
                           ? "transfer.recovery.complete"
                           : "transfer.checkpoint.complete")
                    : (kind == TransferKind::kRecovery
                           ? "transfer.recovery.cut_off"
                           : "transfer.checkpoint.cut_off"),
      "condor", rec.duration_s, job_id, rec.moved_mb);

  return TransferOutcome{rec.duration_s, rec.moved_mb, rec.completed};
}

double CheckpointManager::total_moved_mb() const {
  double total = 0.0;
  for (const auto& rec : log_) total += rec.moved_mb;
  return total;
}

}  // namespace harvest::condor
