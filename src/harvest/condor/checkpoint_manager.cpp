#include "harvest/condor/checkpoint_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::condor {

CheckpointManager::CheckpointManager(net::BandwidthModel link,
                                     std::uint64_t seed)
    : link_(link), rng_(seed) {}

CheckpointManager::CheckpointManager(net::BandwidthModel link,
                                     const server::ServerConfig& server_config)
    : CheckpointManager(link, server::FleetConfig{1, server::RoutingPolicy::kStatic, server_config},
                        server_config.seed, server_config.tracer) {}

CheckpointManager::CheckpointManager(net::BandwidthModel link,
                                     const server::FleetConfig& fleet_config,
                                     std::uint64_t seed,
                                     obs::EventTracer* tracer)
    : link_(link),
      rng_(seed),
      fleet_(std::make_unique<server::ServerFleet>(fleet_config, seed,
                                                   tracer)) {}

server::ServerStats CheckpointManager::server_stats() const {
  return fleet_stats().total;
}

server::FleetStats CheckpointManager::fleet_stats() const {
  if (fleet_ == nullptr) {
    throw std::logic_error(
        "CheckpointManager::fleet_stats: not server-backed");
  }
  return fleet_->stats();
}

TransferOutcome CheckpointManager::transfer(std::size_t job_id,
                                            TransferKind kind,
                                            double megabytes,
                                            double available_s,
                                            std::size_t machine_index) {
  if (!(megabytes >= 0.0)) {
    throw std::invalid_argument("CheckpointManager::transfer: megabytes >= 0");
  }
  if (!(available_s >= 0.0)) {
    throw std::invalid_argument("CheckpointManager::transfer: available >= 0");
  }

  TransferRecord rec;
  rec.job_id = job_id;
  rec.kind = kind;
  rec.requested_mb = megabytes;
  if (fleet_ != nullptr) {
    // Route through the checkpoint fleet on the manager's own clock. The
    // manager is a serial client, so the only contention effects are the
    // stagger jitter and admission policy — which is exactly what the live
    // experiment wants to measure into C and R.
    const double t0 = server_clock_s_;
    server::ServerTransferRequest req;
    req.job_id = job_id;
    req.megabytes = megabytes;
    req.kind = kind == TransferKind::kRecovery
                   ? server::TransferKind::kRecovery
                   : server::TransferKind::kCheckpoint;
    req.machine_index = machine_index;
    const auto outcome = fleet_->submit(req, t0);
    if (outcome.status == server::SubmitStatus::kRejected) {
      rec.duration_s = 0.0;
      rec.moved_mb = 0.0;
      rec.completed = false;
    } else {
      // Drain the (single-transfer) server until our transfer finishes or
      // the availability budget runs out.
      const double cutoff =
          std::isfinite(available_s)
              ? t0 + available_s
              : std::numeric_limits<double>::infinity();
      bool completed = false;
      double finish_s = cutoff;
      while (auto next = fleet_->next_event_s()) {
        if (*next > cutoff) break;
        for (const auto& done : fleet_->advance_to(*next)) {
          if (done.id == outcome.id) {
            completed = true;
            finish_s = done.finish_s;
          }
        }
        if (completed) break;
      }
      if (completed) {
        rec.duration_s = finish_s - t0;
        rec.moved_mb = megabytes;
        rec.completed = true;
        server_clock_s_ = finish_s;
      } else {
        const auto removal = fleet_->remove(outcome.id, cutoff);
        rec.duration_s = available_s;
        rec.moved_mb = removal.moved_mb;
        rec.completed = false;
        server_clock_s_ = cutoff;
      }
    }
  } else {
    const double full_duration =
        link_.sample_transfer_seconds(megabytes, rng_);
    if (full_duration <= available_s) {
      rec.duration_s = full_duration;
      rec.moved_mb = megabytes;
      rec.completed = true;
    } else {
      rec.duration_s = available_s;
      rec.moved_mb = (full_duration > 0.0)
                         ? megabytes * available_s / full_duration
                         : 0.0;
      rec.completed = false;
    }
  }
  log_.push_back(rec);

  // What a byte counter next to the manager would report.
  static auto& completed =
      obs::default_registry().counter("condor.manager.transfers_completed");
  static auto& cut_off =
      obs::default_registry().counter("condor.manager.transfers_cut_off");
  static auto& mb_moved =
      obs::default_registry().gauge("condor.manager.mb_moved");
  static auto& transfer_s = obs::default_registry().histogram(
      "condor.manager.transfer_s",
      obs::Histogram::exponential_bounds(1.0, 1e5, 26));
  (rec.completed ? completed : cut_off).add();
  mb_moved.add(rec.moved_mb);
  transfer_s.observe(rec.duration_s);
  obs::default_tracer().record_instant(
      rec.completed ? (kind == TransferKind::kRecovery
                           ? "transfer.recovery.complete"
                           : "transfer.checkpoint.complete")
                    : (kind == TransferKind::kRecovery
                           ? "transfer.recovery.cut_off"
                           : "transfer.checkpoint.cut_off"),
      "condor", rec.duration_s, job_id, rec.moved_mb);

  return TransferOutcome{rec.duration_s, rec.moved_mb, rec.completed};
}

double CheckpointManager::total_moved_mb() const {
  double total = 0.0;
  for (const auto& rec : log_) total += rec.moved_mb;
  return total;
}

}  // namespace harvest::condor
